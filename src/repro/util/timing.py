"""Lightweight wall-clock timing helpers for benchmarks and the autotuner."""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional


@dataclass
class Timer:
    """Accumulating named timer.

    Example
    -------
    >>> t = Timer()
    >>> with t.section("search"):
    ...     pass
    >>> "search" in t.totals
    True
    """

    totals: Dict[str, float] = field(default_factory=dict)
    counts: Dict[str, int] = field(default_factory=dict)

    @contextmanager
    def section(self, name: str) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.totals[name] = self.totals.get(name, 0.0) + elapsed
            self.counts[name] = self.counts.get(name, 0) + 1

    def mean(self, name: str) -> float:
        """Mean elapsed time of a section; 0.0 if the section never ran."""
        if self.counts.get(name, 0) == 0:
            return 0.0
        return self.totals[name] / self.counts[name]

    def reset(self) -> None:
        self.totals.clear()
        self.counts.clear()

    def summary(self) -> str:
        lines: List[str] = []
        for name in sorted(self.totals):
            lines.append(
                f"{name:30s} total={self.totals[name]:10.6f}s "
                f"calls={self.counts[name]:6d} mean={self.mean(name):10.6f}s"
            )
        return "\n".join(lines)


def timed(func: Callable, *args, repeat: int = 1, **kwargs):
    """Run ``func(*args, **kwargs)`` *repeat* times, return (best_time, result).

    The result of the final invocation is returned alongside the minimum
    wall-clock time over the repeats (the standard timeit-style estimator).
    """
    if repeat < 1:
        raise ValueError("repeat must be >= 1")
    best: Optional[float] = None
    result = None
    for _ in range(repeat):
        start = time.perf_counter()
        result = func(*args, **kwargs)
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return best, result
