"""Unit tests for the shared utilities (validation, timing, counters)."""

import numpy as np
import pytest

from repro.util.counters import OpCounter
from repro.util.timing import Timer, timed
from repro.util.validation import (
    as_index_array,
    check_axis,
    check_dtype_real,
    check_positive_int,
    check_shape,
    require,
)


class TestValidation:
    def test_require(self):
        require(True, "never raised")
        with pytest.raises(ValueError, match="boom"):
            require(False, "boom")

    def test_check_positive_int(self):
        assert check_positive_int(3, "x") == 3
        assert check_positive_int(np.int64(5), "x") == 5
        with pytest.raises(ValueError):
            check_positive_int(0, "x")
        with pytest.raises(TypeError):
            check_positive_int(2.5, "x")
        with pytest.raises(TypeError):
            check_positive_int(True, "x")

    def test_check_shape(self):
        assert check_shape([3, 4]) == (3, 4)
        with pytest.raises(ValueError):
            check_shape([])
        with pytest.raises(ValueError):
            check_shape([3, 0])
        with pytest.raises(TypeError):
            check_shape(5)

    def test_check_axis(self):
        assert check_axis(1, 3) == 1
        assert check_axis(-1, 3) == 2
        with pytest.raises(ValueError):
            check_axis(3, 3)
        with pytest.raises(TypeError):
            check_axis(1.5, 3)

    def test_check_dtype_real(self):
        assert check_dtype_real(np.float64).kind == "f"
        assert check_dtype_real("int32").kind == "i"
        with pytest.raises(TypeError):
            check_dtype_real(np.complex128)

    def test_as_index_array(self):
        arr = as_index_array([[0, 1], [2, 3]], 2)
        assert arr.shape == (2, 2) and arr.dtype == np.int64
        arr1 = as_index_array([0, 1, 2], 1)
        assert arr1.shape == (3, 1)
        with pytest.raises(ValueError):
            as_index_array([[0, 1]], 3)
        with pytest.raises(ValueError):
            as_index_array([[0, -1]], 2)


class TestTimer:
    def test_sections_accumulate(self):
        t = Timer()
        with t.section("a"):
            pass
        with t.section("a"):
            pass
        with t.section("b"):
            pass
        assert t.counts["a"] == 2 and t.counts["b"] == 1
        assert t.totals["a"] >= 0.0
        assert t.mean("a") == pytest.approx(t.totals["a"] / 2)
        assert t.mean("missing") == 0.0
        assert "a" in t.summary()

    def test_reset(self):
        t = Timer()
        with t.section("a"):
            pass
        t.reset()
        assert not t.totals and not t.counts

    def test_timed(self):
        calls = []

        def fn(x):
            calls.append(x)
            return x * 2

        best, result = timed(fn, 21, repeat=3)
        assert result == 42
        assert len(calls) == 3
        assert best >= 0.0
        with pytest.raises(ValueError):
            timed(fn, 1, repeat=0)


class TestOpCounter:
    def test_accumulation(self):
        c = OpCounter()
        c.add_flops(10)
        c.add_bytes(64)
        c.add_reset()
        c.add_call("gemv")
        c.add_call("gemv")
        assert c.flops == 10
        assert c.bytes_moved == 64
        assert c.buffer_resets == 1
        assert c.kernel_calls == {"gemv": 2}

    def test_merge(self):
        a, b = OpCounter(), OpCounter()
        a.add_flops(1)
        a.add_call("axpy")
        b.add_flops(2)
        b.add_call("axpy")
        b.add_call("ger")
        a.merge(b)
        assert a.flops == 3
        assert a.kernel_calls == {"axpy": 2, "ger": 1}

    def test_reset_and_as_dict(self):
        c = OpCounter()
        c.add_flops(5)
        c.reset()
        assert c.flops == 0
        d = c.as_dict()
        assert set(d) == {"flops", "bytes_moved", "buffer_resets", "kernel_calls"}
