"""Seeded request-mix scenarios for the load driver and benchmarks.

:func:`scenario_mix` generates a deterministic stream of contraction
requests spanning the four named kernel families plus arbitrary spec
strings, over a small pool of sparse tensors (different shapes, orders and
sparsities) and dense factor sets (float64 and float32).  The same seed
always produces the same requests, so the CLI load driver
(``repro serve``), the throughput benchmark and the conformance tests all
replay identical traffic.

Factor arrays are drawn from a per-call pool keyed by (tensor, mode, rank,
dtype): requests that agree on those share the *same* array objects, which
is what makes the service's shared-operand shm broadcast engage — exactly
how real serving traffic repeats a model's factor matrices across requests.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.kernels.tttc import tt_core_shapes
from repro.serve.request import (
    ContractionRequest,
    mttkrp_request,
    ttmc_request,
    tttc_request,
    tttp_request,
)
from repro.sptensor.generate import random_sparse_tensor
from repro.util.validation import require

#: Scenario mixes accepted by :func:`scenario_mix` (and ``repro serve``).
MIXES = ("mixed", "mttkrp", "ttmc", "tttp", "tttc", "spec")

#: Sparse tensor pool: (shape, nnz) — two order-3 tensors of different
#: shape/sparsity plus one order-4 tensor.
_TENSOR_CONFIGS: Tuple[Tuple[Tuple[int, ...], int], ...] = (
    ((26, 22, 18), 350),
    ((30, 24, 20), 120),
    ((14, 12, 10, 8), 220),
)

#: Arbitrary (non-named) spec strings served as raw ``build_kernel`` input;
#: ``{order}`` selects per tensor order.  The order-3 spec contracts mode k
#: without a factor, a shape none of the named families produce.
_RAW_SPECS = {
    3: "ijk,ir,js->rs",
    4: "ijkl,ir,jr->lr",
}

_RANKS = (4, 6)
_DTYPES = ("float64", "float32")


def scenario_mix(
    n_requests: int = 64,
    mix: str = "mixed",
    seed: int = 0,
    engine: Optional[str] = None,
) -> List[ContractionRequest]:
    """A deterministic list of *n_requests* requests for the given *mix*."""
    require(mix in MIXES, f"mix must be one of {MIXES}, got {mix!r}")
    require(n_requests >= 1, "n_requests must be >= 1")
    rng = np.random.default_rng(seed)
    tensors = [
        random_sparse_tensor(shape, nnz=nnz, seed=seed * 1000 + i)
        for i, (shape, nnz) in enumerate(_TENSOR_CONFIGS)
    ]
    factor_pool: Dict[Tuple[int, int, int, str], np.ndarray] = {}

    def factor(tensor_i: int, mode: int, rank: int, dtype: str) -> np.ndarray:
        """Pooled dense factor for one (tensor, mode, rank, dtype) slot."""
        key = (tensor_i, mode, rank, dtype)
        if key not in factor_pool:
            dim = tensors[tensor_i].shape[mode]
            arr = rng.random((dim, rank))
            factor_pool[key] = arr.astype(dtype)
        return factor_pool[key]

    def core(tensor_i: int, pos: int, rank: int, dtype: str) -> np.ndarray:
        """Pooled tensor-train core for one (tensor, position) slot."""
        shape = tt_core_shapes(tensors[tensor_i].shape, rank)[pos]
        key = (tensor_i, 100 + pos, rank, dtype)
        if key not in factor_pool:
            factor_pool[key] = rng.random(shape).astype(dtype)
        return factor_pool[key]

    kinds = list(MIXES[1:]) if mix == "mixed" else [mix]
    requests: List[ContractionRequest] = []
    for _ in range(n_requests):
        kind = kinds[int(rng.integers(len(kinds)))]
        # TTTc scheduling over order-4 chains is disproportionately
        # expensive; keep that family (and the raw specs' factor count) on
        # the order-3 tensors.
        n_configs = len(tensors) if kind in ("mttkrp", "ttmc", "tttp") else 2
        tensor_i = int(rng.integers(n_configs))
        tensor = tensors[tensor_i]
        order = tensor.order
        rank = _RANKS[int(rng.integers(len(_RANKS)))]
        dtype = _DTYPES[int(rng.integers(len(_DTYPES)))]

        if kind in ("mttkrp", "ttmc"):
            mode = int(rng.integers(order))
            factors = [
                factor(tensor_i, n, rank, dtype) for n in range(order) if n != mode
            ]
            build = mttkrp_request if kind == "mttkrp" else ttmc_request
            requests.append(build(tensor, factors, mode=mode, engine=engine))
        elif kind == "tttp":
            factors = [factor(tensor_i, n, rank, dtype) for n in range(order)]
            requests.append(tttp_request(tensor, factors, engine=engine))
        elif kind == "tttc":
            cores = [core(tensor_i, n, rank, dtype) for n in range(order - 1)]
            requests.append(tttc_request(tensor, cores, engine=engine))
        else:  # raw spec strings through build_kernel
            spec = _RAW_SPECS[order]
            n_dense = spec.split("->")[0].count(",")
            operands = [tensor] + [
                factor(tensor_i, n, rank, dtype) for n in range(n_dense)
            ]
            requests.append(
                ContractionRequest(
                    spec=spec,
                    operands=tuple(operands),
                    engine=engine,
                    kind="spec",
                )
            )
    return requests
