"""Dense reference implementation used to validate all executors.

The reference materializes every operand densely and evaluates the kernel
with a single ``numpy.einsum`` call.  It is exponentially more expensive in
memory than the SpTTN executors, so it is only used on the small tensors of
the test suite and the examples' self-checks.
"""

from __future__ import annotations

from typing import Mapping, Union

import numpy as np

from repro.core.expr import SpTTNKernel
from repro.sptensor.coo import COOTensor
from repro.sptensor.csf import CSFTensor
from repro.sptensor.dense import DenseTensor

TensorLike = Union[COOTensor, CSFTensor, DenseTensor, np.ndarray]


def _to_dense(value: TensorLike) -> np.ndarray:
    if isinstance(value, (COOTensor, CSFTensor)):
        return value.to_dense()
    if isinstance(value, DenseTensor):
        return value.data
    return np.asarray(value, dtype=np.float64)


def dense_reference(
    kernel: SpTTNKernel, tensors: Mapping[str, TensorLike]
) -> np.ndarray:
    """Dense einsum evaluation of the kernel (output axes in output order)."""
    operands = []
    subscripts = []
    for op in kernel.operands:
        operands.append(_to_dense(tensors[op.name]))
        subscripts.append("".join(op.indices))
    spec = ",".join(subscripts) + "->" + "".join(kernel.output.indices)
    return np.einsum(spec, *operands)


def reference_output(
    kernel: SpTTNKernel, tensors: Mapping[str, TensorLike]
) -> Union[np.ndarray, COOTensor]:
    """Reference output in the same form the SpTTN executor produces.

    Dense kernels return the dense einsum result; sparse-pattern kernels
    return a COO tensor holding the dense result restricted to the sparse
    operand's pattern.
    """
    dense = dense_reference(kernel, tensors)
    if not kernel.output.is_sparse:
        return dense
    sparse = tensors[kernel.sparse_operand.name]
    coo = sparse.to_coo() if isinstance(sparse, CSFTensor) else sparse
    assert isinstance(coo, COOTensor)
    # Map output axes (output index order) onto the sparse operand's modes.
    out_order = kernel.output.indices
    sparse_order = kernel.sparse_operand.indices
    axis_of = {name: pos for pos, name in enumerate(out_order)}
    values = np.empty(coo.nnz, dtype=np.float64)
    for row, coords in enumerate(coo.indices):
        key = tuple(
            int(coords[sparse_order.index(name)]) for name in out_order
        )
        values[row] = dense[key]
    return coo.with_values(values)


def assert_same_result(
    result: Union[np.ndarray, COOTensor],
    expected: Union[np.ndarray, COOTensor],
    rtol: float = 1e-8,
    atol: float = 1e-10,
) -> None:
    """Assert that an executor result matches the reference (test helper)."""
    if isinstance(expected, COOTensor):
        if not isinstance(result, COOTensor):
            raise AssertionError("expected a sparse-pattern (COO) result")
        if not expected.same_pattern(result):
            raise AssertionError("sparse result pattern differs from the input pattern")
        if not np.allclose(result.values, expected.values, rtol=rtol, atol=atol):
            raise AssertionError("sparse result values differ from the reference")
        return
    result_arr = np.asarray(result)
    if result_arr.shape != np.asarray(expected).shape:
        raise AssertionError(
            f"result shape {result_arr.shape} differs from expected {np.asarray(expected).shape}"
        )
    if not np.allclose(result_arr, expected, rtol=rtol, atol=atol):
        raise AssertionError("dense result differs from the reference")
