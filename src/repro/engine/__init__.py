"""Execution engine for SpTTN loop nests.

* :mod:`repro.engine.executor` — Algorithm 2: execute a fully-fused loop
  nest over a CSF sparse tensor, offloading maximal dense (and fiber-led)
  regions to vectorized NumPy kernels (the BLAS substitution of this
  reproduction).
* :mod:`repro.engine.blas` — the vectorized kernel layer plus call
  classification (axpy / dot / ger / gemv / gemm-like), feeding the
  operation counters.
* :mod:`repro.engine.buffers` — intermediate-buffer allocation and reset
  bookkeeping.
* :mod:`repro.engine.plan_cache` — compiled (array-independent) execution
  plans, the process-wide plan cache, and schedule caching, so repeated
  executions of one structure pay for planning and search once.
* :mod:`repro.engine.lowering` — the vectorized lowering subsystem: compile
  any lowerable plan into a flat program of segment-reduction ops and run
  it with no per-fiber Python dispatch (the default ``"lowered"`` engine).
* :mod:`repro.engine.reference` — dense ``numpy.einsum`` reference used to
  validate every executor and baseline.
"""

from repro.engine.blas import classify_call, vectorized_contract
from repro.engine.buffers import BufferSet
from repro.engine.executor import ENGINES, LoopNestExecutor, default_engine, execute_kernel
from repro.engine.lowering import NotLowerable, Program, lower_plan, run_program
from repro.engine.plan_cache import (
    CompiledPlan,
    PlanCache,
    cached_executor,
    cached_schedule,
    clear_caches,
    default_executor_cache,
    default_plan_cache,
    default_schedule_cache,
    plan_key,
)
from repro.engine.reference import dense_reference, reference_output

__all__ = [
    "classify_call",
    "vectorized_contract",
    "BufferSet",
    "ENGINES",
    "LoopNestExecutor",
    "NotLowerable",
    "Program",
    "default_engine",
    "execute_kernel",
    "lower_plan",
    "run_program",
    "CompiledPlan",
    "PlanCache",
    "cached_executor",
    "cached_schedule",
    "clear_caches",
    "default_executor_cache",
    "default_plan_cache",
    "default_schedule_cache",
    "plan_key",
    "dense_reference",
    "reference_output",
]
