"""SPLATT-style specialized MTTKRP baseline.

SPLATT (Smith et al., IPDPS 2015) is a hand-tuned library for the MTTKRP
kernel over CSF tensors.  Its core loop structure for an order-3 tensor and
mode-0 MTTKRP is::

    for each fiber (i):                     # CSF level 0
        for each fiber (i, j):              # CSF level 1
            acc[:]  = sum_k T(i,j,k) * C[k, :]      # vectorized over k, R
            row[:] += B[j, :] * acc[:]              # Hadamard + accumulate
        A[i, :] += row[:]

i.e. the factorize-and-fuse schedule with the deepest loops fully
vectorized.  This baseline implements exactly that structure (generalized to
any tensor order and any target mode) directly over the CSF level arrays —
it is the "specialized library" reference point the paper compares against.
Only MTTKRP kernels are supported; :meth:`supports` returns ``False`` for
anything else.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional

import numpy as np

from repro.core.expr import SpTTNKernel
from repro.frameworks.base import FrameworkBaseline, Output, TensorLike
from repro.sptensor.csf import CSFTensor


def _match_mttkrp(kernel: SpTTNKernel) -> Optional[Dict[str, object]]:
    """Recognize an MTTKRP kernel and return its structure, else ``None``.

    MTTKRP: output ``A(i_m, r)`` where ``i_m`` is one sparse mode, with one
    dense factor ``F_n(i_n, r)`` for every other sparse mode ``i_n``, all
    sharing the same second (rank) index ``r``.
    """
    sparse = kernel.sparse_operand
    out = kernel.output
    if out.is_sparse or len(out.indices) != 2:
        return None
    target_index, rank_index = out.indices
    if target_index not in kernel.sparse_indices or rank_index in kernel.sparse_indices:
        return None
    other_modes = [i for i in sparse.indices if i != target_index]
    if len(kernel.dense_operands) != len(other_modes):
        return None
    factor_of: Dict[str, str] = {}
    for op in kernel.dense_operands:
        if len(op.indices) != 2:
            return None
        mode, rank = op.indices
        if rank != rank_index or mode not in other_modes or mode in factor_of:
            return None
        factor_of[mode] = op.name
    if set(factor_of) != set(other_modes):
        return None
    return {
        "target_index": target_index,
        "rank_index": rank_index,
        "factor_of": factor_of,
    }


class SplattLikeBaseline(FrameworkBaseline):
    """Hand-fused CSF MTTKRP (any order, any mode)."""

    name = "splatt"

    def supports(self, kernel: SpTTNKernel) -> bool:
        return _match_mttkrp(kernel) is not None

    def _execute(
        self, kernel: SpTTNKernel, tensors: Mapping[str, TensorLike]
    ) -> Output:
        info = _match_mttkrp(kernel)
        if info is None:
            raise NotImplementedError("SPLATT baseline only implements MTTKRP")
        target_index: str = info["target_index"]  # type: ignore[assignment]
        rank_index: str = info["rank_index"]  # type: ignore[assignment]
        factor_of: Dict[str, str] = info["factor_of"]  # type: ignore[assignment]

        sparse = tensors[kernel.sparse_operand.name]
        spec_indices = kernel.sparse_operand.indices
        # Store the CSF with the target mode as the root level, the layout
        # SPLATT uses so the output row is accumulated once per root fiber.
        level_names = (target_index,) + tuple(
            i for i in spec_indices if i != target_index
        )
        mode_order = tuple(spec_indices.index(name) for name in level_names)
        if isinstance(sparse, CSFTensor):
            csf = CSFTensor.from_coo(sparse.to_coo(), mode_order)
        else:
            csf = CSFTensor.from_coo(sparse, mode_order)

        rank = kernel.index_dims[rank_index]
        factors: List[np.ndarray] = [
            self.as_array(tensors[factor_of[name]]) for name in level_names[1:]
        ]
        out = np.zeros((kernel.index_dims[target_index], rank), dtype=np.float64)

        order = csf.order
        counter = self.counter

        def recurse(level: int, position: int) -> np.ndarray:
            """Return the rank-vector contribution of the subtree at (level, position)."""
            if level == order - 1:
                # deepest level: one vectorized gather+GEMV over the fiber
                value = csf.values[position]
                row = factors[level - 1][csf.fids[level][position]]
                counter.add_flops(2 * rank)
                return value * row
            lo, hi = csf.children_range(level, position)
            if level == order - 2:
                ids = csf.fids[level + 1][lo:hi]
                vals = csf.values[lo:hi]
                acc = vals @ factors[level][ids]
                counter.add_flops(2 * rank * (hi - lo))
                counter.add_call("gemv")
            else:
                acc = np.zeros(rank, dtype=np.float64)
                for child in range(lo, hi):
                    acc += recurse(level + 1, child)
            if level == 0:
                return acc
            counter.add_flops(2 * rank)
            counter.add_call("hadamard")
            return acc * factors[level - 1][csf.fids[level][position]]

        for root in range(csf.nnz_at_level(0)):
            out[csf.fids[0][root]] += recurse(0, root)

        # Reorder output axes to the kernel's output index order if needed
        # (output is (target, rank) by construction, which matches).
        return out

    def metadata(self) -> Dict[str, object]:
        return {"strategy": "specialized CSF MTTKRP"}
