"""Process-wide metrics registry: counters, gauges and latency histograms.

One snapshot API subsumes the stats surfaces that grew per subsystem —
:class:`~repro.serve.ServiceStats` counters are mirrored into registry
counters by the serving layer, and the cache/pool snapshot functions
(:func:`~repro.engine.plan_cache.caches_snapshot`,
:func:`~repro.runtime.pool.pool_stats`, the plan-timing records) register
themselves as lazy *sources* so :func:`metrics_snapshot` returns one
coherent document without this module importing any of them (no import
cycles: producers import ``repro.obs``, never the reverse).

Histograms use fixed latency buckets (seconds, log-spaced from 100 µs to
10 s) so per-stage serving latency distributions are mergeable across
snapshots and directly renderable as Prometheus classic histograms —
:func:`prometheus_text` emits the standard exposition format.
"""

from __future__ import annotations

import bisect
import re
import threading
from typing import Callable, Dict, List, Optional, Sequence, Tuple

#: Default histogram bucket upper bounds, in seconds: log-spaced 1-2.5-5
#: decades from 100 µs to 10 s — wide enough for queue-wait through whole
#: batch executions, fine enough to separate cache hits from plan builds.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005,
    0.001, 0.0025, 0.005,
    0.01, 0.025, 0.05,
    0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0,
)


class Counter:
    """Monotonic counter (thread-safe)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        """Add *amount* (default 1) to the counter."""
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        """Current count."""
        return self._value


class Gauge:
    """Point-in-time value that can move both ways (thread-safe)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        """Replace the gauge's value."""
        with self._lock:
            self._value = float(value)

    @property
    def value(self) -> float:
        """Current value."""
        return self._value


class Histogram:
    """Fixed-bucket latency histogram (thread-safe, cumulative snapshot).

    Observations are seconds; bucket bounds are inclusive upper limits with
    an implicit ``+Inf`` overflow bucket, matching Prometheus classic
    histogram semantics.
    """

    __slots__ = ("name", "buckets", "_counts", "_sum", "_count", "_lock")

    def __init__(
        self, name: str, buckets: Optional[Sequence[float]] = None
    ) -> None:
        self.name = name
        self.buckets: Tuple[float, ...] = tuple(
            sorted(buckets if buckets is not None else DEFAULT_LATENCY_BUCKETS)
        )
        self._counts = [0] * (len(self.buckets) + 1)
        self._sum = 0.0
        self._count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        """Record one observation (seconds)."""
        idx = bisect.bisect_left(self.buckets, value)
        with self._lock:
            self._counts[idx] += 1
            self._sum += value
            self._count += 1

    def snapshot(self) -> Dict[str, object]:
        """JSON-safe view: cumulative ``[le, count]`` pairs, sum and count."""
        with self._lock:
            counts = list(self._counts)
            total, n = self._sum, self._count
        cumulative: List[List[float]] = []
        running = 0
        for le, c in zip(self.buckets, counts):
            running += c
            cumulative.append([le, running])
        return {"buckets": cumulative, "sum": total, "count": n}


class MetricsRegistry:
    """Named metrics plus lazily evaluated snapshot sources.

    ``counter``/``gauge``/``histogram`` are get-or-create by name, so call
    sites never race on registration; :meth:`register_source` attaches a
    zero-argument callable whose result is embedded in snapshots under its
    name (the cache/pool/plan-timing documents).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._sources: Dict[str, Callable[[], object]] = {}

    def counter(self, name: str) -> Counter:
        """The counter registered under *name* (created on first use)."""
        with self._lock:
            metric = self._counters.get(name)
            if metric is None:
                metric = self._counters[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        """The gauge registered under *name* (created on first use)."""
        with self._lock:
            metric = self._gauges.get(name)
            if metric is None:
                metric = self._gauges[name] = Gauge(name)
        return metric

    def histogram(
        self, name: str, buckets: Optional[Sequence[float]] = None
    ) -> Histogram:
        """The histogram registered under *name* (created on first use)."""
        with self._lock:
            metric = self._histograms.get(name)
            if metric is None:
                metric = self._histograms[name] = Histogram(name, buckets)
        return metric

    def register_source(self, name: str, fn: Callable[[], object]) -> None:
        """Attach (or replace) a lazy snapshot source under *name*."""
        with self._lock:
            self._sources[name] = fn

    def snapshot(self, include_sources: bool = True) -> Dict[str, object]:
        """One coherent document of every metric (and, optionally, source).

        Sources that raise are reported as ``{"error": ...}`` instead of
        poisoning the whole snapshot — introspection must never take the
        service down.
        """
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
            sources = dict(self._sources) if include_sources else {}
        doc: Dict[str, object] = {
            "counters": {name: c.value for name, c in sorted(counters.items())},
            "gauges": {name: g.value for name, g in sorted(gauges.items())},
            "histograms": {
                name: h.snapshot() for name, h in sorted(histograms.items())
            },
        }
        if include_sources:
            rendered: Dict[str, object] = {}
            for name, fn in sorted(sources.items()):
                try:
                    rendered[name] = fn()
                except Exception as exc:  # introspection must not raise
                    rendered[name] = {"error": f"{type(exc).__name__}: {exc}"}
            doc["sources"] = rendered
        return doc

    def reset(self) -> None:
        """Drop every metric (sources stay registered)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


_DEFAULT_REGISTRY = MetricsRegistry()


def default_registry() -> MetricsRegistry:
    """The process-wide registry every instrumentation site records into."""
    return _DEFAULT_REGISTRY


def inc_counter(name: str, amount: int = 1) -> None:
    """Increment a default-registry counter by *amount*."""
    _DEFAULT_REGISTRY.counter(name).inc(amount)


def set_gauge(name: str, value: float) -> None:
    """Set a default-registry gauge to *value*."""
    _DEFAULT_REGISTRY.gauge(name).set(value)


def observe(name: str, seconds: float) -> None:
    """Record one latency observation into a default-registry histogram."""
    _DEFAULT_REGISTRY.histogram(name).observe(seconds)


def register_source(name: str, fn: Callable[[], object]) -> None:
    """Attach a lazy snapshot source to the default registry."""
    _DEFAULT_REGISTRY.register_source(name, fn)


def metrics_snapshot(include_sources: bool = True) -> Dict[str, object]:
    """Snapshot of the default registry (the ``metrics`` op's payload)."""
    return _DEFAULT_REGISTRY.snapshot(include_sources=include_sources)


def reset_metrics() -> None:
    """Drop every metric in the default registry (test isolation)."""
    _DEFAULT_REGISTRY.reset()


def _sanitize(name: str) -> str:
    return re.sub(r"[^a-zA-Z0-9_:]", "_", name)


def prometheus_text(
    prefix: str = "repro", registry: Optional[MetricsRegistry] = None
) -> str:
    """Registry metrics (default registry) in Prometheus exposition format.

    Counters, gauges and histograms only — the lazy sources are nested
    documents and stay JSON-only.  Histogram values are seconds, so names
    gain the conventional ``_seconds`` unit suffix.
    """
    if registry is None:
        registry = _DEFAULT_REGISTRY
    doc = registry.snapshot(include_sources=False)
    lines: List[str] = []
    for name, value in doc["counters"].items():  # type: ignore[union-attr]
        metric = f"{prefix}_{_sanitize(name)}_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {value}")
    for name, value in doc["gauges"].items():  # type: ignore[union-attr]
        metric = f"{prefix}_{_sanitize(name)}"
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {value}")
    for name, hist in doc["histograms"].items():  # type: ignore[union-attr]
        metric = f"{prefix}_{_sanitize(name)}_seconds"
        lines.append(f"# TYPE {metric} histogram")
        for le, count in hist["buckets"]:
            lines.append(f'{metric}_bucket{{le="{le}"}} {count}')
        lines.append(f'{metric}_bucket{{le="+Inf"}} {hist["count"]}')
        lines.append(f"{metric}_sum {hist['sum']}")
        lines.append(f"{metric}_count {hist['count']}")
    return "\n".join(lines) + "\n"


__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "default_registry",
    "inc_counter",
    "metrics_snapshot",
    "observe",
    "prometheus_text",
    "register_source",
    "reset_metrics",
    "set_gauge",
]
