"""Tests for Algorithm 1 (the dynamic-programming loop-order search).

The central property (Theorem 4.7) is that the search returns a loop order
whose cost equals the minimum over the *entire* loop-order space; here it is
verified against brute-force enumeration for several kernels and cost
functions.
"""

import pytest

from repro.core.contraction_path import enumerate_contraction_paths, rank_contraction_paths
from repro.core.cost_model import (
    CacheMissCost,
    ExecutionCost,
    MaxBufferDimCost,
    MaxBufferSizeCost,
    evaluate_cost,
)
from repro.core.enumeration import enumerate_loop_orders
from repro.core.loop_nest import validate_loop_order
from repro.core.optimizer import OptimalLoopOrderSearch, find_optimal_loop_order


def brute_force_minimum(kernel, path, cost):
    best = None
    for order in enumerate_loop_orders(kernel, path):
        value = evaluate_cost(kernel, path, order, cost)
        if best is None or cost.is_better(value, best):
            best = value
    return best


COST_FACTORIES = [
    ("max-buffer-dim", MaxBufferDimCost),
    ("max-buffer-size", MaxBufferSizeCost),
    ("cache-miss", lambda k: CacheMissCost(k, cache_dims=1)),
    ("execution", lambda k: ExecutionCost(k, buffer_dim_bound=None)),
    ("execution-bounded", lambda k: ExecutionCost(k, buffer_dim_bound=1)),
]


@pytest.mark.parametrize("name,factory", COST_FACTORIES)
class TestOptimalityAgainstBruteForce:
    def test_ttmc3_all_paths(self, ttmc_setup, name, factory):
        kernel, _ = ttmc_setup
        cost = factory(kernel)
        for path in enumerate_contraction_paths(kernel):
            result = find_optimal_loop_order(kernel, path, cost)
            expected = brute_force_minimum(kernel, path, cost)
            assert result.cost == pytest.approx(expected)
            # the reported cost is consistent with re-evaluating the order
            assert evaluate_cost(kernel, path, result.order, cost) == pytest.approx(
                result.cost
            )

    def test_mttkrp_best_path(self, mttkrp_setup, name, factory):
        kernel, _ = mttkrp_setup
        cost = factory(kernel)
        path = rank_contraction_paths(kernel)[0][0]
        result = find_optimal_loop_order(kernel, path, cost)
        assert result.cost == pytest.approx(brute_force_minimum(kernel, path, cost))

    def test_tttp(self, tttp_setup, name, factory):
        kernel, _ = tttp_setup
        cost = factory(kernel)
        path = rank_contraction_paths(kernel)[0][0]
        result = find_optimal_loop_order(kernel, path, cost)
        assert result.cost == pytest.approx(brute_force_minimum(kernel, path, cost))


class TestOrder4:
    def test_ttmc4_optimal_buffer_dim(self, ttmc4_setup):
        kernel, _ = ttmc4_setup
        path = rank_contraction_paths(kernel)[0][0]
        cost = MaxBufferDimCost(kernel)
        result = find_optimal_loop_order(kernel, path, cost)
        expected = brute_force_minimum(kernel, path, cost)
        assert result.cost == pytest.approx(expected)

    def test_ttmc4_execution_cost_valid_order(self, ttmc4_setup):
        kernel, _ = ttmc4_setup
        path = rank_contraction_paths(kernel)[0][0]
        result = find_optimal_loop_order(kernel, path, ExecutionCost(kernel))
        validate_loop_order(kernel, path, result.order)

    def test_allmode_bounded_one_vs_two(self, allmode_setup):
        """Figure 9 setup: the scheduler honours buffer-dimension bounds 1 and 2.

        Not every contraction path admits a bound-1 loop nest, so this goes
        through the scheduler (which sweeps the asymptotically optimal paths
        and picks a feasible one) rather than a single fixed path.
        """
        from repro.core.scheduler import SpTTNScheduler

        kernel, _ = allmode_setup
        s1 = SpTTNScheduler(kernel, buffer_dim_bound=1).schedule()
        s2 = SpTTNScheduler(kernel, buffer_dim_bound=2).schedule()
        assert s1.max_buffer_dimension() <= 1
        assert s2.max_buffer_dimension() <= 2
        # relaxing the bound can only improve (or tie) the unconstrained
        # execution-cost estimate of the selected nest
        unb = ExecutionCost(kernel, buffer_dim_bound=None)
        cost1 = evaluate_cost(kernel, s1.path, s1.order, unb)
        cost2 = evaluate_cost(kernel, s2.path, s2.order, unb)
        assert cost2 <= cost1 * (1 + 1e-12)


class TestSearchMechanics:
    def test_returned_order_is_valid(self, ttmc_setup):
        kernel, _ = ttmc_setup
        for path in enumerate_contraction_paths(kernel):
            result = find_optimal_loop_order(kernel, path, MaxBufferDimCost(kernel))
            validate_loop_order(kernel, path, result.order)

    def test_second_best_has_different_root(self, ttmc_setup):
        kernel, _ = ttmc_setup
        path = rank_contraction_paths(kernel)[0][0]
        result = find_optimal_loop_order(kernel, path, CacheMissCost(kernel))
        if result.second_order is not None:
            assert result.second_order[0][0] != result.order[0][0]
            assert not CacheMissCost(kernel).is_better(
                result.cost + 0, result.cost
            )  # sanity: best <= second
            assert result.second_cost >= result.cost

    def test_csf_restriction_respected(self, ttmc_setup):
        kernel, _ = ttmc_setup
        path = rank_contraction_paths(kernel)[0][0]
        result = find_optimal_loop_order(kernel, path, ExecutionCost(kernel))
        for term_order in result.order:
            sparse_seq = [i for i in term_order if i in kernel.sparse_indices]
            expected = [i for i in kernel.csf_mode_order if i in set(sparse_seq)]
            assert sparse_seq == expected

    def test_unrestricted_search_at_least_as_good(self, ttmc_setup):
        kernel, _ = ttmc_setup
        path = rank_contraction_paths(kernel)[0][0]
        cost = CacheMissCost(kernel)
        restricted = OptimalLoopOrderSearch(kernel, cost, enforce_csf_order=True)
        unrestricted = OptimalLoopOrderSearch(kernel, cost, enforce_csf_order=False)
        assert unrestricted.search(path).cost <= restricted.search(path).cost

    def test_stats_populated(self, ttmc4_setup):
        kernel, _ = ttmc4_setup
        path = rank_contraction_paths(kernel)[0][0]
        result = find_optimal_loop_order(kernel, path, MaxBufferDimCost(kernel))
        assert result.stats.subproblems > 0
        assert result.stats.candidates_evaluated > 0
        assert "subproblems" in result.stats.as_dict()

    def test_memoization_reduces_work(self, ttmc4_setup):
        """The number of DP subproblems is far below the loop-order space size."""
        from repro.core.enumeration import count_loop_orders

        kernel, _ = ttmc4_setup
        path = rank_contraction_paths(kernel)[0][0]
        result = find_optimal_loop_order(kernel, path, MaxBufferDimCost(kernel))
        space = count_loop_orders(kernel, path)
        assert result.stats.subproblems < space / 10

    def test_empty_path_rejected(self, ttmc_setup):
        from repro.core.contraction_path import ContractionPath

        kernel, _ = ttmc_setup
        search = OptimalLoopOrderSearch(kernel)
        with pytest.raises(ValueError):
            search.search(ContractionPath(()))

    def test_loop_nest_helper(self, ttmc_setup):
        kernel, _ = ttmc_setup
        path = rank_contraction_paths(kernel)[0][0]
        result = find_optimal_loop_order(kernel, path, MaxBufferDimCost(kernel))
        nest = result.loop_nest(path)
        assert nest.path is path
        assert nest.order == result.order
