"""Record a condensed benchmark snapshot as a committed ``BENCH_*.json``.

Runs the smoke tier of one or more benchmark modules under
``pytest-benchmark``, condenses the raw report (timings plus the result
rows each benchmark attaches via ``record_rows``) and writes it to
``BENCH_<target>.json`` at the repository root, where it is committed as
the measured reference for that subsystem.

Usage (from the repository root)::

    PYTHONPATH=src python benchmarks/snapshot.py serve

Targets map to benchmark modules: ``serve`` covers the serving layer
(in-process batching *and* the daemon round trip); any other name runs
``benchmarks/test_bench_<name>.py``.  Timings are machine-dependent —
regenerate on the machine of record rather than editing the JSON by hand.
"""

from __future__ import annotations

import datetime
import json
import os
import platform
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Targets bundling several modules into one snapshot; anything not listed
#: resolves to the single module ``test_bench_<target>.py``.
TARGETS = {
    "serve": ["test_bench_serve.py", "test_bench_daemon.py"],
    "obs": ["test_bench_obs.py"],
}


def _git_commit() -> str:
    """The current commit hash, or ``"unknown"`` outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=10,
        )
        if out.returncode == 0:
            return out.stdout.strip()
    except OSError:
        pass
    return "unknown"


def _numpy_version() -> str:
    try:
        import numpy

        return numpy.__version__
    except ImportError:  # pragma: no cover - numpy is a hard dependency
        return "unknown"


def _modules_for(target: str) -> list:
    names = TARGETS.get(target, [f"test_bench_{target}.py"])
    modules = [REPO_ROOT / "benchmarks" / name for name in names]
    missing = [str(m) for m in modules if not m.exists()]
    if missing:
        raise SystemExit(f"no such benchmark module(s): {', '.join(missing)}")
    return modules


def _condense(raw: dict) -> dict:
    benchmarks = []
    for bench in raw.get("benchmarks", []):
        stats = bench.get("stats", {})
        extra = dict(bench.get("extra_info", {}))
        entry = {
            "name": bench.get("name"),
            "mean_s": stats.get("mean"),
            "min_s": stats.get("min"),
            "stddev_s": stats.get("stddev"),
            "rounds": stats.get("rounds"),
            "rows": extra.pop("rows", []),
        }
        # Everything else a benchmark attached (per-tier timings, engine
        # labels, speedup maps) used to be dropped here; keep it so the
        # committed snapshot records per-tier numbers, not just totals.
        if extra:
            entry["extra"] = extra
        benchmarks.append(entry)
    machine = raw.get("machine_info", {})
    return {
        "recorded": datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"
        ),
        "commit": _git_commit(),
        "python": machine.get("python_version", platform.python_version()),
        "numpy": _numpy_version(),
        "machine": {
            "system": machine.get("system", platform.system()),
            "release": machine.get("release", ""),
            "cpu_count": machine.get("cpu", {}).get("count"),
        },
        # REPRO_* knobs (workers, engine, cache budget, tracing) change what
        # a snapshot measures; stamping them makes two snapshots comparable.
        "env": {
            key: value
            for key, value in sorted(os.environ.items())
            if key.startswith("REPRO_")
        },
        "benchmarks": benchmarks,
    }


def snapshot(target: str) -> Path:
    """Run one target's smoke benchmarks and write its ``BENCH_*.json``."""
    modules = _modules_for(target)
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tmp:
        report_path = Path(tmp.name)
    try:
        command = [
            sys.executable,
            "-m",
            "pytest",
            *[str(m) for m in modules],
            "-m",
            "smoke",
            "-q",
            f"--benchmark-json={report_path}",
        ]
        result = subprocess.run(command, cwd=REPO_ROOT)
        if result.returncode != 0:
            raise SystemExit(f"benchmark run failed (exit {result.returncode})")
        raw = json.loads(report_path.read_text())
    finally:
        report_path.unlink(missing_ok=True)
    out_path = REPO_ROOT / f"BENCH_{target}.json"
    out_path.write_text(json.dumps(_condense(raw), indent=2) + "\n")
    return out_path


def main(argv=None) -> int:
    """CLI entry point: snapshot every target named on the command line."""
    targets = (argv if argv is not None else sys.argv[1:]) or ["serve"]
    for target in targets:
        path = snapshot(target)
        print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
