"""Serving daemon: wire protocol, fairness, backpressure, graceful drain.

The central contract mirrors the in-process suite: results streamed over
the NDJSON TCP protocol are *bit-identical* to executing the same requests
through the in-process service, under concurrency, failures, and shutdown.
All dispatch-timing-sensitive tests use the daemon's ``pause_dispatch`` /
``resume_dispatch`` hooks (driven through the event loop via
``DaemonHandle.call``) so their assertions are deterministic.
"""

from __future__ import annotations

import json
import os
import re
import signal
import socket
import subprocess
import sys
import threading

import numpy as np
import pytest

from repro.engine.plan_cache import default_schedule_cache
from repro.serve import (
    ServeClient,
    ServeError,
    execute_sequential,
    mttkrp_request,
    scenario_mix,
    start_daemon_thread,
)
from repro.serve import protocol
from repro.sptensor import COOTensor, random_dense_matrix, random_sparse_tensor


def _assert_outputs_equal(result, expected) -> None:
    if isinstance(expected, COOTensor):
        assert isinstance(result, COOTensor)
        np.testing.assert_array_equal(result.indices, expected.indices)
        np.testing.assert_array_equal(result.values, expected.values)
    else:
        np.testing.assert_array_equal(np.asarray(result), np.asarray(expected))


def _on_loop(handle, fn, *args) -> None:
    """Run *fn* on the daemon's event loop and wait until it has executed."""
    done = threading.Event()

    def _call():
        fn(*args)
        done.set()

    handle.call(_call)
    assert done.wait(10.0), "daemon event loop did not run the callback"


def _small_requests(n: int, seed: int):
    return scenario_mix(n, mix="mttkrp", seed=seed)


# --------------------------------------------------------------------------- #
# Wire protocol codec (no daemon needed)
# --------------------------------------------------------------------------- #
class TestProtocolCodec:
    def test_dense_array_round_trip_is_bit_exact(self):
        rng = np.random.default_rng(3)
        for dtype in ("float64", "float32", "int64"):
            arr = (rng.standard_normal((5, 7)) * 100).astype(dtype)
            back = protocol.decode_array(protocol.encode_array(arr))
            assert back.dtype == arr.dtype
            np.testing.assert_array_equal(back, arr)
            assert back.flags.writeable

    def test_sparse_tensor_round_trip_is_bit_exact(self):
        tensor = random_sparse_tensor((9, 8, 7), nnz=60, seed=11)
        back = protocol.decode_tensor(protocol.encode_tensor(tensor))
        assert isinstance(back, COOTensor)
        assert back.shape == tensor.shape
        np.testing.assert_array_equal(back.indices, tensor.indices)
        np.testing.assert_array_equal(back.values, tensor.values)

    def test_request_round_trip_preserves_fields(self):
        tensor = random_sparse_tensor((8, 7, 6), nnz=40, seed=5)
        factors = [
            random_dense_matrix(dim, 4, seed=m).data
            for m, dim in enumerate(tensor.shape)
        ]
        request = mttkrp_request(tensor, factors[1:], mode=0, engine="reference")
        back = protocol.decode_request(protocol.encode_request(request))
        assert back.spec == request.spec
        assert back.kind == "mttkrp"
        assert back.engine == "reference"
        assert len(back.operands) == len(request.operands)

    def test_decode_rejects_malformed_payloads(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.decode_array({"dtype": "float64"})
        with pytest.raises(protocol.ProtocolError):
            protocol.decode_tensor({"kind": "hologram"})
        with pytest.raises(protocol.ProtocolError):
            protocol.decode_request({"spec": "", "operands": []})
        with pytest.raises(protocol.ProtocolError):
            protocol.loads(b"not json at all\n")

    def test_error_reply_raises_typed_client_error(self):
        reply = protocol.error_reply("x1", protocol.ERROR_ADMISSION, "queue full")
        with pytest.raises(ServeError) as excinfo:
            protocol.raise_if_error(reply)
        assert excinfo.value.code == "admission"


# --------------------------------------------------------------------------- #
# End-to-end serving
# --------------------------------------------------------------------------- #
class TestDaemonEndToEnd:
    def test_single_client_matches_in_process(self):
        requests = scenario_mix(8, mix="mixed", seed=3)
        with start_daemon_thread(workers=0) as handle:
            with ServeClient(*handle.address) as client:
                assert client.ping()
                outputs = client.run(requests)
        expected = execute_sequential(requests)
        for out, want in zip(outputs, expected):
            _assert_outputs_equal(out, want)

    def test_concurrent_clients_each_bit_identical(self):
        workloads = {i: scenario_mix(6, mix="mixed", seed=10 + i) for i in range(3)}
        outputs: dict = {}
        errors: list = []

        def _drive(i: int, address) -> None:
            try:
                with ServeClient(*address) as client:
                    outputs[i] = client.run(workloads[i])
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append((i, exc))

        with start_daemon_thread(workers=0) as handle:
            threads = [
                threading.Thread(target=_drive, args=(i, handle.address))
                for i in workloads
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(120.0)
        assert not errors, errors
        for i, requests in workloads.items():
            expected = execute_sequential(requests)
            assert len(outputs[i]) == len(expected)
            for out, want in zip(outputs[i], expected):
                _assert_outputs_equal(out, want)

    def test_cross_client_requests_share_one_schedule(self):
        # Two clients submit the *same* seeded workload: every request pair
        # agrees on the plan-cache signature, so one dispatch cycle must
        # serve all four from two schedule searches, not four.
        requests = _small_requests(2, seed=42)
        with start_daemon_thread(workers=0) as handle:
            with ServeClient(*handle.address) as a, ServeClient(*handle.address) as b:
                _on_loop(handle, handle.daemon.pause_dispatch)
                pending = a.submit_many(requests) + b.submit_many(requests)
                # ping barriers: all submits above are processed before this
                assert a.ping() and b.ping()
                misses_before = default_schedule_cache().stats()["misses"]
                _on_loop(handle, handle.daemon.resume_dispatch)
                results = [p.result() for p in pending]
                misses_after = default_schedule_cache().stats()["misses"]
            daemon = handle.daemon
        assert misses_after - misses_before == len(requests)
        assert daemon.service.stats.amortized >= len(requests)
        # both backlogs drained in a single cross-client cycle
        assert daemon.dispatch_trace[0].count(0) == len(requests)
        assert daemon.dispatch_trace[0].count(1) == len(requests)
        expected = execute_sequential(requests)
        for out, want in zip(results[: len(requests)], expected):
            _assert_outputs_equal(out, want)
        for out, want in zip(results[len(requests) :], expected):
            _assert_outputs_equal(out, want)

    def test_round_robin_interleaves_clients_under_quota(self):
        requests = _small_requests(3, seed=9)
        with start_daemon_thread(workers=0, client_quota=1) as handle:
            with ServeClient(*handle.address) as a, ServeClient(*handle.address) as b:
                _on_loop(handle, handle.daemon.pause_dispatch)
                pending = a.submit_many(requests) + b.submit_many(requests)
                assert a.ping() and b.ping()
                _on_loop(handle, handle.daemon.resume_dispatch)
                for p in pending:
                    p.result()
            trace = list(handle.daemon.dispatch_trace)
        # quota 1: every cycle takes exactly one request per backlogged
        # client, so no client ever occupies a whole cycle
        assert len(trace) == len(requests)
        for cycle in trace:
            assert sorted(cycle) == [0, 1]
        # the starting client rotates between consecutive cycles
        assert trace[0] != trace[1]

    def test_health_endpoint_is_lightweight_and_ready(self):
        with start_daemon_thread(workers=0) as handle:
            with ServeClient(*handle.address) as client:
                health = client.health()
        assert health["status"] == "ready" and health["ready"] is True
        assert health["version"] == protocol.PROTOCOL_VERSION
        assert health["pending"] == 0
        assert health["quarantined_signatures"] == 0
        # supervision info rides along for probes that alert on crash churn
        assert {"crashes", "respawns", "last_crash_unix"} <= set(health)

    def test_stats_endpoint_exposes_all_layers(self):
        with start_daemon_thread(workers=0) as handle:
            with ServeClient(*handle.address) as client:
                client.run(_small_requests(2, seed=1))
                stats = client.stats()
        assert stats["version"] == protocol.PROTOCOL_VERSION
        assert stats["pending"] == 0
        assert stats["daemon"]["admitted"] == 2
        assert stats["daemon"]["replied"] == 2
        assert stats["service"]["served"] == 2
        assert set(stats["caches"]) == {"plan", "schedule", "executor", "jit"}
        for counters in stats["caches"].values():
            assert {"hits", "misses", "entries"} <= set(counters)
        assert "pools" in stats["pool"] and "default_workers" in stats["pool"]


# --------------------------------------------------------------------------- #
# Failure paths
# --------------------------------------------------------------------------- #
class TestDaemonFailurePaths:
    def test_malformed_line_gets_structured_error_and_connection_survives(self):
        with start_daemon_thread(workers=0) as handle:
            with socket.create_connection(handle.address, timeout=30) as sock:
                rfile = sock.makefile("rb")
                sock.sendall(b"this is not json\n")
                reply = json.loads(rfile.readline())
                assert reply["ok"] is False
                assert reply["error"]["code"] == "protocol"
                # same connection keeps working
                sock.sendall(b'{"op":"ping","id":"p1"}\n')
                reply = json.loads(rfile.readline())
                assert reply["id"] == "p1" and reply["pong"] is True
                # unknown op: error echoes the id, connection still lives
                sock.sendall(b'{"op":"dance","id":"d1"}\n')
                reply = json.loads(rfile.readline())
                assert reply["id"] == "d1"
                assert reply["error"]["code"] == "protocol"
                sock.sendall(b'{"op":"ping","id":"p2"}\n')
                assert json.loads(rfile.readline())["id"] == "p2"
            assert handle.daemon.stats.protocol_errors == 2

    def test_invalid_request_is_rejected_at_admission(self):
        # structurally valid wire message whose spec cannot be built
        # against its operands: rejected with an admission error, exactly
        # like in-process submit, and the connection survives
        tensor = random_sparse_tensor((6, 5, 4), nnz=20, seed=2)
        request = mttkrp_request(tensor, [np.ones((5, 3)), np.ones((4, 3))], mode=0)
        wire = protocol.encode_request(request)
        wire["spec"] = "ij,jk->ik"  # rank mismatch with the 3-d operand
        with start_daemon_thread(workers=0) as handle:
            with socket.create_connection(handle.address, timeout=30) as sock:
                rfile = sock.makefile("rb")
                sock.sendall(protocol.dumps({"op": "submit", "id": "bad", "request": wire}))
                reply = json.loads(rfile.readline())
                assert reply["id"] == "bad"
                assert reply["error"]["code"] == "admission"
                sock.sendall(b'{"op":"ping","id":"p"}\n')
                assert json.loads(rfile.readline())["pong"] is True

    def test_backpressure_rejects_above_max_pending(self):
        requests = _small_requests(3, seed=6)
        with start_daemon_thread(workers=0, max_pending=2) as handle:
            with ServeClient(*handle.address) as client:
                _on_loop(handle, handle.daemon.pause_dispatch)
                first = client.submit(requests[0])
                second = client.submit(requests[1])
                third = client.submit(requests[2])
                with pytest.raises(ServeError) as excinfo:
                    third.result()
                assert excinfo.value.code == "admission"
                _on_loop(handle, handle.daemon.resume_dispatch)
                # collect the daemon's replies before touching the (not
                # thread-safe) cached executors from this thread
                got = [first.result(), second.result()]
                expected = execute_sequential(requests[:2])
                _assert_outputs_equal(got[0], expected[0])
                _assert_outputs_equal(got[1], expected[1])
            assert handle.daemon.stats.rejected == 1

    def test_client_disconnect_discards_its_backlog_without_poisoning_others(self):
        requests_a = _small_requests(2, seed=21)
        requests_b = _small_requests(2, seed=22)
        with start_daemon_thread(workers=0) as handle:
            daemon = handle.daemon
            client_b = ServeClient(*handle.address)
            client_a = ServeClient(*handle.address)
            try:
                _on_loop(handle, daemon.pause_dispatch)
                client_a.submit_many(requests_a)
                pending_b = client_b.submit_many(requests_b)
                assert client_a.ping() and client_b.ping()
                client_a.close()  # abrupt disconnect with a queued backlog
                deadline = threading.Event()
                for _ in range(200):
                    if daemon.stats.active_connections == 1:
                        break
                    deadline.wait(0.05)
                assert daemon.stats.active_connections == 1
                _on_loop(handle, daemon.resume_dispatch)
                results_b = [p.result() for p in pending_b]
            finally:
                client_b.close()
        expected_b = execute_sequential(requests_b)
        for out, want in zip(results_b, expected_b):
            _assert_outputs_equal(out, want)
        # the dropped client's queued requests were discarded, not served
        assert daemon.stats.replied == 2

    def test_submit_while_draining_is_rejected_with_shutdown_error(self):
        with start_daemon_thread(workers=0) as handle:
            _on_loop(handle, setattr, handle.daemon, "_draining", True)
            with ServeClient(*handle.address) as client:
                pending = client.submit(_small_requests(1, seed=4)[0])
                with pytest.raises(ServeError) as excinfo:
                    pending.result()
                assert excinfo.value.code == "shutdown"
            _on_loop(handle, setattr, handle.daemon, "_draining", False)


# --------------------------------------------------------------------------- #
# Client-side robustness
# --------------------------------------------------------------------------- #
class TestClientRobustness:
    def test_read_timeout_raises_clear_error_and_daemon_survives(self):
        with start_daemon_thread(workers=0) as handle:
            with ServeClient(*handle.address, timeout=0.3) as client:
                _on_loop(handle, handle.daemon.pause_dispatch)
                pending = client.submit(_small_requests(1, seed=5)[0])
                with pytest.raises(TimeoutError, match="no reply from daemon"):
                    pending.result()
                _on_loop(handle, handle.daemon.resume_dispatch)
            # the stalled client did not wedge the daemon: reconnect works
            with ServeClient(*handle.address, timeout=60) as fresh:
                assert fresh.ping()
                requests = _small_requests(1, seed=5)
                out = fresh.run(requests)[0]
                _assert_outputs_equal(out, execute_sequential(requests)[0])

    def test_daemon_death_mid_request_surfaces_connection_error(self):
        # a stand-in daemon that accepts one connection, reads, then dies
        listener = socket.create_server(("127.0.0.1", 0))
        address = listener.getsockname()[:2]

        def _accept_read_die() -> None:
            conn, _ = listener.accept()
            conn.recv(1 << 20)
            conn.close()
            listener.close()

        thread = threading.Thread(target=_accept_read_die, daemon=True)
        thread.start()
        client = ServeClient(*address, timeout=30)
        try:
            pending = client.submit(_small_requests(1, seed=6)[0])
            with pytest.raises(ConnectionError, match="closed the connection"):
                pending.result()
        finally:
            client.close()
            thread.join(10)
        # the recovery path: reconnect to a live daemon and re-submit
        requests = _small_requests(1, seed=6)
        with start_daemon_thread(workers=0) as handle:
            with ServeClient(*handle.address, timeout=60) as fresh:
                out = fresh.run(requests)[0]
        _assert_outputs_equal(out, execute_sequential(requests)[0])


# --------------------------------------------------------------------------- #
# Graceful shutdown
# --------------------------------------------------------------------------- #
class TestDaemonShutdown:
    def test_shutdown_under_load_drains_every_pending_reply(self):
        requests = scenario_mix(4, mix="mixed", seed=17)
        handle = start_daemon_thread(workers=0)
        with ServeClient(*handle.address) as client:
            _on_loop(handle, handle.daemon.pause_dispatch)
            pending = client.submit_many(requests)
            assert client.ping()
            # shutdown releases the pause gate, drains all four queued
            # requests, streams their replies, then closes the connection
            draining = client.shutdown_server(wait=True)
            assert draining == len(requests)
            assert all(p.done for p in pending)
            expected = execute_sequential(requests)
            for p, want in zip(pending, expected):
                _assert_outputs_equal(p.result(), want)
        handle.shutdown()
        assert not handle.thread.is_alive()
        assert handle.daemon.stats.replied == len(requests)

    def test_sigterm_drains_and_exits_cleanly(self, tmp_path):
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
        env["PYTHONPATH"] = os.path.abspath(src)
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "serve",
                "--daemon",
                "--port",
                "0",
                "--workers",
                "0",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        try:
            banner = proc.stdout.readline()
            match = re.search(r"listening on ([\d.]+):(\d+)", banner)
            assert match, f"unexpected daemon banner: {banner!r}"
            address = (match.group(1), int(match.group(2)))
            requests = _small_requests(4, seed=8)
            with ServeClient(*address, timeout=60, retry=10.0) as client:
                pending = client.submit_many(requests)
                proc.send_signal(signal.SIGTERM)
                # drain the stream to EOF: every submitted id must have
                # been answered (result, or a structured shutdown error
                # for submits that raced the signal) — never dropped
                try:
                    while True:
                        client._dispatch(client._read_message())
                except (ConnectionError, OSError):
                    pass
                answered = set(client._replies)
                assert {p.msg_id for p in pending} <= answered
                expected = execute_sequential(requests)
                served = 0
                for p, want in zip(pending, expected):
                    reply = client._replies[p.msg_id]
                    if reply.get("ok"):
                        _assert_outputs_equal(protocol.decode_result(reply), want)
                        served += 1
                    else:
                        assert reply["error"]["code"] == "shutdown"
            out, _ = proc.communicate(timeout=60)
            assert proc.returncode == 0, out
            assert "drained and exited cleanly" in out
        finally:
            if proc.poll() is None:  # pragma: no cover - cleanup guard
                proc.kill()
                proc.communicate()
