"""Zero-copy broadcast of dense operands via POSIX shared memory.

The distributed runtime sends every rank the *same* dense factor matrices.
Pickling them into each task would copy every operand once per rank per
call; instead the parent publishes each array once into a
``multiprocessing.shared_memory`` segment and ships only tiny picklable
:class:`SharedArrayHandle` descriptors with the tasks.  Workers map the
segment and wrap it in a read-only ``numpy`` view — no copy, no
deserialization — and cache the attachment per segment, so a pool worker
maps each broadcast once no matter how many rank tasks it executes.

When shared memory is unavailable (or an array is empty) the handle simply
carries the array inline; consumers cannot tell the difference, the
broadcast just loses the zero-copy property.
"""

from __future__ import annotations

import multiprocessing
import os
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.obs.trace import span as _span
from repro.util.faults import fault_point

try:
    from multiprocessing import shared_memory as _shm
except ImportError:  # pragma: no cover - always present on CPython >= 3.8
    _shm = None


@dataclass(frozen=True)
class SharedArrayHandle:
    """Picklable reference to one published dense array.

    ``segment`` names the shared-memory block holding the data; when it is
    ``None`` the array travels inline (pickled) instead.
    """

    name: str
    segment: Optional[str]
    shape: Tuple[int, ...]
    dtype: str
    inline: Optional[np.ndarray] = field(default=None, repr=False)


class DenseBroadcast:
    """Parent-side owner of one set of published operands.

    Use as a context manager: the segments are unlinked on exit.  Workers
    that still have the segments mapped keep valid views (POSIX keeps the
    pages alive until the last map goes away); only *new* attachments
    become impossible after close.
    """

    def __init__(
        self, handles: Dict[str, SharedArrayHandle], segments: List[object]
    ) -> None:
        self.handles = handles
        self._segments = segments

    @property
    def shared_bytes(self) -> int:
        """Bytes placed in shared memory (0 = everything went inline)."""
        return sum(
            int(np.prod(h.shape)) * np.dtype(h.dtype).itemsize
            for h in self.handles.values()
            if h.segment is not None
        )

    def close(self) -> None:
        """Unmap and unlink every published segment (idempotent)."""
        segments, self._segments = self._segments, []
        for seg in segments:
            try:
                seg.close()
            except BufferError:  # pragma: no cover - a local view is alive
                pass
            try:
                seg.unlink()
            except FileNotFoundError:  # pragma: no cover - already unlinked
                pass

    def __enter__(self) -> "DenseBroadcast":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def publish(arrays: Mapping[str, np.ndarray]) -> DenseBroadcast:
    """Copy *arrays* into shared memory once and return their handles."""
    with _span("publish", "shm", arrays=len(arrays)):
        fault_point("shm.publish")
        broadcast = _publish(arrays)
    return broadcast


def _publish(arrays: Mapping[str, np.ndarray]) -> DenseBroadcast:
    handles: Dict[str, SharedArrayHandle] = {}
    segments: List[object] = []
    for name, arr in arrays.items():
        arr = np.ascontiguousarray(arr)
        seg = None
        if _shm is not None and arr.nbytes > 0:
            try:
                seg = _shm.SharedMemory(create=True, size=arr.nbytes)
            except (OSError, ValueError):  # pragma: no cover - no /dev/shm
                seg = None
        if seg is None:
            handles[name] = SharedArrayHandle(
                name, None, tuple(arr.shape), str(arr.dtype), inline=arr
            )
            continue
        view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=seg.buf)
        view[...] = arr
        del view
        segments.append(seg)
        handles[name] = SharedArrayHandle(
            name, seg.name, tuple(arr.shape), str(arr.dtype)
        )
    return DenseBroadcast(handles, segments)


# --------------------------------------------------------------------------- #
# Worker-side attachment cache
# --------------------------------------------------------------------------- #
#: segment name -> (SharedMemory, read-only ndarray view, shape, dtype).
#: Per process; pool workers attach each broadcast once and reuse the map
#: across rank tasks.  Bounded so long-running processes do not accumulate
#: mappings of segments whose broadcast has long been closed.
_ATTACHED: Dict[str, Tuple[object, np.ndarray, Tuple[int, ...], str]] = {}
_ATTACH_CAP = 8


def _evict_one() -> None:
    for key in list(_ATTACHED):
        seg, arr, shape, dtype = _ATTACHED.pop(key)
        del arr  # drop our reference so close() can unmap
        try:
            seg.close()
            return
        except BufferError:
            # A view is still held by a running task; rebuild the cached
            # view on the same mapping and try the next entry.
            view = np.ndarray(shape, dtype=np.dtype(dtype), buffer=seg.buf)
            view.flags.writeable = False
            _ATTACHED[key] = (seg, view, shape, dtype)


#: Pid of the process that imported this module.  A *forked* worker
#: inherits the parent's value (≠ its own pid); a spawn/forkserver worker
#: re-imports the module and stamps its own pid.  This distinguishes the
#: two reliably even when the pool's start method differs from the
#: platform default (the Linux pool forces fork regardless of it).
_OWNER_PID = os.getpid()


def _untrack_worker_attachment(seg) -> None:
    """Undo the resource-tracker registration of a worker-side attach.

    Workers started fresh (spawn/forkserver) have their own resource
    tracker, and ``SharedMemory(name=...)`` registers the segment with it;
    that tracker would then *unlink* the segment (with a leak warning) when
    the worker exits, even though the parent owns the segment's lifetime.
    Forked workers share the parent's tracker, where the duplicate
    registration is a harmless set-add — and must NOT be unregistered,
    because that would strip the parent's own crash-cleanup registration.
    """
    try:
        if multiprocessing.parent_process() is None:
            return  # not a worker: we own our registrations
        if _OWNER_PID != os.getpid():
            return  # forked: the tracker is shared with the parent
        from multiprocessing import resource_tracker

        resource_tracker.unregister(seg._name, "shared_memory")
    except Exception:  # pragma: no cover - tracker internals vary
        pass


def attach(handle: SharedArrayHandle) -> np.ndarray:
    """Resolve a handle to its array (shared-memory view or inline data)."""
    if handle.segment is None:
        assert handle.inline is not None
        return handle.inline
    cached = _ATTACHED.get(handle.segment)
    if cached is not None:
        return cached[1]
    assert _shm is not None
    seg = _shm.SharedMemory(name=handle.segment)
    _untrack_worker_attachment(seg)
    arr = np.ndarray(handle.shape, dtype=np.dtype(handle.dtype), buffer=seg.buf)
    arr.flags.writeable = False
    if len(_ATTACHED) >= _ATTACH_CAP:
        _evict_one()
    _ATTACHED[handle.segment] = (seg, arr, handle.shape, handle.dtype)
    return arr


def detach_all() -> None:
    """Drop every cached attachment (test/teardown helper)."""
    while _ATTACHED:
        before = len(_ATTACHED)
        _evict_one()
        if len(_ATTACHED) >= before:  # pragma: no cover - all views in use
            break
