"""SpTTN-Cyclops (this library) wrapped in the baseline interface.

The benchmark harness sweeps all systems through the same
:class:`~repro.frameworks.base.FrameworkBaseline` interface; this adapter
runs the scheduler once per kernel (caching the schedule, since the search
is data-independent) and executes the selected loop nest.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from repro.core.cost_model import TreeSeparableCost
from repro.core.expr import SpTTNKernel
from repro.core.scheduler import Schedule, SpTTNScheduler
from repro.engine.executor import LoopNestExecutor
from repro.frameworks.base import FrameworkBaseline, Output, TensorLike


class SpTTNCyclopsBaseline(FrameworkBaseline):
    """The paper's system: cost-optimal fully-fused loop nest execution."""

    name = "spttn-cyclops"

    def __init__(
        self,
        counter=None,
        buffer_dim_bound: Optional[int] = 2,
        cost: Optional[TreeSeparableCost] = None,
        offload: bool = True,
        engine: Optional[str] = None,
    ) -> None:
        super().__init__(counter)
        self.buffer_dim_bound = buffer_dim_bound
        self.cost = cost
        self.offload = bool(offload)
        self.engine = engine
        self._schedules: Dict[int, Schedule] = {}

    def schedule_for(self, kernel: SpTTNKernel) -> Schedule:
        """Schedule the kernel (cached per kernel object)."""
        key = id(kernel)
        if key not in self._schedules:
            scheduler = SpTTNScheduler(
                kernel, cost=self.cost, buffer_dim_bound=self.buffer_dim_bound
            )
            self._schedules[key] = scheduler.schedule()
        return self._schedules[key]

    def _execute(
        self, kernel: SpTTNKernel, tensors: Mapping[str, TensorLike]
    ) -> Output:
        schedule = self.schedule_for(kernel)
        executor = LoopNestExecutor(
            kernel,
            schedule.loop_nest,
            offload=self.offload,
            counter=self.counter,
            engine=self.engine,
        )
        return executor.execute(tensors)

    def metadata(self) -> Dict[str, object]:
        meta: Dict[str, object] = {"strategy": "spttn-cyclops"}
        if self._schedules:
            schedule = next(iter(self._schedules.values()))
            meta["max_buffer_dimension"] = schedule.max_buffer_dimension()
            meta["path_rank"] = schedule.path_rank
        return meta
