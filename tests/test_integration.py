"""End-to-end integration tests spanning multiple subsystems."""

import numpy as np

import repro
from repro.apps import cp_als, cp_completion
from repro.core.scheduler import SpTTNScheduler
from repro.distributed import DistributedSpTTN
from repro.engine.reference import assert_same_result, reference_output
from repro.frameworks import SpTTNCyclopsBaseline, TacoLikeBaseline
from repro.kernels import mttkrp_kernel
from repro.sptensor import load_preset, random_dense_matrix, read_tns, write_tns


class TestPublicAPI:
    def test_contract_alias(self, random_coo3):
        B = random_dense_matrix(random_coo3.shape[1], 4, seed=0)
        C = random_dense_matrix(random_coo3.shape[2], 4, seed=1)
        out, schedule = repro.contract("ijk,ja,ka->ia", [random_coo3, B, C])
        ref = np.einsum("ijk,ja,ka->ia", random_coo3.to_dense(), B.data, C.data)
        np.testing.assert_allclose(out, ref, atol=1e-10)
        assert schedule.max_buffer_dimension() <= 2

    def test_version_exported(self):
        assert repro.__version__

    def test_top_level_symbols(self):
        for name in ("SpTTNScheduler", "LoopNestExecutor", "CSFTensor", "contract"):
            assert hasattr(repro, name)


class TestDatasetToScheduleFlow:
    def test_preset_tensor_through_scheduler_and_executor(self):
        T = load_preset("nips", scale=4e-3, max_nnz=400, seed=0)
        factors = [random_dense_matrix(d, 4, seed=n) for n, d in enumerate(T.shape)]
        kernel, tensors = mttkrp_kernel(T, factors, mode=0)
        expected = reference_output(kernel, tensors)
        schedule = SpTTNScheduler(kernel).schedule()
        from repro.engine.executor import LoopNestExecutor

        out = LoopNestExecutor(kernel, schedule.loop_nest).execute(tensors)
        assert_same_result(out, expected, rtol=1e-8, atol=1e-10)

    def test_tns_roundtrip_through_kernel(self, tmp_path, random_coo3):
        path = tmp_path / "tensor.tns"
        write_tns(random_coo3, path)
        T = read_tns(path, shape=random_coo3.shape)
        B = random_dense_matrix(T.shape[1], 3, seed=0)
        C = random_dense_matrix(T.shape[2], 3, seed=1)
        out, _ = repro.contract("ijk,jr,ks->irs", [T, B, C])
        ref = np.einsum("ijk,jr,ks->irs", random_coo3.to_dense(), B.data, C.data)
        np.testing.assert_allclose(out, ref, atol=1e-10)


class TestFrameworkComparisonFlow:
    def test_single_kernel_swept_across_frameworks(self, ttmc_setup):
        kernel, tensors = ttmc_setup
        expected = reference_output(kernel, tensors)
        results = {}
        for baseline in (SpTTNCyclopsBaseline(), TacoLikeBaseline()):
            res = baseline.run(kernel, tensors)
            assert_same_result(res.output, expected)
            results[baseline.name] = res
        # the framework comparison data needed for Figure 7 style tables
        assert results["spttn-cyclops"].counter.flops <= results[
            "taco-unfactorized"
        ].counter.flops


class TestDistributedDecompositionFlow:
    def test_distributed_kernel_inside_decomposition_step(self, random_coo3):
        """One CP-ALS style step where the MTTKRP runs on the distributed runtime."""
        rank = 3
        factors = [
            random_dense_matrix(d, rank, seed=n).data for n, d in enumerate(random_coo3.shape)
        ]
        kernel, tensors = mttkrp_kernel(random_coo3, factors, mode=0)
        dist = DistributedSpTTN(kernel, tensors)
        parallel = dist.execute(4)
        serial = dist.execute(1)
        np.testing.assert_allclose(parallel, serial, atol=1e-10)

    def test_apps_run_on_preset_data(self):
        T = load_preset("vast-3d", scale=3e-3, max_nnz=300, seed=2)
        cp = cp_als(T, rank=2, iterations=2, seed=0)
        assert cp.iterations == 2
        comp = cp_completion(T, rank=2, iterations=3, seed=0)
        assert len(comp.rmse_history) == 3
