"""Contraction paths for SpTTN kernels (Definition 3.1) and their enumeration.

A contraction path for ``N + 1`` input tensors is a binary contraction tree
whose leaves are the inputs; its depth-first postordering yields an ordered
sequence of ``N`` *contraction terms*, each a 3-tuple of index sets
``(lhs, rhs, out)``.  This module provides:

* :class:`ContractionTerm` / :class:`ContractionPath` — the data structures;
* :func:`enumerate_contraction_paths` — recursive enumeration of all valid
  binary contraction trees (Section 4.1.1), with de-duplication of
  structurally identical paths;
* :func:`path_flop_estimate` — the leading-order operation count of a path
  given the kernel's index dimensions and sparse nnz statistics, used to
  restrict the search to asymptotically optimal paths (Section 5);
* :func:`rank_contraction_paths` — paths sorted by that estimate.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple

from repro.core.expr import SpTTNKernel
from repro.util.validation import require

INTERMEDIATE_PREFIX = "_I"


@dataclass(frozen=True)
class ContractionTerm:
    """One pairwise contraction of a contraction path.

    Attributes
    ----------
    lhs, rhs:
        Names of the two operands (input tensor names or intermediate names
        of the form ``"_I<k>"``).
    out:
        Name of the produced tensor (an intermediate, or the kernel output
        for the last term).
    lhs_indices, rhs_indices, out_indices:
        The 3-tuple of index sets ``L_i`` of Definition 3.1 (stored as
        ordered tuples; order of ``out_indices`` fixes the buffer layout).
    """

    lhs: str
    rhs: str
    out: str
    lhs_indices: Tuple[str, ...]
    rhs_indices: Tuple[str, ...]
    out_indices: Tuple[str, ...]

    @property
    def all_indices(self) -> Tuple[str, ...]:
        """Union of the three index sets, in first-appearance order."""
        seen: List[str] = []
        for idx in self.lhs_indices + self.rhs_indices + self.out_indices:
            if idx not in seen:
                seen.append(idx)
        return tuple(seen)

    @property
    def contracted_indices(self) -> Tuple[str, ...]:
        out = set(self.out_indices)
        return tuple(i for i in self.all_indices if i not in out)

    def involves(self, operand: str) -> bool:
        return operand in (self.lhs, self.rhs)

    def index_sets(self) -> Tuple[FrozenSet[str], FrozenSet[str], FrozenSet[str]]:
        return (
            frozenset(self.lhs_indices),
            frozenset(self.rhs_indices),
            frozenset(self.out_indices),
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.lhs}[{','.join(self.lhs_indices)}] * "
            f"{self.rhs}[{','.join(self.rhs_indices)}] -> "
            f"{self.out}[{','.join(self.out_indices)}]"
        )


@dataclass(frozen=True)
class ContractionPath:
    """An ordered sequence of contraction terms (depth-first postorder)."""

    terms: Tuple[ContractionTerm, ...]

    def __len__(self) -> int:
        return len(self.terms)

    def __iter__(self) -> Iterator[ContractionTerm]:
        return iter(self.terms)

    def __getitem__(self, item: int) -> ContractionTerm:
        return self.terms[item]

    @property
    def intermediates(self) -> Tuple[str, ...]:
        """Names of the intermediate tensors (every term output but the last)."""
        return tuple(t.out for t in self.terms[:-1])

    def producer_of(self, name: str) -> Optional[int]:
        """Index of the term producing *name*, or ``None`` for input tensors."""
        for pos, term in enumerate(self.terms):
            if term.out == name:
                return pos
        return None

    def consumer_of(self, name: str) -> Optional[int]:
        """Index of the term consuming *name* as an operand, or ``None``."""
        for pos, term in enumerate(self.terms):
            if term.lhs == name or term.rhs == name:
                return pos
        return None

    def consumers(self) -> Dict[int, int]:
        """Map producer term position -> consumer term position (for intermediates)."""
        out: Dict[int, int] = {}
        for pos, term in enumerate(self.terms[:-1]):
            cons = None
            for later, t2 in enumerate(self.terms[pos + 1 :], start=pos + 1):
                if t2.lhs == term.out or t2.rhs == term.out:
                    cons = later
                    break
            if cons is None:
                raise ValueError(
                    f"intermediate {term.out!r} produced by term {pos} is never consumed"
                )
            out[pos] = cons
        return out

    def signature(self) -> Tuple:
        """A structural signature ignoring operand names of intermediates.

        Two paths with the same signature perform the same sequence of index
        contractions and are treated as duplicates by the enumerator.
        """
        sig = []
        for term in self.terms:
            sig.append(
                (
                    frozenset(term.lhs_indices),
                    frozenset(term.rhs_indices),
                    frozenset(term.out_indices),
                    frozenset({term.lhs, term.rhs} & _leafish(self)),
                )
            )
        return tuple(sig)

    def max_loop_depth(self) -> int:
        """Maximum number of loops needed by any term (the path's loop depth)."""
        return max(len(t.all_indices) for t in self.terms)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return " ; ".join(str(t) for t in self.terms)


def _leafish(path: ContractionPath) -> Set[str]:
    produced = {t.out for t in path.terms}
    names: Set[str] = set()
    for t in path.terms:
        for n in (t.lhs, t.rhs):
            if n not in produced:
                names.add(n)
    return names


# --------------------------------------------------------------------------- #
# Enumeration (Section 4.1.1)
# --------------------------------------------------------------------------- #
def _intermediate_indices(
    combined: Sequence[str],
    remaining_index_sets: Sequence[FrozenSet[str]],
    output_indices: FrozenSet[str],
) -> Tuple[str, ...]:
    """Indices kept by an intermediate: those still needed downstream.

    An index survives the contraction when it appears in the final output or
    in any input tensor not yet contracted; everything else is summed away.
    """
    needed: Set[str] = set(output_indices)
    for s in remaining_index_sets:
        needed |= s
    return tuple(idx for idx in combined if idx in needed)


def enumerate_contraction_paths(
    kernel: SpTTNKernel,
    max_paths: Optional[int] = None,
    dedupe: bool = True,
) -> List[ContractionPath]:
    """Enumerate contraction paths for *kernel* by recursive pairing.

    The recursion picks every unordered pair from the current operand list,
    contracts it, and recurses on the reduced list (the scheme analysed in
    Section 4.1.1 with ``T(n) = C(n,2) T(n-1)`` paths before de-duplication).

    Parameters
    ----------
    kernel:
        The SpTTN kernel.
    max_paths:
        Optional cap on the number of returned paths (the enumeration stops
        early once reached).
    dedupe:
        Drop structurally identical paths (same multiset of index-set
        3-tuples in the same order); enabled by default.
    """
    output_indices = frozenset(kernel.output.indices)
    initial: List[Tuple[str, Tuple[str, ...]]] = [
        (op.name, op.indices) for op in kernel.operands
    ]

    results: List[ContractionPath] = []
    seen_signatures: Set[Tuple] = set()
    counter = itertools.count()

    def recurse(
        operands: List[Tuple[str, Tuple[str, ...]]],
        terms: List[ContractionTerm],
    ) -> None:
        if max_paths is not None and len(results) >= max_paths:
            return
        if len(operands) == 1:
            path = ContractionPath(tuple(terms))
            if dedupe:
                sig = path.signature()
                if sig in seen_signatures:
                    return
                seen_signatures.add(sig)
            results.append(path)
            return
        n = len(operands)
        for a in range(n):
            for b in range(a + 1, n):
                lhs_name, lhs_idx = operands[a]
                rhs_name, rhs_idx = operands[b]
                rest = [operands[k] for k in range(n) if k not in (a, b)]
                combined: List[str] = list(lhs_idx)
                for idx in rhs_idx:
                    if idx not in combined:
                        combined.append(idx)
                if len(rest) == 0:
                    out_indices = tuple(kernel.output.indices)
                    out_name = kernel.output.name
                else:
                    out_indices = _intermediate_indices(
                        combined,
                        [frozenset(ix) for _, ix in rest],
                        output_indices,
                    )
                    out_name = f"{INTERMEDIATE_PREFIX}{next(counter)}"
                term = ContractionTerm(
                    lhs=lhs_name,
                    rhs=rhs_name,
                    out=out_name,
                    lhs_indices=tuple(lhs_idx),
                    rhs_indices=tuple(rhs_idx),
                    out_indices=out_indices,
                )
                new_operands = rest + [(out_name, out_indices)]
                recurse(new_operands, terms + [term])
                if max_paths is not None and len(results) >= max_paths:
                    return

    recurse(initial, [])
    return results


def count_contraction_paths(n_tensors: int) -> int:
    """Number of contraction paths enumerated for *n_tensors* inputs.

    Follows the recurrence ``T(n) = C(n, 2) * T(n-1)``, ``T(2) = 1``
    (before structural de-duplication), i.e. ``prod_{k=3..n} C(k, 2)``.
    """
    require(n_tensors >= 2, "need at least two tensors")
    total = 1
    for k in range(3, n_tensors + 1):
        total *= k * (k - 1) // 2
    return total


# --------------------------------------------------------------------------- #
# Asymptotic cost estimates
# --------------------------------------------------------------------------- #
def term_flop_estimate(kernel: SpTTNKernel, term: ContractionTerm) -> float:
    """Leading-order multiply-add count of one contraction term.

    The iteration space of a term is the product of its dense index
    dimensions times the number of distinct sparse-index tuples among the
    nonzeros (``nnz`` projected onto the term's sparse indices), matching
    the operation-count formulas of Section 2.4 (e.g. ``2 nnz_{IJ}(T)·S·R``
    for the second TTMc term).
    """
    sparse = [i for i in term.all_indices if i in kernel.sparse_indices]
    dense = [i for i in term.all_indices if i not in kernel.sparse_indices]
    iterations = kernel.sparse_subset_nnz(sparse)
    for idx in dense:
        iterations *= float(kernel.index_dims[idx])
    return 2.0 * iterations


def path_flop_estimate(kernel: SpTTNKernel, path: ContractionPath) -> float:
    """Leading-order multiply-add count of a full contraction path."""
    return float(sum(term_flop_estimate(kernel, t) for t in path.terms))


def path_intermediate_size_estimate(
    kernel: SpTTNKernel, path: ContractionPath
) -> float:
    """Total dense size of all unfused intermediates (pairwise approach).

    This is the memory footprint the CTF-style pairwise baseline needs; the
    fused execution reduces it via Equation 5.
    """
    total = 0.0
    for term in path.terms[:-1]:
        size = 1.0
        for idx in term.out_indices:
            size *= float(kernel.index_dims[idx])
        total += size
    return total


def rank_contraction_paths(
    kernel: SpTTNKernel,
    paths: Optional[Sequence[ContractionPath]] = None,
    max_paths: Optional[int] = None,
) -> List[Tuple[ContractionPath, float]]:
    """Contraction paths sorted by estimated flop count (ascending).

    Ties are broken by total unfused intermediate size, then by maximum loop
    depth, so the first entry is the path the scheduler tries first.
    """
    if paths is None:
        paths = enumerate_contraction_paths(kernel, max_paths=max_paths)
    scored = []
    for p in paths:
        flops = path_flop_estimate(kernel, p)
        mem = path_intermediate_size_estimate(kernel, p)
        scored.append((p, flops, mem, p.max_loop_depth()))
    scored.sort(key=lambda item: (item[1], item[2], item[3]))
    return [(p, flops) for p, flops, _, _ in scored]


def single_term_path(kernel: SpTTNKernel) -> ContractionPath:
    """The degenerate 'path' used by the unfactorized baseline.

    All input tensors are multiplied together inside one loop nest.  It is
    represented as a left-deep chain whose intermediates keep every index
    needed downstream; the unfactorized executor ignores the intermediate
    structure and simply iterates the union of all indices.
    """
    ops = list(kernel.operands)
    # Put the sparse operand first so the chain keeps sparse iteration outer.
    ops.sort(key=lambda op: 0 if op.is_sparse else 1)
    names = [(op.name, op.indices) for op in ops]
    output_indices = frozenset(kernel.output.indices)
    terms: List[ContractionTerm] = []
    counter = itertools.count()
    current = names[0]
    for pos in range(1, len(names)):
        rhs = names[pos]
        rest = names[pos + 1 :]
        combined: List[str] = list(current[1])
        for idx in rhs[1]:
            if idx not in combined:
                combined.append(idx)
        if rest:
            out_indices = _intermediate_indices(
                combined, [frozenset(ix) for _, ix in rest], output_indices
            )
            out_name = f"{INTERMEDIATE_PREFIX}{next(counter)}"
        else:
            out_indices = tuple(kernel.output.indices)
            out_name = kernel.output.name
        terms.append(
            ContractionTerm(
                lhs=current[0],
                rhs=rhs[0],
                out=out_name,
                lhs_indices=tuple(current[1]),
                rhs_indices=tuple(rhs[1]),
                out_indices=out_indices,
            )
        )
        current = (out_name, out_indices)
    return ContractionPath(tuple(terms))
