"""Cross-tier conformance matrix: kernel × engine × dtype × CSF mode order.

Every named kernel family is executed through all three engine tiers
(``jit``, ``lowered`` and ``interpret``) for every combination of operand
dtype (float64/float32) and CSF mode order (identity, reversed, mixed),
and each cell asserts the full executor contract:

* results match the dense :mod:`repro.engine.reference` within tolerance
  (dense operands are coerced to float64 by all tiers, so the tolerance
  does not degrade for float32 inputs);
* the tiers agree with each other to vectorized-summation reassociation
  (~1 ulp);
* operation counters — flops, bytes moved, buffer resets and per-BLAS-call
  classification — are *bit-equal* between tiers;
* the jit and lowered tiers are asserted *taken* (no silent fallback) in
  every cell.

This is the deterministic counterpart of the randomized equivalence
property in ``test_property_based.py``: one cell per supported
configuration, so a regression names exactly the kernel/tier/dtype/order
it broke.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.expr import SpTTNKernel, parse_kernel
from repro.core.scheduler import SpTTNScheduler
from repro.engine.executor import ENGINES, LoopNestExecutor
from repro.engine.reference import assert_same_result, reference_output
from repro.kernels.mttkrp import mttkrp_spec
from repro.kernels.ttmc import all_mode_ttmc_spec, ttmc_spec
from repro.kernels.tttc import tttc_spec
from repro.kernels.tttp import tttp_spec
from repro.sptensor import COOTensor, random_sparse_tensor
from repro.util.counters import OpCounter

#: The order-3 sparse tensor every matrix cell contracts.
_SHAPE = (14, 12, 10)
_NNZ = 130

#: Kernel families: name -> (spec, dense operand shapes as index strings).
_KERNELS = {
    "mttkrp": mttkrp_spec(3, 0),          # ijk,jr,kr->ir
    "ttmc": ttmc_spec(3, 0),              # ijk,jr,ks->irs
    "tttp": tttp_spec(3),                 # ijk,ir,jr,kr->ijk
    "tttc": tttc_spec(3),                 # ijk,ir,rjs->sk (last core removed)
    "all_mode_ttmc": all_mode_ttmc_spec(3),  # ijk,ir,js,kt->rst
}

_DTYPES = ("float64", "float32")

#: CSF storage orders for the order-3 sparse operand: identity, fully
#: reversed, and one mixed permutation.
_MODE_ORDERS = ((0, 1, 2), (2, 1, 0), (1, 0, 2))

_RANK = 4


def _build_case(spec: str, dtype: str, mode_order):
    """Kernel (with the requested CSF mode order) plus concrete operands."""
    tensor = random_sparse_tensor(_SHAPE, nnz=_NNZ, seed=99)
    rng = np.random.default_rng(7)
    lhs = spec.split("->")[0].split(",")
    dims = dict(zip(lhs[0], tensor.shape))
    operands = [tensor]
    for sub in lhs[1:]:
        shape = []
        for idx in sub:
            if idx not in dims:
                dims[idx] = _RANK
            shape.append(dims[idx])
        operands.append(rng.random(tuple(shape)).astype(dtype))
    kernel = parse_kernel(spec, operands)
    csf_order = tuple(kernel.sparse_operand.indices[m] for m in mode_order)
    kernel = SpTTNKernel(
        kernel.operands,
        kernel.output,
        kernel.index_dims,
        csf_mode_order=csf_order,
        sparse_stats=kernel.sparse_stats,
    )
    mapping = {op.name: t for op, t in zip(kernel.operands, operands)}
    return kernel, mapping


@pytest.mark.parametrize("mode_order", _MODE_ORDERS, ids=lambda o: "".join(map(str, o)))
@pytest.mark.parametrize("dtype", _DTYPES)
@pytest.mark.parametrize("name", sorted(_KERNELS))
def test_conformance_matrix(name, dtype, mode_order):
    kernel, mapping = _build_case(_KERNELS[name], dtype, mode_order)
    expected = reference_output(kernel, mapping)
    schedule = SpTTNScheduler(kernel).schedule()

    outputs = {}
    counters = {}
    for engine in ENGINES:
        counter = OpCounter()
        executor = LoopNestExecutor(
            kernel, schedule.loop_nest, counter=counter, engine=engine
        )
        output = executor.execute(mapping)
        # the jit/lowered tiers must actually be taken in every matrix
        # cell (all named kernels vectorize — and their programs compile —
        # on their scheduler-chosen orders, under every CSF mode order);
        # otherwise the cross-tier assertions silently compare the
        # interpreter against itself
        if engine in ("jit", "lowered"):
            assert executor.last_engine == engine
        # every tier must match the dense reference...
        assert_same_result(output, expected, rtol=1e-7, atol=1e-9)
        outputs[engine] = (
            output.values if isinstance(output, COOTensor) else np.asarray(output)
        )
        counters[engine] = counter

    # ...the tiers must agree with each other to ~1 ulp...
    for engine in ("jit", "lowered"):
        np.testing.assert_allclose(
            outputs[engine], outputs["interpret"], rtol=1e-12, atol=1e-14
        )
        # ...and the operation counters must be bit-equal across tiers.
        assert counters[engine].as_dict() == counters["interpret"].as_dict()


def test_matrix_covers_every_tier():
    """The matrix is only meaningful if all three engine tiers are
    distinct entries of ENGINES (guards against tier renames silently
    shrinking the matrix)."""
    assert set(ENGINES) == {"interpret", "lowered", "jit"}
