"""E9 — search cost: Algorithm 1 vs exhaustive loop-order enumeration.

Section 4.2 shows the dynamic program explores ``O(N^3 2^m m)`` memoized
subproblems while the loop-order space itself has size ``prod_i |I_i|!/k_i!``
(and ``O((m!)^N)`` in general).  This benchmark measures the DP search time
for kernels of growing order and records the explored-subproblem count next
to the size of the space brute force would visit.

Expected shape: the DP's subproblem count grows orders of magnitude slower
than the enumeration space, and its wall-clock time stays in the
millisecond-to-second range even where enumeration would be astronomically
large (order-6 TTTc).
"""

from __future__ import annotations

import pytest

from repro.core.contraction_path import rank_contraction_paths
from repro.core.cost_model import ExecutionCost
from repro.core.enumeration import count_loop_orders
from repro.core.optimizer import OptimalLoopOrderSearch
from repro.kernels.mttkrp import mttkrp_kernel
from repro.kernels.ttmc import ttmc_kernel
from repro.kernels.tttc import tt_core_shapes, tttc_kernel
from repro.sptensor import DenseTensor, random_dense_matrix, random_sparse_tensor

from _workloads import bench_rng


def _kernel_for(name: str):
    if name == "mttkrp-order3":
        t = random_sparse_tensor((30, 30, 30), nnz=500, seed=0)
        return mttkrp_kernel(t, [random_dense_matrix(30, 8, seed=i) for i in range(3)], 0)[0]
    if name == "ttmc-order4":
        t = random_sparse_tensor((16, 16, 16, 16), nnz=500, seed=1)
        return ttmc_kernel(t, [random_dense_matrix(16, 4, seed=i) for i in range(4)], 0)[0]
    if name == "tttc-order5":
        t = random_sparse_tensor((10, 10, 10, 10, 10), nnz=400, seed=2)
        cores = [
            DenseTensor(bench_rng(i).random(s))
            for i, s in enumerate(tt_core_shapes(t.shape, 4))
        ]
        return tttc_kernel(t, cores)[0]
    if name == "tttc-order6":
        t = random_sparse_tensor((8, 8, 8, 8, 8, 8), nnz=400, seed=3)
        cores = [
            DenseTensor(bench_rng(i).random(s))
            for i, s in enumerate(tt_core_shapes(t.shape, 4))
        ]
        return tttc_kernel(t, cores)[0]
    raise KeyError(name)


@pytest.mark.parametrize(
    "kernel_name",
    [
        pytest.param("mttkrp-order3", marks=pytest.mark.smoke),
        "ttmc-order4",
        "tttc-order5",
        "tttc-order6",
    ],
)
def test_search_cost_vs_enumeration_space(benchmark, kernel_name):
    kernel = _kernel_for(kernel_name)
    path = rank_contraction_paths(kernel, max_paths=200)[0][0]
    searcher = OptimalLoopOrderSearch(kernel, ExecutionCost(kernel))

    result = benchmark.pedantic(
        lambda: searcher.search(path), rounds=3, iterations=1, warmup_rounds=1
    )

    space = count_loop_orders(kernel, path)
    unrestricted = count_loop_orders(kernel, path, enforce_csf_order=False)
    benchmark.extra_info.update(
        kernel=kernel_name,
        dp_subproblems=result.stats.subproblems,
        dp_candidates=result.stats.candidates_evaluated,
        loop_order_space=float(space),
        loop_order_space_unrestricted=float(unrestricted),
        reduction_factor=float(space) / max(1, result.stats.candidates_evaluated),
    )
    # Algorithm 1 must explore far fewer states than brute force would.  For
    # tiny kernels (order-3 MTTKRP has only 16 CSF-consistent orders) the DP
    # bookkeeping exceeds the restricted space, so the asymptotic claim is
    # only asserted once the space is non-trivial.
    if space > 10_000:
        assert result.stats.candidates_evaluated * 10 < space
    assert result.stats.candidates_evaluated * 10 < max(unrestricted, 1_000)
