"""Tests for the vectorized lowering subsystem (repro.engine.lowering).

The contract under test: for every kernel whose scheduled loop nest lowers,
the lowered engine produces the same output as the interpreter (to the
floating-point reassociation of vectorized summation, ~1 ulp) with *exactly*
equal operation counters, and every construct that does not lower falls back
to interpretation transparently.  Every shipped kernel family (MTTKRP, TTMc,
TTTc, TTTP, all-mode TTMc) must take the lowered path for its
scheduler-chosen loop order.
"""

import numpy as np
import pytest

from repro.core.contraction_path import rank_contraction_paths
from repro.core.enumeration import enumerate_loop_orders
from repro.core.loop_nest import LoopNest
from repro.core.scheduler import SpTTNScheduler
from repro.engine.executor import LoopNestExecutor
from repro.engine.lowering import Program, lower_plan
from repro.engine.plan_cache import default_plan_cache
from repro.kernels.tttc import tt_core_shapes, tttc_kernel
from repro.sptensor import COOTensor, DenseTensor, random_sparse_tensor
from repro.util.counters import OpCounter

KERNELS = ["mttkrp_setup", "ttmc_setup", "ttmc4_setup", "tttp_setup", "allmode_setup"]


def _values(output):
    return output.values if isinstance(output, COOTensor) else np.asarray(output)


def run_both(kernel, tensors, nest, offload=True):
    """Execute one nest under both engines; return (lowered, interpreted)."""
    results = {}
    for engine in ("lowered", "interpret"):
        counter = OpCounter()
        executor = LoopNestExecutor(
            kernel, nest, offload=offload, counter=counter,
            plan_cache=False, engine=engine,
        )
        output = executor.execute(tensors)
        results[engine] = (output, counter, executor.last_engine)
    return results["lowered"], results["interpret"]


def assert_equivalent(lowered, interpreted):
    (out_low, ctr_low, _), (out_int, ctr_int, _) = lowered, interpreted
    np.testing.assert_allclose(
        _values(out_low), _values(out_int), rtol=1e-12, atol=1e-14
    )
    assert ctr_low.as_dict() == ctr_int.as_dict()


@pytest.mark.parametrize("fixture_name", KERNELS)
class TestScheduledKernelsLower:
    def test_scheduler_pick_takes_lowered_path(self, fixture_name, request):
        kernel, tensors = request.getfixturevalue(fixture_name)
        nest = SpTTNScheduler(kernel).schedule().loop_nest
        lowered, interpreted = run_both(kernel, tensors, nest)
        assert lowered[2] == "lowered"
        assert interpreted[2] == "interpret"
        assert_equivalent(lowered, interpreted)

    def test_unoffloaded_execution_agrees(self, fixture_name, request):
        kernel, tensors = request.getfixturevalue(fixture_name)
        nest = SpTTNScheduler(kernel).schedule().loop_nest
        lowered, interpreted = run_both(kernel, tensors, nest, offload=False)
        assert_equivalent(lowered, interpreted)


class TestTTTcLowers:
    def test_order6_tensor_train_contraction(self):
        tensor = random_sparse_tensor(tuple(8 for _ in range(6)), nnz=300, seed=3)
        rng = np.random.default_rng(5)
        cores = [
            DenseTensor(rng.random(shape), name=f"G{i}")
            for i, shape in enumerate(tt_core_shapes(tensor.shape, 4))
        ]
        kernel, tensors = tttc_kernel(tensor, cores, removed_core=5)
        nest = SpTTNScheduler(kernel).schedule().loop_nest
        lowered, interpreted = run_both(kernel, tensors, nest)
        assert lowered[2] == "lowered"
        assert_equivalent(lowered, interpreted)


@pytest.mark.parametrize("fixture_name", ["mttkrp_setup", "ttmc_setup", "tttp_setup"])
def test_all_best_path_loop_orders_agree(fixture_name, request):
    """Every enumerated loop order of the best path: lowered == interpreted
    (whether the order lowers or falls back)."""
    kernel, tensors = request.getfixturevalue(fixture_name)
    path = rank_contraction_paths(kernel)[0][0]
    lowered_count = 0
    for order in enumerate_loop_orders(kernel, path):
        nest = LoopNest(path, order)
        lowered, interpreted = run_both(kernel, tensors, nest)
        assert_equivalent(lowered, interpreted)
        lowered_count += lowered[2] == "lowered"
    assert lowered_count > 0


class TestEngineSwitch:
    def test_invalid_engine_rejected(self, mttkrp_setup):
        kernel, _ = mttkrp_setup
        nest = SpTTNScheduler(kernel).schedule().loop_nest
        with pytest.raises(ValueError, match="engine"):
            LoopNestExecutor(kernel, nest, engine="vectorized")

    def test_interpret_engine_never_lowers(self, mttkrp_setup):
        kernel, tensors = mttkrp_setup
        nest = SpTTNScheduler(kernel).schedule().loop_nest
        executor = LoopNestExecutor(kernel, nest, engine="interpret")
        executor.execute(tensors)
        assert executor.last_engine == "interpret"

    def test_env_variable_selects_engine(self, mttkrp_setup, monkeypatch):
        kernel, tensors = mttkrp_setup
        nest = SpTTNScheduler(kernel).schedule().loop_nest
        monkeypatch.setenv("REPRO_ENGINE", "interpret")
        executor = LoopNestExecutor(kernel, nest)
        assert executor.engine == "interpret"
        monkeypatch.setenv("REPRO_ENGINE", "lowered")
        executor = LoopNestExecutor(kernel, nest)
        executor.execute(tensors)
        assert executor.last_engine == "lowered"

    def test_empty_tensor_interprets(self, mttkrp_setup):
        kernel, tensors = mttkrp_setup
        nest = SpTTNScheduler(kernel).schedule().loop_nest
        empty = dict(tensors)
        empty["T"] = COOTensor.empty(tensors["T"].shape)
        executor = LoopNestExecutor(kernel, nest, engine="lowered")
        output = executor.execute(empty)
        assert executor.last_engine == "interpret"
        assert np.all(np.asarray(output) == 0.0)


class TestPlanIntegration:
    def test_lowered_program_cached_on_plan(self, mttkrp_setup):
        kernel, tensors = mttkrp_setup
        nest = SpTTNScheduler(kernel).schedule().loop_nest
        executor = LoopNestExecutor(kernel, nest, engine="lowered")
        executor.execute(tensors)
        plan = executor._plan
        assert isinstance(plan.lowered, Program)
        program = plan.lowered
        # a second executor sharing the process-wide cache reuses the program
        other = LoopNestExecutor(kernel, nest, engine="lowered")
        other.execute(tensors)
        assert other._plan is plan
        assert other._plan.lowered is program
        assert plan.key in default_plan_cache()

    def test_interpreter_shares_the_same_plan(self, mttkrp_setup):
        kernel, tensors = mttkrp_setup
        nest = SpTTNScheduler(kernel).schedule().loop_nest
        fast = LoopNestExecutor(kernel, nest, engine="lowered")
        slow = LoopNestExecutor(kernel, nest, engine="interpret")
        out_fast = fast.execute(tensors)
        out_slow = slow.execute(tensors)
        assert fast._plan is slow._plan
        np.testing.assert_allclose(out_fast, out_slow, rtol=1e-12, atol=1e-14)

    def test_lower_plan_is_structural(self, ttmc_setup):
        kernel, tensors = ttmc_setup
        nest = SpTTNScheduler(kernel).schedule().loop_nest
        executor = LoopNestExecutor(kernel, nest, engine="interpret")
        executor._prepare(tensors)
        program = lower_plan(executor)
        assert isinstance(program, Program)
        assert program.n_ops > 0
        assert "lowered program" in program.describe()


class TestCacheCLI:
    def test_cache_subcommand_prints_stats(self, capsys):
        from repro.__main__ import main

        assert main(["cache"]) == 0
        captured = capsys.readouterr().out
        assert "plan" in captured and "schedule" in captured

    def test_cache_clear_drops_entries(self, mttkrp_setup, capsys):
        from repro.__main__ import main

        kernel, tensors = mttkrp_setup
        nest = SpTTNScheduler(kernel).schedule().loop_nest
        LoopNestExecutor(kernel, nest).execute(tensors)
        assert len(default_plan_cache()) > 0
        assert main(["cache", "--clear", "--reset-stats"]) == 0
        assert len(default_plan_cache()) == 0
        captured = capsys.readouterr().out
        assert "cleared" in captured
