"""E8 — Figure 10: runtime distribution over randomly sampled loop orders.

The paper takes the order-3 all-mode TTMc (N = 1024, R = 32, 0.1% sparsity),
fixes the contraction path chosen by SpTTN-Cyclops, randomly samples 25% of
the CSF-consistent loop orders, executes each, and shows that the loop order
picked by the cost model sits at (or very near) the fast end of the measured
distribution.

Expected shape: the cost-model-picked loop order's measured time is within a
small factor of the fastest sampled order and far below the slowest; its
rank within the sampled distribution is reported in ``extra_info``.
"""

from __future__ import annotations

import pytest

from repro.core.autotune import Autotuner
from repro.core.loop_nest import LoopNest
from repro.core.scheduler import SpTTNScheduler
from repro.engine.executor import LoopNestExecutor
from repro.kernels.ttmc import all_mode_ttmc_kernel
from repro.sptensor import random_dense_matrix, random_sparse_tensor

from _workloads import record_rows

RANK = 32


def _interpret_runner(kernel, tensors):
    """Measure the interpreter tier: Figure 10 relates measured runtime to
    the cost model's *scalar operation* counts, and the interpreter's
    runtime is proportional to those counts — the lowered engine's depends
    on vectorization constants the model deliberately does not capture."""

    def runner(nest: LoopNest):
        return LoopNestExecutor(kernel, nest, engine="interpret").execute(tensors)

    return runner



def _setup():
    tensor = random_sparse_tensor((48, 48, 48), nnz=3000, seed=7)
    factors = [
        random_dense_matrix(d, RANK, seed=20 + i) for i, d in enumerate(tensor.shape)
    ]
    return all_mode_ttmc_kernel(tensor, factors)


def test_fig10_random_loop_orders(benchmark):
    kernel, tensors = _setup()
    scheduler = SpTTNScheduler(kernel, buffer_dim_bound=2)
    schedule = scheduler.schedule()

    runner = _interpret_runner(kernel, tensors)

    tuner = Autotuner(kernel, runner, repeats=1)

    def sweep():
        # 25% of the loop orders of the chosen contraction path, capped so the
        # benchmark stays interactive on the Python substrate.
        result = tuner.tune_path(
            schedule.path, fraction=0.25, seed=0, max_candidates=24
        )
        picked = tuner.measure(schedule.loop_nest)
        return result, picked

    result, picked = benchmark.pedantic(sweep, rounds=1, iterations=1)

    times = result.times()
    rows = [
        {
            "order": str(entry.loop_nest.order.orders),
            "seconds": entry.seconds,
            "max_buffer_dim": entry.max_buffer_dimension,
        }
        for entry in result.entries
    ]
    record_rows(benchmark, rows)
    benchmark.extra_info["picked_seconds"] = picked.seconds
    benchmark.extra_info["fastest_sampled"] = times[0]
    benchmark.extra_info["slowest_sampled"] = times[-1]

    # Figure 10 shape: the cost-model choice lands in the fast tail of the
    # distribution — within a small factor of the fastest sampled order and
    # below the sampled median (and hence far below the slow tail).
    median = times[len(times) // 2]
    assert picked.seconds <= 4.0 * times[0]
    assert picked.seconds <= median
    assert picked.seconds < times[-1]


@pytest.mark.smoke
def test_fig10_smoke(benchmark):
    """Tiny CI case: a few measured loop orders still rank the cost-model
    pick ahead of the slowest sampled order."""
    tensor = random_sparse_tensor((16, 16, 16), nnz=400, seed=7)
    factors = [
        random_dense_matrix(d, 8, seed=30 + i) for i, d in enumerate(tensor.shape)
    ]
    kernel, tensors = all_mode_ttmc_kernel(tensor, factors)
    schedule = SpTTNScheduler(kernel, buffer_dim_bound=2).schedule()

    runner = _interpret_runner(kernel, tensors)

    tuner = Autotuner(kernel, runner, repeats=1)

    def sweep():
        result = tuner.tune_path(schedule.path, fraction=0.25, seed=0, max_candidates=6)
        picked = tuner.measure(schedule.loop_nest)
        return result, picked

    result, picked = benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert picked.seconds < result.times()[-1] * 4.0
