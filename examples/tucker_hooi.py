"""Tucker decomposition (HOOI) of a sparse tensor, TTMc-bound.

The TTMc kernel is where loop-nest choice matters most: the unfactorized
schedule pays an extra factor of the Tucker rank per nonzero.  This example
runs a few HOOI sweeps, prints the loop nest the scheduler picked for the
mode-0 TTMc, and contrasts the bound-1 and bound-2 buffer-dimension variants
the Figure 9 experiment compares.

Run with:  python examples/tucker_hooi.py
"""

import time

import numpy as np

import repro
from repro.apps import tucker_hooi
from repro.core.scheduler import SpTTNScheduler
from repro.engine.executor import LoopNestExecutor
from repro.kernels.ttmc import all_mode_ttmc_kernel, ttmc_kernel


def main() -> None:
    T = repro.load_preset("vast-3d", scale=3e-3, max_nnz=10_000, seed=1)
    ranks = (6, 6, 2) if T.shape[2] < 6 else (6, 6, 6)
    print(f"tensor: shape={T.shape}, nnz={T.nnz}, tucker ranks={ranks}")

    # --- HOOI -------------------------------------------------------------
    result = tucker_hooi(T, ranks=ranks, iterations=3, seed=0)
    print("\nHOOI fit per sweep:")
    for sweep, fit in enumerate(result.fits, start=1):
        print(f"  sweep {sweep}: fit = {fit:.4f}")
    print(f"core tensor shape: {result.core.shape}")

    # --- the TTMc kernel behind each sweep ---------------------------------
    factors = [np.ones((dim, r)) for dim, r in zip(T.shape, ranks)]
    kernel, _ = ttmc_kernel(T, factors, mode=0)
    schedule = SpTTNScheduler(kernel).schedule()
    print("\nmode-0 TTMc loop nest:")
    print(schedule.loop_nest.describe(kernel))

    # --- Figure 9 in miniature: buffer-dimension bound 1 vs 2 --------------
    am_kernel, am_tensors = all_mode_ttmc_kernel(
        T, [repro.random_dense_matrix(d, 16, seed=i) for i, d in enumerate(T.shape)]
    )
    print("\nall-mode TTMc under different intermediate-dimension bounds:")
    for bound in (1, 2):
        sched = SpTTNScheduler(am_kernel, buffer_dim_bound=bound).schedule()
        executor = LoopNestExecutor(am_kernel, sched.loop_nest)
        start = time.perf_counter()
        executor.execute(am_tensors)
        elapsed = time.perf_counter() - start
        print(
            f"  bound={bound}: max buffer dim={sched.max_buffer_dimension()}, "
            f"time={elapsed * 1e3:.1f} ms"
        )


if __name__ == "__main__":
    main()
