"""JIT tier: compile a lowered program into one fused NumPy callable.

The lowered VM (:mod:`repro.engine.lowering.vm`) already replaced per-fiber
Python recursion with flat array ops, but it still pays per-op dispatch,
re-derives lane id maps / reduction offsets on every call, and allocates
every intermediate afresh.  This module removes all three costs by *code
generation*: :func:`compile_program` emits Python/NumPy source specialized
to one :class:`~repro.engine.lowering.ir.Program` — straight-line calls
with every einsum spec, gather axis and segment boundary decision burned
in — and ``exec``\\ s it into a single fused callable.

Three mechanisms carry the speedup:

* **Buffer pooling with register allocation.**  A liveness pass over the
  program assigns every intermediate to a pool slot; registers with
  identical structural shape signatures and disjoint live ranges share a
  slot.  Slots persist on the compiled object across executions, so warm
  calls write into existing buffers (NumPy ``out=``) and allocate nothing.
* **Peephole fusion.**  Two patterns that dominate the fig7/TTMc
  workloads are rewritten: a per-lane outer-product ``Contract`` feeding a
  ``SegmentReduce`` becomes a per-segment GEMM loop (one BLAS ``np.dot``
  per output fiber instead of materializing the full lane-expanded outer
  product), and a ``ScatterLanes`` + ``SegmentReduce`` + ``Contract``
  chain that immediately contracts the scattered axis with a lane-free
  operand becomes gather-multiply-reduce (the scatter buffer is never
  built).  Both rewrites change only the association order of the same
  scalar sums.  Additionally, when scipy is importable, an elementwise
  values × gathered-dense contract feeding a ``SegmentReduce`` or a
  ``ScatterLanes`` collapses into a single CSR SpMM (``csf.values`` as the
  matrix data, gather ids as columns, segment bounds / flattened scatter
  positions as indptr) — the dominant MTTKRP kernel shape.
* **Bind-time preparation.**  Everything that depends only on the CSF
  tensor — lane ancestor id maps, composed reduction boundaries, scatter
  index vectors, and the program's aggregate symbolic op counts — is
  evaluated once per (callable, tensor) binding and cached under a weak
  reference to the tensor, so warm calls do no index arithmetic and apply
  counter accounting in O(1).  The aggregate counts are plain integer sums
  of the same :class:`~repro.engine.lowering.ir.Charge` terms the VM adds
  incrementally, so counters stay bit-equal.

Segment reductions optionally route through a Numba-compiled lane sweep
(:mod:`repro.engine.lowering.numba_kernels`) when Numba is importable;
otherwise they stay on ``np.add.reduceat``.  Any program the generator
cannot compile — and any unexpected failure while compiling — returns
``None``, and the executor transparently stays on the lowered VM tier.
"""

from __future__ import annotations

import weakref
from collections import defaultdict
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.engine.lowering import ir
from repro.engine.lowering import numba_kernels as _nb
from repro.engine.lowering import pool as _bufpool
from repro.engine.lowering.pool import pool_nbytes
from repro.engine.plan_cache import SLOT_DENSE

try:  # optional: CSR segment selectors beat np.add.reduceat by 2-10x
    from scipy import sparse as _scipy_sparse
except ImportError:  # pragma: no cover - scipy is an optional accelerator
    _scipy_sparse = None

_STATS = {
    "compiles": 0,
    "failures": 0,
    "runs": 0,
    "bind_hits": 0,
    "bind_misses": 0,
    "bind_evictions": 0,
}

#: Live compiled callables (for the stats snapshot's entry/byte counts).
_LIVE: "weakref.WeakSet[CompiledJit]" = weakref.WeakSet()

#: Multiply-adds per segment above which the per-segment GEMM loop wins
#: over one big einsum + segment reduction (each ``np.dot`` call costs a
#: few µs of Python/BLAS dispatch, ~10k flops at memory-bound rates).
_GEMM_MIN_FLOPS_PER_SEG = 4096


class _NotCompilable(Exception):
    """Raised during codegen for programs the generator declines."""


# --------------------------------------------------------------------------- #
# Runtime helpers (injected into the generated function's namespace)
# --------------------------------------------------------------------------- #
def _reduce_prep(bounds):
    """Bind-time prep for one segment reduction: ``(bounds, selector)``.

    The selector is a scipy CSR matrix with one unit row per segment, so
    the reduction runs as one sparse-dense matmul (``reduceat``'s inner
    loop is scalar; the CSR kernel is 2-10x faster at these shapes).  The
    ones are exact multipliers, so the product differs from ``reduceat``
    only by accumulation order — the same ~1 ulp reassociation the jit
    tier's other fused kernels (per-segment GEMM) already carry.
    """
    selector = None
    if _scipy_sparse is not None:
        n = int(bounds[-1])
        try:
            selector = _scipy_sparse.csr_matrix(
                (np.ones(n), np.arange(n), np.asarray(bounds)),
                shape=(len(bounds) - 1, n),
            )
        except Exception:  # pragma: no cover - malformed bounds: fall back
            selector = None
    return bounds, selector


def _reduce(B, key, value, red):
    """Segment-reduce lanes along axis 0.

    Strategy order: Numba sweep (bit-equal to reduceat), CSR selector
    matmul (~1 ulp reassociation), pooled ``np.add.reduceat``.
    """
    bounds, selector = red
    out = _nb.segment_reduce(value, bounds)
    if out is not None:
        return out
    if (
        selector is not None
        and value.dtype == np.float64
        and value.flags.c_contiguous
    ):
        flat = selector @ value.reshape(value.shape[0], -1)
        return flat.reshape((selector.shape[0],) + value.shape[1:])
    return _bufpool.reduceat_into(B, key, value, bounds[:-1])


def _scatter_lanes0(B, key, src, fids, dim):
    buf = _bufpool.scatter_lanes_into(B, key, src, (dim,) + src.shape[1:])
    buf[fids] = src
    return buf


def _scatter_lanes(B, key, src, parents, fids, n_parents, dim):
    buf = _bufpool.scatter_lanes_into(
        B, key, src, (n_parents, dim) + src.shape[1:]
    )
    buf[parents, fids] = src
    return buf


def _gather_along(src, ids, axis):
    shape = [1] * src.ndim
    shape[0] = ids.shape[0]
    picked = np.take_along_axis(src, ids.reshape(shape), axis=axis)
    return np.squeeze(picked, axis=axis)


def _broadcast_index(gather_ids, axes, shape):
    """The VM's broadcast gather/scatter index, from prebound id arrays."""
    n = gather_ids[0].shape[0]
    rank = 1 + (len(axes) - len(gather_ids))
    idx = []
    kept = 0
    pos = 0
    for axis, (kind, _arg) in enumerate(axes):
        template = [1] * rank
        if kind == ir.GATHER:
            template[0] = n
            idx.append(gather_ids[pos].reshape(template))
            pos += 1
        else:
            dim = shape[axis]
            template[1 + kept] = dim
            idx.append(np.arange(dim).reshape(template))
            kept += 1
    return tuple(idx)


def _multigather(arr, gather_ids, axes):
    return arr[_broadcast_index(gather_ids, axes, arr.shape)]


def _scatter_add_general(out, src, gather_ids, axes):
    np.add.at(out, _broadcast_index(gather_ids, axes, out.shape), src)


def _csr_rows(values, cols, indptr, n_rows=None):
    """A CSR matrix with ``values`` as its data, or ``None``.

    ``None`` (scipy absent, non-float64 values, or inconsistent index
    arrays) routes the caller to its gather/einsum fallback path.  The
    caller must pin ``values`` alongside the matrix: scipy may copy the
    data array, so run-time identity checks go against the pinned
    reference, not ``matrix.data``.
    """
    if _scipy_sparse is None or values.dtype != np.float64:
        return None
    indptr = np.asarray(indptr)
    if n_rows is None:
        n_rows = len(indptr) - 1
    width = int(cols.max()) + 1 if cols.size else 0
    try:
        return _scipy_sparse.csr_matrix(
            (values, cols, indptr), shape=(n_rows, width)
        )
    except Exception:  # pragma: no cover - malformed index arrays
        return None


def _spmm_seg_prep(ctx, bind_level, level, from_level, to_level):
    """Bind-time prep for a fused gather×values segment reduction.

    The CSR matrix has one row per ``to_level`` segment whose entries are
    the segment's lane values at their dense gather columns, so the whole
    gather + lane-scale + reduce chain is one SpMM.
    """
    bounds = ctx.bounds(from_level, to_level)
    ids = ctx.ids(bind_level, level)
    matrix = _csr_rows(ctx.csf.values, ids, bounds)
    return matrix, ctx.csf.values, ids, (bounds, None)


def _spmm_seg(B, key, spec, values, dense, prep):
    """``reduceat(einsum('a,a...->a...', V, take(dense, ids)))`` as SpMM.

    The CSR rows accumulate each segment's lanes in the same left-to-right
    order as ``reduceat``, so agreement is within the jit tier's ~1 ulp
    reassociation contract.  Falls back to the pooled gather/einsum/reduce
    chain when the matrix is unavailable or dtypes do not match.
    """
    matrix, bound_values, ids, red = prep
    if (
        matrix is not None
        and dense.dtype == np.float64
        and values is bound_values
    ):
        n = matrix.shape[1]
        flat = matrix @ dense[:n].reshape(n, -1)
        return flat.reshape((matrix.shape[0],) + dense.shape[1:])
    g = _bufpool.take_into(B, (key, "g"), dense, ids, 0)
    tmp = _bufpool.einsum_into(B, (key, "t"), spec, values, g)
    return _reduce(B, (key, "r"), tmp, red)


def _spmm_scatter_prep(ctx, bind_level, level, dim):
    """Bind-time prep for a fused gather×values lane scatter.

    CSF lanes are sorted by (parent, fid), so the flattened scatter row ids
    ``parent * dim + fid`` are strictly increasing with at most one lane
    per row: the CSR product is *bit-exact* against the scatter buffer
    (single-term rows, exact 0.0 for empty rows).  ``searchsorted`` turns
    the row ids directly into the matrix's indptr.
    """
    ids = ctx.ids(bind_level, level)
    fids = ctx.csf.fids[level]
    if level == 0:
        scat = (fids,)
        head = (int(dim),)
        rows = fids
    else:
        parents = ctx.parents(level)
        scat = (parents, fids, ctx.lanes(level - 1))
        head = (ctx.lanes(level - 1), int(dim))
        rows = parents.astype(np.int64) * int(dim) + fids
    matrix = None
    if rows.size == 0 or np.all(np.diff(rows) > 0):
        n_rows = int(np.prod(head, dtype=np.int64))
        indptr = np.searchsorted(rows, np.arange(n_rows + 1))
        matrix = _csr_rows(ctx.csf.values, ids, indptr, n_rows)
    return matrix, ctx.csf.values, ids, scat, head


def _spmm_scatter(B, key, spec, values, dense, prep):
    """``scatter_lanes(einsum('a,a...->a...', V, take(dense, ids)))`` as SpMM."""
    matrix, bound_values, ids, scat, head = prep
    if (
        matrix is not None
        and dense.dtype == np.float64
        and values is bound_values
    ):
        n = matrix.shape[1]
        flat = matrix @ dense[:n].reshape(n, -1)
        return flat.reshape(head + dense.shape[1:])
    g = _bufpool.take_into(B, (key, "g"), dense, ids, 0)
    tmp = _bufpool.einsum_into(B, (key, "t"), spec, values, g)
    if len(scat) == 1:
        return _scatter_lanes0(B, (key, "s"), tmp, scat[0], head[0])
    parents, fids, n_par = scat
    return _scatter_lanes(B, (key, "s"), tmp, parents, fids, n_par, head[-1])


def _seg_outer(B, key, spec, lhs, rhs, red):
    """Fused per-lane outer product + segment reduction.

    Equals ``reduceat(einsum(spec, lhs, rhs))`` up to summation order; the
    GEMM path (one BLAS ``np.dot`` per segment) is chosen at run time when
    the average per-segment work amortizes the per-call dispatch cost.
    """
    bounds = red[0]
    n = lhs.shape[0]
    n_seg = bounds.shape[0] - 1
    p = int(np.prod(lhs.shape[1:], dtype=np.int64))
    q = int(np.prod(rhs.shape[1:], dtype=np.int64))
    work_per_seg = (n / n_seg) * p * q if n_seg else 0
    if (
        work_per_seg >= _GEMM_MIN_FLOPS_PER_SEG
        and lhs.dtype == rhs.dtype
        and lhs.dtype.kind == "f"
    ):
        lhs2 = lhs.reshape(n, p)
        rhs2 = rhs.reshape(n, q)
        buf = _bufpool.buffer(B, (key, "g"), (n_seg, p, q), lhs.dtype)
        dot = np.dot
        for seg in range(n_seg):
            lo = bounds[seg]
            hi = bounds[seg + 1]
            dot(lhs2[lo:hi].T, rhs2[lo:hi], out=buf[seg])
        return buf.reshape((n_seg,) + lhs.shape[1:] + rhs.shape[1:])
    tmp = _bufpool.einsum_into(B, (key, "t"), spec, lhs, rhs)
    return _reduce(B, (key, "r"), tmp, red)


def _apply_calls(counter, items):
    for name, count in items:
        counter.add_call(name, count)


_NAMESPACE = {
    "np": np,
    "_take": _bufpool.take_into,
    "_einsum": _bufpool.einsum_into,
    "_sum0": _bufpool.sum0_into,
    "_reduce": _reduce,
    "_scatter_lanes0": _scatter_lanes0,
    "_scatter_lanes": _scatter_lanes,
    "_gather_along": _gather_along,
    "_multigather": _multigather,
    "_scatter_add_general": _scatter_add_general,
    "_seg_outer": _seg_outer,
    "_spmm_seg": _spmm_seg,
    "_spmm_scatter": _spmm_scatter,
    "_apply_calls": _apply_calls,
}


# --------------------------------------------------------------------------- #
# Bind-time preparation
# --------------------------------------------------------------------------- #
class _Ctx:
    """Per-tensor evaluation context for prep builders (memoized id maps)."""

    def __init__(self, csf) -> None:
        self.csf = csf
        self._ids: Dict[tuple, np.ndarray] = {}

    def lanes(self, level: int) -> int:
        return 1 if level < 0 else self.csf.nnz_at_level(level)

    def ids(self, level: int, at_level: int) -> np.ndarray:
        key = (level, at_level)
        cached = self._ids.get(key)
        if cached is None:
            arr = self.csf.fids[level]
            for lvl in range(level, at_level):
                arr = np.repeat(arr, np.diff(self.csf.fptr[lvl]))
            self._ids[key] = cached = arr
        return cached

    def bounds(self, from_level: int, to_level: int) -> np.ndarray:
        """Composed segment boundaries: for each ``to_level`` node, the
        offset range of its ``from_level`` descendants (``n_seg + 1``)."""
        g = self.csf.fptr[to_level]
        for lvl in range(to_level + 1, from_level):
            g = self.csf.fptr[lvl][g]
        return g

    def expand_map(self, from_level: int, to_level: int) -> np.ndarray:
        """For each ``to_level`` lane, its ``from_level`` ancestor index."""
        arr = np.arange(self.lanes(from_level))
        for lvl in range(from_level, to_level):
            arr = np.repeat(arr, np.diff(self.csf.fptr[lvl]))
        return arr

    def parents(self, level: int) -> np.ndarray:
        """Parent lane index of each level-``level`` lane (``level >= 1``)."""
        return np.repeat(
            np.arange(self.lanes(level - 1)), np.diff(self.csf.fptr[level - 1])
        )


class CompiledJit:
    """One lowered program compiled to a fused callable with pooled buffers.

    Owned by a :class:`~repro.engine.plan_cache.CompiledPlan` (stored on
    its ``jit`` slot) and therefore byte-accounted by the plan cache: the
    pool's buffers and the cached per-tensor preps are reachable through
    this object's slots.  Not safe for concurrent use — same contract as
    the owning executor.
    """

    __slots__ = (
        "source",
        "fn",
        "pool",
        "n_slots",
        "_prep_builders",
        "_binds",
        "version",
        "__weakref__",
    )

    #: Per-tensor prep entries kept per callable (MRU order).
    MAX_BINDS = 4

    def __init__(self, source, fn, n_slots, prep_builders) -> None:
        self.source: str = source
        self.fn = fn
        self.pool: dict = {}
        self.n_slots = n_slots
        self._prep_builders: List[Callable] = prep_builders
        self._binds: List[tuple] = []
        #: Bumped whenever bind state changes, so the executor can
        #: re-account the owning cache entry's byte size.
        self.version = 0

    def bind(self, csf) -> tuple:
        """The prep tuple for *csf*, built once and cached weakly."""
        binds = self._binds
        for i, (ref, prep) in enumerate(binds):
            if ref() is csf:
                if i:
                    binds.insert(0, binds.pop(i))
                _STATS["bind_hits"] += 1
                return prep
        ctx = _Ctx(csf)
        prep = tuple(builder(ctx) for builder in self._prep_builders)
        binds[:] = [entry for entry in binds if entry[0]() is not None]
        binds.insert(0, (weakref.ref(csf), prep))
        if len(binds) > self.MAX_BINDS:
            del binds[self.MAX_BINDS:]
            _STATS["bind_evictions"] += 1
        _STATS["bind_misses"] += 1
        self.version += 1
        return prep

    def run(self, csf, dense, out_dense, out_values, counter) -> None:
        """Execute the fused callable against concrete arrays."""
        prep = self.bind(csf)
        _STATS["runs"] += 1
        self.fn(csf.values, dense, out_dense, out_values, prep, self.pool, counter)


# --------------------------------------------------------------------------- #
# Compilation
# --------------------------------------------------------------------------- #
def _srcs_of(op) -> Tuple[int, ...]:
    if isinstance(op, ir.Contract):
        return tuple(op.srcs)
    src = getattr(op, "src", None)
    return (src,) if src is not None else ()


def _dst_of(op) -> Optional[int]:
    return getattr(op, "dst", None)


def _split_spec(spec: str) -> Tuple[List[str], str]:
    inputs, out = spec.split("->")
    return inputs.split(","), out


class _Unit:
    """One emission unit: an original op or a fused pseudo-op."""

    __slots__ = ("kind", "op", "srcs", "dst", "info")

    def __init__(self, kind, op, srcs, dst, info=None) -> None:
        self.kind = kind
        self.op = op
        self.srcs = srcs
        self.dst = dst
        self.info = info


def _values_gather(op, in_subs, out_sub, ops, uses, def_op, level):
    """Match an elementwise lane Contract of ``LoadValues`` with a dense
    single-gather (axis 0) ``ReadArray`` at ``level``.

    This is the SpMM-able shape ``einsum('a,a...->a...', V, take(dense,
    ids))``: each lane scales one gathered dense row.  Returns ``(v_reg,
    read_idx, read, bind_level, spec)`` with the spec normalized
    values-first (multiplication commutes bit-exactly), or ``None``.
    """
    for vpos in (0, 1):
        v_sub = in_subs[vpos]
        r_sub = in_subs[1 - vpos]
        if len(v_sub) != 1 or not r_sub or r_sub[0] != v_sub[0]:
            continue
        if out_sub != r_sub or len(set(r_sub)) != len(r_sub):
            continue
        v_reg = op.srcs[vpos]
        r_reg = op.srcs[1 - vpos]
        v_def = def_op.get(v_reg)
        r_def = def_op.get(r_reg)
        if v_def is None or r_def is None:
            continue
        if not isinstance(ops[v_def], ir.LoadValues):
            continue
        read = ops[r_def]
        if (
            not isinstance(read, ir.ReadArray)
            or read.slot[0] != SLOT_DENSE
            or read.level != level
            or len(uses.get(r_reg, ())) != 1
        ):
            continue
        gathers = [
            (axis, arg)
            for axis, (kind, arg) in enumerate(read.axes)
            if kind == ir.GATHER
        ]
        if len(gathers) != 1 or gathers[0][0] != 0:
            continue
        spec = f"{v_sub},{r_sub}->{out_sub}"
        return v_reg, r_def, read, gathers[0][1], spec
    return None


def _match_fusions(ops, uses, def_op):
    """Find P1 (seg-GEMM), P2 (scatter-multiply-reduce) and SpMM rewrites.

    Returns ``(skip, fused)``: op indices subsumed by a fusion, and a map
    from the index of each fusion's *last* op to its fused unit.
    """
    skip = set()
    fused = {}

    def free(*idxs):
        """True when none of the op indices is claimed by a fusion yet."""
        return all(x not in skip and x not in fused for x in idxs)

    for i, op in enumerate(ops):
        if not free(i):
            continue
        # P1: lane outer-product Contract feeding its only consumer, a
        # SegmentReduce -> per-segment GEMM over the composed boundaries.
        if isinstance(op, ir.Contract) and len(op.srcs) == 2:
            if uses.get(op.dst) and len(uses[op.dst]) == 1:
                j = uses[op.dst][0]
                nxt = ops[j]
                if (
                    isinstance(nxt, ir.SegmentReduce)
                    and nxt.src == op.dst
                    and free(j)
                ):
                    in_subs, out_sub = _split_spec(op.spec)
                    lhs_sub, rhs_sub = in_subs
                    if (
                        lhs_sub
                        and rhs_sub
                        and out_sub
                        and lhs_sub[0] == rhs_sub[0] == out_sub[0]
                        and out_sub == lhs_sub[0] + lhs_sub[1:] + rhs_sub[1:]
                        and len(set(lhs_sub)) == len(lhs_sub)
                        and len(set(rhs_sub)) == len(rhs_sub)
                        and not set(lhs_sub[1:]) & set(rhs_sub[1:])
                    ):
                        # When the contract is values × gathered-dense, the
                        # whole gather/scale/reduce chain is one CSR SpMM.
                        vg = _values_gather(
                            op, in_subs, out_sub, ops, uses, def_op,
                            nxt.from_level,
                        )
                        if vg is not None and free(vg[1]):
                            v_reg, r_def, read, bind_level, spec = vg
                            skip.update((i, r_def))
                            fused[j] = _Unit(
                                "spmm_seg",
                                op,
                                (v_reg,),
                                nxt.dst,
                                (spec, read, bind_level,
                                 nxt.from_level, nxt.to_level),
                            )
                            continue
                        skip.add(i)
                        fused[j] = _Unit(
                            "seg_outer",
                            op,
                            op.srcs,
                            nxt.dst,
                            (op.spec, nxt.from_level, nxt.to_level),
                        )
                        continue
                # P1b: the same values × gathered-dense contract feeding
                # its only consumer, a ScatterLanes -> one CSR SpMM whose
                # row ids are the flattened scatter positions (bit-exact:
                # at most one lane per row, exact zeros elsewhere).
                if (
                    isinstance(nxt, ir.ScatterLanes)
                    and nxt.src == op.dst
                    and free(j)
                ):
                    in_subs, out_sub = _split_spec(op.spec)
                    vg = _values_gather(
                        op, in_subs, out_sub, ops, uses, def_op, nxt.level
                    )
                    if vg is not None and free(vg[1]):
                        v_reg, r_def, read, bind_level, spec = vg
                        skip.update((i, r_def))
                        fused[j] = _Unit(
                            "spmm_scatter",
                            nxt,
                            (v_reg,),
                            nxt.dst,
                            (spec, read, bind_level, nxt.level, nxt.dim),
                        )
                        continue
        # P2: ScatterLanes -> SegmentReduce -> Contract that contracts the
        # scattered dense axis with a lane-free operand.  Rewritten to
        # gather-multiply-reduce over the original (deeper) lanes; the
        # scatter buffer is never materialized.
        if isinstance(op, ir.ScatterLanes) and op.level >= 1:
            if not (uses.get(op.dst) and len(uses[op.dst]) == 1):
                continue
            j = uses[op.dst][0]
            red = ops[j]
            if not (
                isinstance(red, ir.SegmentReduce)
                and red.src == op.dst
                and red.from_level == op.level - 1
                and free(j)
            ):
                continue
            if not (uses.get(red.dst) and len(uses[red.dst]) == 1):
                continue
            k = uses[red.dst][0]
            if not free(k):
                continue
            ct = ops[k]
            if not (
                isinstance(ct, ir.Contract)
                and len(ct.srcs) == 2
                and ct.srcs.count(red.dst) == 1
            ):
                continue
            t_pos = ct.srcs.index(red.dst)
            other = ct.srcs[1 - t_pos]
            other_def = def_op.get(other)
            if other_def is None:
                continue
            other_op = ops[other_def]
            if not isinstance(other_op, ir.ReadArray) or any(
                kind == ir.GATHER for kind, _ in other_op.axes
            ):
                continue
            in_subs, out_sub = _split_spec(ct.spec)
            t_sub = in_subs[t_pos]
            o_sub = in_subs[1 - t_pos]
            if len(t_sub) < 2 or not out_sub:
                continue
            lane, scat = t_sub[0], t_sub[1]
            if (
                out_sub[0] != lane
                or scat == lane
                or lane in o_sub
                or o_sub.count(scat) != 1
                or t_sub.count(scat) != 1
                or scat in out_sub
            ):
                continue
            o_rest = o_sub.replace(scat, "")
            new_spec = (
                f"{lane}{o_rest},{lane}{t_sub[2:]}->{lane}{out_sub[1:]}"
            )
            skip.update((i, j))
            fused[k] = _Unit(
                "scatter_mul_reduce",
                ct,
                (other, op.src),
                ct.dst,
                (new_spec, o_sub.index(scat), op.level, red.to_level),
            )
    return skip, fused


def _reg_signatures(units) -> Dict[int, tuple]:
    """Structural shape signature per register: two registers with equal
    signatures have equal shapes and dtypes under any single binding, so
    their pool slots are interchangeable."""
    sig: Dict[int, tuple] = {}

    def of(reg: int) -> tuple:
        return sig.get(reg, ("ext", reg))

    for unit in units:
        op, dst = unit.op, unit.dst
        if dst is None:
            continue
        if unit.kind == "seg_outer":
            spec, _from, to_level = unit.info
            sig[dst] = ("seg_outer", spec, to_level, tuple(of(s) for s in unit.srcs))
        elif unit.kind == "spmm_seg":
            spec, read, _bind, from_level, to_level = unit.info
            sig[dst] = (
                "spmm_seg", spec, read.slot, read.axes, from_level, to_level,
            )
        elif unit.kind == "spmm_scatter":
            spec, read, _bind, level, dim = unit.info
            sig[dst] = ("spmm_scatter", spec, read.slot, read.axes, level, dim)
        elif unit.kind == "scatter_mul_reduce":
            sig[dst] = ("smr", unit.info, tuple(of(s) for s in unit.srcs))
        elif isinstance(op, ir.LoadValues):
            sig[dst] = ("values",)
        elif isinstance(op, ir.ReadArray):
            sig[dst] = ("read", op.slot, op.level, op.axes)
        elif isinstance(op, ir.Contract):
            sig[dst] = ("einsum", op.spec, tuple(of(s) for s in op.srcs))
        elif isinstance(op, ir.SegmentReduce):
            sig[dst] = ("segred", op.from_level, op.to_level, of(op.src))
        elif isinstance(op, ir.LaneExpand):
            sig[dst] = ("expand", op.from_level, op.to_level, of(op.src))
        elif isinstance(op, ir.LaneSum):
            sig[dst] = ("lanesum", of(op.src))
        elif isinstance(op, ir.ScatterLanes):
            sig[dst] = ("scatlanes", op.level, op.dim, of(op.src))
        elif isinstance(op, ir.GatherAxis):
            sig[dst] = (
                "gataxis", op.axis, op.level, op.at_level, op.src_has_lane,
                of(op.src),
            )
        else:  # pragma: no cover - defensive
            sig[dst] = ("op", type(op).__name__, dst)
    return sig


class _Emitter:
    """Accumulates generated source lines and bind-time prep builders."""

    def __init__(self) -> None:
        self.lines: List[str] = []
        self.preps: List[Callable] = []
        self.dense_vars: Dict[str, str] = {}
        self._tmp = 0

    def prep(self, builder: Callable) -> str:
        self.preps.append(builder)
        return f"P[{len(self.preps) - 1}]"

    def dense(self, name: str) -> str:
        var = self.dense_vars.get(name)
        if var is None:
            var = f"_d{len(self.dense_vars)}"
            self.dense_vars[name] = var
        return var

    def tmp(self) -> str:
        self._tmp += 1
        return f"_t{self._tmp}"

    def line(self, text: str) -> None:
        self.lines.append(f"    {text}")


def _emit_unit(em: _Emitter, unit: _Unit, slot: Optional[int]) -> None:
    op = unit.op
    dst = f"r{unit.dst}" if unit.dst is not None else None
    if unit.kind == "seg_outer":
        spec, from_level, to_level = unit.info
        bounds = em.prep(
            lambda ctx, f=from_level, t=to_level: _reduce_prep(ctx.bounds(f, t))
        )
        a, b = unit.srcs
        em.line(
            f"{dst} = _seg_outer(B, {slot}, {spec!r}, r{a}, r{b}, {bounds})"
        )
    elif unit.kind == "spmm_seg":
        spec, read, bind_level, from_level, to_level = unit.info
        arr = em.dense(read.slot[1])
        prep = em.prep(
            lambda ctx, b=bind_level, lv=read.level, f=from_level,
            t=to_level: _spmm_seg_prep(ctx, b, lv, f, t)
        )
        (v,) = unit.srcs
        em.line(f"{dst} = _spmm_seg(B, {slot}, {spec!r}, r{v}, {arr}, {prep})")
    elif unit.kind == "spmm_scatter":
        spec, read, bind_level, level, dim = unit.info
        arr = em.dense(read.slot[1])
        prep = em.prep(
            lambda ctx, b=bind_level, lv=level, d=dim:
            _spmm_scatter_prep(ctx, b, lv, d)
        )
        (v,) = unit.srcs
        em.line(
            f"{dst} = _spmm_scatter(B, {slot}, {spec!r}, r{v}, {arr}, {prep})"
        )
    elif unit.kind == "scatter_mul_reduce":
        new_spec, c_axis, level, to_level = unit.info
        other, src = unit.srcs
        fids = em.prep(lambda ctx, lv=level: ctx.csf.fids[lv])
        bounds = em.prep(
            lambda ctx, f=level, t=to_level: _reduce_prep(ctx.bounds(f, t))
        )
        gvar = em.tmp()
        mvar = em.tmp()
        em.line(f"{gvar} = _take(B, ({slot}, 'g'), r{other}, {fids}, {c_axis})")
        em.line(
            f"{mvar} = _einsum(B, ({slot}, 'm'), {new_spec!r}, {gvar}, r{src})"
        )
        em.line(f"{dst} = _reduce(B, ({slot}, 'r'), {mvar}, {bounds})")
    elif isinstance(op, ir.LoadValues):
        em.line(f"{dst} = V")
    elif isinstance(op, ir.ReadArray):
        if op.slot[0] != SLOT_DENSE:
            raise _NotCompilable(f"non-dense read slot {op.slot!r}")
        arr = em.dense(op.slot[1])
        gathers = [
            (axis, arg)
            for axis, (kind, arg) in enumerate(op.axes)
            if kind == ir.GATHER
        ]
        if not gathers:
            em.line(f"{dst} = {arr}")
        elif len(gathers) == 1:
            axis, bind_level = gathers[0]
            ids = em.prep(
                lambda ctx, b=bind_level, lv=op.level: ctx.ids(b, lv)
            )
            em.line(f"{dst} = _take(B, {slot}, {arr}, {ids}, {axis})")
        else:
            ids = em.prep(
                lambda ctx, g=tuple(gathers), lv=op.level: tuple(
                    ctx.ids(arg, lv) for _axis, arg in g
                )
            )
            em.line(f"{dst} = _multigather({arr}, {ids}, {op.axes!r})")
    elif isinstance(op, ir.Contract):
        srcs = ", ".join(f"r{s}" for s in op.srcs)
        em.line(f"{dst} = _einsum(B, {slot}, {op.spec!r}, {srcs})")
    elif isinstance(op, ir.SegmentReduce):
        cur = f"r{op.src}"
        for step, lvl in enumerate(range(op.from_level - 1, op.to_level - 1, -1)):
            bounds = em.prep(lambda ctx, lv=lvl: _reduce_prep(ctx.csf.fptr[lv]))
            nxt = dst if lvl == op.to_level else em.tmp()
            em.line(f"{nxt} = _reduce(B, ({slot}, {step}), {cur}, {bounds})")
            cur = nxt
    elif isinstance(op, ir.LaneExpand):
        ids = em.prep(
            lambda ctx, f=op.from_level, t=op.to_level: ctx.expand_map(f, t)
        )
        em.line(f"{dst} = _take(B, {slot}, r{op.src}, {ids}, 0)")
    elif isinstance(op, ir.LaneSum):
        em.line(f"{dst} = _sum0(B, {slot}, r{op.src})")
    elif isinstance(op, ir.ScatterLanes):
        fids = em.prep(lambda ctx, lv=op.level: ctx.csf.fids[lv])
        if op.level == 0:
            em.line(
                f"{dst} = _scatter_lanes0(B, {slot}, r{op.src}, {fids}, {op.dim})"
            )
        else:
            parents = em.prep(lambda ctx, lv=op.level: ctx.parents(lv))
            n_par = em.prep(lambda ctx, lv=op.level: ctx.lanes(lv - 1))
            em.line(
                f"{dst} = _scatter_lanes(B, {slot}, r{op.src}, {parents}, "
                f"{fids}, {n_par}, {op.dim})"
            )
    elif isinstance(op, ir.GatherAxis):
        ids = em.prep(lambda ctx, lv=op.level, at=op.at_level: ctx.ids(lv, at))
        if op.src_has_lane:
            em.line(f"{dst} = _gather_along(r{op.src}, {ids}, {op.axis})")
        else:
            em.line(f"{dst} = _take(B, {slot}, r{op.src}, {ids}, {op.axis})")
    elif isinstance(op, ir.ScatterAdd):
        gathers = [arg for kind, arg in op.axes if kind == ir.GATHER]
        if not gathers:
            em.line(f"O[...] += r{op.src}")
        elif op.direct:
            ids = em.prep(
                lambda ctx, g=tuple(gathers), lv=op.level: tuple(
                    ctx.ids(arg, lv) for arg in g
                )
            )
            em.line(f"O[{ids}] += r{op.src}")
        else:
            ids = em.prep(
                lambda ctx, g=tuple(gathers), lv=op.level: tuple(
                    ctx.ids(arg, lv) for arg in g
                )
            )
            em.line(f"_scatter_add_general(O, r{op.src}, {ids}, {op.axes!r})")
    elif isinstance(op, ir.AccumulateLeaf):
        em.line(f"OV += r{op.src}")
    elif isinstance(op, ir.Note):
        pass
    else:
        raise _NotCompilable(f"unknown lowered op {type(op).__name__}")


#: Unit kinds / op types whose results are views or aliases (no pool slot).
def _needs_slot(unit: _Unit) -> bool:
    if unit.dst is None:
        return False
    op = unit.op
    if isinstance(op, ir.LoadValues):
        return False
    if isinstance(op, ir.ReadArray) and not any(
        kind == ir.GATHER for kind, _ in op.axes
    ):
        return False
    return True


def _emit_counters(em: _Emitter, ops) -> None:
    flops: List[ir.Count] = []
    resets: List[ir.Count] = []
    calls: List[Tuple[str, ir.Count]] = []
    for op in ops:
        charge = getattr(op, "charge", None)
        if charge is None:
            continue
        flops.extend(charge.flops)
        resets.extend(charge.resets)
        calls.extend(charge.calls)

    def total(terms):
        return lambda ctx: sum(f * ctx.lanes(lv) for f, lv in terms)

    def call_totals(ctx, terms=tuple(calls)):
        agg: Dict[str, int] = {}
        for name, (factor, level) in terms:
            agg[name] = agg.get(name, 0) + factor * ctx.lanes(level)
        return tuple(agg.items())

    if flops:
        em.line(f"C.flops += {em.prep(total(tuple(flops)))}")
    if resets:
        em.line(f"C.buffer_resets += {em.prep(total(tuple(resets)))}")
    if calls:
        em.line(f"_apply_calls(C, {em.prep(call_totals)})")


def compile_program(program: ir.Program) -> Optional[CompiledJit]:
    """Compile one lowered program into a fused callable, or ``None``.

    ``None`` means the generator declined (or failed); the caller keeps
    running the program on the lowered VM — the jit tier's transparent
    fallback, mirroring lowered → interpret.
    """
    try:
        compiled = _compile(program)
    except Exception:
        _STATS["failures"] += 1
        return None
    _STATS["compiles"] += 1
    _LIVE.add(compiled)
    return compiled


def _compile(program: ir.Program) -> CompiledJit:
    ops = program.ops
    uses: Dict[int, List[int]] = defaultdict(list)
    def_op: Dict[int, int] = {}
    for i, op in enumerate(ops):
        for src in _srcs_of(op):
            uses[src].append(i)
        dst = _dst_of(op)
        if dst is not None:
            def_op[dst] = i

    skip, fused = _match_fusions(ops, uses, def_op)
    units: List[_Unit] = []
    for i, op in enumerate(ops):
        if i in skip:
            continue
        if i in fused:
            units.append(fused[i])
        else:
            units.append(_Unit("op", op, _srcs_of(op), _dst_of(op)))

    # liveness over the rewritten unit list
    last_use: Dict[int, int] = {}
    for ui, unit in enumerate(units):
        for src in unit.srcs:
            last_use[src] = ui
        if unit.dst is not None:
            last_use.setdefault(unit.dst, ui)

    sig = _reg_signatures(units)
    em = _Emitter()
    free: Dict[tuple, List[int]] = defaultdict(list)
    slot_of: Dict[int, int] = {}
    n_slots = 0
    for ui, unit in enumerate(units):
        slot: Optional[int] = None
        if _needs_slot(unit):
            pool_sig = sig[unit.dst]
            bucket = free[pool_sig]
            if bucket:
                slot = bucket.pop()
            else:
                slot = n_slots
                n_slots += 1
            slot_of[unit.dst] = slot
        _emit_unit(em, unit, slot)
        dying = set(unit.srcs)
        if unit.dst is not None:
            dying.add(unit.dst)
        for reg in dying:
            if last_use.get(reg) == ui and reg in slot_of:
                free[sig[reg]].append(slot_of[reg])
    _emit_counters(em, ops)

    header = ["def _fused(V, D, O, OV, P, B, C):"]
    for name, var in em.dense_vars.items():
        header.append(f"    {var} = D[{name!r}]")
    source = "\n".join(header + em.lines) + "\n"
    namespace = dict(_NAMESPACE)
    exec(compile(source, "<repro-jit>", "exec"), namespace)
    return CompiledJit(source, namespace["_fused"], n_slots, em.preps)


# --------------------------------------------------------------------------- #
# Introspection
# --------------------------------------------------------------------------- #
def jit_stats() -> Dict[str, int]:
    """Codegen-tier stats in the shared cache-snapshot shape.

    ``entries``/``bytes`` cover live compiled callables and their pooled
    buffers; ``hits``/``misses``/``evictions`` count the per-tensor prep
    cache; ``rejections`` counts programs the generator declined (each one
    a transparent fallback to the lowered VM).  Extra keys: ``compiles``,
    ``runs`` and ``numba`` (whether the optional Numba sweep is active).
    """
    live = list(_LIVE)
    return {
        "entries": len(live),
        "hits": _STATS["bind_hits"],
        "misses": _STATS["bind_misses"],
        "evictions": _STATS["bind_evictions"],
        "rejections": _STATS["failures"],
        "bytes": sum(pool_nbytes(c.pool) for c in live),
        "compiles": _STATS["compiles"],
        "runs": _STATS["runs"],
        "numba": int(_nb.available()),
    }


def reset_jit_stats() -> None:
    """Zero the codegen-tier counters (live entries are unaffected)."""
    for key in _STATS:
        _STATS[key] = 0
