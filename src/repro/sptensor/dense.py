"""Labelled dense tensors (the factor operands of SpTTN kernels).

A :class:`DenseTensor` is a thin wrapper around a ``numpy.ndarray`` that
carries a name (for diagnostics and loop-nest pretty-printing) and exposes
the small amount of structure the scheduler needs: per-mode dimensions and
slicing by a partial index assignment.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.util.validation import check_shape, require


class DenseTensor:
    """A named dense tensor.

    Parameters
    ----------
    data:
        The underlying array; copied only if ``copy=True``.
    name:
        Optional name used in diagnostics and generated loop-nest listings.
    """

    __slots__ = ("data", "name")

    def __init__(self, data: np.ndarray, name: Optional[str] = None, copy: bool = False) -> None:
        if copy:
            arr = np.array(data, dtype=np.float64, copy=True)
        else:
            arr = np.asarray(data, dtype=np.float64)
        if arr.ndim == 0:
            arr = arr.reshape(1)
        self.data = arr
        self.name = name or "D"

    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> Tuple[int, ...]:
        return tuple(self.data.shape)

    @property
    def order(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return int(self.data.size)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DenseTensor(name={self.name!r}, shape={self.shape})"

    # ------------------------------------------------------------------ #
    @classmethod
    def zeros(cls, shape: Sequence[int], name: Optional[str] = None) -> "DenseTensor":
        return cls(np.zeros(check_shape(shape)), name=name)

    @classmethod
    def random(
        cls,
        shape: Sequence[int],
        name: Optional[str] = None,
        seed: Optional[int] = None,
        scale: float = 1.0,
    ) -> "DenseTensor":
        """A dense tensor with i.i.d. uniform(0, scale) entries."""
        rng = np.random.default_rng(seed)
        return cls(rng.random(check_shape(shape)) * float(scale), name=name)

    def copy(self) -> "DenseTensor":
        return DenseTensor(self.data.copy(), name=self.name)

    # ------------------------------------------------------------------ #
    def slice_at(self, assignment: Dict[int, int]) -> np.ndarray:
        """Slice the array fixing the modes given in *assignment*.

        ``assignment`` maps mode position -> index value.  The returned array
        is a view with the fixed modes removed, in the order of the remaining
        modes.
        """
        key = []
        for mode in range(self.order):
            if mode in assignment:
                val = int(assignment[mode])
                require(
                    0 <= val < self.shape[mode],
                    f"index {val} out of bounds for mode {mode} of {self.name}",
                )
                key.append(val)
            else:
                key.append(slice(None))
        return self.data[tuple(key)]

    def allclose(self, other: "DenseTensor", rtol: float = 1e-10, atol: float = 1e-12) -> bool:
        return self.shape == other.shape and bool(
            np.allclose(self.data, other.data, rtol=rtol, atol=atol)
        )
