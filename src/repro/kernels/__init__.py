"""Named SpTTN kernels used by the paper's evaluation and applications.

Each helper builds the einsum-style specification for one kernel family
(for any tensor order and target mode), parses it into an
:class:`~repro.core.expr.SpTTNKernel`, and executes it through the
scheduler + loop-nest executor.  The ``*_kernel`` variants return the kernel
object without executing, for use by the scheduler benchmarks and the
distributed runtime.
"""

from repro.kernels.spttn import KernelBuilder, build_kernel, run_kernel
from repro.kernels.mttkrp import mttkrp, mttkrp_kernel
from repro.kernels.ttmc import ttmc, ttmc_kernel, all_mode_ttmc, all_mode_ttmc_kernel
from repro.kernels.tttp import tttp, tttp_kernel, sddmm, sddmm_kernel
from repro.kernels.tttc import tttc, tttc_kernel

__all__ = [
    "KernelBuilder",
    "build_kernel",
    "run_kernel",
    "mttkrp",
    "mttkrp_kernel",
    "ttmc",
    "ttmc_kernel",
    "all_mode_ttmc",
    "all_mode_ttmc_kernel",
    "tttp",
    "tttp_kernel",
    "sddmm",
    "sddmm_kernel",
    "tttc",
    "tttc_kernel",
]
