"""CTF-style *pairwise* contraction baseline (Section 2.4.2).

The Cyclops Tensor Framework contracts a tensor network as a sequence of
pairwise contractions, fully materializing every intermediate.  For SpTTN
kernels this keeps the asymptotic operation count low but requires storing
intermediates whose index sets include sparse-tensor modes — for large mode
sizes those intermediates dominate memory and often cannot be allocated at
all (the paper reports CTF running out of memory on enron/nell-2 TTMc).

Each term of the minimum-flop contraction path is executed independently:

* sparse × dense terms stream over the stored nonzeros and scatter into a
  dense intermediate of the term's full output shape;
* dense × dense terms are a single ``einsum``.

``memory_limit_elements`` bounds the largest intermediate; exceeding it
raises :class:`IntermediateMemoryError`, which the benchmark harness reports
as an out-of-memory row, mirroring the paper's tables.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

import numpy as np

from repro.core.contraction_path import ContractionPath, rank_contraction_paths
from repro.core.expr import SpTTNKernel
from repro.frameworks.base import FrameworkBaseline, Output, TensorLike
from repro.sptensor.coo import COOTensor


class IntermediateMemoryError(MemoryError):
    """Raised when a pairwise intermediate exceeds the configured memory limit."""


class CTFLikeBaseline(FrameworkBaseline):
    """Pairwise contraction with materialized dense intermediates."""

    name = "ctf-pairwise"

    def __init__(
        self,
        counter=None,
        memory_limit_elements: int = 200_000_000,
        path: Optional[ContractionPath] = None,
    ) -> None:
        super().__init__(counter)
        self.memory_limit_elements = int(memory_limit_elements)
        self.path = path

    # ------------------------------------------------------------------ #
    def _execute(
        self, kernel: SpTTNKernel, tensors: Mapping[str, TensorLike]
    ) -> Output:
        path = self.path
        if path is None:
            path = rank_contraction_paths(kernel)[0][0]
        coo = self.as_coo(tensors[kernel.sparse_operand.name])
        env: Dict[str, np.ndarray] = {
            op.name: self.as_array(tensors[op.name]) for op in kernel.dense_operands
        }
        sparse_name = kernel.sparse_operand.name
        sparse_indices = kernel.sparse_operand.indices
        mode_of = {name: pos for pos, name in enumerate(sparse_indices)}
        self._max_intermediate = 0

        for term in path:
            out_shape = tuple(kernel.index_dims[i] for i in term.out_indices)
            out_size = int(np.prod(out_shape)) if out_shape else 1
            is_last = term.out == kernel.output.name
            if not is_last or not kernel.output.is_sparse:
                if out_size > self.memory_limit_elements:
                    raise IntermediateMemoryError(
                        f"pairwise intermediate {term.out!r} needs {out_size} elements, "
                        f"limit is {self.memory_limit_elements}"
                    )
                self._max_intermediate = max(self._max_intermediate, out_size)

            if term.lhs == sparse_name or term.rhs == sparse_name:
                other = term.rhs if term.lhs == sparse_name else term.lhs
                other_indices = (
                    term.rhs_indices if term.lhs == sparse_name else term.lhs_indices
                )
                result = self._sparse_times_dense(
                    kernel, coo, mode_of, env.get(other), other, other_indices, term
                )
            else:
                result = self._dense_pair(kernel, env, term)
            env[term.out] = result

        final = env[kernel.output.name]
        if kernel.output.is_sparse:
            return final  # already restricted to the pattern (COO values)
        return final

    # ------------------------------------------------------------------ #
    def _sparse_times_dense(
        self,
        kernel: SpTTNKernel,
        coo: COOTensor,
        mode_of: Dict[str, int],
        other_array: Optional[np.ndarray],
        other_name: str,
        other_indices,
        term,
    ):
        """Contract the sparse tensor (or a sparse-patterned output) with a dense operand."""
        dense_free = tuple(i for i in other_indices if i not in kernel.sparse_indices)
        is_last = term.out == kernel.output.name
        out_sparse = is_last and kernel.output.is_sparse

        if out_sparse:
            out_values = np.zeros(coo.nnz, dtype=np.float64)
        else:
            out_shape = tuple(kernel.index_dims[i] for i in term.out_indices)
            out = np.zeros(out_shape if out_shape else (), dtype=np.float64)

        for row in range(coo.nnz):
            coords = coo.indices[row]
            value = coo.values[row]
            if other_array is None:
                contrib = value
            else:
                key = tuple(
                    int(coords[mode_of[i]]) if i in kernel.sparse_indices else slice(None)
                    for i in other_indices
                )
                slice_view = other_array[key]
                contrib = value * slice_view
                self.counter.add_flops(2 * max(1, int(np.size(slice_view))))
            if out_sparse:
                out_values[row] += float(np.sum(contrib)) if np.ndim(contrib) else float(contrib)
                continue
            out_key = []
            for i in term.out_indices:
                if i in kernel.sparse_indices:
                    out_key.append(int(coords[mode_of[i]]))
                else:
                    out_key.append(slice(None))
            # sum over dense indices of `other` that are not kept in the output
            if other_array is not None:
                kept = [i for i in dense_free if i in term.out_indices]
                dropped_axes = tuple(
                    pos for pos, i in enumerate(dense_free) if i not in term.out_indices
                )
                if dropped_axes and np.ndim(contrib):
                    contrib = contrib.sum(axis=dropped_axes)
                # align contrib axes (kept order) with the output free axes order
                out_free = [i for i in term.out_indices if i not in kernel.sparse_indices]
                if kept and out_free and kept != out_free:
                    perm = [kept.index(i) for i in out_free]
                    contrib = np.transpose(contrib, perm)
            target = out[tuple(out_key)]
            if np.ndim(target) == 0:
                out[tuple(out_key)] += contrib
            else:
                target += contrib
        if out_sparse:
            return coo.with_values(out_values)
        return out

    def _dense_pair(self, kernel: SpTTNKernel, env: Dict[str, np.ndarray], term):
        """Contract two dense (input or intermediate) operands with einsum."""
        letters: Dict[str, str] = {}
        alphabet = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"

        def letter(idx: str) -> str:
            if idx not in letters:
                letters[idx] = alphabet[len(letters)]
            return letters[idx]

        lhs = env[term.lhs]
        rhs = env[term.rhs]
        spec = (
            "".join(letter(i) for i in term.lhs_indices)
            + ","
            + "".join(letter(i) for i in term.rhs_indices)
            + "->"
            + "".join(letter(i) for i in term.out_indices)
        )
        space = 1
        for i in set(term.lhs_indices) | set(term.rhs_indices):
            space *= kernel.index_dims[i]
        self.counter.add_flops(2 * space)
        return np.einsum(spec, lhs, rhs)

    def metadata(self) -> Dict[str, object]:
        return {
            "strategy": "pairwise",
            "max_intermediate_elements": getattr(self, "_max_intermediate", 0),
        }
