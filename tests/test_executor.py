"""Correctness tests for the loop-nest executor (Algorithm 2).

The strongest check: for every kernel family, *every* enumerated loop order
of the best contraction path (and a sample over other paths) must produce
the same result as the dense einsum reference, with and without BLAS
offloading.
"""

import numpy as np
import pytest

from repro.core.contraction_path import enumerate_contraction_paths, rank_contraction_paths
from repro.core.enumeration import enumerate_loop_orders, sample_loop_orders
from repro.core.loop_nest import LoopNest
from repro.core.scheduler import SpTTNScheduler
from repro.engine.executor import LoopNestExecutor, execute_kernel
from repro.engine.reference import assert_same_result, reference_output
from repro.sptensor import COOTensor, CSFTensor, random_dense_matrix, random_sparse_tensor
from repro.util.counters import OpCounter

KERNELS = ["mttkrp_setup", "ttmc_setup", "tttp_setup", "allmode_setup"]


def run_nest(kernel, tensors, nest, offload=True, counter=None):
    executor = LoopNestExecutor(kernel, nest, offload=offload, counter=counter)
    return executor.execute(tensors)


@pytest.mark.parametrize("fixture_name", KERNELS)
class TestAllLoopOrdersMatchReference:
    def test_best_path_all_orders(self, fixture_name, request):
        kernel, tensors = request.getfixturevalue(fixture_name)
        expected = reference_output(kernel, tensors)
        path = rank_contraction_paths(kernel)[0][0]
        for order in enumerate_loop_orders(kernel, path):
            result = run_nest(kernel, tensors, LoopNest(path, order))
            assert_same_result(result, expected)

    def test_other_paths_sampled_orders(self, fixture_name, request):
        kernel, tensors = request.getfixturevalue(fixture_name)
        expected = reference_output(kernel, tensors)
        for path in enumerate_contraction_paths(kernel)[1:]:
            for order in sample_loop_orders(kernel, path, fraction=0.3, seed=0, max_samples=6):
                result = run_nest(kernel, tensors, LoopNest(path, order))
                assert_same_result(result, expected)

    def test_offload_and_interpreted_agree(self, fixture_name, request):
        kernel, tensors = request.getfixturevalue(fixture_name)
        expected = reference_output(kernel, tensors)
        schedule = SpTTNScheduler(kernel).schedule()
        fast = run_nest(kernel, tensors, schedule.loop_nest, offload=True)
        slow = run_nest(kernel, tensors, schedule.loop_nest, offload=False)
        assert_same_result(fast, expected)
        assert_same_result(slow, expected)


class TestOrder4:
    def test_ttmc4_scheduled(self, ttmc4_setup):
        kernel, tensors = ttmc4_setup
        expected = reference_output(kernel, tensors)
        schedule = SpTTNScheduler(kernel).schedule()
        assert_same_result(run_nest(kernel, tensors, schedule.loop_nest), expected)

    def test_ttmc4_sampled_orders(self, ttmc4_setup):
        kernel, tensors = ttmc4_setup
        expected = reference_output(kernel, tensors)
        path = rank_contraction_paths(kernel)[0][0]
        for order in sample_loop_orders(kernel, path, fraction=0.02, seed=3, max_samples=10):
            assert_same_result(
                run_nest(kernel, tensors, LoopNest(path, order)), expected
            )


class TestInputHandling:
    def test_accepts_csf_input(self, mttkrp_setup):
        kernel, tensors = mttkrp_setup
        expected = reference_output(kernel, tensors)
        csf_tensors = dict(tensors)
        csf_tensors["T"] = CSFTensor.from_coo(tensors["T"])
        schedule = SpTTNScheduler(kernel).schedule()
        assert_same_result(run_nest(kernel, csf_tensors, schedule.loop_nest), expected)

    def test_rebuilds_csf_with_wrong_mode_order(self, mttkrp_setup):
        kernel, tensors = mttkrp_setup
        expected = reference_output(kernel, tensors)
        csf_tensors = dict(tensors)
        csf_tensors["T"] = CSFTensor.from_coo(tensors["T"], mode_order=(2, 1, 0))
        schedule = SpTTNScheduler(kernel).schedule()
        assert_same_result(run_nest(kernel, csf_tensors, schedule.loop_nest), expected)

    def test_accepts_plain_arrays_for_dense(self, mttkrp_setup):
        kernel, tensors = mttkrp_setup
        expected = reference_output(kernel, tensors)
        arr_tensors = {
            name: (t if name == "T" else np.asarray(t.data))
            for name, t in tensors.items()
        }
        schedule = SpTTNScheduler(kernel).schedule()
        assert_same_result(run_nest(kernel, arr_tensors, schedule.loop_nest), expected)

    def test_missing_operand_rejected(self, mttkrp_setup):
        kernel, tensors = mttkrp_setup
        schedule = SpTTNScheduler(kernel).schedule()
        executor = LoopNestExecutor(kernel, schedule.loop_nest)
        partial = {k: v for k, v in tensors.items() if k != "B"}
        with pytest.raises(ValueError, match="missing tensor"):
            executor.execute(partial)

    def test_wrong_dense_shape_rejected(self, mttkrp_setup):
        kernel, tensors = mttkrp_setup
        schedule = SpTTNScheduler(kernel).schedule()
        executor = LoopNestExecutor(kernel, schedule.loop_nest)
        bad = dict(tensors)
        bad["B"] = np.ones((3, 3))
        with pytest.raises(ValueError, match="shape"):
            executor.execute(bad)

    def test_wrong_sparse_type_rejected(self, mttkrp_setup):
        kernel, tensors = mttkrp_setup
        schedule = SpTTNScheduler(kernel).schedule()
        executor = LoopNestExecutor(kernel, schedule.loop_nest)
        bad = dict(tensors)
        bad["T"] = np.zeros((18, 15, 12))
        with pytest.raises(TypeError):
            executor.execute(bad)

    def test_invalid_loop_order_rejected_on_construction(self, ttmc_setup):
        from repro.core.loop_nest import LoopOrder

        kernel, _ = ttmc_setup
        path = rank_contraction_paths(kernel)[0][0]
        bad = LoopOrder((("j", "i", "k", "s"), ("i", "j", "s", "r")))
        with pytest.raises(ValueError):
            LoopNestExecutor(kernel, LoopNest(path, bad))


class TestEdgeCases:
    def test_empty_sparse_tensor_gives_zero_output(self):
        T = COOTensor.empty((6, 5, 4))
        B = random_dense_matrix(5, 3, seed=0)
        C = random_dense_matrix(4, 3, seed=1)
        out, _ = execute_kernel("ijk,ja,ka->ia", [T, B, C])
        assert np.all(out == 0.0)

    def test_single_nonzero(self):
        T = COOTensor((6, 5, 4), [(2, 3, 1)], [2.5])
        B = random_dense_matrix(5, 3, seed=0)
        C = random_dense_matrix(4, 3, seed=1)
        out, _ = execute_kernel("ijk,ja,ka->ia", [T, B, C])
        expected = np.zeros((6, 3))
        expected[2] = 2.5 * B.data[3] * C.data[1]
        np.testing.assert_allclose(out, expected)

    def test_rank_one_dense_factors(self, random_coo3):
        B = random_dense_matrix(random_coo3.shape[1], 1, seed=0)
        C = random_dense_matrix(random_coo3.shape[2], 1, seed=1)
        out, _ = execute_kernel("ijk,ja,ka->ia", [random_coo3, B, C])
        ref = np.einsum("ijk,ja,ka->ia", random_coo3.to_dense(), B.data, C.data)
        np.testing.assert_allclose(out, ref)

    def test_matrix_spmv_like_kernel(self):
        """Order-2 sparse tensor times a vectorized factor (SpMM-like)."""
        M = random_sparse_tensor((20, 16), density=0.1, seed=2)
        X = random_dense_matrix(16, 7, seed=3)
        out, _ = execute_kernel("ij,jr->ir", [M, X])
        np.testing.assert_allclose(out, M.to_dense() @ X.data, atol=1e-12)

    def test_full_contraction_to_scalar(self, random_coo3):
        """All indices contracted: the output is a 0-d tensor."""
        u = random_dense_matrix(random_coo3.shape[0], 1, seed=0)
        v = random_dense_matrix(random_coo3.shape[1], 1, seed=1)
        w = random_dense_matrix(random_coo3.shape[2], 1, seed=2)
        kernel_spec = "ijk,ir,jr,kr->r"
        out, _ = execute_kernel(kernel_spec, [random_coo3, u, v, w])
        ref = np.einsum(
            "ijk,ir,jr,kr->r", random_coo3.to_dense(), u.data, v.data, w.data
        )
        np.testing.assert_allclose(out, ref)

    def test_counter_records_work(self, mttkrp_setup):
        kernel, tensors = mttkrp_setup
        counter = OpCounter()
        schedule = SpTTNScheduler(kernel).schedule()
        run_nest(kernel, tensors, schedule.loop_nest, counter=counter)
        assert counter.flops > 0
        assert sum(counter.kernel_calls.values()) > 0

    def test_execute_kernel_convenience(self, mttkrp_setup):
        kernel, tensors = mttkrp_setup
        expected = reference_output(kernel, tensors)
        out, schedule = execute_kernel(
            "ijk,ja,ka->ia", [tensors["T"], tensors["B"], tensors["C"]]
        )
        np.testing.assert_allclose(out, expected, atol=1e-10)
        assert schedule.max_buffer_dimension() <= 2
