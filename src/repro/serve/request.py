"""Contraction requests: the unit of work the serving layer accepts.

A :class:`ContractionRequest` is a self-contained description of one SpTTN
contraction — an einsum-style specification plus its concrete operands —
exactly the inputs :func:`repro.kernels.build_kernel` takes.  The named
helpers build requests for the paper's four kernel families (MTTKRP, TTMc,
TTTP, TTTc) through the same ``*_spec`` generators the kernel modules use,
so a request is nothing more privileged than a deferred ``build_kernel``
call: anything expressible as a spec string can be served.

Requests are validated eagerly by :meth:`ContractionRequest.build` (the
service calls it at admission time): the spec must parse against the
operands, which catches malformed specs, shape mismatches and missing
dimensions *before* the request enters the queue.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.expr import SpTTNKernel
from repro.engine.executor import TensorLike
from repro.kernels.mttkrp import mttkrp_spec
from repro.kernels.spttn import build_kernel, sparse_order_of
from repro.kernels.ttmc import all_mode_ttmc_spec, ttmc_spec
from repro.kernels.tttc import tttc_spec
from repro.kernels.tttp import tttp_spec
from repro.sptensor.dense import DenseTensor

DenseLike = Union[DenseTensor, np.ndarray]


# eq=False: the generated __eq__ would compare operand tuples containing
# ndarrays (ambiguous truth value) and sink __hash__; identity semantics
# are the right ones for requests anyway (futures are keyed by submission).
@dataclass(eq=False)
class ContractionRequest:
    """One contraction to serve: a spec string plus concrete operands.

    Attributes
    ----------
    spec:
        Einsum-style kernel specification, e.g. ``"ijk,ja,ka->ia"``.
    operands:
        Concrete operands in spec order (exactly one sparse tensor).
    names:
        Optional operand names (defaults as in ``parse_kernel``).
    engine:
        Per-request engine override (``None`` = the service's engine).
    kind:
        Label of the kernel family ("mttkrp", "ttmc", "tttp", "tttc",
        "spec", ...); informational — used by stats and the load driver.
    deadline_ms:
        Optional latency budget in milliseconds.  The clock starts when
        the request is admitted (or, through the daemon, when it is
        received), covers queue wait and execution, and an expiration
        resolves the future with a ``timeout``-coded
        :class:`~repro.serve.service.RequestFailed` instead of a result.
    """

    spec: str
    operands: Tuple[TensorLike, ...]
    names: Optional[Tuple[str, ...]] = None
    engine: Optional[str] = None
    kind: str = "spec"
    deadline_ms: Optional[float] = None
    _built: Optional[Tuple[SpTTNKernel, Dict[str, TensorLike]]] = field(
        default=None, repr=False
    )

    def __post_init__(self) -> None:
        self.operands = tuple(self.operands)
        if self.names is not None:
            self.names = tuple(self.names)

    def build(self) -> Tuple[SpTTNKernel, Dict[str, TensorLike]]:
        """Parse (once) into a kernel and its operand mapping; may raise."""
        if self._built is None:
            self._built = build_kernel(self.spec, self.operands, names=self.names)
        return self._built


def _named(
    kind: str,
    spec: str,
    operands: Sequence[TensorLike],
    engine: Optional[str],
    deadline_ms: Optional[float] = None,
) -> ContractionRequest:
    return ContractionRequest(
        spec=spec,
        operands=tuple(operands),
        engine=engine,
        kind=kind,
        deadline_ms=deadline_ms,
    )


def mttkrp_request(
    tensor: TensorLike,
    factors: Sequence[DenseLike],
    mode: int = 0,
    engine: Optional[str] = None,
) -> ContractionRequest:
    """Mode-*mode* MTTKRP request (*factors* exclude the target mode).

    Examples
    --------
    >>> T = random_sparse_tensor((50, 40, 30), nnz=500, seed=0)
    >>> B, C = np.ones((40, 8)), np.ones((30, 8))
    >>> request = mttkrp_request(T, [B, C], mode=0)
    >>> request.spec
    'ijk,jr,kr->ir'
    >>> service.submit(request).result().shape
    (50, 8)
    """
    order = sparse_order_of(tensor)
    return _named(
        "mttkrp", mttkrp_spec(order, mode), [tensor, *factors], engine
    )


def ttmc_request(
    tensor: TensorLike,
    factors: Sequence[DenseLike],
    mode: int = 0,
    engine: Optional[str] = None,
) -> ContractionRequest:
    """Mode-*mode* TTMc request (*factors* exclude the target mode).

    Examples
    --------
    >>> request = ttmc_request(T, [B, C], mode=0)   # order-3 T: ijk,jr,ks->irs
    >>> service.submit(request).result().shape
    (50, 8, 8)
    """
    order = sparse_order_of(tensor)
    return _named("ttmc", ttmc_spec(order, mode), [tensor, *factors], engine)


def all_mode_ttmc_request(
    tensor: TensorLike,
    factors: Sequence[DenseLike],
    engine: Optional[str] = None,
) -> ContractionRequest:
    """All-mode TTMc request (one factor per mode, every mode contracted)."""
    order = sparse_order_of(tensor)
    return _named("ttmc", all_mode_ttmc_spec(order), [tensor, *factors], engine)


def tttp_request(
    tensor: TensorLike,
    factors: Sequence[DenseLike],
    engine: Optional[str] = None,
) -> ContractionRequest:
    """TTTP request (one factor per mode, sparse-pattern output).

    Examples
    --------
    >>> request = tttp_request(T, [A, B, C])        # ijk,ir,jr,kr->ijk
    >>> service.submit(request).result().nnz == T.nnz
    True
    """
    order = sparse_order_of(tensor)
    return _named("tttp", tttp_spec(order), [tensor, *factors], engine)


def tttc_request(
    tensor: TensorLike,
    cores: Sequence[DenseLike],
    removed_core: Optional[int] = None,
    engine: Optional[str] = None,
) -> ContractionRequest:
    """TTTc request (*cores* exclude the removed core)."""
    order = sparse_order_of(tensor)
    if removed_core is None:
        removed_core = order - 1
    return _named(
        "tttc", tttc_spec(order, removed_core), [tensor, *cores], engine
    )
