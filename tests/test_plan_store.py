"""Disk-backed plan store: persistence, tolerance and warm starts.

Covers the PR-9 acceptance criteria: schedule round-trips through the
store, a second "process" (fresh in-memory cache) warm-starts with zero
schedule searches, corrupt/truncated/mismatched entries degrade to misses
(never errors), concurrent writers cannot produce torn files, and the
per-plan timing registry stays bounded.
"""

from __future__ import annotations

import json
import threading

import numpy as np
import pytest

from repro.core.expr import parse_kernel
from repro.engine.keys import canonical_key, key_digest
from repro.engine.plan_cache import (
    PlanCache,
    PlanTimings,
    cached_schedule,
    schedule_key,
    schedule_search_count,
)
from repro.engine.plan_store import (
    PLAN_STORE_ENV,
    STORE_VERSION,
    PlanStore,
    default_plan_store,
    plan_store_snapshot,
    schedule_from_payload,
    schedule_payload,
)
from repro.sptensor import random_dense_matrix, random_sparse_tensor


def _mttkrp_kernel(seed: int = 0, rank: int = 4):
    T = random_sparse_tensor((30, 25, 20), nnz=400, seed=seed)
    B = random_dense_matrix(25, rank, seed=seed + 1)
    C = random_dense_matrix(20, rank, seed=seed + 2)
    return parse_kernel("ijk,ja,ka->ia", [T, B, C], names=["T", "B", "C"])


# --------------------------------------------------------------------------- #
# Canonical keys
# --------------------------------------------------------------------------- #
class TestCanonicalKeys:
    def test_numpy_scalars_serialize_like_python_scalars(self):
        mixed = (1, np.int64(5), ("a", np.float64(2.5)), np.bool_(True), None)
        plain = (1, 5, ("a", 2.5), True, None)
        assert canonical_key(mixed) == canonical_key(plain)
        assert key_digest(mixed) == key_digest(plain)

    def test_canonical_key_is_json(self):
        doc = json.loads(canonical_key((1, ("x", 2.0), {"b": 2, "a": 1})))
        assert doc == [1, ["x", 2.0], {"a": 1, "b": 2}]

    def test_digest_is_stable_hex(self):
        digest = key_digest(("schedule", "anything"))
        assert len(digest) == 16
        assert digest == key_digest(("schedule", "anything"))
        assert digest != key_digest(("schedule", "other"))


# --------------------------------------------------------------------------- #
# Round trips
# --------------------------------------------------------------------------- #
class TestRoundTrip:
    def test_schedule_payload_round_trips(self):
        kernel = _mttkrp_kernel()
        schedule = cached_schedule(kernel, cache=PlanCache(), store=False)
        restored = schedule_from_payload(kernel, schedule_payload(schedule))
        assert restored.loop_nest.order == schedule.loop_nest.order
        assert restored.loop_nest.path.terms == schedule.loop_nest.path.terms
        assert restored.cost_value == schedule.cost_value
        assert restored.flop_estimate == schedule.flop_estimate

    def test_payload_survives_json(self, tmp_path):
        kernel = _mttkrp_kernel()
        schedule = cached_schedule(kernel, cache=PlanCache(), store=False)
        text = json.dumps(schedule_payload(schedule))
        restored = schedule_from_payload(kernel, json.loads(text))
        assert restored.loop_nest.order == schedule.loop_nest.order

    def test_store_get_put(self, tmp_path):
        store = PlanStore(tmp_path / "store")
        kernel = _mttkrp_kernel()
        key = schedule_key(kernel, 2, 1.5, 5000, True)
        assert store.get(key) is None  # cold
        schedule = cached_schedule(kernel, cache=PlanCache(), store=False)
        assert store.put(key, schedule_payload(schedule))
        payload = store.get(key)
        assert payload is not None
        restored = schedule_from_payload(kernel, payload)
        assert restored.loop_nest.order == schedule.loop_nest.order
        stats = store.stats()
        assert stats["entries"] == 1
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["writes"] == 1 and stats["errors"] == 0


# --------------------------------------------------------------------------- #
# Warm starts
# --------------------------------------------------------------------------- #
class TestWarmStart:
    def test_second_process_pays_zero_searches(self, tmp_path):
        """A fresh in-memory cache sharing the store skips search entirely."""
        store = PlanStore(tmp_path / "store")
        kernel = _mttkrp_kernel()

        before = schedule_search_count()
        first = cached_schedule(kernel, cache=PlanCache(), store=store)
        assert schedule_search_count() == before + 1  # cold: one real search

        # a "restarted process": new schedule cache, same store directory
        warm = cached_schedule(kernel, cache=PlanCache(), store=store)
        assert schedule_search_count() == before + 1  # zero further searches
        assert store.stats()["hits"] == 1
        assert warm.loop_nest.order == first.loop_nest.order
        assert warm.loop_nest.path.terms == first.loop_nest.path.terms

    def test_default_store_resolves_from_env(self, tmp_path, monkeypatch):
        monkeypatch.delenv(PLAN_STORE_ENV, raising=False)
        assert default_plan_store() is None
        assert plan_store_snapshot() == {"configured": False}

        monkeypatch.setenv(PLAN_STORE_ENV, str(tmp_path / "envstore"))
        store = default_plan_store()
        assert store is not None
        assert default_plan_store() is store  # cached while env unchanged

        kernel = _mttkrp_kernel()
        before = schedule_search_count()
        cached_schedule(kernel, cache=PlanCache())  # store=True -> env store
        cached_schedule(kernel, cache=PlanCache())
        assert schedule_search_count() == before + 1
        snap = plan_store_snapshot()
        assert snap["configured"] is True
        assert snap["entries"] == 1 and snap["hits"] == 1

    def test_store_false_disables_persistence(self, tmp_path, monkeypatch):
        monkeypatch.setenv(PLAN_STORE_ENV, str(tmp_path / "unused"))
        kernel = _mttkrp_kernel()
        cached_schedule(kernel, cache=PlanCache(), store=False)
        assert len(default_plan_store()) == 0


# --------------------------------------------------------------------------- #
# Tolerance: every failure mode is a miss, never an exception
# --------------------------------------------------------------------------- #
class TestTolerance:
    def _populated(self, tmp_path):
        store = PlanStore(tmp_path / "store")
        kernel = _mttkrp_kernel()
        key = schedule_key(kernel, 2, 1.5, 5000, True)
        schedule = cached_schedule(kernel, cache=PlanCache(), store=False)
        store.put(key, schedule_payload(schedule))
        (entry,) = [
            p for p in store.root.glob("*.json")
            if p.name != "calibration.json"
        ]
        return store, kernel, key, entry

    def test_version_mismatch_falls_back_to_search(self, tmp_path):
        store, kernel, key, entry = self._populated(tmp_path)
        doc = json.loads(entry.read_text())
        doc["version"] = STORE_VERSION + 1
        entry.write_text(json.dumps(doc))

        assert store.get(key) is None
        before = schedule_search_count()
        schedule = cached_schedule(kernel, cache=PlanCache(), store=store)
        assert schedule is not None
        assert schedule_search_count() == before + 1  # fell back to search
        # ... and the fresh result overwrote the stale entry
        assert json.loads(entry.read_text())["version"] == STORE_VERSION

    def test_truncated_file_falls_back(self, tmp_path):
        store, kernel, key, entry = self._populated(tmp_path)
        entry.write_text(entry.read_text()[: len(entry.read_text()) // 2])
        assert store.get(key) is None
        assert store.stats()["errors"] == 1
        schedule = cached_schedule(kernel, cache=PlanCache(), store=store)
        assert schedule is not None

    def test_foreign_key_behind_same_digest_is_a_miss(self, tmp_path):
        store, kernel, key, entry = self._populated(tmp_path)
        doc = json.loads(entry.read_text())
        doc["key"] = canonical_key(("some", "other", "key"))
        entry.write_text(json.dumps(doc))
        assert store.get(key) is None
        assert store.stats()["errors"] == 1

    def test_unrebuildable_payload_is_reclassified(self, tmp_path):
        """A valid envelope whose payload fails reconstruction => miss."""
        store, kernel, key, entry = self._populated(tmp_path)
        doc = json.loads(entry.read_text())
        doc["payload"]["order"] = [["bogus", "indices"]]
        entry.write_text(json.dumps(doc))
        before = schedule_search_count()
        schedule = cached_schedule(kernel, cache=PlanCache(), store=store)
        assert schedule is not None
        assert schedule_search_count() == before + 1
        stats = store.stats()
        assert stats["hits"] == 0 and stats["misses"] == 1  # reclassified

    def test_calibration_corruption_returns_none(self, tmp_path):
        store = PlanStore(tmp_path / "store")
        assert store.load_calibration() is None
        assert store.save_calibration({"loop_overhead": 1e-7})
        assert store.load_calibration() == {"loop_overhead": 1e-7}
        (store.root / "calibration.json").write_text("{not json")
        assert store.load_calibration() is None

    def test_clear_keeps_calibration(self, tmp_path):
        store, kernel, key, entry = self._populated(tmp_path)
        store.save_calibration({"scalar_op": 2e-8})
        assert store.clear() == 1
        assert len(store) == 0
        assert store.load_calibration() == {"scalar_op": 2e-8}


# --------------------------------------------------------------------------- #
# Concurrency
# --------------------------------------------------------------------------- #
class TestConcurrentWriters:
    def test_racing_writers_never_produce_torn_files(self, tmp_path):
        store = PlanStore(tmp_path / "store")
        kernel = _mttkrp_kernel()
        key = schedule_key(kernel, 2, 1.5, 5000, True)
        payload = schedule_payload(
            cached_schedule(kernel, cache=PlanCache(), store=False)
        )

        errors: list = []

        def writer():
            try:
                for _ in range(25):
                    store.put(key, payload)
                    got = store.get(key)
                    if got is not None and got != payload:
                        errors.append("reader observed a foreign payload")
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        threads = [threading.Thread(target=writer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        # exactly one complete, valid document survives
        assert len(store) == 1
        assert store.get(key) == payload
        assert not list(store.root.glob("*.tmp"))  # no leaked temp files


# --------------------------------------------------------------------------- #
# Bounded timings registry
# --------------------------------------------------------------------------- #
class TestBoundedTimings:
    def test_lru_eviction_over_cap(self):
        timings = PlanTimings(max_records=4)
        for i in range(6):
            timings.record(("plan", i), "lowered", 0.01)
        assert len(timings) == 4
        assert timings.stats()["evictions"] == 2
        # the oldest signatures aged out, the newest survive
        digests = {row["digest"] for row in timings.snapshot()}
        assert key_digest(("plan", 0)) not in digests
        assert key_digest(("plan", 5)) in digests

    def test_eviction_drops_orphaned_features(self):
        timings = PlanTimings(max_records=2)
        timings.record(("plan", 0), "lowered", 0.01)
        timings.record_features(("plan", 0), (1.0, 0.0, 1.0, 2.0, 0.0), 0.01)
        timings.record(("plan", 1), "lowered", 0.01)
        timings.record(("plan", 2), "lowered", 0.01)  # evicts plan 0
        assert timings.features_of(("plan", 0)) is None
        assert timings.stats()["evictions"] == 1

    def test_recent_signature_survives_by_recency(self):
        timings = PlanTimings(max_records=2)
        timings.record(("plan", 0), "lowered", 0.01)
        timings.record(("plan", 1), "lowered", 0.01)
        timings.record(("plan", 0), "lowered", 0.01)  # refresh 0
        timings.record(("plan", 2), "lowered", 0.01)  # evicts 1, not 0
        digests = {row["digest"] for row in timings.snapshot()}
        assert key_digest(("plan", 0)) in digests
        assert key_digest(("plan", 1)) not in digests

    def test_phase_rows_count_separately(self):
        timings = PlanTimings(max_records=8)
        timings.record(("plan", 0), "lowered", 0.02, phase="prepare")
        timings.record(("plan", 0), "lowered", 0.01, phase="execute")
        rows = timings.snapshot()
        assert {row["phase"] for row in rows} == {"prepare", "execute"}
        assert timings.training_rows() == []  # no features registered yet
        timings.record_features(("plan", 0), (1.0, 0.0, 1.0, 2.0, 0.0))
        ((vector, seconds),) = timings.training_rows()
        assert seconds == pytest.approx(0.01)  # execute only, never prepare
