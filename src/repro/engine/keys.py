"""Canonical serialization of plan/schedule cache keys.

The structural keys built in :mod:`repro.engine.plan_cache`
(:func:`~repro.engine.plan_cache.plan_key`,
:func:`~repro.engine.plan_cache.schedule_key`) are nested tuples of
strings, numbers and booleans — hashable and perfectly fine as
*in-process* dictionary keys.  They are not, however, stable *between*
processes when rendered with ``repr()``: sparsity statistics flow out of
NumPy reductions as ``np.int64`` scalars, whose repr changed between
NumPy 1.x (``5``) and 2.x (``np.int64(5)``), and a future key element
could pick up any other repr quirk.  Anything persisted across processes
(the on-disk plan store of :mod:`repro.engine.plan_store`, the timing
digests correlated across daemon snapshots) therefore needs one
*canonical* serialization, defined here and shared by every consumer:

* :func:`canonical_key` — the key rendered as compact, sort-keyed JSON
  with NumPy scalars normalized to their Python equivalents.  Two keys
  that compare equal always serialize identically, in every process, on
  every supported NumPy version.
* :func:`key_digest` — a short ``blake2s`` hex digest of that canonical
  form, used as the store's filename stem and as the stable ``digest``
  column of the per-plan timing snapshots.

This module sits below the cache layer on purpose: both
:mod:`repro.engine.plan_cache` and :mod:`repro.engine.plan_store` import
it, neither imports the other through it.
"""

from __future__ import annotations

import hashlib
import json
from typing import Hashable, Tuple

import numpy as np

PlanKey = Tuple[Hashable, ...]


def _jsonable(value: object) -> object:
    """Normalize one key element to a canonical JSON-encodable value.

    Tuples and lists both become JSON arrays (keys only ever use tuples,
    so no aliasing arises); NumPy scalars become their Python
    equivalents; dicts are rekeyed with string keys (``json.dumps`` with
    ``sort_keys`` then fixes their order).  Unknown leaf types fall back
    to ``repr`` — not canonical, but such values never appear in keys
    built by this library, and a stable-enough fallback beats raising
    inside introspection paths.
    """
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.bool_):
        return bool(value)
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (tuple, list)):
        return [_jsonable(item) for item in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    return repr(value)


def canonical_key(key: object) -> str:
    """The canonical, process-independent serialization of a cache key."""
    return json.dumps(
        _jsonable(key), sort_keys=True, separators=(",", ":")
    )


def key_digest(key: object, digest_size: int = 8) -> str:
    """Short stable hex digest of :func:`canonical_key` (blake2s)."""
    return hashlib.blake2s(
        canonical_key(key).encode("utf-8"), digest_size=digest_size
    ).hexdigest()
