"""Serving layer: batching, futures, admission control, determinism.

The central contract under test: batched serving — any grouping, any worker
count — produces results *bit-identical* to executing the same requests
sequentially one at a time through the ordinary library path.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.plan_cache import (
    clear_caches,
    default_schedule_cache,
)
from repro.runtime import shm
from repro.serve import (
    MIXES,
    AdmissionError,
    ContractionRequest,
    ContractionService,
    execute_naive,
    execute_sequential,
    mttkrp_request,
    scenario_mix,
    ttmc_request,
    tttp_request,
)
from repro.sptensor import (
    COOTensor,
    DenseTensor,
    random_dense_matrix,
    random_sparse_tensor,
)


def _assert_outputs_equal(result, expected) -> None:
    if isinstance(expected, COOTensor):
        assert isinstance(result, COOTensor)
        np.testing.assert_array_equal(result.indices, expected.indices)
        np.testing.assert_array_equal(result.values, expected.values)
    else:
        np.testing.assert_array_equal(np.asarray(result), np.asarray(expected))


@pytest.fixture
def serve_tensor():
    return random_sparse_tensor((16, 14, 12), nnz=140, seed=21)


@pytest.fixture
def serve_factors(serve_tensor):
    return [
        random_dense_matrix(dim, 5, seed=mode).data
        for mode, dim in enumerate(serve_tensor.shape)
    ]


class TestRequests:
    def test_named_builders_round_trip(self, serve_tensor, serve_factors):
        for build, kind in (
            (mttkrp_request, "mttkrp"),
            (ttmc_request, "ttmc"),
        ):
            request = build(serve_tensor, serve_factors[1:], mode=0)
            assert request.kind == kind
            kernel, mapping = request.build()
            assert kernel.sparse_operand.name in mapping

    def test_build_is_cached(self, serve_tensor, serve_factors):
        request = tttp_request(serve_tensor, serve_factors)
        kernel1, _ = request.build()
        kernel2, _ = request.build()
        assert kernel1 is kernel2

    def test_arbitrary_spec_request(self, serve_tensor, serve_factors):
        request = ContractionRequest(
            spec="ijk,ja,ka->ia", operands=(serve_tensor, *serve_factors[1:])
        )
        service = ContractionService(workers=0)
        out = service.run([request])[0]
        expected = execute_sequential([request])[0]
        _assert_outputs_equal(out, expected)


class TestBatching:
    def test_identical_structure_forms_one_batch(self, serve_tensor, serve_factors):
        requests = [
            mttkrp_request(serve_tensor, serve_factors[1:], mode=0)
            for _ in range(6)
        ]
        misses_before = default_schedule_cache().stats()["misses"]
        service = ContractionService(workers=0)
        results = service.run(requests)
        assert service.stats.batches == 1
        assert service.stats.amortized == 5
        # one schedule search served the whole batch (stats survive the
        # autouse cache clear, so compare deltas)
        assert default_schedule_cache().stats()["misses"] == misses_before + 1
        for r in results[1:]:
            _assert_outputs_equal(r, results[0])

    def test_distinct_structures_form_distinct_batches(
        self, serve_tensor, serve_factors
    ):
        requests = [
            mttkrp_request(serve_tensor, serve_factors[1:], mode=0),
            ttmc_request(serve_tensor, serve_factors[1:], mode=0),
            mttkrp_request(serve_tensor, serve_factors[1:], mode=0),
        ]
        service = ContractionService(workers=0)
        service.run(requests)
        assert service.stats.batches == 2
        assert service.stats.amortized == 1

    def test_engine_override_splits_batches(self, serve_tensor, serve_factors):
        requests = [
            mttkrp_request(serve_tensor, serve_factors[1:], engine="lowered"),
            mttkrp_request(serve_tensor, serve_factors[1:], engine="interpret"),
        ]
        service = ContractionService(workers=0)
        results = service.run(requests)
        assert service.stats.batches == 2
        # engines agree to vectorized-summation reassociation (~1 ulp)
        np.testing.assert_allclose(
            np.asarray(results[0]), np.asarray(results[1]), rtol=1e-12, atol=1e-14
        )


class TestFutures:
    def test_results_resolve_in_submission_order(self, serve_tensor, serve_factors):
        requests = scenario_mix(10, mix="mixed", seed=3)
        service = ContractionService(workers=0)
        futures = service.submit_many(requests)
        assert all(not f.done for f in futures)
        service.flush()
        assert all(f.done for f in futures)
        expected = execute_sequential(requests)
        for future, exp in zip(futures, expected):
            _assert_outputs_equal(future.result(), exp)

    def test_result_triggers_flush(self, serve_tensor, serve_factors):
        service = ContractionService(workers=0)
        future = service.submit(
            mttkrp_request(serve_tensor, serve_factors[1:], mode=0)
        )
        assert not future.done
        out = future.result()  # implicit flush
        assert future.done and service.pending == 0
        assert out.shape == (serve_tensor.shape[0], 5)


class TestAdmission:
    def test_queue_bound(self, serve_tensor, serve_factors):
        service = ContractionService(workers=0, max_pending=2)
        request = mttkrp_request(serve_tensor, serve_factors[1:], mode=0)
        service.submit(request)
        service.submit(request)
        with pytest.raises(AdmissionError, match="queue full"):
            service.submit(request)
        assert service.stats.rejected == 1
        service.flush()
        service.submit(request)  # room again after the flush

    def test_invalid_spec_rejected_at_submission(self, serve_tensor):
        service = ContractionService(workers=0)
        bad = ContractionRequest(spec="ijk,xy->zz", operands=(serve_tensor,))
        with pytest.raises(AdmissionError, match="invalid request"):
            service.submit(bad)
        assert service.stats.rejected == 1
        assert service.pending == 0

    def test_shape_mismatch_rejected_at_submission(self, serve_tensor):
        wrong = np.ones((serve_tensor.shape[1] + 1, 4))
        service = ContractionService(workers=0)
        with pytest.raises(AdmissionError):
            service.submit(
                ContractionRequest(
                    spec="ijk,ja->ia", operands=(serve_tensor, wrong)
                )
            )

    def test_execution_failure_isolated_to_its_future(
        self, serve_tensor, serve_factors
    ):
        good = mttkrp_request(serve_tensor, serve_factors[1:], mode=0)
        bad = mttkrp_request(
            serve_tensor, serve_factors[1:], mode=0, engine="no-such-engine"
        )
        service = ContractionService(workers=0)
        f_good, f_bad, f_good2 = service.submit_many([good, bad, good])
        service.flush()
        _assert_outputs_equal(f_good.result(), f_good2.result())
        with pytest.raises(RuntimeError, match="no-such-engine"):
            f_bad.result()
        assert service.stats.served == 2
        assert service.stats.failed == 1


class TestParallelServing:
    def test_parallel_equals_serial_bitwise(self):
        requests = scenario_mix(12, mix="mixed", seed=5)
        serial = ContractionService(workers=0).run(requests)
        clear_caches()
        parallel = ContractionService(workers=2).run(requests)
        for a, b in zip(parallel, serial):
            _assert_outputs_equal(a, b)

    def test_shared_operands_are_broadcast(self, serve_tensor, serve_factors):
        # six requests sharing one factor set and one sparse tensor: both
        # must ride shared memory, not per-task pickles
        requests = [
            mttkrp_request(serve_tensor, serve_factors[1:], mode=0)
            for _ in range(6)
        ]
        service = ContractionService(workers=2)
        results = service.run(requests)
        if shm._shm is not None:
            sparse_bytes = (
                serve_tensor.indices.nbytes + serve_tensor.values.nbytes
            )
            dense_bytes = sum(f.nbytes for f in serve_factors[1:])
            assert service.stats.shared_bytes >= sparse_bytes + dense_bytes
        for r in results[1:]:
            _assert_outputs_equal(r, results[0])

    def test_shared_dense_tensor_wrappers_stay_bitwise(self, serve_tensor):
        # DenseTensor-wrapped operands lose their wrapper through the shm
        # broadcast (workers receive the bare float64 array); results must
        # still match serial serving bit for bit
        factors = [
            DenseTensor(
                np.random.default_rng(m).random((serve_tensor.shape[m], 4)),
                name=f"F{m}",
            )
            for m in range(3)
        ]
        requests = [
            mttkrp_request(serve_tensor, factors[1:], mode=0) for _ in range(4)
        ]
        serial = ContractionService(workers=0).run(requests)
        clear_caches()
        parallel = ContractionService(workers=2).run(requests)
        for a, b in zip(parallel, serial):
            _assert_outputs_equal(a, b)


class TestServeProperties:
    """Hypothesis: any interleaved request mix serves bit-identically to
    sequential one-at-a-time execution, on both runtime tiers."""

    @settings(max_examples=8)
    @given(
        seed=st.integers(0, 1000),
        mix=st.sampled_from(MIXES),
        n=st.integers(2, 8),
    )
    def test_serving_matches_sequential(self, seed, mix, n):
        requests = scenario_mix(n, mix=mix, seed=seed)
        clear_caches()
        expected = execute_sequential(requests)
        for workers in (0, 2):
            clear_caches()
            service = ContractionService(workers=workers)
            results = service.run(requests)
            assert service.stats.served == n
            for result, exp in zip(results, expected):
                _assert_outputs_equal(result, exp)


class TestReferencePaths:
    def test_naive_matches_sequential(self):
        requests = scenario_mix(6, mix="mixed", seed=11)
        naive = execute_naive(requests)
        sequential = execute_sequential(requests)
        for a, b in zip(naive, sequential):
            _assert_outputs_equal(a, b)
