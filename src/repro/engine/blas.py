"""Vectorized inner kernels (the reproduction's BLAS layer).

The paper offloads the innermost independent dense loops of a fused loop
nest to BLAS routines (xAXPY, xGER, xGEMV, ...).  In this pure-Python
reproduction the same role is played by a single vectorized
``numpy.einsum`` call over the free (not-yet-iterated) indices of one
contraction term; NumPy dispatches the heavy cases to its own compiled BLAS.
This module builds those calls, classifies them with BLAS-style names for
the operation counters, and exposes tiny wrappers for the classic level-1/2
kernels used by the specialized baselines.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.util.counters import OpCounter


def classify_call(
    lhs_free: Sequence[str], rhs_free: Sequence[str], out_free: Sequence[str]
) -> str:
    """BLAS-style name for a vectorized contraction over free indices.

    The classification follows the shapes of the operands after all bound
    indices have been fixed: scalar*vector accumulations are ``axpy``,
    vector·vector reductions are ``dot``, outer products are ``ger``,
    matrix-vector contractions are ``gemv``, matrix-matrix ``gemm`` and
    anything of higher order is ``tensor``.
    """
    nl, nr, no = len(lhs_free), len(rhs_free), len(out_free)
    ranks = sorted((nl, nr))
    if no == 0 and ranks == [1, 1]:
        return "dot"
    if ranks == [0, 1] and no == 1:
        return "axpy"
    if ranks == [1, 1] and no == 2:
        return "ger"
    if ranks == [1, 2] and no == 1:
        return "gemv"
    if ranks == [2, 2] and no == 2:
        return "gemm"
    if max(nl, nr, no) == 0:
        return "scalar"
    return "tensor"


def _subscripts(
    lhs_free: Sequence[str], rhs_free: Sequence[str], out_free: Sequence[str]
) -> str:
    """Build an einsum subscripts string over arbitrary index names."""
    letters: Dict[str, str] = {}
    alphabet = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"
    for name in tuple(lhs_free) + tuple(rhs_free) + tuple(out_free):
        if name not in letters:
            letters[name] = alphabet[len(letters)]
    lhs = "".join(letters[n] for n in lhs_free)
    rhs = "".join(letters[n] for n in rhs_free)
    out = "".join(letters[n] for n in out_free)
    return f"{lhs},{rhs}->{out}"


def vectorized_contract(
    lhs_view: np.ndarray,
    rhs_view: np.ndarray,
    out_array: np.ndarray,
    out_key,
    lhs_free: Sequence[str],
    rhs_free: Sequence[str],
    out_free: Sequence[str],
    counter: Optional[OpCounter] = None,
) -> None:
    """Accumulate ``out_array[out_key] += contract(lhs, rhs)``.

    The free index lists name the axes of the corresponding views (and of
    the selected output region); indices present in the inputs but absent
    from *out_free* are summed.  The output is addressed as array-plus-key
    (basic indexing) so that fully-bound scalar targets are writable.  The
    call is recorded in *counter* with a BLAS-style classification and a
    scalar multiply-add count equal to ``2 * |iteration space|``.
    """
    spec = _subscripts(lhs_free, rhs_free, out_free)
    result = np.einsum(spec, lhs_view, rhs_view)
    out_array[out_key] += result
    if counter is not None:
        space = 1
        seen = {}
        for names, view in ((lhs_free, lhs_view), (rhs_free, rhs_view)):
            for axis, name in enumerate(names):
                if name not in seen:
                    seen[name] = int(view.shape[axis])
        for name in out_free:
            seen.setdefault(name, 1)
        for size in seen.values():
            space *= size
        counter.add_flops(2 * space)
        counter.add_call(classify_call(lhs_free, rhs_free, out_free))


# --------------------------------------------------------------------------- #
# Specialized contraction kernels (Algorithm 2 preprocessing stage)
# --------------------------------------------------------------------------- #
def specialize_contraction(
    lhs_free: Sequence[str], rhs_free: Sequence[str], out_free: Sequence[str]
):
    """Build a specialized accumulation kernel for one offload site.

    The paper's runtime preprocesses the fused loop nest once, binding each
    offloadable contraction to a BLAS call (Algorithm 2, stage 1).  This is
    the analogous step here: given the static free-index lists of the two
    operands and the output at an offload site, return
    ``(kernel, name)`` where ``kernel(lhs, rhs, out_array, out_key) -> flops``
    accumulates ``out_array[out_key] += contract(lhs, rhs)`` using a direct
    NumPy expression for the common BLAS-1/2/3 shapes and a cached einsum
    for everything else.  Specialization removes all per-call string
    building, shape classification and dispatch from the execution hot loop.
    """
    lhs_free = tuple(lhs_free)
    rhs_free = tuple(rhs_free)
    out_free = tuple(out_free)
    name = classify_call(lhs_free, rhs_free, out_free)

    # scalar * scalar -> scalar
    if not lhs_free and not rhs_free and not out_free:
        def k_scalar(lhs, rhs, out, key):
            out[key] += float(lhs) * float(rhs)
            return 2

        return k_scalar, name

    # scalar * vector -> vector (axpy), either operand order
    if not lhs_free and rhs_free == out_free and len(out_free) >= 1:
        def k_axpy_l(lhs, rhs, out, key):
            out[key] += float(lhs) * rhs
            return 2 * rhs.size

        return k_axpy_l, name
    if not rhs_free and lhs_free == out_free and len(out_free) >= 1:
        def k_axpy_r(lhs, rhs, out, key):
            out[key] += float(rhs) * lhs
            return 2 * lhs.size

        return k_axpy_r, name

    # vector . vector -> scalar (dot)
    if lhs_free == rhs_free and len(lhs_free) == 1 and not out_free:
        def k_dot(lhs, rhs, out, key):
            out[key] += lhs @ rhs
            return 2 * lhs.size

        return k_dot, name

    # elementwise multiply (same free indices kept in the output)
    if lhs_free == rhs_free == out_free and len(out_free) >= 1:
        def k_hadamard(lhs, rhs, out, key):
            out[key] += lhs * rhs
            return 2 * lhs.size

        return k_hadamard, name

    # vector x vector -> matrix (ger)
    if (
        len(lhs_free) == 1
        and len(rhs_free) == 1
        and out_free == lhs_free + rhs_free
    ):
        def k_ger(lhs, rhs, out, key):
            out[key] += np.multiply.outer(lhs, rhs)
            return 2 * lhs.size * rhs.size

        return k_ger, name
    if (
        len(lhs_free) == 1
        and len(rhs_free) == 1
        and out_free == rhs_free + lhs_free
    ):
        def k_ger_t(lhs, rhs, out, key):
            out[key] += np.multiply.outer(rhs, lhs)
            return 2 * lhs.size * rhs.size

        return k_ger_t, name

    # matrix-vector products: the vector's index is contracted away and the
    # matrix's other index is the output
    if (
        len(lhs_free) == 1
        and len(rhs_free) == 2
        and len(out_free) == 1
        and lhs_free[0] in rhs_free
        and lhs_free[0] not in out_free
        and out_free[0] in rhs_free
    ):
        contract_axis = rhs_free.index(lhs_free[0])

        def k_gemv_r(lhs, rhs, out, key):
            if contract_axis == 0:
                out[key] += lhs @ rhs
            else:
                out[key] += rhs @ lhs
            return 2 * rhs.size

        return k_gemv_r, name
    if (
        len(rhs_free) == 1
        and len(lhs_free) == 2
        and len(out_free) == 1
        and rhs_free[0] in lhs_free
        and rhs_free[0] not in out_free
        and out_free[0] in lhs_free
    ):
        contract_axis = lhs_free.index(rhs_free[0])

        def k_gemv_l(lhs, rhs, out, key):
            if contract_axis == 0:
                out[key] += rhs @ lhs
            else:
                out[key] += lhs @ rhs
            return 2 * lhs.size

        return k_gemv_l, name

    # general fallback: einsum with a precomputed subscripts string
    spec = _subscripts(lhs_free, rhs_free, out_free)
    dims_union = {}

    def k_einsum(lhs, rhs, out, key):
        out[key] += np.einsum(spec, lhs, rhs)
        for axes, view in ((lhs_free, lhs), (rhs_free, rhs)):
            for axis, nm in enumerate(axes):
                dims_union[nm] = view.shape[axis]
        space = 1
        for size in dims_union.values():
            space *= size
        dims_union.clear()
        return 2 * space

    return k_einsum, name


# --------------------------------------------------------------------------- #
# Classic level-1/2 wrappers used by the specialized (SPLATT-like) baseline
# --------------------------------------------------------------------------- #
def axpy(alpha: float, x: np.ndarray, y: np.ndarray, counter: Optional[OpCounter] = None) -> None:
    """``y += alpha * x`` (BLAS-1)."""
    y += alpha * x
    if counter is not None:
        counter.add_flops(2 * x.size)
        counter.add_call("axpy")


def dot(x: np.ndarray, y: np.ndarray, counter: Optional[OpCounter] = None) -> float:
    """Inner product (BLAS-1)."""
    if counter is not None:
        counter.add_flops(2 * x.size)
        counter.add_call("dot")
    return float(np.dot(x, y))


def ger(alpha: float, x: np.ndarray, y: np.ndarray, a: np.ndarray, counter: Optional[OpCounter] = None) -> None:
    """Rank-1 update ``A += alpha * outer(x, y)`` (BLAS-2)."""
    a += alpha * np.outer(x, y)
    if counter is not None:
        counter.add_flops(2 * x.size * y.size)
        counter.add_call("ger")


def gemv(a: np.ndarray, x: np.ndarray, y: np.ndarray, counter: Optional[OpCounter] = None) -> None:
    """``y += A @ x`` (BLAS-2)."""
    y += a @ x
    if counter is not None:
        counter.add_flops(2 * a.size)
        counter.add_call("gemv")
