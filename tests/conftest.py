"""Shared fixtures for the test suite.

All fixtures use small tensor sizes so the full suite runs in a few minutes;
correctness of the loop-nest machinery does not depend on scale.
"""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

import repro
from repro.core.calibrate import reset_calibration
from repro.core.expr import parse_kernel
from repro.engine.plan_cache import clear_caches, clear_plan_timings
from repro.sptensor import COOTensor, random_dense_matrix, random_sparse_tensor

# --------------------------------------------------------------------------- #
# Hypothesis settings profiles
# --------------------------------------------------------------------------- #
# Both profiles are *derandomized*: example generation is seeded from the
# test name, so a property-test run is reproducible locally and in CI (no
# flaky examples appearing only on one machine, no reliance on the example
# database).  ``ci`` is the default; select with HYPOTHESIS_PROFILE=dev for
# deeper local sweeps.
_COMMON = dict(
    derandomize=True,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
settings.register_profile("ci", max_examples=25, **_COMMON)
settings.register_profile("dev", max_examples=100, **_COMMON)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "ci"))


@pytest.fixture(autouse=True)
def _fresh_caches():
    """Drop the process-wide plan/schedule caches around every test.

    The caches are keyed structurally, so leaking a plan built by one test
    into another is normally harmless — but a test that mutates executor
    internals (or asserts on cold-start behaviour) must not observe state
    from an unrelated test.  Clearing on both sides keeps every test
    hermetic.

    The per-plan timing registry and the calibration state are global for
    the same reason the caches are, and are reset on both sides too — a
    test that installs measured coefficients must not change how every
    later test's scheduler ranks candidates.
    """
    clear_caches()
    clear_plan_timings()
    reset_calibration()
    yield
    clear_caches()
    clear_plan_timings()
    reset_calibration()


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def small_coo():
    """A tiny deterministic order-3 sparse tensor."""
    indices = [
        (0, 0, 0),
        (0, 1, 2),
        (1, 0, 1),
        (1, 2, 0),
        (2, 1, 1),
        (3, 2, 2),
        (3, 0, 0),
    ]
    values = [1.0, 2.0, -1.5, 0.5, 3.0, -2.0, 4.0]
    return COOTensor((4, 3, 3), indices, values)


@pytest.fixture
def random_coo3():
    """A random order-3 sparse tensor of moderate density."""
    return random_sparse_tensor((18, 15, 12), density=0.03, seed=7)


@pytest.fixture
def random_coo4():
    """A random order-4 sparse tensor."""
    return random_sparse_tensor((10, 9, 8, 7), density=0.02, seed=11)


@pytest.fixture
def mttkrp_setup(random_coo3):
    """(kernel, tensors dict) for an order-3 MTTKRP with R=5."""
    T = random_coo3
    B = random_dense_matrix(T.shape[1], 5, seed=1, name="B")
    C = random_dense_matrix(T.shape[2], 5, seed=2, name="C")
    kernel = parse_kernel("ijk,ja,ka->ia", [T, B, C], names=["T", "B", "C"])
    return kernel, {"T": T, "B": B, "C": C}


@pytest.fixture
def ttmc_setup(random_coo3):
    """(kernel, tensors dict) for an order-3 TTMc with R=4, S=5."""
    T = random_coo3
    U = random_dense_matrix(T.shape[1], 4, seed=3, name="U")
    V = random_dense_matrix(T.shape[2], 5, seed=4, name="V")
    kernel = parse_kernel("ijk,jr,ks->irs", [T, U, V], names=["T", "U", "V"])
    return kernel, {"T": T, "U": U, "V": V}


@pytest.fixture
def ttmc4_setup(random_coo4):
    """(kernel, tensors dict) for an order-4 TTMc."""
    T = random_coo4
    U = random_dense_matrix(T.shape[1], 3, seed=5, name="U")
    V = random_dense_matrix(T.shape[2], 4, seed=6, name="V")
    W = random_dense_matrix(T.shape[3], 3, seed=7, name="W")
    kernel = parse_kernel(
        "ijkl,jr,ks,lt->irst", [T, U, V, W], names=["T", "U", "V", "W"]
    )
    return kernel, {"T": T, "U": U, "V": V, "W": W}


@pytest.fixture
def tttp_setup(random_coo3):
    """(kernel, tensors dict) for an order-3 TTTP (sparse-pattern output)."""
    T = random_coo3
    A = random_dense_matrix(T.shape[0], 4, seed=8, name="A")
    B = random_dense_matrix(T.shape[1], 4, seed=9, name="B")
    C = random_dense_matrix(T.shape[2], 4, seed=10, name="C")
    kernel = parse_kernel(
        "ijk,ir,jr,kr->ijk", [T, A, B, C], names=["T", "A", "B", "C"]
    )
    return kernel, {"T": T, "A": A, "B": B, "C": C}


@pytest.fixture
def allmode_setup(random_coo3):
    """(kernel, tensors dict) for the order-3 all-mode TTMc."""
    T = random_coo3
    U = random_dense_matrix(T.shape[0], 3, seed=11, name="U")
    V = random_dense_matrix(T.shape[1], 4, seed=12, name="V")
    W = random_dense_matrix(T.shape[2], 3, seed=13, name="W")
    kernel = parse_kernel(
        "ijk,ir,js,kt->rst", [T, U, V, W], names=["T", "U", "V", "W"]
    )
    return kernel, {"T": T, "U": U, "V": V, "W": W}


ALL_KERNEL_FIXTURES = [
    "mttkrp_setup",
    "ttmc_setup",
    "ttmc4_setup",
    "tttp_setup",
    "allmode_setup",
]
