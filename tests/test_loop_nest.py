"""Unit tests for loop orders, peeling, fused forests and buffer inference."""

import pytest

from repro.core.contraction_path import rank_contraction_paths
from repro.core.loop_nest import (
    LoopNest,
    LoopOrder,
    LoopVertex,
    TermLeaf,
    build_fused_forest,
    common_ancestor_loops,
    default_loop_order,
    intermediate_buffers,
    max_buffer_dimension,
    max_buffer_size,
    total_buffer_size,
    validate_loop_order,
)


def ttmc_path(kernel):
    """The sparse-first TTMc contraction path (T*V first, then U)."""
    ranked = rank_contraction_paths(kernel)
    return ranked[0][0]


class TestLoopOrderValidation:
    def test_default_order_is_valid(self, ttmc_setup):
        kernel, _ = ttmc_setup
        path = ttmc_path(kernel)
        order = default_loop_order(kernel, path)
        validate_loop_order(kernel, path, order)

    def test_wrong_length_rejected(self, ttmc_setup):
        kernel, _ = ttmc_setup
        path = ttmc_path(kernel)
        with pytest.raises(ValueError, match="terms"):
            validate_loop_order(kernel, path, LoopOrder(((("i", "j"),))))

    def test_non_permutation_rejected(self, ttmc_setup):
        kernel, _ = ttmc_setup
        path = ttmc_path(kernel)
        order = default_loop_order(kernel, path)
        bad = LoopOrder((order[0][:-1], order[1]))
        with pytest.raises(ValueError, match="permutation"):
            validate_loop_order(kernel, path, bad)

    def test_csf_order_violation_rejected(self, ttmc_setup):
        kernel, _ = ttmc_setup
        path = ttmc_path(kernel)
        good = default_loop_order(kernel, path)
        # swap two sparse indices in the first term's order
        first = list(good[0])
        si = [p for p, i in enumerate(first) if i in kernel.sparse_indices]
        first[si[0]], first[si[1]] = first[si[1]], first[si[0]]
        bad = LoopOrder((tuple(first),) + tuple(good[t] for t in range(1, len(good))))
        with pytest.raises(ValueError, match="CSF"):
            validate_loop_order(kernel, path, bad)
        # but it is accepted when the restriction is lifted
        validate_loop_order(kernel, path, bad, enforce_csf_order=False)

    def test_loop_order_helpers(self, ttmc_setup):
        kernel, _ = ttmc_setup
        path = ttmc_path(kernel)
        order = default_loop_order(kernel, path)
        assert order.max_depth() == max(len(o) for o in order)
        assert set(order.all_indices()) == set(kernel.index_names)


class TestFusedForest:
    def test_listing3_structure(self, ttmc_setup):
        """The Listing-3 TTMc loop order fuses i and j with an S-sized buffer."""
        kernel, _ = ttmc_setup
        path = ttmc_path(kernel)
        # identify index names: first term contracts T with V over k
        first, second = path[0], path[1]
        order = LoopOrder(
            (
                ("i", "j", "k", "s"),
                ("i", "j", "s", "r") if "r" in second.all_indices else ("i", "j", "s"),
            )
        )
        forest = build_fused_forest(path, order)
        assert len(forest.roots) == 1
        root = forest.roots[0]
        assert isinstance(root, LoopVertex) and root.index == "i"
        assert forest.is_fully_fused()
        buffers = intermediate_buffers(path, order)
        assert len(buffers) == 1
        assert buffers[0].indices == ("s",)

    def test_listing4_scalar_buffer(self, ttmc_setup):
        """Fusing i, j and s yields a scalar intermediate (Listing 4)."""
        kernel, _ = ttmc_setup
        path = ttmc_path(kernel)
        order = LoopOrder((("i", "j", "s", "k"), ("i", "j", "s", "r")))
        buffers = intermediate_buffers(path, order)
        assert buffers[0].indices == ()
        assert max_buffer_dimension(path, order) == 0

    def test_unshared_orders_make_separate_roots(self, ttmc_setup):
        kernel, _ = ttmc_setup
        path = ttmc_path(kernel)
        order = LoopOrder((("i", "j", "k", "s"), ("s", "i", "j", "r")))
        forest = build_fused_forest(path, order)
        assert len(forest.roots) == 2
        # nothing fused: the buffer keeps all of the producer's output indices
        buffers = intermediate_buffers(path, order)
        assert set(buffers[0].indices) == set(path[0].out_indices)

    def test_forest_term_positions_cover_all(self, ttmc4_setup):
        kernel, _ = ttmc4_setup
        path = rank_contraction_paths(kernel)[0][0]
        order = default_loop_order(kernel, path)
        forest = build_fused_forest(path, order)
        positions = []
        for root in forest.roots:
            if isinstance(root, LoopVertex):
                positions.extend(root.term_positions())
            else:
                positions.append(root.term_position)
        assert sorted(positions) == list(range(len(path)))

    def test_loop_count_and_depth(self, ttmc_setup):
        kernel, _ = ttmc_setup
        path = ttmc_path(kernel)
        order = LoopOrder((("i", "j", "k", "s"), ("i", "j", "s", "r")))
        forest = build_fused_forest(path, order)
        assert forest.max_depth() == 4
        # i, j shared; then k, s under term0 and s, r under term1
        assert forest.loop_count() == 6

    def test_is_fully_fused_detects_violation(self):
        # two sibling loops over the same index are not fully fused
        forest_roots = [
            LoopVertex("i", [TermLeaf(0)]),
            LoopVertex("i", [TermLeaf(1)]),
        ]
        from repro.core.loop_nest import FusedForest

        assert not FusedForest(forest_roots).is_fully_fused()

    def test_iter_vertices(self, ttmc_setup):
        kernel, _ = ttmc_setup
        path = ttmc_path(kernel)
        order = default_loop_order(kernel, path)
        forest = build_fused_forest(path, order)
        labels = [v.index for v in forest.iter_vertices()]
        assert len(labels) == forest.loop_count()


class TestCommonAncestors:
    def test_full_prefix(self, ttmc_setup):
        kernel, _ = ttmc_setup
        path = ttmc_path(kernel)
        order = LoopOrder((("i", "j", "k", "s"), ("i", "j", "s", "r")))
        assert common_ancestor_loops(order, 0, 1) == ("i", "j")

    def test_no_shared_prefix(self, ttmc_setup):
        kernel, _ = ttmc_setup
        path = ttmc_path(kernel)
        order = LoopOrder((("i", "j", "k", "s"), ("s", "r", "i", "j")))
        assert common_ancestor_loops(order, 0, 1) == ()

    def test_same_term(self, ttmc_setup):
        kernel, _ = ttmc_setup
        path = ttmc_path(kernel)
        order = LoopOrder((("i", "j", "k", "s"), ("i", "j", "s", "r")))
        assert common_ancestor_loops(order, 1, 1) == ("i", "j", "s", "r")

    def test_invalid_positions(self, ttmc_setup):
        kernel, _ = ttmc_setup
        path = ttmc_path(kernel)
        order = default_loop_order(kernel, path)
        with pytest.raises(ValueError):
            common_ancestor_loops(order, 1, 0)


class TestBufferSizes:
    def test_buffer_size_products(self, ttmc_setup):
        kernel, _ = ttmc_setup
        path = ttmc_path(kernel)
        order = LoopOrder((("i", "j", "k", "s"), ("i", "j", "s", "r")))
        size = max_buffer_size(path, order, kernel.index_dims)
        assert size == kernel.dim("s")
        assert total_buffer_size(path, order, kernel.index_dims) == size

    def test_unfused_buffer_is_large(self, ttmc_setup):
        kernel, _ = ttmc_setup
        path = ttmc_path(kernel)
        fused = LoopOrder((("i", "j", "k", "s"), ("i", "j", "s", "r")))
        unfused = LoopOrder((("i", "j", "k", "s"), ("s", "i", "j", "r")))
        assert max_buffer_size(path, unfused, kernel.index_dims) > max_buffer_size(
            path, fused, kernel.index_dims
        )

    def test_order4_paper_buffers(self, ttmc4_setup):
        """Figure 6: the order-4 TTMc loop nest has buffers of size T and S*T."""
        kernel, _ = ttmc4_setup
        path = rank_contraction_paths(kernel)[0][0]
        # loop orders of Figure 6: (i j k l t), (i j k s t), (i j r s t)
        i, j, k, l = kernel.csf_mode_order
        dense = sorted(kernel.dense_indices)
        order = LoopOrder(
            (
                tuple(path[0].all_indices),
                tuple(path[1].all_indices),
                tuple(path[2].all_indices),
            )
        )
        # use the actual fully-fused orders from the scheduler-style layout
        buffers = intermediate_buffers(path, order)
        assert len(buffers) == 2

    def test_loop_nest_wrapper(self, ttmc_setup):
        kernel, _ = ttmc_setup
        path = ttmc_path(kernel)
        order = LoopOrder((("i", "j", "k", "s"), ("i", "j", "s", "r")))
        nest = LoopNest(path, order)
        assert nest.max_buffer_dimension() == 1
        assert nest.max_loop_depth() == 4
        text = nest.describe(kernel)
        assert "for i (sparse)" in text
        assert "for s (dense)" in text

    def test_loop_nest_length_mismatch(self, ttmc_setup):
        kernel, _ = ttmc_setup
        path = ttmc_path(kernel)
        with pytest.raises(ValueError):
            LoopNest(path, LoopOrder((("i", "j", "k", "s"),)))
