"""Sparse and dense tensor substrate.

This subpackage provides the storage formats used throughout the
reproduction:

* :class:`~repro.sptensor.coo.COOTensor` — coordinate-format sparse tensor,
  the interchange format used for construction, I/O and validation.
* :class:`~repro.sptensor.csf.CSFTensor` — compressed sparse fiber format
  (Smith & Karypis), the execution format: SpTTN loop nests iterate the
  sparse indices in CSF storage order.
* :class:`~repro.sptensor.dense.DenseTensor` — a thin labelled wrapper over
  ``numpy.ndarray`` for the dense factor operands.
* Synthetic tensor generators and FROSTT-style dataset presets
  (:mod:`repro.sptensor.generate`, :mod:`repro.sptensor.datasets`).
* FROSTT ``.tns`` text I/O (:mod:`repro.sptensor.io`).
"""

from repro.sptensor.coo import COOTensor
from repro.sptensor.csf import CSFTensor, CSFNode
from repro.sptensor.dense import DenseTensor
from repro.sptensor.generate import (
    random_sparse_tensor,
    random_dense_matrix,
    power_law_sparse_tensor,
    block_sparse_tensor,
)
from repro.sptensor.io import read_tns, write_tns
from repro.sptensor.datasets import DatasetSpec, dataset_presets, load_preset

__all__ = [
    "COOTensor",
    "CSFTensor",
    "CSFNode",
    "DenseTensor",
    "random_sparse_tensor",
    "random_dense_matrix",
    "power_law_sparse_tensor",
    "block_sparse_tensor",
    "read_tns",
    "write_tns",
    "DatasetSpec",
    "dataset_presets",
    "load_preset",
]
