"""CP tensor completion on observed entries.

Tensor completion fits a low-rank CP model to the *observed* entries of a
tensor (the sparse pattern Ω).  The gradient of the squared error on the
observed entries with respect to factor ``F_n`` is::

    grad_n = 2 * MTTKRP_n(residual)            with
    residual = Ω * model - T                   (same pattern as T)

where ``Ω * model`` is exactly the TTTP kernel (Equation 3 of the paper).
Each optimization step therefore runs one TTTP and one MTTKRP per mode —
the cost-dominant SpTTN kernels of Section 3 — and this module optimizes
them through the library's scheduler.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

import numpy as np

from repro.engine.executor import LoopNestExecutor
from repro.engine.plan_cache import cached_schedule
from repro.kernels.mttkrp import mttkrp_kernel
from repro.kernels.tttp import tttp_kernel
from repro.sptensor.coo import COOTensor
from repro.sptensor.csf import CSFTensor
from repro.util.validation import check_positive_int, require

SparseInput = Union[COOTensor, CSFTensor]


@dataclass
class CompletionResult:
    """Result of :func:`cp_completion`."""

    factors: List[np.ndarray]
    rmse_history: List[float] = field(default_factory=list)
    iterations: int = 0

    @property
    def rank(self) -> int:
        return int(self.factors[0].shape[1])

    def predict(self, indices: np.ndarray) -> np.ndarray:
        """Model predictions at arbitrary coordinates (vectorized)."""
        indices = np.asarray(indices, dtype=np.int64)
        rows = np.ones((indices.shape[0], self.rank), dtype=np.float64)
        for mode, factor in enumerate(self.factors):
            rows *= factor[indices[:, mode]]
        return rows.sum(axis=1)

    @property
    def rmse(self) -> float:
        return self.rmse_history[-1] if self.rmse_history else float("nan")


def cp_completion(
    observed: SparseInput,
    rank: int,
    iterations: int = 20,
    learning_rate: float = 0.1,
    regularization: float = 1.0e-3,
    seed: Optional[int] = 0,
    tolerance: float = 1.0e-10,
) -> CompletionResult:
    """Fit a rank-``rank`` CP model to the observed entries of a sparse tensor.

    A simple preconditioned gradient descent is used: the gradient's data
    term is computed with TTTP (model restricted to the pattern) followed by
    one MTTKRP per mode on the residual, and each step is damped by the
    per-mode observation counts.  The observed-entry RMSE is recorded per
    iteration.
    """
    rank = check_positive_int(rank, "rank")
    coo = observed.to_coo() if isinstance(observed, CSFTensor) else observed
    require(isinstance(coo, COOTensor), "observed must be a sparse tensor")
    require(coo.nnz > 0, "completion needs at least one observed entry")
    order = coo.order
    rng = np.random.default_rng(seed)
    scale = np.sqrt(np.abs(coo.values).mean() / max(rank, 1))
    factors = [rng.random((dim, rank)) * scale for dim in coo.shape]

    # Ones tensor over the observed pattern: TTTP(ones, factors) evaluates
    # the model at the observed entries.
    pattern = coo.with_values(np.ones(coo.nnz))

    # One executor per kernel, schedules from the process-wide cache: every
    # optimization step reuses the compiled plans instead of re-planning.
    tttp_k, _ = tttp_kernel(pattern, [np.ones((d, rank)) for d in coo.shape])
    tttp_executor = LoopNestExecutor(tttp_k, cached_schedule(tttp_k).loop_nest)
    mttkrp_kernels = {}
    mttkrp_executors: Dict[int, LoopNestExecutor] = {}
    for mode in range(order):
        kernel, _ = mttkrp_kernel(coo, [np.ones((d, rank)) for d in coo.shape], mode)
        mttkrp_kernels[mode] = kernel
        mttkrp_executors[mode] = LoopNestExecutor(
            kernel, cached_schedule(kernel).loop_nest
        )

    counts = [np.maximum(coo.mode_marginal(mode), 1) for mode in range(order)]

    rmse_history: List[float] = []
    steps = 0
    previous = np.inf
    for step in range(iterations):
        # model values at the observed entries (TTTP over the pattern of ones)
        mapping = {tttp_k.sparse_operand.name: pattern}
        for op, factor in zip(tttp_k.dense_operands, factors):
            mapping[op.name] = factor
        model_at_observed = tttp_executor.execute(mapping)
        assert isinstance(model_at_observed, COOTensor)

        residual_values = model_at_observed.values - coo.values
        rmse = float(np.sqrt(np.mean(residual_values**2)))
        rmse_history.append(rmse)
        steps = step + 1
        if abs(previous - rmse) < tolerance:
            break
        previous = rmse
        residual = coo.with_values(residual_values)

        for mode in range(order):
            kernel = mttkrp_kernels[mode]
            other = [factors[n] for n in range(order) if n != mode]
            mapping = {kernel.sparse_operand.name: residual}
            for op, factor in zip(kernel.dense_operands, other):
                mapping[op.name] = factor
            grad = np.asarray(mttkrp_executors[mode].execute(mapping))
            grad += regularization * factors[mode]
            factors[mode] -= learning_rate * grad / counts[mode][:, None]

    return CompletionResult(
        factors=factors, rmse_history=rmse_history, iterations=steps
    )
