"""Disk-backed schedule store: plan-cache persistence across processes.

The in-memory caches of :mod:`repro.engine.plan_cache` amortize schedule
search *within* one process; this module extends the amortization across
process boundaries (ROADMAP item 4).  A :class:`PlanStore` is a directory
of JSON documents, one per schedule, keyed by the canonical serialization
(:mod:`repro.engine.keys`) of the same ``schedule_key`` the in-memory LRU
uses — so a restarted daemon, a fresh CLI invocation or a second CI run
against the same store directory skips schedule search entirely and
reloads the previously selected loop nests.

Design points:

* **What is stored.**  Search *results* (contraction-path terms, per-term
  loop orders, cost metadata), never compiled plans: compiled plans embed
  specialized NumPy closures that cannot be serialized, and rebuilding a
  plan from a known loop nest is the cheap part.  The loop nest is
  reconstructed against the *caller's* kernel object, which by key
  equality has the same structure.
* **Versioning and tolerance.**  Every document records
  :data:`STORE_VERSION` and its own canonical key.  A version mismatch, a
  truncated or corrupt file, or a digest collision (stored key differs
  from the requested one) is treated as a miss — the caller falls back to
  a fresh search and overwrites the entry — never as an error that
  propagates.
* **Atomic writes.**  Entries are written to a unique temporary file in
  the store directory and ``os.replace``-d into place, so concurrent
  writers (several processes warming one store) can only ever race
  complete documents; readers never observe a half-written file.
* **Calibration rides along.**  The measured cost-model coefficients of
  :mod:`repro.core.calibrate` persist as ``calibration.json`` next to the
  schedule entries, so a warm start restores both the schedules and the
  cost model that selected them.

The process default store is configured with the ``REPRO_PLAN_STORE``
environment variable (a directory path, created on first write); unset
means no persistence, the pre-store behaviour.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
from pathlib import Path
from typing import Dict, Optional, Union

from repro.core.contraction_path import ContractionPath, ContractionTerm
from repro.core.loop_nest import LoopNest, LoopOrder, validate_loop_order
from repro.core.scheduler import Schedule
from repro.core.expr import SpTTNKernel
from repro.engine.keys import _jsonable, canonical_key, key_digest
from repro.obs.metrics import register_source
from repro.obs.trace import span as _span
from repro.util.faults import FaultInjected, fault_point

#: Environment variable naming the default store directory (unset = no
#: persistence).
PLAN_STORE_ENV = "REPRO_PLAN_STORE"

#: On-disk format version; bumped whenever the schedule payload or the key
#: schema changes.  Mismatching entries are ignored (treated as misses),
#: so an old store directory degrades to a cold start, never to an error.
STORE_VERSION = 1

#: Filename of the persisted calibration coefficients inside a store.
CALIBRATION_FILENAME = "calibration.json"


# --------------------------------------------------------------------------- #
# Schedule (de)serialization
# --------------------------------------------------------------------------- #
def schedule_payload(schedule: Schedule) -> Dict[str, object]:
    """JSON-safe document of one schedule's search result (kernel-free)."""
    nest = schedule.loop_nest
    return {
        "terms": [
            [t.lhs, t.rhs, t.out, list(t.lhs_indices),
             list(t.rhs_indices), list(t.out_indices)]
            for t in nest.path
        ],
        "order": [list(order) for order in nest.order],
        "cost_value": float(schedule.cost_value),
        "flop_estimate": float(schedule.flop_estimate),
        "path_rank": int(schedule.path_rank),
        "candidates_considered": int(schedule.candidates_considered),
        "search_stats": _jsonable(dict(schedule.search_stats)),
    }


def schedule_from_payload(
    kernel: SpTTNKernel, payload: Dict[str, object]
) -> Schedule:
    """Rebuild a :class:`Schedule` against the caller's kernel object.

    Raises on malformed payloads (wrong arity, mismatched term counts);
    :meth:`PlanStore.get` has already validated the envelope, and
    :func:`~repro.engine.plan_cache.cached_schedule` treats any raise
    here as a store miss.
    """
    terms = tuple(
        ContractionTerm(
            lhs=str(lhs), rhs=str(rhs), out=str(out),
            lhs_indices=tuple(li), rhs_indices=tuple(ri),
            out_indices=tuple(oi),
        )
        for lhs, rhs, out, li, ri, oi in payload["terms"]
    )
    nest = LoopNest(
        ContractionPath(terms),
        LoopOrder(tuple(tuple(o) for o in payload["order"])),
    )
    # raises for a payload that does not fit this kernel (foreign entry
    # behind a digest collision, hand-edited store): the caller treats it
    # as a miss and re-searches
    validate_loop_order(kernel, nest.path, nest.order)
    return Schedule(
        kernel=kernel,
        loop_nest=nest,
        cost_value=float(payload["cost_value"]),
        flop_estimate=float(payload["flop_estimate"]),
        path_rank=int(payload["path_rank"]),
        candidates_considered=int(payload["candidates_considered"]),
        search_stats=dict(payload.get("search_stats") or {}),
    )


# --------------------------------------------------------------------------- #
# The store
# --------------------------------------------------------------------------- #
class PlanStore:
    """A directory of versioned schedule documents with atomic writes.

    Thread-safe for counters; file operations rely on ``os.replace``
    atomicity for cross-process safety.  All failure modes of :meth:`get`
    (missing file, corrupt JSON, version mismatch, foreign key) count as
    misses so callers always have the fresh-search fallback.
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.errors = 0

    # -- paths ---------------------------------------------------------- #
    def _entry_path(self, key: object) -> Path:
        return self.root / f"{key_digest(key, digest_size=16)}.json"

    def _write_atomic(self, path: Path, document: Dict[str, object]) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            prefix=f".{path.stem}.", suffix=".tmp", dir=self.root
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(document, handle, separators=(",", ":"))
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    # -- schedule entries ------------------------------------------------ #
    def get(self, key: object) -> Optional[Dict[str, object]]:
        """The stored payload for *key*, or ``None`` (counted as a miss)."""
        path = self._entry_path(key)
        with _span("store_get", "store", digest=path.stem):
            try:
                doc = json.loads(path.read_text(encoding="utf-8"))
            except FileNotFoundError:
                with self._lock:
                    self.misses += 1
                return None
            except (OSError, ValueError):
                # truncated/corrupt file: fall back to a fresh search
                with self._lock:
                    self.misses += 1
                    self.errors += 1
                return None
            if (
                not isinstance(doc, dict)
                or doc.get("version") != STORE_VERSION
                or doc.get("key") != canonical_key(key)
                or not isinstance(doc.get("payload"), dict)
            ):
                with self._lock:
                    self.misses += 1
                    self.errors += 1
                return None
            with self._lock:
                self.hits += 1
            return doc["payload"]

    def put(self, key: object, payload: Dict[str, object]) -> bool:
        """Persist *payload* under *key* atomically; False on IO failure."""
        document = {
            "version": STORE_VERSION,
            "key": canonical_key(key),
            "payload": _jsonable(payload),
        }
        path = self._entry_path(key)
        with _span("store_put", "store", digest=path.stem):
            try:
                fault_point("store.write")
                self._write_atomic(path, document)
            except (OSError, FaultInjected):
                # Injected write faults take the same degrade-to-miss path
                # as a full disk: counted, non-fatal, serving continues.
                with self._lock:
                    self.errors += 1
                return False
        with self._lock:
            self.writes += 1
        return True

    def note_invalid(self) -> None:
        """Reclassify the last hit as a miss (payload failed reconstruction).

        :func:`~repro.engine.plan_cache.cached_schedule` calls this when a
        structurally valid envelope holds a payload that does not rebuild
        against the requesting kernel, so ``misses`` stays an exact count
        of "searches this store did not save".
        """
        with self._lock:
            self.hits -= 1
            self.misses += 1
            self.errors += 1

    # -- calibration ----------------------------------------------------- #
    def load_calibration(self) -> Optional[Dict[str, float]]:
        """The persisted cost coefficients, or ``None`` when absent/corrupt."""
        path = self.root / CALIBRATION_FILENAME
        try:
            doc = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        if (
            not isinstance(doc, dict)
            or doc.get("version") != STORE_VERSION
            or not isinstance(doc.get("coefficients"), dict)
        ):
            return None
        try:
            return {
                str(name): float(value)
                for name, value in doc["coefficients"].items()
            }
        except (TypeError, ValueError):
            return None

    def save_calibration(self, coefficients: Dict[str, float]) -> bool:
        """Persist cost coefficients next to the schedule entries."""
        document = {
            "version": STORE_VERSION,
            "coefficients": {
                str(name): float(value)
                for name, value in coefficients.items()
            },
        }
        try:
            self._write_atomic(self.root / CALIBRATION_FILENAME, document)
        except OSError:
            with self._lock:
                self.errors += 1
            return False
        return True

    # -- introspection ---------------------------------------------------- #
    def __len__(self) -> int:
        return sum(
            1
            for p in self.root.glob("*.json")
            if p.name != CALIBRATION_FILENAME
        ) if self.root.is_dir() else 0

    def clear(self) -> int:
        """Delete every schedule entry (calibration is kept); count removed."""
        removed = 0
        if self.root.is_dir():
            for path in self.root.glob("*.json"):
                if path.name == CALIBRATION_FILENAME:
                    continue
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed

    def stats(self) -> Dict[str, object]:
        """Counters plus an on-disk census (entries and bytes)."""
        entries = 0
        nbytes = 0
        if self.root.is_dir():
            for path in self.root.glob("*.json"):
                if path.name == CALIBRATION_FILENAME:
                    continue
                try:
                    nbytes += path.stat().st_size
                except OSError:
                    continue
                entries += 1
        with self._lock:
            return {
                "path": str(self.root),
                "entries": entries,
                "bytes": nbytes,
                "hits": self.hits,
                "misses": self.misses,
                "writes": self.writes,
                "errors": self.errors,
            }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PlanStore({str(self.root)!r}, hits={self.hits}, "
            f"misses={self.misses}, writes={self.writes})"
        )


# --------------------------------------------------------------------------- #
# The process default store
# --------------------------------------------------------------------------- #
# (resolved path, store) — re-resolved whenever the environment variable
# changes so tests can point the default at temporary directories.
_DEFAULT_STORE: tuple = ("", None)
_DEFAULT_STORE_LOCK = threading.Lock()


def default_plan_store() -> Optional[PlanStore]:
    """The store named by ``REPRO_PLAN_STORE``, or ``None`` when unset.

    Creating the default store for a directory that already carries a
    ``calibration.json`` applies the persisted coefficients to the active
    cost model (:func:`repro.core.cost_model.set_active_coefficients`), so
    a warm-started process searches — when it must search at all — with
    the same calibrated model that populated the store.
    """
    raw = os.environ.get(PLAN_STORE_ENV, "")
    path = raw.strip()
    global _DEFAULT_STORE
    with _DEFAULT_STORE_LOCK:
        cached_path, cached_store = _DEFAULT_STORE
        if path == cached_path:
            return cached_store
        if not path:
            _DEFAULT_STORE = ("", None)
            return None
        store = PlanStore(path)
        _DEFAULT_STORE = (path, store)
    coefficients = store.load_calibration()
    if coefficients:
        from repro.core.calibrate import CostCoefficients, apply_calibration
        from repro.core.cost_model import set_active_coefficients

        try:
            # full documents restore the fitted state too, so the warm
            # process predicts seconds and judges drift immediately
            apply_calibration(CostCoefficients.from_dict(coefficients))
        except (KeyError, TypeError, ValueError):
            # partial/legacy documents still adjust the model constants
            set_active_coefficients(coefficients)
    return store


def plan_store_snapshot() -> Dict[str, object]:
    """Stats of the default store (``{"configured": False}`` when unset)."""
    store = default_plan_store()
    if store is None:
        return {"configured": False}
    stats = store.stats()
    stats["configured"] = True
    return stats


# Registered by the producer (like "caches"/"plan_timings") so the metrics
# registry's snapshots embed the store view without engine-layer imports.
register_source("plan_store", plan_store_snapshot)
