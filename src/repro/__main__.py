"""Command-line interface: schedule, inspect and run SpTTN kernels.

Examples
--------
Show the loop nest the scheduler picks for an MTTKRP over a FROSTT file::

    python -m repro schedule --spec "ijk,jr,kr->ir" --tns tensor.tns --rank 16

Run the kernel and report timings and operation counts (synthetic tensor
when no file is given)::

    python -m repro run --spec "ijk,jr,ks->irs" --shape 200,150,120 \
        --nnz 20000 --rank 16 --compare taco

Sweep every CSF-consistent loop order of the scheduler's contraction path
through the cost model (optionally across processes) and measure the best
candidates::

    python -m repro tune --spec "ijk,ja,ka->ia" --shape 60,50,40 \
        --nnz 2000 --rank 8 --workers 4 --measure

Execute the kernel over virtual ranks — rank-parallel on the shared worker
pool — and/or sweep the strong-scaling simulator::

    python -m repro dist --spec "ijk,ja,ka->ia" --shape 120,120,120 \
        --nnz 40000 --procs 1,2,4,8 --workers 4 --mode both

Serve a seeded mix of concurrent contraction requests through the batched
contraction service and report throughput (optionally against naive
per-request re-planning)::

    python -m repro serve --requests 64 --workers 2 --mix mixed --compare-naive

Run the network-facing serving daemon, then drive it from a second shell
with a scripted client session (bit-identity check, stats, drain)::

    python -m repro serve --daemon --port 7421 --workers 2
    python -m repro serve --connect 127.0.0.1:7421 --requests 32 \
        --verify --stats --shutdown

Show (or clear) the process-wide plan/schedule cache statistics::

    python -m repro cache

List the built-in dataset presets::

    python -m repro datasets
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

import numpy as np

from repro.core.autotune import Autotuner
from repro.core.cost_model import ExecutionCost
from repro.core.expr import parse_kernel
from repro.core.scheduler import SpTTNScheduler
from repro.core.search import ExecutionRunner, resolve_workers, sweep_loop_orders
from repro.engine.executor import ENGINES
from repro.engine.plan_cache import (
    clear_caches,
    default_executor_cache,
    default_plan_cache,
    default_schedule_cache,
)
from repro.frameworks import (
    CTFLikeBaseline,
    SparseLNRLikeBaseline,
    SplattLikeBaseline,
    SpTTNCyclopsBaseline,
    TacoLikeBaseline,
)
from repro.obs import disable_tracing, enable_tracing, write_trace
from repro.serve.scenarios import MIXES
from repro.sptensor import dataset_presets, random_dense_matrix, random_sparse_tensor, read_tns

_BASELINES = {
    "spttn": SpTTNCyclopsBaseline,
    "taco": TacoLikeBaseline,
    "sparselnr": SparseLNRLikeBaseline,
    "ctf": CTFLikeBaseline,
    "splatt": SplattLikeBaseline,
}


def _load_sparse(args):
    if args.tns:
        tensor = read_tns(args.tns)
        print(f"loaded {args.tns}: shape={tensor.shape}, nnz={tensor.nnz}")
        return tensor
    if not args.shape:
        raise SystemExit("either --tns or --shape must be given")
    shape = tuple(int(s) for s in args.shape.split(","))
    nnz = args.nnz if args.nnz else max(64, int(0.001 * np.prod(shape)))
    tensor = random_sparse_tensor(shape, nnz=nnz, seed=args.seed)
    print(f"synthetic tensor: shape={shape}, nnz={tensor.nnz}")
    return tensor


def _build_operands(spec: str, tensor, rank: int, seed: int):
    """Concrete operands for *spec*: the sparse tensor plus random dense factors."""
    lhs = spec.split("->")[0].split(",")
    sparse_sub = lhs[0]
    dims = {name: dim for name, dim in zip(sparse_sub, tensor.shape)}
    operands: List[object] = [tensor]
    for pos, sub in enumerate(lhs[1:]):
        shape = []
        for idx in sub:
            if idx in dims:
                shape.append(dims[idx])
            else:
                dims[idx] = rank
                shape.append(rank)
        operands.append(
            random_dense_matrix(shape[0], shape[1], seed=seed + pos).data
            if len(shape) == 2
            else np.random.default_rng(seed + pos).random(tuple(shape))
        )
    return operands


def cmd_schedule(args) -> int:
    tensor = _load_sparse(args)
    operands = _build_operands(args.spec, tensor, args.rank, args.seed)
    kernel = parse_kernel(args.spec, operands)
    scheduler = SpTTNScheduler(kernel, buffer_dim_bound=args.buffer_bound)
    start = time.perf_counter()
    schedule = scheduler.schedule()
    elapsed = time.perf_counter() - start
    print(f"\nschedule found in {elapsed * 1e3:.1f} ms")
    print(schedule.describe())
    print("\nintermediate buffers:")
    for buf in schedule.loop_nest.buffers():
        print(f"  {buf.name}: indices={buf.indices} "
              f"size={buf.size(kernel.index_dims)} elements")
    return 0


def cmd_run(args) -> int:
    tensor = _load_sparse(args)
    operands = _build_operands(args.spec, tensor, args.rank, args.seed)
    kernel = parse_kernel(args.spec, operands)
    mapping = {op.name: t for op, t in zip(kernel.operands, operands)}

    if args.trace:
        enable_tracing()
    systems = ["spttn"] + [s for s in (args.compare or []) if s in _BASELINES]
    print(f"\n{'system':>12s} {'time [ms]':>12s} {'flops':>14s}")
    for name in systems:
        if name == "spttn":
            baseline = SpTTNCyclopsBaseline(engine=args.engine)
        else:
            baseline = _BASELINES[name]()
        if not baseline.supports(kernel):
            print(f"{name:>12s} {'unsupported':>12s}")
            continue
        if isinstance(baseline, SpTTNCyclopsBaseline):
            baseline.schedule_for(kernel)
        best = None
        flops = 0
        for _ in range(args.repeats):
            result = baseline.run(kernel, mapping)
            flops = result.counter.flops
            best = result.seconds if best is None else min(best, result.seconds)
        print(f"{name:>12s} {best * 1e3:12.2f} {flops:14,d}")
    if args.trace:
        path = write_trace(args.trace)
        disable_tracing()
        print(f"\nwrote Chrome-trace JSON to {path} (open in Perfetto)")
    return 0


def cmd_tune(args) -> int:
    tensor = _load_sparse(args)
    operands = _build_operands(args.spec, tensor, args.rank, args.seed)
    kernel = parse_kernel(args.spec, operands)

    scheduler = SpTTNScheduler(kernel, buffer_dim_bound=args.buffer_bound)
    schedule = scheduler.schedule()
    workers = resolve_workers(args.workers)

    start = time.perf_counter()
    sweep = sweep_loop_orders(
        kernel,
        schedule.path,
        # score under the same buffer bound the scheduler used, so the
        # printed rank of its pick is an apples-to-apples comparison
        cost=ExecutionCost(kernel, buffer_dim_bound=args.buffer_bound),
        workers=args.workers,
        limit=args.max_candidates,
    )
    elapsed = time.perf_counter() - start
    print(
        f"\ncost-model sweep: {len(sweep.entries)} loop orders on the "
        f"scheduler's contraction path, {workers} worker(s), "
        f"{elapsed * 1e3:.1f} ms"
    )

    ranked = sweep.sorted_entries()
    print(f"\n{'rank':>5s} {'cost':>14s}  loop orders")
    for rank, entry in enumerate(ranked[: args.top]):
        orders = "; ".join(",".join(o) for o in entry.nest.order)
        print(f"{rank:5d} {entry.value:14.4e}  {orders}")

    model_rank = sweep.rank_of(schedule.loop_nest)
    print(
        f"\nscheduler's pick ranks #{model_rank} of {len(sweep.entries)} "
        f"in the exhaustive cost sweep"
        if model_rank is not None
        else "\nscheduler's pick lies outside the swept candidate set"
    )

    if args.measure or args.calibrate:
        mapping = {op.name: t for op, t in zip(kernel.operands, operands)}
        runner = ExecutionRunner(kernel, mapping)
        tuner = Autotuner(kernel, runner, repeats=args.repeats)
        candidates = [e.nest for e in ranked[: args.measure_candidates]]
        start = time.perf_counter()
        result = tuner.tune(candidates, workers=args.workers)
        elapsed = time.perf_counter() - start
        print(
            f"\nmeasured {len(result.entries)} candidates "
            f"({args.repeats} repeat(s) each) in {elapsed * 1e3:.1f} ms"
        )
        print(f"\n{'rank':>5s} {'time [ms]':>12s}  loop orders")
        for rank, entry in enumerate(result.entries[: args.top]):
            orders = "; ".join(",".join(o) for o in entry.loop_nest.order)
            print(f"{rank:5d} {entry.seconds * 1e3:12.3f}  {orders}")
        measured_rank = result.rank_of(schedule.loop_nest)
        if measured_rank is not None:
            print(
                f"\nscheduler's pick ranks #{measured_rank} of "
                f"{len(result.entries)} by measured time"
            )
        if args.calibrate:
            _tune_calibrate(args, kernel, tuner, result)
    return 0


def _tune_calibrate(args, kernel, tuner, result) -> None:
    """Fit measured cost coefficients and report the re-ranked sweep."""
    from repro.core.search import CostModelEvaluator
    from repro.engine.plan_store import default_plan_store

    coefficients = tuner.fit_calibration(result, apply=True)
    if coefficients is None:
        print(
            "\ncalibration: too few usable measurements to fit "
            "(need >= 2 constraint-satisfying candidates)"
        )
        return
    print("\ncalibrated cost coefficients (seconds per unit):")
    for name, value in sorted(coefficients.as_dict().items()):
        print(f"  {name:>14s} = {value:.3e}")

    # Re-rank the measured candidates under the calibrated model and show
    # where the measured-fastest candidate lands — the whole point of
    # calibration is pushing that toward rank #0.
    evaluator = CostModelEvaluator(
        kernel, ExecutionCost(kernel, buffer_dim_bound=args.buffer_bound)
    )
    rescored = sorted(
        ((evaluator(e.loop_nest), i) for i, e in enumerate(result.entries)),
    )
    fastest_rank = next(
        rank for rank, (_, i) in enumerate(rescored) if i == 0
    )
    print(
        f"calibrated model ranks the measured-fastest candidate "
        f"#{fastest_rank} of {len(rescored)}"
    )

    store = default_plan_store()
    if store is not None:
        store.save_calibration(coefficients.as_dict())
        print(f"calibration persisted to {store.root}")
    else:
        print(
            "calibration applied to this process only "
            "(set REPRO_PLAN_STORE to persist it)"
        )


def cmd_dist(args) -> int:
    """Distributed virtual-rank execution and strong-scaling simulation.

    ``--mode execute`` measures real rank-parallel executions of every
    process count in ``--procs`` on the shared worker pool (``--workers``,
    defaulting to the ``REPRO_WORKERS`` environment variable the runtime
    layer shares; ``0`` = serial virtual ranks, ``-1`` = one worker per
    CPU); ``--mode simulate`` sweeps the alpha-beta simulator instead, and
    ``--mode both`` prints the measured and predicted curves side by side.
    """
    from repro.distributed import DistributedSpTTN, measured_scaling, strong_scaling

    tensor = _load_sparse(args)
    operands = _build_operands(args.spec, tensor, args.rank, args.seed)
    kernel = parse_kernel(args.spec, operands)
    mapping = {op.name: t for op, t in zip(kernel.operands, operands)}
    procs = [int(s) for s in args.procs.split(",") if s.strip()]
    if not procs:
        raise SystemExit("--procs must name at least one process count")
    workers = resolve_workers(args.workers)

    if args.mode in ("execute", "both"):
        rows = measured_scaling(
            kernel,
            mapping,
            procs,
            kernel_name="dist",
            workers=args.workers,
            repeats=args.repeats,
            engine=args.engine,
            simulate=args.mode == "both",
        )
        print(
            f"\nrank-parallel execution: {workers} worker(s), "
            f"{args.repeats} repeat(s) per count"
        )
        header = f"{'procs':>6s} {'grid':>10s} {'measured [ms]':>14s} {'speedup':>8s}"
        if args.mode == "both":
            header += f" {'predicted [ms]':>15s}"
        print(header)
        for row in rows:
            line = (
                f"{row['processes']:6d} {row['grid']:>10s} "
                f"{row['measured_s'] * 1e3:14.2f} {row['speedup']:8.2f}"
            )
            if args.mode == "both":
                line += f" {row['predicted_s'] * 1e3:15.3f}"
            print(line)
        if args.check:
            # exactness diagnostic: the reduced multi-rank output must
            # match a single rank (two extra executions; --no-check skips
            # them on large workloads)
            dist = DistributedSpTTN(
                kernel, mapping, engine=args.engine, workers=args.workers
            )
            single = dist.execute(1, workers=0)
            multi = dist.execute(procs[-1])
            if kernel.output.is_sparse:
                delta = float(np.max(np.abs(single.values - multi.values))) if single.nnz else 0.0
            else:
                delta = float(np.max(np.abs(np.asarray(single) - np.asarray(multi))))
            print(f"\nmax |Δ| between 1-rank and {procs[-1]}-rank outputs: {delta:.3e}")
    if args.mode == "simulate":
        result = strong_scaling(kernel, mapping, procs, kernel_name="dist")
        print(f"\nsimulated strong scaling ({len(procs)} process count(s))")
        print(
            f"{'procs':>6s} {'grid':>10s} {'total [ms]':>12s} {'compute':>9s} "
            f"{'comm':>9s} {'eff':>6s} {'imbalance':>10s}"
        )
        for row in result.as_rows():
            print(
                f"{row['processes']:6d} {row['grid']:>10s} "
                f"{row['time_s'] * 1e3:12.3f} {row['compute_s'] * 1e3:9.3f} "
                f"{row['comm_s'] * 1e3:9.3f} {row['efficiency']:6.2f} "
                f"{row['load_imbalance']:10.2f}"
            )
    return 0


def _cmd_serve_daemon(args) -> int:
    """Run the network-facing serving daemon until SIGTERM/SIGINT."""
    import asyncio

    from repro.serve.daemon import ServeDaemon

    daemon = ServeDaemon(
        host=args.host,
        port=args.port,
        workers=args.workers,
        engine=args.engine,
        max_pending=args.max_pending,
        client_quota=args.client_quota,
        trace_dir=args.trace_dir,
    )

    async def _run() -> None:
        serve_task = asyncio.ensure_future(
            daemon.serve(install_signal_handlers=True)
        )
        while daemon.address is None and not serve_task.done():
            await asyncio.sleep(0.01)
        if daemon.address is not None:
            host, port = daemon.address
            # parsed by scripted clients (tests, CI): keep the format stable
            print(f"repro serve daemon listening on {host}:{port}", flush=True)
            print(
                f"engine={daemon.service.engine} "
                f"workers={resolve_workers(daemon.service.workers)} "
                f"max_pending={daemon.service.max_pending} "
                f"client_quota={daemon.client_quota}",
                flush=True,
            )
        await serve_task

    asyncio.run(_run())
    print("daemon drained and exited cleanly", flush=True)
    return 0


def _cmd_serve_connect(args) -> int:
    """Scripted client session against a running daemon."""
    import json

    from repro.serve import ServeClient, execute_sequential, scenario_mix
    from repro.sptensor import COOTensor

    requests = scenario_mix(
        args.requests, mix=args.mix, seed=args.seed, engine=args.engine
    )
    with ServeClient(args.connect, retry=args.retry) as client:
        client.ping()
        print(f"connected to {args.connect}")
        if args.warmup:
            client.run(requests)  # populate the daemon's process caches
        start = time.perf_counter()
        outputs = client.run(requests)
        elapsed = time.perf_counter() - start
        print(
            f"served {args.requests} request(s), mix={args.mix!r}: "
            f"{elapsed * 1e3:.1f} ms ({args.requests / elapsed:.1f} req/s "
            f"round trip)"
        )
        if args.verify:
            expected = execute_sequential(requests, engine=args.engine)
            for i, (got, want) in enumerate(zip(outputs, expected)):
                if isinstance(want, COOTensor):
                    same = (
                        isinstance(got, COOTensor)
                        and np.array_equal(got.indices, want.indices)
                        and np.array_equal(got.values, want.values)
                    )
                else:
                    same = np.array_equal(np.asarray(got), np.asarray(want))
                if not same:
                    raise SystemExit(
                        f"daemon result {i} differs from in-process serving"
                    )
            print(
                f"verify: all {len(outputs)} daemon results bit-identical "
                f"to in-process serving"
            )
        if args.show_stats:
            print(json.dumps(client.stats(), indent=2, default=str))
        if args.show_metrics:
            print(client.metrics(format="prometheus"), end="")
        if args.shutdown:
            pending = client.shutdown_server()
            print(f"daemon draining ({pending} pending) and shutting down")
    return 0


def cmd_serve(args) -> int:
    """Serve contraction requests: in-process driver, daemon, or client.

    The default mode generates ``--requests`` deterministic requests for
    the ``--mix`` scenario (kernels, shapes, dtypes and sparsities vary
    within the mix), serves them through
    :class:`~repro.serve.ContractionService` on ``--workers`` worker
    processes, and prints throughput, batching and cache statistics;
    ``--compare-naive`` also times naive per-request re-planning.
    ``--daemon`` instead runs the asyncio TCP daemon on ``--host``/
    ``--port`` until SIGTERM (see ``docs/PROTOCOL.md``), and
    ``--connect HOST:PORT`` runs a scripted client session against a
    daemon (``--verify`` asserts bit-identity to in-process serving,
    ``--stats`` fetches the stats document, ``--shutdown`` drains it).
    """
    if args.daemon and args.connect:
        raise SystemExit("--daemon and --connect are mutually exclusive")
    if args.daemon:
        return _cmd_serve_daemon(args)
    if args.connect:
        return _cmd_serve_connect(args)
    from repro.serve import (
        ContractionService,
        ServiceStats,
        execute_naive,
        scenario_mix,
    )

    requests = scenario_mix(
        args.requests, mix=args.mix, seed=args.seed, engine=args.engine
    )
    service = ContractionService(workers=args.workers, engine=args.engine)
    workers = resolve_workers(args.workers)
    if args.warmup:
        service.run(requests)  # populate schedule/plan/executor caches
        service.stats = ServiceStats()  # report the timed pass only
    if args.trace:
        enable_tracing()
    start = time.perf_counter()
    service.run(requests)
    served_s = time.perf_counter() - start
    if args.trace:
        path = write_trace(args.trace)
        disable_tracing()
        print(f"wrote Chrome-trace JSON to {path} (open in Perfetto)")

    stats = service.stats
    print(f"\nserved {args.requests} request(s), mix={args.mix!r}, "
          f"{workers} worker(s), engine={service.engine}")
    print(f"{'elapsed [ms]':>16s} {'req/s':>10s} {'batches':>8s} "
          f"{'amortized':>10s} {'shm [kB]':>9s}")
    print(f"{served_s * 1e3:16.1f} {args.requests / served_s:10.1f} "
          f"{stats.batches:8d} {stats.amortized:10d} "
          f"{stats.shared_bytes / 1e3:9.1f}")
    kinds = ", ".join(f"{k}={n}" for k, n in sorted(stats.by_kind.items()))
    print(f"request mix: {kinds}")

    if args.compare_naive:
        start = time.perf_counter()
        execute_naive(requests, engine=args.engine)
        naive_s = time.perf_counter() - start
        print(
            f"\nnaive per-request re-planning: {naive_s * 1e3:.1f} ms "
            f"({args.requests / naive_s:.1f} req/s) — batched cached "
            f"serving is {naive_s / served_s:.1f}x faster"
        )

    print("\nprocess cache statistics:")
    _print_cache_stats(service.cache_stats())
    from repro.engine.plan_store import plan_store_snapshot

    if plan_store_snapshot().get("configured"):
        _print_store_stats()
    return 0


def _print_cache_stats(stats_by_cache) -> None:
    print(
        f"{'cache':>10s} {'entries':>8s} {'hits':>8s} {'misses':>8s} "
        f"{'evictions':>10s} {'rejections':>11s} {'bytes':>12s}"
    )
    for name, stats in stats_by_cache.items():
        print(
            f"{name:>10s} {stats['entries']:8d} {stats['hits']:8d} "
            f"{stats['misses']:8d} {stats['evictions']:10d} "
            f"{stats['rejections']:11d} {stats['bytes']:12,d}"
        )


def cmd_cache(args) -> int:
    """Print (and optionally clear) the process-wide plan/schedule caches.

    The caches are per process: long-running embeddings (apps, services,
    benchmark harnesses) accumulate entries; a fresh CLI invocation starts
    empty.  ``--clear`` drops all cached plans and schedules (statistics are
    kept so hit/miss history stays visible); ``--reset-stats`` zeroes the
    counters as well.  The plan cache's byte accounting (the
    ``REPRO_PLAN_CACHE_BYTES`` LRU memory budget) is shown in the ``bytes``
    column; ``rejections`` counts oversized entries refused admission.

    Per-plan-signature timing records (count, total, min, mean, max per
    executed plan and *phase* — ``prepare`` covers CSF conversion, plan
    build and JIT compilation, ``execute`` the steady-state run) accumulated
    by the executor are printed below the cache table whenever any exist;
    ``--clear`` drops them too.  ``--store`` additionally reports the
    disk-backed plan store named by ``REPRO_PLAN_STORE``.
    """
    from repro.engine.lowering.codegen import reset_jit_stats
    from repro.engine.plan_cache import (
        caches_snapshot,
        clear_plan_timings,
        plan_timings_snapshot,
        plan_timings_stats,
    )

    caches = {
        "plan": default_plan_cache(),
        "schedule": default_schedule_cache(),
        "executor": default_executor_cache(),
    }
    if args.clear:
        clear_caches()
        clear_plan_timings()
        print("cleared all cached plans, schedules, executors and plan timings")
    if args.reset_stats:
        for cache in caches.values():
            cache.reset_stats()
        reset_jit_stats()
        print("reset cache statistics")
    print()
    _print_cache_stats(caches_snapshot())
    if args.store:
        _print_store_stats()
    rows = plan_timings_snapshot()
    if rows:
        registry = plan_timings_stats()
        print(
            f"\nper-plan timings ({registry['signatures']} row(s), "
            f"cap {registry['cap']}, {registry['evictions']} evicted, "
            f"by total time):"
        )
        print(
            f"{'digest':>18s} {'engine':>8s} {'phase':>8s} {'count':>6s} "
            f"{'total [ms]':>11s} {'mean [ms]':>10s} {'max [ms]':>9s}  plan"
        )
        for row in rows[: args.top]:
            print(
                f"{row['digest']:>18s} {row['engine']:>8s} "
                f"{row['phase']:>8s} {row['count']:6d} "
                f"{row['total_s'] * 1e3:11.2f} {row['mean_s'] * 1e3:10.3f} "
                f"{row['max_s'] * 1e3:9.2f}  {row['plan']}"
            )
    return 0


def _print_store_stats() -> None:
    """Print the default plan store's stats (or that none is configured)."""
    from repro.engine.plan_store import PLAN_STORE_ENV, plan_store_snapshot

    snap = plan_store_snapshot()
    if not snap.get("configured"):
        print(f"\nplan store: not configured (set {PLAN_STORE_ENV})")
        return
    print(f"\nplan store at {snap['path']}:")
    print(
        f"{'entries':>8s} {'hits':>8s} {'misses':>8s} {'writes':>8s} "
        f"{'errors':>8s} {'bytes':>12s}"
    )
    print(
        f"{snap['entries']:8d} {snap['hits']:8d} {snap['misses']:8d} "
        f"{snap['writes']:8d} {snap['errors']:8d} {snap['bytes']:12,d}"
    )


def cmd_datasets(args) -> int:
    print(f"{'name':>12s} {'order':>6s} {'shape':>30s} {'nnz':>14s}")
    for name, spec in sorted(dataset_presets().items()):
        print(
            f"{name:>12s} {spec.order:6d} {str(spec.full_shape):>30s} "
            f"{spec.full_nnz:14,d}"
        )
    print("\nload a scaled synthetic stand-in with "
          "repro.load_preset(name, scale=..., max_nnz=...) "
          "or the real file with load_preset(name, tns_path=...).")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="SpTTN-Cyclops reproduction: minimum-cost loop nests for "
        "sparse-tensor-times-tensor-network contractions.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p):
        p.add_argument("--spec", required=True, help='einsum spec, e.g. "ijk,jr,kr->ir"')
        p.add_argument("--tns", help="FROSTT .tns file for the sparse operand")
        p.add_argument("--shape", help="synthetic sparse tensor shape, e.g. 200,150,120")
        p.add_argument("--nnz", type=int, help="synthetic nonzero count")
        p.add_argument("--rank", type=int, default=16, help="dense factor rank (default 16)")
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--buffer-bound", type=int, default=2,
                       help="intermediate buffer dimension bound (default 2)")

    p_sched = sub.add_parser("schedule", help="show the selected loop nest")
    add_common(p_sched)
    p_sched.set_defaults(func=cmd_schedule)

    p_run = sub.add_parser("run", help="execute the kernel (optionally vs baselines)")
    add_common(p_run)
    p_run.add_argument("--compare", nargs="*", choices=sorted(_BASELINES),
                       help="baselines to compare against")
    p_run.add_argument("--repeats", type=int, default=3)
    p_run.add_argument(
        "--engine", choices=ENGINES, default=None,
        help="execution engine for the spttn system (default: REPRO_ENGINE "
        "environment variable, else 'lowered')",
    )
    p_run.add_argument(
        "--trace", metavar="PATH", default=None,
        help="record spans for the run and write a Chrome-trace JSON file "
        "(loadable in Perfetto / chrome://tracing)",
    )
    p_run.set_defaults(func=cmd_run)

    p_tune = sub.add_parser(
        "tune",
        help="sweep the loop-order space (cost model, optionally measured)",
    )
    add_common(p_tune)
    p_tune.add_argument(
        "--workers", type=int, default=None,
        help="parallel sweep workers (-1 = one per CPU; default: the "
        "REPRO_WORKERS environment variable, else serial)",
    )
    p_tune.add_argument(
        "--max-candidates", type=int, default=None,
        help="cap on the number of enumerated loop orders",
    )
    p_tune.add_argument(
        "--top", type=int, default=10, help="rows to print per ranking"
    )
    p_tune.add_argument(
        "--measure", action="store_true",
        help="also execute and time the best candidates",
    )
    p_tune.add_argument(
        "--measure-candidates", type=int, default=16,
        help="how many of the best-by-cost candidates to measure",
    )
    p_tune.add_argument("--repeats", type=int, default=1,
                        help="timed repetitions per measured candidate")
    p_tune.add_argument(
        "--calibrate", action="store_true",
        help="fit measured cost-model coefficients from the timed "
        "candidates (implies --measure), apply them process-wide, report "
        "the re-ranked sweep, and persist them when REPRO_PLAN_STORE is set",
    )
    p_tune.set_defaults(func=cmd_tune)

    p_dist = sub.add_parser(
        "dist",
        help="distributed virtual-rank execution (rank-parallel) / scaling sweep",
    )
    add_common(p_dist)
    p_dist.add_argument(
        "--procs", default="1,2,4,8",
        help="comma-separated virtual process counts (default 1,2,4,8)",
    )
    p_dist.add_argument(
        "--workers", type=int, default=None,
        help="worker processes for rank-parallel execution (default: the "
        "REPRO_WORKERS environment variable; 0 = serial, -1 = one per CPU)",
    )
    p_dist.add_argument(
        "--engine", choices=ENGINES, default=None,
        help="execution engine for the per-rank executors (default: "
        "REPRO_ENGINE environment variable, else 'lowered')",
    )
    p_dist.add_argument(
        "--mode", choices=("execute", "simulate", "both"), default="execute",
        help="measure real rank-parallel executions, sweep the alpha-beta "
        "simulator, or both (default execute)",
    )
    p_dist.add_argument("--repeats", type=int, default=1,
                        help="timed repetitions per process count")
    p_dist.add_argument(
        "--no-check", dest="check", action="store_false",
        help="skip the 1-rank vs n-rank exactness diagnostic "
        "(two extra executions) after the execute sweep",
    )
    p_dist.set_defaults(func=cmd_dist, check=True)

    p_serve = sub.add_parser(
        "serve",
        help="drive the batched contraction service with a seeded request mix",
    )
    p_serve.add_argument(
        "--requests", type=int, default=64,
        help="number of requests in the generated workload (default 64)",
    )
    p_serve.add_argument(
        "--workers", type=int, default=None,
        help="worker processes for batch dispatch (default: the "
        "REPRO_WORKERS environment variable; 0 = serial, -1 = one per CPU)",
    )
    p_serve.add_argument(
        "--engine", choices=ENGINES, default=None,
        help="execution engine for served requests (default: REPRO_ENGINE "
        "environment variable, else 'lowered')",
    )
    p_serve.add_argument(
        "--mix", choices=MIXES, default="mixed",
        help="scenario mix of the generated requests (default mixed)",
    )
    p_serve.add_argument("--seed", type=int, default=0,
                         help="seed for the scenario generator")
    p_serve.add_argument(
        "--cold", dest="warmup", action="store_false",
        help="time the first (cold) pass instead of warming the caches "
        "with one untimed pass first",
    )
    p_serve.add_argument(
        "--compare-naive", action="store_true",
        help="also time naive per-request re-planning and print the speedup",
    )
    p_serve.add_argument(
        "--daemon", action="store_true",
        help="run the network-facing serving daemon until SIGTERM "
        "(newline-delimited JSON over TCP; see docs/PROTOCOL.md)",
    )
    p_serve.add_argument(
        "--host", default="127.0.0.1",
        help="daemon bind host (default 127.0.0.1)",
    )
    p_serve.add_argument(
        "--port", type=int, default=0,
        help="daemon bind port (default 0 = ephemeral, printed on startup)",
    )
    p_serve.add_argument(
        "--max-pending", type=int, default=4096,
        help="daemon admission bound: backlog + in-flight requests above "
        "which submissions are rejected (default 4096)",
    )
    p_serve.add_argument(
        "--client-quota", type=int, default=64,
        help="daemon fairness bound: max in-flight requests per client "
        "connection in one dispatch cycle (default 64)",
    )
    p_serve.add_argument(
        "--connect", metavar="HOST:PORT", default=None,
        help="run a scripted client session against a daemon instead of "
        "serving in-process",
    )
    p_serve.add_argument(
        "--retry", type=float, default=0.0,
        help="with --connect: keep retrying the connection for this many "
        "seconds (for scripts that race the daemon startup)",
    )
    p_serve.add_argument(
        "--verify", action="store_true",
        help="with --connect: assert daemon results are bit-identical to "
        "in-process sequential serving",
    )
    p_serve.add_argument(
        "--stats", dest="show_stats", action="store_true",
        help="with --connect: fetch and print the daemon stats document",
    )
    p_serve.add_argument(
        "--metrics", dest="show_metrics", action="store_true",
        help="with --connect: fetch and print the daemon metrics in "
        "Prometheus text exposition format",
    )
    p_serve.add_argument(
        "--shutdown", action="store_true",
        help="with --connect: ask the daemon to drain and shut down after "
        "the session",
    )
    p_serve.add_argument(
        "--trace", metavar="PATH", default=None,
        help="in-process mode: record spans for the timed pass and write a "
        "Chrome-trace JSON file (loadable in Perfetto)",
    )
    p_serve.add_argument(
        "--trace-dir", metavar="DIR", default=None,
        help="with --daemon: enable tracing and write a Chrome-trace JSON "
        "file into DIR at shutdown (default: the REPRO_TRACE_DIR "
        "environment variable)",
    )
    p_serve.set_defaults(func=cmd_serve, warmup=True)

    p_cache = sub.add_parser(
        "cache", help="show (or clear) the process-wide plan/schedule cache stats"
    )
    p_cache.add_argument("--clear", action="store_true",
                         help="drop all cached plans and schedules")
    p_cache.add_argument("--reset-stats", action="store_true",
                         help="zero the hit/miss/eviction counters")
    p_cache.add_argument("--top", type=int, default=20,
                         help="per-plan timing rows to print (default 20)")
    p_cache.add_argument(
        "--store", action="store_true",
        help="also show the disk-backed plan store stats (REPRO_PLAN_STORE)",
    )
    p_cache.set_defaults(func=cmd_cache)

    p_data = sub.add_parser("datasets", help="list the FROSTT dataset presets")
    p_data.set_defaults(func=cmd_datasets)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
