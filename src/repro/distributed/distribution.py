"""Cyclic data distribution of SpTTN operands (Section 5.2 of the paper).

The sparse tensor's modes are distributed cyclically over the processor
grid's dimensions: entry ``(i_0, ..., i_{d-1})`` lives on the rank with grid
coordinates ``(i_0 mod P_0, ..., i_{d-1} mod P_{d-1})``.  Each dense operand
is partitioned along the mode(s) it shares with the sparse tensor and
replicated along every other grid dimension, so all local contractions can
proceed without further data exchange; the (dense) output is reduced at the
end.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.expr import SpTTNKernel
from repro.distributed.grid import ProcessorGrid
from repro.sptensor.coo import COOTensor
from repro.util.validation import require


def partition_sparse_tensor(
    tensor: COOTensor, grid: ProcessorGrid
) -> List[COOTensor]:
    """Split a COO tensor into per-rank local tensors under the cyclic layout.

    Local tensors keep *global* index values (and the global shape) so the
    same kernel definition runs unchanged on every rank; only the set of
    stored nonzeros differs.
    """
    require(
        grid.order == tensor.order,
        f"grid order {grid.order} must match tensor order {tensor.order}",
    )
    owners = np.zeros(tensor.nnz, dtype=np.int64)
    if tensor.nnz:
        coords = np.stack(
            [tensor.indices[:, m] % grid.dims[m] for m in range(grid.order)],
            axis=1,
        )
        for m in range(grid.order):
            owners = owners * grid.dims[m] + coords[:, m]
    locals_: List[COOTensor] = []
    for rank in grid.iter_ranks():
        mask = owners == rank
        locals_.append(
            COOTensor(
                tensor.shape,
                tensor.indices[mask],
                tensor.values[mask],
                sort=True,
            )
            if tensor.nnz
            else COOTensor.empty(tensor.shape)
        )
    return locals_


@dataclass
class DenseReplication:
    """Placement of one dense operand on the grid."""

    operand: str
    #: grid dimension each operand mode is partitioned over (None = replicated)
    partitioned_over: Tuple[Optional[int], ...]
    #: elements stored per rank
    local_elements: int
    #: total elements communicated to set up the replication (broadcast volume)
    broadcast_elements: int


@dataclass
class CyclicDistribution:
    """Full placement of an SpTTN kernel's operands on a processor grid."""

    kernel: SpTTNKernel
    grid: ProcessorGrid
    #: mapping sparse index name -> grid dimension
    sparse_index_to_grid_dim: Dict[str, int] = field(default_factory=dict)
    dense_placements: List[DenseReplication] = field(default_factory=list)
    output_reduction_elements: int = 0

    @classmethod
    def plan(cls, kernel: SpTTNKernel, grid: ProcessorGrid) -> "CyclicDistribution":
        """Compute the placement of every operand for *kernel* on *grid*."""
        sparse_indices = kernel.sparse_operand.indices
        require(
            grid.order == len(sparse_indices),
            "the processor grid must have one dimension per sparse-tensor mode",
        )
        index_to_dim = {name: pos for pos, name in enumerate(sparse_indices)}

        placements: List[DenseReplication] = []
        for op in kernel.dense_operands:
            partitioned: List[Optional[int]] = []
            local = 1
            for idx in op.indices:
                dim_size = kernel.index_dims[idx]
                if idx in index_to_dim:
                    g = index_to_dim[idx]
                    partitioned.append(g)
                    local *= int(np.ceil(dim_size / grid.dims[g]))
                else:
                    partitioned.append(None)
                    local *= dim_size
            total = 1
            for idx in op.indices:
                total *= kernel.index_dims[idx]
            # Each rank ends up with `local` elements; the broadcast that
            # establishes the replication moves local*size elements in total
            # minus the single original copy.
            broadcast = local * grid.size - total
            placements.append(
                DenseReplication(
                    operand=op.name,
                    partitioned_over=tuple(partitioned),
                    local_elements=int(local),
                    broadcast_elements=int(max(0, broadcast)),
                )
            )

        if kernel.output.is_sparse:
            reduction = 0  # disjoint nonzeros: no reduction needed
        else:
            reduction = 1
            for idx in kernel.output.indices:
                reduction *= kernel.index_dims[idx]

        return cls(
            kernel=kernel,
            grid=grid,
            sparse_index_to_grid_dim=index_to_dim,
            dense_placements=placements,
            output_reduction_elements=int(reduction),
        )

    # ------------------------------------------------------------------ #
    def total_broadcast_elements(self) -> int:
        return sum(p.broadcast_elements for p in self.dense_placements)

    def max_local_dense_elements(self) -> int:
        return sum(p.local_elements for p in self.dense_placements)

    def local_nnz(self, tensor: COOTensor) -> np.ndarray:
        """Per-rank stored-nonzero counts under the cyclic layout."""
        require(tensor.order == self.grid.order, "tensor/grid order mismatch")
        counts = np.zeros(self.grid.size, dtype=np.int64)
        if tensor.nnz == 0:
            return counts
        owners = np.zeros(tensor.nnz, dtype=np.int64)
        for m in range(self.grid.order):
            owners = owners * self.grid.dims[m] + (
                tensor.indices[:, m] % self.grid.dims[m]
            )
        np.add.at(counts, owners, 1)
        return counts

    def load_imbalance(self, tensor: COOTensor) -> float:
        """Max-over-mean local nonzero count (1.0 = perfectly balanced)."""
        counts = self.local_nnz(tensor)
        mean = counts.mean() if counts.size else 0.0
        if mean == 0:
            return 1.0
        return float(counts.max() / mean)
