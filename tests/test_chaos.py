"""Chaos suite: the serving stack under injected crashes and deadlines.

The central criterion of the fault-tolerant runtime: with workers being
SIGKILLed mid-batch, every in-flight request still resolves — with a
result bit-identical to the no-fault run (supervised retry or serial
re-execution) or a structured error — and the daemon itself never exits
or restarts.  Deadlines expire as ``timeout`` errors at every stage
(admission, queue wait, execution) and poison signatures are quarantined
after repeated crashes, then recover once the TTL lapses.
"""

from __future__ import annotations

import socket
import threading
import time

import numpy as np
import pytest

from repro.runtime import shutdown_pool, supervision_events
from repro.serve import (
    ContractionService,
    DeadlineError,
    QuarantinedError,
    RequestFailed,
    ServeClient,
    ServeError,
    execute_sequential,
    mttkrp_request,
    start_daemon_thread,
)
from repro.sptensor import random_sparse_tensor
from repro.util.faults import configure_faults, reset_faults


def _mttkrp_batch(n: int, seed: int = 0):
    """*n* structurally identical MTTKRP requests (one signature group)."""
    tensor = random_sparse_tensor((30, 25, 20), nnz=200, seed=seed)
    rng = np.random.default_rng(seed + 1)
    return [
        mttkrp_request(
            tensor,
            [rng.standard_normal((25, 4)), rng.standard_normal((20, 4))],
            mode=0,
        )
        for _ in range(n)
    ]


def _on_loop(handle, fn, *args) -> None:
    """Run *fn* on the daemon's event loop and wait until it has executed."""
    done = threading.Event()

    def _call():
        fn(*args)
        done.set()

    handle.call(_call)
    assert done.wait(10.0), "daemon event loop did not run the callback"


@pytest.fixture(autouse=True)
def _fresh_faults():
    """Empty fault plan and fresh pools around every chaos test.

    Pool workers fork with the plan active at fork time, so pools are
    shut down on both sides: no test inherits workers carrying another
    test's faults.
    """
    shutdown_pool()
    configure_faults(None)
    yield
    shutdown_pool()
    reset_faults()


# --------------------------------------------------------------------------- #
# In-process service under worker crashes
# --------------------------------------------------------------------------- #
class TestServiceSurvivesWorkerCrashes:
    def test_sigkilled_workers_mid_batch_still_resolve_bit_identical(self):
        requests = _mttkrp_batch(4, seed=3)
        expected = execute_sequential(requests)
        configure_faults("pool.task:kill")  # every pool worker task dies
        service = ContractionService(workers=2, quarantine_ttl=0.0)
        futures = service.submit_many(requests)
        with pytest.warns(RuntimeWarning, match="worker died mid-map"):
            service.flush()
        for future, want in zip(futures, expected):
            np.testing.assert_array_equal(np.asarray(future.result()), want)
        assert service.stats.served == len(requests)
        assert service.stats.failed == 0

    def test_repeat_crash_signature_is_quarantined_then_recovers(self):
        configure_faults("pool.task:kill")
        service = ContractionService(workers=2, quarantine_ttl=0.5)
        expected = execute_sequential(_mttkrp_batch(2, seed=1))
        for _ in range(2):  # two crashing flushes = two strikes
            with pytest.warns(RuntimeWarning, match="worker died mid-map"):
                outputs = service.run(_mttkrp_batch(2, seed=1))
            for out, want in zip(outputs, expected):  # crashes never corrupt
                np.testing.assert_array_equal(np.asarray(out), want)
        assert service.stats.quarantines == 1
        snapshot = service.quarantine_snapshot()
        assert len(snapshot["entries"]) == 1
        (entry,) = snapshot["entries"].values()
        assert entry["kind"] == "mttkrp"
        assert entry["strikes"] == 2
        # matching submissions now fail fast, before queue or workers
        with pytest.raises(QuarantinedError, match="quarantined"):
            service.submit(_mttkrp_batch(1, seed=1)[0])
        assert service.stats.quarantined == 1
        # TTL expiry clears the entry and the strike count: fresh slate
        configure_faults(None)
        shutdown_pool()  # drop workers that inherited the kill plan
        time.sleep(0.6)
        outputs = service.run(_mttkrp_batch(2, seed=1))
        for out, want in zip(outputs, expected):
            np.testing.assert_array_equal(np.asarray(out), want)
        assert service.quarantine_snapshot()["entries"] == {}

    def test_crash_strikes_are_attributed_via_supervision_events(self):
        configure_faults("pool.task:kill")
        before = supervision_events()
        service = ContractionService(workers=2, quarantine_ttl=30.0)
        with pytest.warns(RuntimeWarning):
            service.run(_mttkrp_batch(2, seed=4))
        after = supervision_events()
        assert after["crashes"] > before["crashes"]
        assert after["respawns"] > before["respawns"]


# --------------------------------------------------------------------------- #
# Deadlines end-to-end (in process)
# --------------------------------------------------------------------------- #
class TestDeadlines:
    def test_already_expired_request_is_shed_at_admission(self):
        service = ContractionService(workers=0)
        request = _mttkrp_batch(1)[0]
        request.deadline_ms = -1.0
        with pytest.raises(DeadlineError, match="before admission"):
            service.submit(request)
        assert service.stats.expired == 1
        assert service.pending == 0

    def test_queue_wait_counts_against_the_budget(self):
        service = ContractionService(workers=0)
        request = _mttkrp_batch(1)[0]
        request.deadline_ms = 20.0
        future = service.submit(request)
        time.sleep(0.05)  # budget burns out while queued
        service.flush()
        with pytest.raises(RequestFailed, match="after queue wait") as excinfo:
            future.result()
        assert excinfo.value.code == "timeout"
        assert service.stats.expired == 1
        assert service.stats.failed == 0  # timeouts are not failures

    def test_expiry_during_execution_reports_timeout_not_result(self):
        configure_faults("serve.execute:delay:0.2")  # slower than the budget
        service = ContractionService(workers=0)
        request = _mttkrp_batch(1)[0]
        request.deadline_ms = 100.0
        future = service.submit(request)
        service.flush()
        with pytest.raises(RequestFailed, match="during execution") as excinfo:
            future.result()
        assert excinfo.value.code == "timeout"
        assert service.stats.expired == 1

    def test_requests_without_deadlines_are_untouched(self):
        service = ContractionService(workers=0)
        requests = _mttkrp_batch(2, seed=6)
        expected = execute_sequential(requests)
        for out, want in zip(service.run(requests), expected):
            np.testing.assert_array_equal(np.asarray(out), want)
        assert service.stats.expired == 0


# --------------------------------------------------------------------------- #
# Daemon-level chaos
# --------------------------------------------------------------------------- #
class TestDaemonChaos:
    def test_daemon_survives_sigkilled_workers_with_all_requests_resolved(self):
        requests = _mttkrp_batch(4, seed=5)
        expected = execute_sequential(requests)
        configure_faults("pool.task:kill")
        with start_daemon_thread(workers=2) as handle:
            with ServeClient(*handle.address, timeout=120) as client:
                # pause so all four land in one dispatch cycle (one group)
                _on_loop(handle, handle.daemon.pause_dispatch)
                pending = client.submit_many(requests)
                assert client.ping()
                _on_loop(handle, handle.daemon.resume_dispatch)
                outputs = [p.result() for p in pending]
                for out, want in zip(outputs, expected):
                    np.testing.assert_array_equal(np.asarray(out), want)
                # the daemon is alive, healthy, and reported the crashes
                assert client.ping()
                health = client.health()
                assert health["crashes"] >= 1
                assert health["last_crash_unix"] is not None
                assert health["status"] == "ready"  # one strike: no quarantine
            assert handle.thread.is_alive()  # zero daemon restarts
            daemon = handle.daemon
        assert daemon.stats.replied == len(requests)
        assert daemon.stats.flush_errors == 0

    def test_quarantined_signature_gets_structured_error_reply(self):
        configure_faults("pool.task:kill")
        service = ContractionService(workers=2, quarantine_ttl=30.0)
        with start_daemon_thread(service=service) as handle:
            with ServeClient(*handle.address, timeout=120) as client:
                for _ in range(2):  # two crashing cycles = two strikes
                    _on_loop(handle, handle.daemon.pause_dispatch)
                    pending = client.submit_many(_mttkrp_batch(2, seed=1))
                    assert client.ping()
                    _on_loop(handle, handle.daemon.resume_dispatch)
                    for p in pending:
                        p.result()  # still served via the serial fallback
                reply = client.submit(_mttkrp_batch(1, seed=1)[0])
                with pytest.raises(ServeError) as excinfo:
                    reply.result()
                assert excinfo.value.code == "quarantined"
                health = client.health()
                assert health["status"] == "degraded"
                assert health["quarantined_signatures"] == 1
            assert handle.daemon.stats.quarantined == 1

    def test_deadline_expired_in_backlog_returns_timeout_error(self):
        request = _mttkrp_batch(1, seed=2)[0]
        request.deadline_ms = 40.0
        with start_daemon_thread(workers=0) as handle:
            with ServeClient(*handle.address) as client:
                _on_loop(handle, handle.daemon.pause_dispatch)
                pending = client.submit(request)
                assert client.ping()
                time.sleep(0.1)  # deadline lapses while queued
                _on_loop(handle, handle.daemon.resume_dispatch)
                with pytest.raises(ServeError) as excinfo:
                    pending.result()
                assert excinfo.value.code == "timeout"
            assert handle.daemon.stats.expired == 1

    def test_deadline_already_expired_at_receipt_is_shed_immediately(self):
        request = _mttkrp_batch(1, seed=2)[0]
        request.deadline_ms = -5.0
        with start_daemon_thread(workers=0) as handle:
            with ServeClient(*handle.address) as client:
                pending = client.submit(request)
                with pytest.raises(ServeError) as excinfo:
                    pending.result()
                assert excinfo.value.code == "timeout"
            assert handle.daemon.stats.expired == 1
            # shed at receipt: the request never cost a service queue slot
            assert handle.daemon.service.stats.submitted == 0

    def test_idle_timeout_reaps_silent_connections_only(self):
        request = _mttkrp_batch(1, seed=3)[0]
        expected = execute_sequential([request])[0]
        with start_daemon_thread(workers=0, idle_timeout=0.2) as handle:
            with ServeClient(*handle.address, timeout=60) as client:
                # a connection with a result owed outlives many idle periods
                _on_loop(handle, handle.daemon.pause_dispatch)
                pending = client.submit(request)
                assert client.ping()
                time.sleep(0.5)
                _on_loop(handle, handle.daemon.resume_dispatch)
                np.testing.assert_array_equal(
                    np.asarray(pending.result()), expected
                )
            # a silent connection with nothing in flight is closed
            with socket.create_connection(handle.address, timeout=10) as sock:
                assert sock.makefile("rb").readline() == b""  # daemon EOF
            assert handle.daemon.stats.idle_closed >= 1
