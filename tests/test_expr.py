"""Unit tests for the SpTTN kernel IR (parsing and validation)."""

import numpy as np
import pytest

from repro.core.expr import KernelOperand, SpTTNKernel, parse_kernel
from repro.sptensor import CSFTensor, random_sparse_tensor


class TestParseKernel:
    def test_mttkrp_parsing(self, mttkrp_setup):
        kernel, _ = mttkrp_setup
        assert kernel.sparse_operand.name == "T"
        assert kernel.sparse_operand.indices == ("i", "j", "k")
        assert [op.name for op in kernel.dense_operands] == ["B", "C"]
        assert kernel.output.indices == ("i", "a")
        assert not kernel.output.is_sparse

    def test_index_dimensions_from_tensors(self, mttkrp_setup):
        kernel, tensors = mttkrp_setup
        T = tensors["T"]
        assert kernel.dim("i") == T.shape[0]
        assert kernel.dim("j") == T.shape[1]
        assert kernel.dim("a") == 5

    def test_sparse_and_dense_index_classification(self, ttmc_setup):
        kernel, _ = ttmc_setup
        assert kernel.sparse_indices == frozenset({"i", "j", "k"})
        assert kernel.dense_indices == frozenset({"r", "s"})
        assert kernel.contracted_indices == frozenset({"j", "k"})

    def test_default_names(self, random_coo3):
        kernel = parse_kernel(
            "ijk,ja,ka->ia",
            [random_coo3, np.ones((15, 3)), np.ones((12, 3))],
        )
        assert kernel.sparse_operand.name == "T"
        assert [op.name for op in kernel.dense_operands] == ["A0", "A1"]

    def test_sparse_output_detection(self, tttp_setup):
        kernel, _ = tttp_setup
        assert kernel.output.is_sparse

    def test_dense_output_when_indices_differ(self, mttkrp_setup):
        kernel, _ = mttkrp_setup
        assert not kernel.output.is_sparse

    def test_force_output_sparse_mismatch_rejected(self, random_coo3):
        with pytest.raises(ValueError, match="sparse output"):
            parse_kernel(
                "ijk,ja,ka->ia",
                [random_coo3, np.ones((15, 3)), np.ones((12, 3))],
                output_sparse=True,
            )

    def test_missing_arrow_rejected(self, random_coo3):
        with pytest.raises(ValueError, match="->"):
            parse_kernel("ijk,ja,ka", [random_coo3, np.ones((15, 3)), np.ones((12, 3))])

    def test_operand_count_mismatch(self, random_coo3):
        with pytest.raises(ValueError, match="inputs"):
            parse_kernel("ijk,ja->ia", [random_coo3])

    def test_rank_mismatch_rejected(self, random_coo3):
        with pytest.raises(ValueError, match="order"):
            parse_kernel("ij,ja,ka->ia", [random_coo3, np.ones((15, 3)), np.ones((12, 3))])

    def test_inconsistent_dimensions_rejected(self, random_coo3):
        with pytest.raises(ValueError, match="inconsistent"):
            parse_kernel(
                "ijk,ja,ka->ia", [random_coo3, np.ones((15, 3)), np.ones((12, 4))]
            )

    def test_two_sparse_operands_rejected(self, random_coo3):
        other = random_sparse_tensor((15, 3), nnz=5, seed=0)
        with pytest.raises(ValueError, match="exactly one sparse"):
            parse_kernel("ijk,ja,ka->ia", [random_coo3, other, np.ones((12, 3))])

    def test_no_sparse_operand_rejected(self):
        with pytest.raises(ValueError, match="exactly one sparse"):
            parse_kernel("ij,jk->ik", [np.ones((3, 4)), np.ones((4, 5))])

    def test_output_index_must_appear_in_inputs(self, random_coo3):
        with pytest.raises(ValueError, match="does not appear"):
            parse_kernel(
                "ijk,ja,ka->iz", [random_coo3, np.ones((15, 3)), np.ones((12, 3))]
            )

    def test_csf_input_sets_mode_order(self, random_coo3):
        csf = CSFTensor.from_coo(random_coo3, mode_order=(1, 0, 2))
        kernel = parse_kernel(
            "ijk,ja,ka->ia", [csf, np.ones((15, 3)), np.ones((12, 3))]
        )
        assert kernel.csf_mode_order == ("j", "i", "k")

    def test_repeated_index_within_operand_rejected(self):
        cube = random_sparse_tensor((10, 10, 10), nnz=20, seed=0)
        with pytest.raises(ValueError, match="repeats"):
            parse_kernel("iik,ia,ka->ia", [cube, np.ones((10, 3)), np.ones((10, 3))])


class TestSparseStats:
    def test_prefix_nnz_recorded_from_coo(self, mttkrp_setup):
        kernel, tensors = mttkrp_setup
        T = tensors["T"]
        assert kernel.nnz() == T.nnz
        for depth in range(1, 4):
            assert kernel.prefix_nnz(depth) == T.nnz_prefix(depth)

    def test_prefix_nnz_zero_depth(self, mttkrp_setup):
        kernel, _ = mttkrp_setup
        assert kernel.prefix_nnz(0) == 1.0

    def test_sparse_subset_nnz_prefix_exact(self, mttkrp_setup):
        kernel, tensors = mttkrp_setup
        assert kernel.sparse_subset_nnz(["i", "j"]) == tensors["T"].nnz_prefix(2)

    def test_sparse_subset_nnz_non_prefix_bounded(self, mttkrp_setup):
        kernel, tensors = mttkrp_setup
        est = kernel.sparse_subset_nnz(["j", "k"])
        assert 0 < est <= tensors["T"].nnz

    def test_sparse_subset_nnz_dense_only(self, mttkrp_setup):
        kernel, _ = mttkrp_setup
        assert kernel.sparse_subset_nnz(["a"]) == 1.0

    def test_uniform_fallback_without_stats(self):
        operands = [
            KernelOperand("T", ("i", "j"), True),
            KernelOperand("A", ("j", "r"), False),
        ]
        output = KernelOperand("OUT", ("i", "r"), False)
        kernel = SpTTNKernel(operands, output, {"i": 10, "j": 20, "r": 4})
        assert kernel.prefix_nnz(1) == 10  # uniform assumption: min(nnz, dim)


class TestKernelHelpers:
    def test_einsum_spec_roundtrip(self, ttmc_setup):
        kernel, _ = ttmc_setup
        assert kernel.einsum_spec() == "ijk,jr,ks->irs"

    def test_operand_lookup(self, ttmc_setup):
        kernel, _ = ttmc_setup
        assert kernel.operand("U").indices == ("j", "r")
        assert kernel.operand("OUT").indices == ("i", "r", "s")
        with pytest.raises(KeyError):
            kernel.operand("nope")

    def test_index_info(self, ttmc_setup):
        kernel, _ = ttmc_setup
        info = kernel.index_info("j")
        assert info.is_sparse and info.csf_level == 1
        info_r = kernel.index_info("r")
        assert not info_r.is_sparse and info_r.csf_level is None

    def test_sparse_order_key(self, ttmc_setup):
        kernel, _ = ttmc_setup
        keys = [kernel.sparse_order_key(i) for i in ("i", "j", "k", "r")]
        assert keys == [0, 1, 2, 3]

    def test_n_inputs(self, ttmc4_setup):
        kernel, _ = ttmc4_setup
        assert kernel.n_inputs == 4
        assert kernel.n_dense == 3
