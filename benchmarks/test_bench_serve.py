"""Serving-layer throughput: batched cached serving vs per-request planning.

The serving layer's claim is the paper's amortization argument applied to
concurrent traffic: grouping requests by plan-cache signature lets one
schedule search + one compiled plan serve a whole batch, so a warm service
answers a mixed-kernel workload at execution speed while naive per-request
re-planning pays the scheduler and the symbolic preprocessing on every
single request.

This benchmark replays the seeded 64-request mixed workload (all four named
kernel families plus raw spec strings, two sparse shapes and sparsities per
order, float64/float32 factors) through both regimes and asserts batched
cached serving is at least 2x faster — the acceptance bar; the observed
ratio is typically far higher.  Results are also checked bit-identical to
sequential one-at-a-time execution, so the speedup cannot come from
answering a different question.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.engine.plan_cache import clear_caches
from repro.serve import (
    ContractionService,
    ServiceStats,
    execute_naive,
    execute_sequential,
    scenario_mix,
)
from repro.sptensor import COOTensor

from _workloads import BENCH_SEED, format_table, record_rows

N_REQUESTS = 64
MIX = "mixed"

#: Engine pinned to the lowered tier: this benchmark isolates *planning*
#: amortization (as test_bench_plan_cache does), so execution must stay
#: cheap relative to the per-request search regardless of REPRO_ENGINE.
ENGINE = "lowered"


def _outputs_equal(a, b) -> None:
    if isinstance(b, COOTensor):
        assert isinstance(a, COOTensor)
        np.testing.assert_array_equal(a.indices, b.indices)
        np.testing.assert_array_equal(a.values, b.values)
    else:
        np.testing.assert_array_equal(np.asarray(a), np.asarray(b))


@pytest.mark.smoke
def test_batched_serving_beats_per_request_planning(benchmark):
    requests = scenario_mix(N_REQUESTS, mix=MIX, seed=BENCH_SEED, engine=ENGINE)

    # correctness first: serve results are bit-identical to sequential
    # one-at-a-time execution (serial tier; the worker-pool tier's
    # bit-identity is covered by the serve property tests)
    clear_caches()
    sequential = execute_sequential(requests, engine=ENGINE)
    clear_caches()
    service = ContractionService(workers=0, engine=ENGINE)
    served = service.run(requests)
    for got, want in zip(served, sequential):
        _outputs_equal(got, want)

    # timed: warm batched serving (caches populated by the run above);
    # stats are reset so the recorded row reflects the timed pass only
    service.stats = ServiceStats()
    start = time.perf_counter()
    service.run(requests)
    served_seconds = time.perf_counter() - start

    # timed: naive per-request re-planning (schedule search + symbolic
    # preprocessing + lowering, from scratch for every request)
    start = time.perf_counter()
    naive = execute_naive(requests, engine=ENGINE)
    naive_seconds = time.perf_counter() - start
    for got, want in zip(naive, sequential):
        _outputs_equal(got, want)

    rows = [
        {
            "requests": N_REQUESTS,
            "mix": MIX,
            "batches": service.stats.batches,
            "amortized": service.stats.amortized,
            "served_ms": served_seconds * 1e3,
            "naive_ms": naive_seconds * 1e3,
            "speedup": naive_seconds / served_seconds,
        }
    ]
    record_rows(benchmark, rows)
    print("\n" + format_table(rows))

    # the acceptance bar: batched cached serving at least 2x faster than
    # per-request re-planning on the 64-request mixed workload
    assert served_seconds * 2.0 <= naive_seconds

    # keep a pytest-benchmark record of the warm serving hot path
    benchmark.pedantic(
        lambda: service.run(requests), rounds=3, iterations=1, warmup_rounds=1
    )


@pytest.mark.smoke
def test_parallel_serving_matches_serial_bitwise(benchmark):
    """The worker-pool tier must return the same bits as serial serving on
    the benchmark workload (smoke-scale: 16 requests, 2 workers)."""
    requests = scenario_mix(16, mix=MIX, seed=BENCH_SEED + 1, engine=ENGINE)
    clear_caches()
    serial = ContractionService(workers=0, engine=ENGINE).run(requests)
    clear_caches()
    parallel_service = ContractionService(workers=2, engine=ENGINE)
    parallel = parallel_service.run(requests)
    for got, want in zip(parallel, serial):
        _outputs_equal(got, want)
    benchmark.pedantic(
        lambda: parallel_service.run(requests), rounds=2, iterations=1
    )
