"""Serving layer: batched concurrent SpTTN contraction requests.

* :mod:`repro.serve.request` — :class:`ContractionRequest` (an einsum spec
  plus operands) and named builders for the four kernel families.
* :mod:`repro.serve.service` — :class:`ContractionService`: bounded
  admission, batching by plan-cache signature, dispatch over the shared
  worker pool with shm broadcast of shared dense operands, futures with
  deterministic submission-order results; plus the sequential oracle and
  the naive per-request-planning baseline.
* :mod:`repro.serve.scenarios` — seeded request mixes for the
  ``repro serve`` load driver and the throughput benchmark.
* :mod:`repro.serve.protocol` — the newline-delimited JSON wire protocol
  (see ``docs/PROTOCOL.md``) shared by the daemon and the client.
* :mod:`repro.serve.daemon` — :class:`ServeDaemon`: the asyncio TCP server
  fronting a :class:`ContractionService` with backpressure, per-client
  round-robin fairness, cross-client signature batching, streamed results
  and graceful drain (``repro serve --daemon``).
* :mod:`repro.serve.client` — :class:`ServeClient`: the blocking NDJSON
  client used by ``repro serve --connect``, tests and benchmarks.
"""

from repro.serve.client import PendingReply, ServeClient
from repro.serve.daemon import (
    DaemonHandle,
    ServeDaemon,
    start_daemon_thread,
)
from repro.serve.protocol import ProtocolError, ServeError
from repro.serve.request import (
    ContractionRequest,
    all_mode_ttmc_request,
    mttkrp_request,
    ttmc_request,
    tttc_request,
    tttp_request,
)
from repro.serve.scenarios import MIXES, scenario_mix
from repro.serve.service import (
    AdmissionError,
    ContractionService,
    DeadlineError,
    QuarantinedError,
    RequestFailed,
    ServeFuture,
    ServiceStats,
    default_quarantine_ttl,
    execute_naive,
    execute_sequential,
)

__all__ = [
    "ContractionRequest",
    "mttkrp_request",
    "ttmc_request",
    "all_mode_ttmc_request",
    "tttp_request",
    "tttc_request",
    "MIXES",
    "scenario_mix",
    "AdmissionError",
    "ContractionService",
    "DeadlineError",
    "QuarantinedError",
    "RequestFailed",
    "ServeFuture",
    "ServiceStats",
    "default_quarantine_ttl",
    "execute_naive",
    "execute_sequential",
    "DaemonHandle",
    "PendingReply",
    "ProtocolError",
    "ServeClient",
    "ServeDaemon",
    "ServeError",
    "start_daemon_thread",
]
