"""Deterministic tree reductions over ordered per-rank partials.

:func:`tree_reduce` combines a list pairwise in the recursive-halving
shape a real MPI reduce uses (logarithmic depth).  Determinism is the
load-bearing property: the tree shape depends only on the *number* of
items, and the distributed runtime feeds it partials in rank order from an
order-preserving map, so the combined result is bit-identical whether the
ranks ran serially or on any number of pool workers.

The tree is only used where the combine is *exactly associative* (the
coordinate concatenation of disjoint sparse-pattern outputs), making it
bit-identical to the sequential left fold as well.  Floating-point sums are
not associative, so dense outputs deliberately keep their fixed rank-order
accumulation instead of this tree — see
:meth:`repro.distributed.runtime.DistributedSpTTN._reduce`.
"""

from __future__ import annotations

from typing import Callable, List, Sequence, TypeVar

from repro.util.validation import require

T = TypeVar("T")


def tree_reduce(items: Sequence[T], combine: Callable[[T, T], T]) -> T:
    """Combine *items* pairwise, ``((p0⊕p1) ⊕ (p2⊕p3)) ⊕ ...``.

    Adjacent pairs are combined level by level (an odd tail passes through
    unchanged), preserving the left-to-right order of *items* inside every
    combination.  With one item, that item is returned as-is — callers that
    need a private copy must copy it themselves.
    """
    require(len(items) > 0, "tree_reduce needs at least one item")
    level: List[T] = list(items)
    while len(level) > 1:
        nxt: List[T] = [
            combine(level[i], level[i + 1]) for i in range(0, len(level) - 1, 2)
        ]
        if len(level) % 2:
            nxt.append(level[-1])
        level = nxt
    return level[0]
