"""Quickstart: schedule and execute an SpTTN kernel.

Builds a random sparse tensor and two dense factor matrices, asks the
library for the minimum-cost fully-fused loop nest of the MTTKRP kernel
``A(i,r) = sum_{j,k} T(i,j,k) B(j,r) C(k,r)``, prints the selected loop
nest (compare with Listings 2-4 of the paper), executes it, and verifies
the result against a dense einsum reference.

Run with:  python examples/quickstart.py
"""

import numpy as np

import repro


def main() -> None:
    # 1. Build the operands: one sparse tensor, several small dense matrices.
    T = repro.random_sparse_tensor((200, 150, 120), nnz=20_000, seed=0)
    rank = 16
    B = repro.random_dense_matrix(T.shape[1], rank, seed=1, name="B")
    C = repro.random_dense_matrix(T.shape[2], rank, seed=2, name="C")
    print(f"sparse tensor: shape={T.shape}, nnz={T.nnz}")

    # 2. One call does everything: parse the einsum-style kernel, enumerate
    #    contraction paths, run Algorithm 1 to pick the cheapest loop order,
    #    and execute the fused loop nest over the CSF representation.
    output, schedule = repro.contract("ijk,jr,kr->ir", [T, B, C])

    # 3. Inspect what the scheduler chose.
    print("\nselected schedule:")
    print(schedule.describe())
    print(f"\nintermediate buffers: {schedule.loop_nest.buffers()}")

    # 4. Verify against the dense reference (only feasible for small tensors).
    reference = np.einsum("ijk,jr,kr->ir", T.to_dense(), B.data, C.data)
    error = np.abs(output - reference).max()
    print(f"\nmax abs error vs dense einsum: {error:.3e}")
    assert error < 1e-8

    # 5. The schedule is data independent: reuse it for new values with the
    #    same sparsity pattern (here: the same pattern with fresh values).
    T2 = T.with_values(np.random.default_rng(3).random(T.nnz))
    executor = repro.LoopNestExecutor(
        repro.parse_kernel("ijk,jr,kr->ir", [T2, B, C]), schedule.loop_nest
    )
    out2 = executor.execute({"T": T2, "A0": B, "A1": C})
    print(f"re-used schedule on new values, output shape {out2.shape}")


if __name__ == "__main__":
    main()
