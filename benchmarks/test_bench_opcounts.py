"""E10 — operation-count claims of Section 2.4.

The paper's motivating analysis compares, per kernel, the scalar operation
counts of the three execution strategies:

* MTTKRP: unfactorized needs ``3 nnz(T) R`` operations; factorize-and-fuse
  needs ``2 nnz_{IJK}(T) R + 2 nnz_{IJ}(T) R`` — up to a third fewer;
* order-3 TTMc: unfactorized needs ``3 nnz(T) R S``; the factorized schedule
  needs ``2 nnz(T) S + 2 nnz_{IJ}(T) S R`` — an asymptotic reduction;
* CTF-style pairwise execution performs the same operations as
  factorize-and-fuse but materializes the full intermediate.

This benchmark executes each strategy with operation counting enabled and
checks the measured counts against the analytic formulas (the measured
counts include lower-order terms, so the comparison allows a modest
tolerance).
"""

from __future__ import annotations

import pytest

from repro.frameworks import SpTTNCyclopsBaseline, TacoLikeBaseline
from repro.kernels.mttkrp import mttkrp_kernel
from repro.kernels.ttmc import ttmc_kernel
from repro.sptensor import random_dense_matrix, power_law_sparse_tensor

RANK = 16


def _tensor():
    return power_law_sparse_tensor((40, 36, 32), nnz=3000, seed=11, exponent=1.3)


@pytest.mark.smoke
def test_opcount_mttkrp_unfactorized_vs_fused(benchmark):
    tensor = _tensor()
    factors = [random_dense_matrix(d, RANK, seed=i) for i, d in enumerate(tensor.shape)]
    kernel, tensors = mttkrp_kernel(tensor, factors, mode=0)

    taco = TacoLikeBaseline()
    ours = SpTTNCyclopsBaseline()
    ours.schedule_for(kernel)

    def run_both():
        return taco.run(kernel, tensors), ours.run(kernel, tensors)

    taco_res, ours_res = benchmark.pedantic(run_both, rounds=1, iterations=1)

    nnz = tensor.nnz
    nnz_ij = tensor.nnz_prefix(2)
    analytic_unfactorized = 3 * nnz * RANK
    analytic_fused = 2 * nnz * RANK + 2 * nnz_ij * RANK

    benchmark.extra_info.update(
        measured_unfactorized=taco_res.counter.flops,
        measured_fused=ours_res.counter.flops,
        analytic_unfactorized=analytic_unfactorized,
        analytic_fused=analytic_fused,
    )
    assert taco_res.counter.flops == pytest.approx(analytic_unfactorized, rel=0.35)
    assert ours_res.counter.flops == pytest.approx(analytic_fused, rel=0.35)
    assert ours_res.counter.flops < taco_res.counter.flops


def test_opcount_ttmc_asymptotic_reduction(benchmark):
    tensor = _tensor()
    factors = [random_dense_matrix(d, RANK, seed=5 + i) for i, d in enumerate(tensor.shape)]
    kernel, tensors = ttmc_kernel(tensor, factors, mode=0)

    taco = TacoLikeBaseline()
    ours = SpTTNCyclopsBaseline()
    ours.schedule_for(kernel)

    def run_both():
        return taco.run(kernel, tensors), ours.run(kernel, tensors)

    taco_res, ours_res = benchmark.pedantic(run_both, rounds=1, iterations=1)

    nnz = tensor.nnz
    nnz_ij = tensor.nnz_prefix(2)
    analytic_unfactorized = 3 * nnz * RANK * RANK
    analytic_fused = 2 * nnz * RANK + 2 * nnz_ij * RANK * RANK

    benchmark.extra_info.update(
        measured_unfactorized=taco_res.counter.flops,
        measured_fused=ours_res.counter.flops,
        analytic_unfactorized=analytic_unfactorized,
        analytic_fused=analytic_fused,
        reduction=taco_res.counter.flops / max(1, ours_res.counter.flops),
    )
    assert taco_res.counter.flops == pytest.approx(analytic_unfactorized, rel=0.35)
    assert ours_res.counter.flops == pytest.approx(analytic_fused, rel=0.35)
    # the paper's asymptotic gap: unfactorized pays the extra factor of R
    assert taco_res.counter.flops > 1.5 * ours_res.counter.flops
