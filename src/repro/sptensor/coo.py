"""Coordinate-format (COO) sparse tensors.

The COO tensor is the interchange format of the library: tensors are built
or loaded as COO, deduplicated and sorted, and then converted to
:class:`~repro.sptensor.csf.CSFTensor` for execution.  A small set of
data-independent reductions needed by the cost models (``nnz`` of CSF-level
prefixes, mode marginals) is provided here because they are naturally
expressed over coordinates.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple

import numpy as np

from repro.util.validation import as_index_array, check_shape, require


class COOTensor:
    """A sparse tensor stored as coordinates plus values.

    Parameters
    ----------
    shape:
        Dimensions of the tensor, one entry per mode.
    indices:
        Integer array of shape ``(nnz, order)``; each row is the multi-index
        of one stored entry.  Duplicate coordinates are summed.
    values:
        Array of shape ``(nnz,)`` with the stored values.
    sort:
        When true (default), entries are sorted lexicographically by index,
        which is the canonical internal ordering.

    Notes
    -----
    Explicit zeros are retained: sparsity in SpTTN kernels encodes the set of
    *observed* entries (e.g. in tensor completion), which is meaningful even
    when an observed value happens to be zero.
    """

    __slots__ = ("shape", "indices", "values", "__weakref__")

    def __init__(
        self,
        shape: Sequence[int],
        indices: Sequence[Sequence[int]],
        values: Sequence[float],
        sort: bool = True,
    ) -> None:
        self.shape: Tuple[int, ...] = check_shape(shape)
        order = len(self.shape)
        idx = as_index_array(indices, order)
        vals = np.asarray(values, dtype=np.float64).ravel()
        require(
            idx.shape[0] == vals.shape[0],
            f"indices has {idx.shape[0]} rows but values has {vals.shape[0]} entries",
        )
        for mode, dim in enumerate(self.shape):
            if idx.shape[0] and idx[:, mode].max() >= dim:
                raise ValueError(
                    f"index {idx[:, mode].max()} out of range for mode {mode} "
                    f"of dimension {dim}"
                )
        idx, vals = _dedupe(idx, vals, self.shape)
        if sort and idx.shape[0] > 1:
            perm = np.lexsort(idx.T[::-1])
            idx = idx[perm]
            vals = vals[perm]
        self.indices = idx
        self.values = vals

    # ------------------------------------------------------------------ #
    # Basic properties
    # ------------------------------------------------------------------ #
    @property
    def order(self) -> int:
        """Number of modes (tensor order)."""
        return len(self.shape)

    @property
    def ndim(self) -> int:
        return len(self.shape)

    @property
    def nnz(self) -> int:
        """Number of stored entries."""
        return int(self.indices.shape[0])

    @property
    def density(self) -> float:
        """Fraction of stored entries relative to the dense size."""
        total = float(np.prod([float(s) for s in self.shape]))
        return self.nnz / total if total > 0 else 0.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"COOTensor(shape={self.shape}, nnz={self.nnz}, "
            f"density={self.density:.3e})"
        )

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def from_dense(cls, array: np.ndarray, tol: float = 0.0) -> "COOTensor":
        """Build a COO tensor from a dense array, dropping entries ``<= tol``."""
        array = np.asarray(array, dtype=np.float64)
        if array.ndim == 0:
            raise ValueError("cannot build a COO tensor from a scalar")
        mask = np.abs(array) > tol
        coords = np.argwhere(mask)
        vals = array[mask]
        return cls(array.shape, coords, vals, sort=True)

    @classmethod
    def empty(cls, shape: Sequence[int]) -> "COOTensor":
        """An all-zero sparse tensor with the given shape."""
        shape = check_shape(shape)
        return cls(shape, np.zeros((0, len(shape)), dtype=np.int64), np.zeros(0))

    def copy(self) -> "COOTensor":
        out = COOTensor.__new__(COOTensor)
        out.shape = self.shape
        out.indices = self.indices.copy()
        out.values = self.values.copy()
        return out

    def with_values(self, values: np.ndarray) -> "COOTensor":
        """Return a tensor with the same pattern but new values."""
        values = np.asarray(values, dtype=np.float64).ravel()
        require(
            values.shape[0] == self.nnz,
            f"expected {self.nnz} values, got {values.shape[0]}",
        )
        out = COOTensor.__new__(COOTensor)
        out.shape = self.shape
        out.indices = self.indices.copy()
        out.values = values.copy()
        return out

    # ------------------------------------------------------------------ #
    # Conversions and views
    # ------------------------------------------------------------------ #
    def to_dense(self) -> np.ndarray:
        """Materialize as a dense ``numpy.ndarray`` (use only for small tensors)."""
        total = int(np.prod(self.shape))
        out = np.zeros(total, dtype=np.float64)
        if self.nnz:
            flat = np.ravel_multi_index(self.indices.T, self.shape)
            np.add.at(out, flat, self.values)
        return out.reshape(self.shape)

    def transpose(self, perm: Sequence[int]) -> "COOTensor":
        """Permute modes according to *perm* (a permutation of ``range(order)``)."""
        perm = tuple(int(p) for p in perm)
        require(
            sorted(perm) == list(range(self.order)),
            f"perm must be a permutation of 0..{self.order - 1}, got {perm}",
        )
        new_shape = tuple(self.shape[p] for p in perm)
        new_idx = self.indices[:, list(perm)]
        return COOTensor(new_shape, new_idx, self.values, sort=True)

    # ------------------------------------------------------------------ #
    # Reductions used by the cost models
    # ------------------------------------------------------------------ #
    def nnz_prefix(self, depth: int) -> int:
        """``nnz_{I_1...I_depth}(T)``: distinct index prefixes of length *depth*.

        This equals the number of nodes at level *depth* of the CSF tree with
        modes stored in their natural order, and is the quantity the paper's
        operation-count analysis uses (Section 2.2).
        """
        if depth < 0 or depth > self.order:
            raise ValueError(
                f"depth must be between 0 and {self.order}, got {depth}"
            )
        if depth == 0:
            return 1 if self.nnz else 0
        if self.nnz == 0:
            return 0
        sub = self.indices[:, :depth]
        return int(np.unique(sub, axis=0).shape[0])

    def nnz_modes(self, modes: Sequence[int]) -> int:
        """Number of distinct index tuples over an arbitrary subset of modes."""
        modes = [int(m) for m in modes]
        for m in modes:
            if m < 0 or m >= self.order:
                raise ValueError(f"mode {m} out of range for order {self.order}")
        if not modes:
            return 1 if self.nnz else 0
        if self.nnz == 0:
            return 0
        sub = self.indices[:, modes]
        return int(np.unique(sub, axis=0).shape[0])

    def mode_marginal(self, mode: int) -> np.ndarray:
        """Count of stored entries per index of *mode* (length ``shape[mode]``)."""
        if mode < 0 or mode >= self.order:
            raise ValueError(f"mode {mode} out of range for order {self.order}")
        out = np.zeros(self.shape[mode], dtype=np.int64)
        if self.nnz:
            np.add.at(out, self.indices[:, mode], 1)
        return out

    def frobenius_norm(self) -> float:
        """Frobenius norm of the tensor."""
        return float(np.sqrt(np.sum(self.values * self.values)))

    # ------------------------------------------------------------------ #
    # Elementwise arithmetic on matching patterns
    # ------------------------------------------------------------------ #
    def same_pattern(self, other: "COOTensor") -> bool:
        """True when *other* has identical shape and stored coordinates."""
        return (
            isinstance(other, COOTensor)
            and self.shape == other.shape
            and self.indices.shape == other.indices.shape
            and bool(np.array_equal(self.indices, other.indices))
        )

    def _check_same_pattern(self, other: "COOTensor") -> None:
        if not self.same_pattern(other):
            raise ValueError(
                "operation requires two sparse tensors with the same pattern"
            )

    def __add__(self, other: "COOTensor") -> "COOTensor":
        self._check_same_pattern(other)
        return self.with_values(self.values + other.values)

    def __sub__(self, other: "COOTensor") -> "COOTensor":
        self._check_same_pattern(other)
        return self.with_values(self.values - other.values)

    def hadamard(self, other: "COOTensor") -> "COOTensor":
        """Elementwise product of two same-pattern sparse tensors."""
        self._check_same_pattern(other)
        return self.with_values(self.values * other.values)

    def scale(self, alpha: float) -> "COOTensor":
        return self.with_values(self.values * float(alpha))

    # ------------------------------------------------------------------ #
    # Iteration & equality
    # ------------------------------------------------------------------ #
    def __iter__(self) -> Iterable[Tuple[Tuple[int, ...], float]]:
        for row, val in zip(self.indices, self.values):
            yield tuple(int(r) for r in row), float(val)

    def allclose(self, other: "COOTensor", rtol: float = 1e-10, atol: float = 1e-12) -> bool:
        """Numerically compare two sparse tensors (patterns must match)."""
        if not self.same_pattern(other):
            return False
        return bool(np.allclose(self.values, other.values, rtol=rtol, atol=atol))


def _dedupe(
    indices: np.ndarray, values: np.ndarray, shape: Tuple[int, ...]
) -> Tuple[np.ndarray, np.ndarray]:
    """Sum values at duplicate coordinates, preserving first-seen order."""
    if indices.shape[0] <= 1:
        return indices, values
    flat = np.ravel_multi_index(indices.T, shape)
    uniq, inverse = np.unique(flat, return_inverse=True)
    if uniq.shape[0] == indices.shape[0]:
        return indices, values
    summed = np.zeros(uniq.shape[0], dtype=np.float64)
    np.add.at(summed, inverse, values)
    coords = np.stack(np.unravel_index(uniq, shape), axis=1).astype(np.int64)
    return coords, summed
