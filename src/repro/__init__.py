"""SpTTN-Cyclops reproduction.

A pure-Python reproduction of *"Minimum Cost Loop Nests for Contraction of a
Sparse Tensor with a Tensor Network"* (Kanakagiri & Solomonik, SPAA 2024):
cost-model-driven selection and execution of fully-fused loop nests for
contractions of one sparse tensor with a network of dense tensors (SpTTN
kernels), plus baselines, kernels, decomposition/completion applications and
a simulated distributed-memory runtime.

Quick start
-----------
>>> import repro
>>> T = repro.random_sparse_tensor((50, 40, 30), density=0.01, seed=0)
>>> B = repro.random_dense_matrix(40, 8, seed=1)
>>> C = repro.random_dense_matrix(30, 8, seed=2)
>>> out, schedule = repro.contract("ijk,ja,ka->ia", [T, B, C])   # MTTKRP
>>> out.shape
(50, 8)
"""

from repro.core import (
    SpTTNKernel,
    parse_kernel,
    ContractionPath,
    enumerate_contraction_paths,
    rank_contraction_paths,
    LoopNest,
    LoopOrder,
    MaxBufferDimCost,
    MaxBufferSizeCost,
    CacheMissCost,
    ExecutionCost,
    evaluate_cost,
    find_optimal_loop_order,
    SpTTNScheduler,
    Schedule,
    Autotuner,
    ExecutionRunner,
    SweepResult,
    sweep_loop_nests,
    sweep_loop_orders,
)
from repro.engine import (
    LoopNestExecutor,
    PlanCache,
    cached_executor,
    cached_schedule,
    default_plan_cache,
    execute_kernel,
)
from repro.runtime import (
    WorkerPool,
    parallel_map,
    resolve_workers,
    shutdown_pool,
)
from repro.serve import (
    ContractionRequest,
    ContractionService,
    scenario_mix,
)
from repro.sptensor import (
    COOTensor,
    CSFTensor,
    DenseTensor,
    random_sparse_tensor,
    random_dense_matrix,
    power_law_sparse_tensor,
    read_tns,
    write_tns,
    load_preset,
    dataset_presets,
)
from repro.util import OpCounter

#: Convenience alias: parse, schedule and execute a kernel in one call.
contract = execute_kernel

__version__ = "1.0.0"

__all__ = [
    "SpTTNKernel",
    "parse_kernel",
    "ContractionPath",
    "enumerate_contraction_paths",
    "rank_contraction_paths",
    "LoopNest",
    "LoopOrder",
    "MaxBufferDimCost",
    "MaxBufferSizeCost",
    "CacheMissCost",
    "ExecutionCost",
    "evaluate_cost",
    "find_optimal_loop_order",
    "SpTTNScheduler",
    "Schedule",
    "Autotuner",
    "ExecutionRunner",
    "SweepResult",
    "sweep_loop_nests",
    "sweep_loop_orders",
    "LoopNestExecutor",
    "PlanCache",
    "cached_executor",
    "cached_schedule",
    "default_plan_cache",
    "execute_kernel",
    "WorkerPool",
    "parallel_map",
    "resolve_workers",
    "shutdown_pool",
    "ContractionRequest",
    "ContractionService",
    "scenario_mix",
    "contract",
    "COOTensor",
    "CSFTensor",
    "DenseTensor",
    "random_sparse_tensor",
    "random_dense_matrix",
    "power_law_sparse_tensor",
    "read_tns",
    "write_tns",
    "load_preset",
    "dataset_presets",
    "OpCounter",
    "__version__",
]
