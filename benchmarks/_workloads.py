"""Shared workloads and helpers for the benchmark harness.

Every benchmark module regenerates one table or figure of the paper's
evaluation (see the experiment index in DESIGN.md and the recorded outcomes
in EXPERIMENTS.md).  Absolute times differ from the paper — the substrate is
a pure-Python/NumPy runtime rather than compiled C++ on Stampede2 — but the
*shape* of each comparison (who wins, by roughly what factor, where the
crossovers are) is the quantity under test.

Workload sizes are scaled-down versions of the paper's datasets (see
``repro.sptensor.datasets``) so a full benchmark run finishes in minutes.
Pass real FROSTT files via ``load_preset(..., tns_path=...)`` to run at full
scale.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from repro.sptensor import COOTensor, load_preset, random_dense_matrix, random_sparse_tensor

#: Base seed for every benchmark RNG; change in one place to re-roll all
#: benchmark inputs.
BENCH_SEED = 0


def bench_rng(salt: int = 0) -> np.random.Generator:
    """The one RNG factory all benchmarks draw from (deterministic in CI).

    Every source of randomness in the benchmark harness must come from this
    helper (or from the seeded tensor factories below, which derive their
    seeds from explicit constants), so two CI runs see identical inputs.
    *salt* decorrelates multiple streams within one benchmark.
    """
    return np.random.default_rng(BENCH_SEED + salt)

#: Dataset presets used by the single-node kernel comparisons (Figure 7 and
#: the TTMc speedup discussion).  Scales keep every baseline under ~1 s per
#: run on the Python substrate.
FIG7_DATASETS = ("nell-2", "nips", "vast-3d")
FIG7_MAX_NNZ = 3000

#: Rank used by the MTTKRP comparison (the paper uses R = 64).
FIG7_RANK = 64

#: Ranks used by the TTMc comparisons (the paper uses R = S = 16 for order 3).
TTMC_RANK = 16


def preset_tensor(name: str, max_nnz: int = FIG7_MAX_NNZ, seed: int = 0) -> COOTensor:
    return load_preset(name, scale=2e-3, max_nnz=max_nnz, seed=seed)


def factor_matrices(tensor: COOTensor, rank: int, seed: int = 0):
    return [
        random_dense_matrix(dim, rank, seed=seed + mode)
        for mode, dim in enumerate(tensor.shape)
    ]


def scaling_tensor(order: int, dim: int, density: float, seed: int = 0) -> COOTensor:
    """Synthetic uniform tensor mirroring the Figure 8 strong-scaling inputs
    (identical mode sizes, fixed density), scaled down for the Python runtime."""
    shape = tuple(dim for _ in range(order))
    return random_sparse_tensor(shape, density=density, seed=seed)


def record_rows(benchmark, rows: Sequence[Dict[str, object]]) -> None:
    """Attach result rows to the pytest-benchmark record (shown with --benchmark-json)."""
    benchmark.extra_info["rows"] = list(rows)


def format_table(rows: Sequence[Dict[str, object]]) -> str:
    if not rows:
        return "(no rows)"
    keys = list(rows[0].keys())
    lines = ["  ".join(f"{k:>14s}" for k in keys)]
    for row in rows:
        lines.append(
            "  ".join(
                f"{row[k]:>14.4g}" if isinstance(row[k], float) else f"{str(row[k]):>14s}"
                for k in keys
            )
        )
    return "\n".join(lines)
