"""Unit tests for DenseTensor, the synthetic generators, .tns I/O and presets."""

import numpy as np
import pytest

from repro.sptensor import (
    DenseTensor,
    block_sparse_tensor,
    dataset_presets,
    load_preset,
    power_law_sparse_tensor,
    random_dense_matrix,
    random_sparse_tensor,
    read_tns,
    write_tns,
)
from repro.sptensor.io import tns_from_string


class TestDenseTensor:
    def test_basic_properties(self):
        d = DenseTensor(np.zeros((3, 4)), name="A")
        assert d.shape == (3, 4)
        assert d.order == 2
        assert d.size == 12
        assert d.name == "A"

    def test_scalar_promoted_to_1d(self):
        d = DenseTensor(np.float64(2.0))
        assert d.shape == (1,)

    def test_zeros_and_random_constructors(self):
        z = DenseTensor.zeros((2, 3))
        assert np.all(z.data == 0)
        r = DenseTensor.random((2, 3), seed=0)
        r2 = DenseTensor.random((2, 3), seed=0)
        np.testing.assert_allclose(r.data, r2.data)

    def test_slice_at(self):
        d = DenseTensor(np.arange(24, dtype=float).reshape(2, 3, 4))
        view = d.slice_at({0: 1, 2: 3})
        np.testing.assert_allclose(view, d.data[1, :, 3])

    def test_slice_at_out_of_bounds(self):
        d = DenseTensor.zeros((2, 3))
        with pytest.raises(ValueError):
            d.slice_at({0: 5})

    def test_copy_independent(self):
        d = DenseTensor.random((2, 2), seed=1)
        c = d.copy()
        c.data[:] = 0
        assert not np.allclose(d.data, 0)

    def test_allclose(self):
        a = DenseTensor.random((3, 3), seed=2)
        assert a.allclose(a.copy())
        assert not a.allclose(DenseTensor.zeros((3, 3)))
        assert not a.allclose(DenseTensor.zeros((2, 2)))


class TestGenerators:
    def test_random_sparse_nnz_exact(self):
        t = random_sparse_tensor((20, 20, 20), nnz=150, seed=0)
        assert t.nnz == 150

    def test_random_sparse_density(self):
        t = random_sparse_tensor((10, 10), density=0.25, seed=1)
        assert t.nnz == 25

    def test_random_sparse_requires_exactly_one_of_nnz_density(self):
        with pytest.raises(ValueError):
            random_sparse_tensor((5, 5))
        with pytest.raises(ValueError):
            random_sparse_tensor((5, 5), nnz=3, density=0.5)

    def test_random_sparse_nnz_exceeds_size(self):
        with pytest.raises(ValueError):
            random_sparse_tensor((3, 3), nnz=100)

    def test_random_sparse_reproducible(self):
        a = random_sparse_tensor((15, 15, 15), nnz=80, seed=3)
        b = random_sparse_tensor((15, 15, 15), nnz=80, seed=3)
        assert a.same_pattern(b)
        np.testing.assert_allclose(a.values, b.values)

    def test_value_distributions(self):
        ones = random_sparse_tensor((10, 10), nnz=20, seed=0, value_distribution="ones")
        assert np.all(ones.values == 1.0)
        normal = random_sparse_tensor(
            (10, 10), nnz=20, seed=0, value_distribution="normal"
        )
        assert normal.values.min() < 0  # normal draws include negatives
        with pytest.raises(ValueError):
            random_sparse_tensor((10, 10), nnz=5, value_distribution="bogus")

    def test_uniform_values_never_zero(self):
        t = random_sparse_tensor((30, 30), nnz=200, seed=5)
        assert np.all(np.abs(t.values) > 1e-12)

    def test_power_law_is_skewed(self):
        t = power_law_sparse_tensor((200, 200), nnz=2000, seed=0, exponent=1.5)
        uniform = random_sparse_tensor((200, 200), nnz=2000, seed=0)
        # the most loaded slice of a skewed tensor holds far more nonzeros
        assert t.mode_marginal(0).max() > 2 * uniform.mode_marginal(0).max()

    def test_power_law_exponent_validation(self):
        with pytest.raises(ValueError):
            power_law_sparse_tensor((10, 10), nnz=5, exponent=0.9)

    def test_block_sparse(self):
        t = block_sparse_tensor((30, 30), (4, 4), n_blocks=3, seed=0)
        assert t.nnz <= 3 * 16
        assert t.nnz > 0

    def test_block_sparse_validation(self):
        with pytest.raises(ValueError):
            block_sparse_tensor((5, 5), (6, 6), n_blocks=1)
        with pytest.raises(ValueError):
            block_sparse_tensor((5, 5), (2, 2), n_blocks=1, fill=0.0)

    def test_random_dense_matrix(self):
        m = random_dense_matrix(6, 4, seed=0, name="F")
        assert m.shape == (6, 4)
        assert m.name == "F"


class TestTnsIO:
    def test_write_read_roundtrip(self, small_coo, tmp_path):
        path = tmp_path / "t.tns"
        write_tns(small_coo, path)
        back = read_tns(path, shape=small_coo.shape)
        assert back.same_pattern(small_coo)
        np.testing.assert_allclose(back.values, small_coo.values)

    def test_gzip_roundtrip(self, small_coo, tmp_path):
        path = tmp_path / "t.tns.gz"
        write_tns(small_coo, path)
        back = read_tns(path, shape=small_coo.shape)
        assert back.allclose(small_coo)

    def test_shape_inferred(self, small_coo, tmp_path):
        path = tmp_path / "t.tns"
        write_tns(small_coo, path)
        back = read_tns(path)
        # inferred shape is the max index + 1 per mode, possibly smaller
        assert back.nnz == small_coo.nnz

    def test_zero_based_roundtrip(self, small_coo, tmp_path):
        path = tmp_path / "t0.tns"
        write_tns(small_coo, path, one_based=False)
        back = read_tns(path, shape=small_coo.shape, one_based=False)
        assert back.allclose(small_coo)

    def test_comments_and_blank_lines(self):
        text = "# comment\n\n1 1 2.5\n2 3 -1.0\n"
        t = tns_from_string(text)
        assert t.nnz == 2
        assert t.shape == (2, 3)

    def test_malformed_line_raises(self, tmp_path):
        path = tmp_path / "bad.tns"
        path.write_text("1 2 3.0\n1 2\n")
        with pytest.raises(ValueError, match="fields"):
            read_tns(path)

    def test_non_numeric_raises(self, tmp_path):
        path = tmp_path / "bad.tns"
        path.write_text("1 x 3.0\n")
        with pytest.raises(ValueError):
            read_tns(path)

    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "empty.tns"
        path.write_text("# nothing\n")
        with pytest.raises(ValueError, match="no nonzero"):
            read_tns(path)

    def test_one_based_violation_detected(self, tmp_path):
        path = tmp_path / "zero.tns"
        path.write_text("0 1 2.0\n")
        with pytest.raises(ValueError, match="one_based"):
            read_tns(path)

    def test_wrong_shape_order(self, tmp_path):
        path = tmp_path / "t.tns"
        path.write_text("1 1 1.0\n")
        with pytest.raises(ValueError, match="order"):
            read_tns(path, shape=(2, 2, 2))


class TestDatasetPresets:
    def test_presets_available(self):
        presets = dataset_presets()
        for name in ("nell-2", "nips", "enron", "vast-3d", "darpa"):
            assert name in presets
            assert presets[name].order >= 3

    def test_load_preset_scaled(self):
        t = load_preset("nell-2", scale=2e-3, max_nnz=2000, seed=0)
        assert t.order == 3
        assert 64 <= t.nnz <= 2000
        for dim, full in zip(t.shape, dataset_presets()["nell-2"].full_shape):
            assert dim <= full

    def test_load_preset_reproducible(self):
        a = load_preset("nips", scale=5e-3, max_nnz=1000, seed=1)
        b = load_preset("nips", scale=5e-3, max_nnz=1000, seed=1)
        assert a.same_pattern(b)

    def test_load_preset_unknown(self):
        with pytest.raises(KeyError):
            load_preset("not-a-dataset")

    def test_load_preset_bad_scale(self):
        with pytest.raises(ValueError):
            load_preset("nips", scale=2.0)

    def test_load_preset_from_tns(self, small_coo, tmp_path):
        path = tmp_path / "real.tns"
        write_tns(small_coo, path)
        t = load_preset("nell-2", tns_path=str(path))
        assert t.nnz == small_coo.nnz
