"""Unit tests for the COO sparse tensor."""

import numpy as np
import pytest

from repro.sptensor import COOTensor


class TestConstruction:
    def test_basic_properties(self, small_coo):
        assert small_coo.shape == (4, 3, 3)
        assert small_coo.order == 3
        assert small_coo.nnz == 7
        assert 0 < small_coo.density < 1

    def test_sorted_lexicographically(self, small_coo):
        idx = small_coo.indices
        flat = np.ravel_multi_index(idx.T, small_coo.shape)
        assert np.all(np.diff(flat) > 0)

    def test_duplicates_are_summed(self):
        t = COOTensor((3, 3), [(0, 0), (0, 0), (1, 1)], [1.0, 2.0, 5.0])
        assert t.nnz == 2
        assert t.to_dense()[0, 0] == pytest.approx(3.0)

    def test_out_of_range_index_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            COOTensor((2, 2), [(0, 0), (2, 1)], [1.0, 1.0])

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            COOTensor((2, 2), [(0, -1)], [1.0])

    def test_value_count_mismatch_rejected(self):
        with pytest.raises(ValueError, match="values"):
            COOTensor((2, 2), [(0, 0), (1, 1)], [1.0])

    def test_empty_shape_rejected(self):
        with pytest.raises(ValueError):
            COOTensor((), [], [])

    def test_empty_tensor(self):
        t = COOTensor.empty((4, 5))
        assert t.nnz == 0
        assert t.to_dense().sum() == 0.0
        assert t.density == 0.0

    def test_explicit_zero_values_are_kept(self):
        t = COOTensor((3, 3), [(0, 1), (1, 2)], [0.0, 2.0])
        assert t.nnz == 2

    def test_from_dense_roundtrip(self, rng):
        dense = rng.random((5, 4, 3))
        dense[dense < 0.7] = 0.0
        t = COOTensor.from_dense(dense)
        np.testing.assert_allclose(t.to_dense(), dense)

    def test_from_dense_rejects_scalar(self):
        with pytest.raises(ValueError):
            COOTensor.from_dense(np.float64(3.0))


class TestConversionsAndViews:
    def test_to_dense_shape(self, small_coo):
        assert small_coo.to_dense().shape == small_coo.shape

    def test_transpose_permutes_modes(self, small_coo):
        t = small_coo.transpose((2, 0, 1))
        assert t.shape == (3, 4, 3)
        np.testing.assert_allclose(
            t.to_dense(), np.transpose(small_coo.to_dense(), (2, 0, 1))
        )

    def test_transpose_invalid_perm(self, small_coo):
        with pytest.raises(ValueError):
            small_coo.transpose((0, 0, 1))

    def test_copy_is_independent(self, small_coo):
        c = small_coo.copy()
        c.values[:] = 0.0
        assert small_coo.values.sum() != 0.0

    def test_with_values_preserves_pattern(self, small_coo):
        new = small_coo.with_values(np.arange(small_coo.nnz, dtype=float))
        assert new.same_pattern(small_coo)
        assert not new.allclose(small_coo)

    def test_with_values_wrong_length(self, small_coo):
        with pytest.raises(ValueError):
            small_coo.with_values(np.zeros(small_coo.nnz + 1))


class TestReductions:
    def test_nnz_prefix_monotone(self, random_coo3):
        counts = [random_coo3.nnz_prefix(d) for d in range(random_coo3.order + 1)]
        assert counts[0] == 1
        assert counts[-1] == random_coo3.nnz
        assert all(a <= b for a, b in zip(counts, counts[1:]))

    def test_nnz_prefix_bounds(self, random_coo3):
        with pytest.raises(ValueError):
            random_coo3.nnz_prefix(-1)
        with pytest.raises(ValueError):
            random_coo3.nnz_prefix(random_coo3.order + 1)

    def test_nnz_prefix_matches_unique_count(self, small_coo):
        expected = len({tuple(r[:2]) for r in small_coo.indices})
        assert small_coo.nnz_prefix(2) == expected

    def test_nnz_modes_subset(self, small_coo):
        expected = len({(r[0], r[2]) for r in small_coo.indices})
        assert small_coo.nnz_modes([0, 2]) == expected

    def test_nnz_modes_empty(self, small_coo):
        assert small_coo.nnz_modes([]) == 1

    def test_nnz_modes_invalid_mode(self, small_coo):
        with pytest.raises(ValueError):
            small_coo.nnz_modes([5])

    def test_mode_marginal_sums_to_nnz(self, random_coo3):
        for mode in range(random_coo3.order):
            assert random_coo3.mode_marginal(mode).sum() == random_coo3.nnz

    def test_frobenius_norm(self, small_coo):
        expected = np.linalg.norm(small_coo.to_dense())
        assert small_coo.frobenius_norm() == pytest.approx(expected)


class TestArithmetic:
    def test_add_same_pattern(self, small_coo):
        s = small_coo + small_coo
        np.testing.assert_allclose(s.values, 2 * small_coo.values)

    def test_sub_same_pattern(self, small_coo):
        d = small_coo - small_coo
        assert np.all(d.values == 0.0)

    def test_hadamard(self, small_coo):
        h = small_coo.hadamard(small_coo)
        np.testing.assert_allclose(h.values, small_coo.values**2)

    def test_scale(self, small_coo):
        np.testing.assert_allclose(small_coo.scale(-2.0).values, -2.0 * small_coo.values)

    def test_mismatched_pattern_rejected(self, small_coo):
        other = COOTensor(small_coo.shape, [(0, 0, 1)], [1.0])
        with pytest.raises(ValueError, match="same pattern"):
            _ = small_coo + other

    def test_allclose_requires_same_pattern(self, small_coo):
        other = COOTensor(small_coo.shape, [(0, 0, 1)], [1.0])
        assert not small_coo.allclose(other)

    def test_iteration_yields_coordinate_value_pairs(self, small_coo):
        entries = dict(iter(small_coo))
        assert len(entries) == small_coo.nnz
        assert entries[(0, 0, 0)] == pytest.approx(1.0)
