"""Tests for the shared parallel runtime (pool, shm broadcast, reductions)."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.runtime import (
    WorkerPool,
    attach,
    default_workers,
    detach_all,
    parallel_map,
    publish,
    resolve_workers,
    shared_pool,
    shutdown_pool,
    tree_reduce,
)


class Square:
    """Picklable module-level callable for pool tests."""

    def __call__(self, x):
        return x * x


class WorkerPid:
    """Returns the executing process id (proves cross-process execution)."""

    def __call__(self, x):
        return os.getpid()


class ReadShared:
    """Reads one element of a published array inside a worker."""

    def __init__(self, handle, index):
        self.handle = handle
        self.index = index

    def __call__(self, _):
        arr = attach(self.handle)
        return (os.getpid(), float(arr[self.index]), bool(arr.flags.writeable))


@pytest.fixture(autouse=True)
def _fresh_runtime():
    """Each test starts and ends without a lingering shared pool."""
    shutdown_pool()
    yield
    shutdown_pool()
    detach_all()


class TestResolveWorkersEnv:
    def test_env_provides_the_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert default_workers() == 3
        assert resolve_workers(None) == 3
        # explicit requests beat the environment; 0 forces serial
        assert resolve_workers(0) == 1
        assert resolve_workers(2) == 2

    def test_invalid_env_means_serial_but_warns(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "not-a-number")
        # an unparseable value behaves like unset, but names the bad value
        # loudly instead of silently degrading the deployment to serial
        with pytest.warns(RuntimeWarning, match="not-a-number"):
            assert default_workers() is None
        with pytest.warns(RuntimeWarning, match="REPRO_WORKERS"):
            assert resolve_workers(None) == 1
        # whitespace-only counts as unset: no warning
        monkeypatch.setenv("REPRO_WORKERS", "  ")
        assert resolve_workers(None) == 1

    def test_unset_env_means_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert resolve_workers(None) == 1
        assert resolve_workers(-1) >= 1


class TestWorkerPool:
    def test_map_matches_serial(self):
        with WorkerPool(2) as pool:
            items = list(range(23))
            assert pool.map(Square(), items) == [x * x for x in items]

    def test_map_runs_in_worker_processes(self):
        with WorkerPool(2) as pool:
            pids = set(pool.map(WorkerPid(), range(8)))
        assert os.getpid() not in pids

    def test_pool_persists_across_maps(self):
        with WorkerPool(2) as pool:
            pool.map(Square(), range(4))
            first = pool._pool
            pool.map(Square(), range(4))
            assert pool._pool is first

    def test_serial_fallbacks(self):
        with WorkerPool(2) as pool:
            assert pool.map(lambda x: x + 1, [1, 2, 3]) == [2, 3, 4]  # unpicklable
            assert pool.map(Square(), []) == []
            assert pool.map(Square(), [5]) == [25]
            assert not pool.is_running  # nothing above needed real workers

    def test_close_is_idempotent_and_restartable(self):
        pool = WorkerPool(2)
        pool.map(Square(), range(4))
        assert pool.is_running
        pool.close()
        pool.close()
        assert not pool.is_running
        assert pool.map(Square(), range(4)) == [x * x for x in range(4)]
        pool.close()


class TestSharedPool:
    def test_shared_pool_is_persistent_and_keyed_by_size(self):
        p2 = shared_pool(2)
        assert shared_pool(2) is p2
        p3 = shared_pool(3)
        assert p3 is not p2
        assert p3.workers == 3
        # alternating sizes must not thrash: both pools stay alive
        assert shared_pool(2) is p2
        assert shared_pool(3) is p3

    def test_parallel_map_uses_the_shared_pool(self):
        assert parallel_map(Square(), range(10), workers=2) == [
            x * x for x in range(10)
        ]
        underlying = shared_pool(2)._pool
        assert underlying is not None
        parallel_map(Square(), range(10), workers=2)
        assert shared_pool(2)._pool is underlying  # no fork per call

    def test_shutdown_pool(self):
        parallel_map(Square(), range(6), workers=2)
        shutdown_pool()
        # a fresh pool comes up transparently afterwards
        assert parallel_map(Square(), range(6), workers=2) == [
            x * x for x in range(6)
        ]


class TestSharedMemoryBroadcast:
    def test_publish_attach_roundtrip_in_process(self):
        a = np.arange(24, dtype=np.float64).reshape(4, 6)
        b = np.ones((3, 2))
        with publish({"A": a, "B": b}) as bc:
            assert bc.shared_bytes == a.nbytes + b.nbytes
            got_a = attach(bc.handles["A"])
            got_b = attach(bc.handles["B"])
            np.testing.assert_array_equal(got_a, a)
            np.testing.assert_array_equal(got_b, b)
            assert not got_a.flags.writeable
            # attachments are cached per segment
            assert attach(bc.handles["A"]) is got_a

    def test_empty_array_travels_inline(self):
        empty = np.zeros((0, 5))
        with publish({"E": empty}) as bc:
            handle = bc.handles["E"]
            assert handle.segment is None
            np.testing.assert_array_equal(attach(handle), empty)

    def test_close_is_idempotent(self):
        with publish({"A": np.ones(8)}) as bc:
            pass
        bc.close()  # second close is a no-op

    def test_workers_read_published_arrays_without_pickling_them(self):
        arr = np.arange(1000, dtype=np.float64)
        with publish({"A": arr}) as bc:
            task = ReadShared(bc.handles["A"], index=123)
            results = parallel_map(task, range(6), workers=2)
        pids = {pid for pid, _, _ in results}
        assert os.getpid() not in pids
        assert all(value == 123.0 for _, value, _ in results)
        assert all(writeable is False for _, _, writeable in results)


class TestTreeReduce:
    def test_single_item_returned_as_is(self):
        x = np.ones(3)
        assert tree_reduce([x], np.add) is x

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            tree_reduce([], np.add)

    def test_concatenation_matches_left_fold_exactly(self):
        parts = [list(range(i * 3, i * 3 + 3)) for i in range(7)]
        folded = []
        for p in parts:
            folded = folded + p
        assert tree_reduce(parts, lambda a, b: a + b) == folded

    def test_sum_matches_fold_numerically(self):
        rng = np.random.default_rng(3)
        parts = [rng.standard_normal(50) for _ in range(9)]
        fold = np.zeros(50)
        for p in parts:
            fold = fold + p
        np.testing.assert_allclose(tree_reduce(parts, np.add), fold, rtol=1e-12)

    def test_deterministic_shape(self):
        # the combination structure depends only on the item count
        calls = []

        def combine(a, b):
            calls.append((a, b))
            return f"({a}+{b})"

        result = tree_reduce(["p0", "p1", "p2", "p3", "p4"], combine)
        assert result == "(((p0+p1)+(p2+p3))+p4)"
