"""General vectorized lowering: scheduled loop nests as flat segment-reduction kernels.

This subsystem compiles any lowerable scheduled loop nest (a
:class:`~repro.engine.plan_cache.CompiledPlan`'s symbolic site steps) into a
small typed IR of array-level ops — dense-operand gathers into CSF lane
layout, batched einsum contractions, ``np.add.reduceat`` segment reductions
along the level pointers, scatter-accumulates into the output — and executes
that IR with no per-fiber Python dispatch.  It generalizes the hand-fused
MTTKRP sweep into one compiler: MTTKRP, TTMc, TTTc, TTTP and arbitrary
SpTTN expressions all take the vectorized path whenever their scheduled
nest lowers, with op-counter accounting identical to the interpreter and a
clean fallback to interpretation for anything not lowerable yet.

* :mod:`repro.engine.lowering.ir` — the typed op set and symbolic counts;
* :mod:`repro.engine.lowering.lower` — the lowering pass over plan sites;
* :mod:`repro.engine.lowering.vm` — the IR executor;
* :mod:`repro.engine.lowering.codegen` — the jit tier: programs compiled
  to fused callables with pooled buffers (:mod:`.pool`) and an optional
  Numba lane sweep (:mod:`.numba_kernels`).
"""

from repro.engine.lowering.codegen import CompiledJit, compile_program, jit_stats
from repro.engine.lowering.ir import Charge, Program
from repro.engine.lowering.lower import NotLowerable, lower_plan
from repro.engine.lowering.vm import run_program

__all__ = [
    "Charge",
    "CompiledJit",
    "NotLowerable",
    "Program",
    "compile_program",
    "jit_stats",
    "lower_plan",
    "run_program",
]
