"""Tree-separable cost functions (Definitions 4.4-4.6) and execution models.

A *tree-separable* cost function assigns a cost to a fully-fused loop nest
recursively over its peeling structure: the cost of a forest is the
``combine`` (the paper's associative operator ``⊕``) of the costs of its
trees, and the cost of a tree is ``phi`` (the paper's ``φ``) applied to the
cost of the forest obtained by peeling the tree's root.  Both Algorithm 1
(:mod:`repro.core.optimizer`) and the ground-truth evaluator
:func:`evaluate_cost` drive the same :class:`TreeSeparableCost` interface,
so the dynamic program provably optimizes exactly what the evaluator
measures.

Cost functions provided
-----------------------
:class:`MaxBufferDimCost`
    Definition 4.5 — the maximum *dimension* (number of remaining indices)
    of any intermediate buffer.
:class:`MaxBufferSizeCost`
    The variant mentioned after Definition 4.5 — maximum buffer *size*
    (product of remaining index dimensions).
:class:`CacheMissCost`
    Definition 4.6 — a simple cache model counting, for each loop, the
    number of tensors indexed by the loop index that still have more than
    ``D`` remaining indices, multiplied by the loop trip count.
:class:`ExecutionCost`
    The BLAS-aware model used by the default scheduler (Section 5/7): loops
    that can be offloaded to vectorized (BLAS-like) kernels cost a small
    per-element factor, interpreted loops cost a large per-iteration factor,
    and any intermediate buffer exceeding a configurable dimension bound
    incurs a huge penalty.  Minimizing this cost selects "the loop nest with
    the maximum number of independent dense loops with bounded buffer
    dimension", the criterion the paper's experiments use.
:class:`OperationCountCost`
    Leading-order scalar multiply-add count of the loop nest (depends on the
    contraction path and on which loops iterate sparsely).
:class:`LexicographicCost`
    Tuple composition of several cost functions compared lexicographically.

All costs assume loop orders that respect the CSF storage-order restriction;
sparse loops iterate only over stored fibers and their trip counts are
estimated from the kernel's recorded nnz statistics.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Dict, FrozenSet, Mapping, Optional, Sequence, Tuple

from repro.core.contraction_path import ContractionPath
from repro.core.expr import SpTTNKernel
from repro.core.loop_nest import LoopOrder

Positions = Tuple[int, ...]
Removed = FrozenSet[str]

#: Large-but-finite penalty used for constraint violations; kept below
#: infinity so violating nests can still be ranked among themselves.
CONSTRAINT_PENALTY = 1.0e18

#: Hand-tuned defaults of :class:`ExecutionCost`'s per-op-class
#: coefficients — relative magnitudes of an interpreted loop iteration, a
#: scalar multiply-add, a vectorized element and a vectorized-call
#: dispatch.  :mod:`repro.core.calibrate` replaces them process-wide with
#: measured values (then in seconds-per-unit) via
#: :func:`set_active_coefficients`.
DEFAULT_COEFFICIENTS: Dict[str, float] = {
    "loop_overhead": 40.0,
    "scalar_op": 6.0,
    "vector_op": 1.0,
    "call_overhead": 200.0,
}

_active_coefficients: Dict[str, float] = dict(DEFAULT_COEFFICIENTS)


def active_coefficients() -> Dict[str, float]:
    """The process-wide coefficients new :class:`ExecutionCost` objects use."""
    return dict(_active_coefficients)


def set_active_coefficients(
    coefficients: Optional[Mapping[str, float]],
) -> None:
    """Install measured coefficients as the process default (``None`` resets).

    Only the four known coefficient names are consulted; non-finite or
    negative values are ignored in favour of the hand-tuned default, so a
    corrupt persisted calibration can never produce a degenerate cost
    model.  Explicit constructor arguments always override these defaults.
    """
    global _active_coefficients
    merged = dict(DEFAULT_COEFFICIENTS)
    if coefficients is not None:
        for name in DEFAULT_COEFFICIENTS:
            value = coefficients.get(name)
            if value is None:
                continue
            value = float(value)
            if math.isfinite(value) and value >= 0.0:
                merged[name] = value
    _active_coefficients = merged


class TreeSeparableCost(ABC):
    """Interface shared by Algorithm 1 and the ground-truth evaluator.

    Subclasses are constructed with the :class:`SpTTNKernel` so they can
    look up index dimensions, sparsity flags and nnz statistics.  All
    methods additionally receive the concrete :class:`ContractionPath`
    because the same cost object is reused across candidate paths by the
    scheduler.
    """

    def __init__(self, kernel: SpTTNKernel) -> None:
        self.kernel = kernel
        self._consumers_cache: Dict[int, Dict[int, int]] = {}

    # -- semigroup structure ------------------------------------------------
    def identity(self) -> float:
        """Identity element of ``combine`` (cost of an empty forest)."""
        return 0.0

    @abstractmethod
    def combine(self, a: float, b: float) -> float:
        """The associative operator ``⊕`` combining sibling trees."""

    @abstractmethod
    def phi(
        self,
        path: ContractionPath,
        root_index: str,
        inner_positions: Positions,
        after_positions: Positions,
        removed: Removed,
        inner_cost: float,
    ) -> float:
        """The per-loop wrapper ``φ`` applied when peeling a tree root.

        Parameters
        ----------
        path:
            The contraction path being scored.
        root_index:
            The loop index of the tree root being peeled.
        inner_positions:
            Positions (into ``path``) of the terms inside this loop.
        after_positions:
            Positions of the terms that follow this tree inside the same
            enclosing forest (needed to detect buffers passed out of the
            loop).
        removed:
            Indices of the loops enclosing this forest (already iterated).
        inner_cost:
            Cost of the forest obtained by peeling the root (computed with
            ``root_index`` added to *removed*).
        """

    def leaf(
        self,
        path: ContractionPath,
        term_position: int,
        after_positions: Positions,
        removed: Removed,
    ) -> float:
        """Cost contribution of a term whose loop indices are all exhausted."""
        return self.identity()

    # -- comparison ----------------------------------------------------------
    def is_better(self, a: float, b: float) -> bool:
        """True when cost *a* is strictly preferable to cost *b*."""
        return a < b

    def infinity(self) -> float:
        """A cost worse than any achievable one."""
        return math.inf

    # -- helpers shared by subclasses ----------------------------------------
    def consumers(self, path: ContractionPath) -> Dict[int, int]:
        key = id(path)
        if key not in self._consumers_cache:
            self._consumers_cache[key] = path.consumers()
        return self._consumers_cache[key]

    def crossing_buffers(
        self,
        path: ContractionPath,
        inner_positions: Positions,
        after_positions: Positions,
        removed: Removed,
    ) -> Sequence[Tuple[int, Tuple[str, ...]]]:
        """Buffers produced inside the loop and consumed after it.

        Returns ``(producer_position, remaining_buffer_indices)`` pairs where
        the remaining indices are the producer's output indices minus the
        already-iterated loops (*removed*), i.e. the dimensions the buffer
        must physically keep while being passed out of the loop (Eq. 5).
        """
        after = set(after_positions)
        consumers = self.consumers(path)
        out = []
        for pos in inner_positions:
            consumer = consumers.get(pos)
            if consumer is not None and consumer in after:
                kept = tuple(
                    i for i in path[pos].out_indices if i not in removed
                )
                out.append((pos, kept))
        return out

    def remaining_indices(
        self, indices: Sequence[str], removed: Removed
    ) -> Tuple[str, ...]:
        return tuple(i for i in indices if i not in removed)

    def iteration_count(
        self,
        root_index: str,
        inner_positions: Positions,
        removed: Removed,
        path: ContractionPath,
    ) -> float:
        """Estimated trip count of a loop over *root_index*.

        Dense loops iterate the full dimension.  A loop over a sparse index
        iterates only the stored fibers when the CSF descent is available at
        this point, i.e. when all preceding CSF levels have already been
        iterated; the trip count is then the average fiber length derived
        from the recorded prefix-nnz statistics.
        """
        kernel = self.kernel
        dim = float(kernel.index_dims[root_index])
        if root_index not in kernel.sparse_indices:
            return dim
        level = kernel.csf_mode_order.index(root_index)
        for prior in kernel.csf_mode_order[:level]:
            if prior not in removed:
                return dim  # descent unavailable: the loop runs densely
        upper = kernel.prefix_nnz(level + 1)
        lower = kernel.prefix_nnz(level)
        if lower <= 0:
            return dim
        return max(1.0, min(dim, upper / lower))


# --------------------------------------------------------------------------- #
# Definition 4.5: maximum buffer dimension / size
# --------------------------------------------------------------------------- #
class MaxBufferDimCost(TreeSeparableCost):
    """Maximum number of dimensions of any intermediate buffer."""

    def combine(self, a: float, b: float) -> float:
        return max(a, b)

    def phi(
        self,
        path: ContractionPath,
        root_index: str,
        inner_positions: Positions,
        after_positions: Positions,
        removed: Removed,
        inner_cost: float,
    ) -> float:
        rho = 0.0
        for _, kept in self.crossing_buffers(
            path, inner_positions, after_positions, removed
        ):
            rho = max(rho, float(len(kept)))
        return max(rho, inner_cost)

    def leaf(
        self,
        path: ContractionPath,
        term_position: int,
        after_positions: Positions,
        removed: Removed,
    ) -> float:
        # The exhausted term's buffer (if any) is a scalar here: dimension 0.
        return 0.0


class MaxBufferSizeCost(TreeSeparableCost):
    """Maximum element count of any intermediate buffer."""

    def combine(self, a: float, b: float) -> float:
        return max(a, b)

    def _size(self, indices: Sequence[str]) -> float:
        size = 1.0
        for idx in indices:
            size *= float(self.kernel.index_dims[idx])
        return size

    def phi(
        self,
        path: ContractionPath,
        root_index: str,
        inner_positions: Positions,
        after_positions: Positions,
        removed: Removed,
        inner_cost: float,
    ) -> float:
        rho = 0.0
        for _, kept in self.crossing_buffers(
            path, inner_positions, after_positions, removed
        ):
            rho = max(rho, self._size(kept))
        return max(rho, inner_cost)

    def leaf(
        self,
        path: ContractionPath,
        term_position: int,
        after_positions: Positions,
        removed: Removed,
    ) -> float:
        consumers = self.consumers(path)
        if consumers.get(term_position) in set(after_positions):
            return 1.0  # scalar buffer
        return 0.0


# --------------------------------------------------------------------------- #
# Definition 4.6: cache-miss model
# --------------------------------------------------------------------------- #
class CacheMissCost(TreeSeparableCost):
    """Total cache misses under the paper's simple cache model.

    The cache holds subtensors of size ``I^D``; a loop over index ``r``
    incurs one miss per iteration for every tensor operand (input, output or
    intermediate) that is indexed by ``r`` and still has more than ``D``
    other indices left to iterate.
    """

    def __init__(self, kernel: SpTTNKernel, cache_dims: int = 1) -> None:
        super().__init__(kernel)
        if cache_dims < 0:
            raise ValueError("cache_dims must be non-negative")
        self.cache_dims = int(cache_dims)

    def combine(self, a: float, b: float) -> float:
        return a + b

    def _tau(
        self,
        path: ContractionPath,
        root_index: str,
        inner_positions: Positions,
        removed: Removed,
    ) -> float:
        count = 0
        for pos in inner_positions:
            term = path[pos]
            for slot in (term.lhs_indices, term.rhs_indices, term.out_indices):
                remaining = self.remaining_indices(slot, removed)
                if root_index in remaining and len(remaining) > self.cache_dims:
                    count += 1
        return float(count)

    def phi(
        self,
        path: ContractionPath,
        root_index: str,
        inner_positions: Positions,
        after_positions: Positions,
        removed: Removed,
        inner_cost: float,
    ) -> float:
        trips = self.iteration_count(root_index, inner_positions, removed, path)
        tau = self._tau(path, root_index, inner_positions, removed)
        return trips * (tau + inner_cost)


# --------------------------------------------------------------------------- #
# Operation count
# --------------------------------------------------------------------------- #
class OperationCountCost(TreeSeparableCost):
    """Scalar multiply-add count of the loop nest.

    Each exhausted term contributes two operations (a multiply and an
    accumulate) at the innermost point it is reached; loops multiply the
    counts of their bodies by their trip counts.
    """

    def combine(self, a: float, b: float) -> float:
        return a + b

    def phi(
        self,
        path: ContractionPath,
        root_index: str,
        inner_positions: Positions,
        after_positions: Positions,
        removed: Removed,
        inner_cost: float,
    ) -> float:
        trips = self.iteration_count(root_index, inner_positions, removed, path)
        return trips * inner_cost

    def leaf(
        self,
        path: ContractionPath,
        term_position: int,
        after_positions: Positions,
        removed: Removed,
    ) -> float:
        return 2.0


# --------------------------------------------------------------------------- #
# BLAS-aware execution model (scheduler default)
# --------------------------------------------------------------------------- #
class ExecutionCost(TreeSeparableCost):
    """Estimated execution cost of the library's loop-nest executor.

    The executor (:mod:`repro.engine.executor`) offloads any maximal
    single-term subtree whose remaining indices are dense (optionally led by
    the final CSF level) to one vectorized NumPy call — the analogue of the
    paper's BLAS offload.  This model charges:

    * ``vector_op`` per scalar multiply-add inside an offloaded subtree, plus
      ``call_overhead`` per offloaded call;
    * ``loop_overhead`` per iteration of every interpreted (non-offloaded)
      loop, plus ``scalar_op`` for each innermost scalar contraction that is
      not offloaded;
    * ``penalty`` for every intermediate buffer whose dimension exceeds
      ``buffer_dim_bound`` (set ``buffer_dim_bound=None`` to disable the
      constraint).

    Minimizing this cost therefore prefers loop nests with the largest
    possible offloaded (BLAS) regions subject to a bound on intermediate
    buffer dimensionality — the selection criterion used in the paper's
    experiments.
    """

    def __init__(
        self,
        kernel: SpTTNKernel,
        buffer_dim_bound: Optional[int] = 2,
        loop_overhead: Optional[float] = None,
        scalar_op: Optional[float] = None,
        vector_op: Optional[float] = None,
        call_overhead: Optional[float] = None,
        penalty: float = CONSTRAINT_PENALTY,
    ) -> None:
        super().__init__(kernel)
        # coefficient defaults resolve through the process-wide active set
        # (measured calibration when one is installed, hand-tuned constants
        # otherwise) at construction time, so scheduler/search call sites
        # pick up a calibration without changing
        active = _active_coefficients
        self.buffer_dim_bound = buffer_dim_bound
        self.loop_overhead = float(
            active["loop_overhead"] if loop_overhead is None else loop_overhead
        )
        self.scalar_op = float(
            active["scalar_op"] if scalar_op is None else scalar_op
        )
        self.vector_op = float(
            active["vector_op"] if vector_op is None else vector_op
        )
        self.call_overhead = float(
            active["call_overhead"] if call_overhead is None else call_overhead
        )
        self.penalty = float(penalty)

    def combine(self, a: float, b: float) -> float:
        return a + b

    # -- offload decision (mirrors repro.engine.executor) ---------------------
    def offloadable(
        self,
        path: ContractionPath,
        inner_positions: Positions,
        root_index: str,
        removed: Removed,
    ) -> bool:
        """Can the subtree rooted at *root_index* be one vectorized call?

        True when the loop body contains a single contraction term and every
        remaining index of that term is dense, except that the subtree may be
        led by the sparse tensor's final CSF level (a stored fiber can be
        gathered and handed to the vectorized kernel).
        """
        if len(inner_positions) != 1:
            return False
        kernel = self.kernel
        term = path[inner_positions[0]]
        remaining = self.remaining_indices(term.all_indices, removed)
        if not remaining or remaining[0] != root_index:
            return False
        sparse_remaining = [i for i in remaining if i in kernel.sparse_indices]
        if not sparse_remaining:
            return True
        if len(sparse_remaining) != 1:
            return False
        idx = sparse_remaining[0]
        if idx != root_index:
            return False
        # the single sparse index must be the deepest CSF level and the
        # descent must already be positioned just above it
        if kernel.csf_mode_order[-1] != idx:
            return False
        for prior in kernel.csf_mode_order[:-1]:
            if prior not in removed:
                return False
        return True

    def offload_elements(
        self,
        path: ContractionPath,
        term_position: int,
        root_index: str,
        removed: Removed,
    ) -> float:
        """Estimated element count of one offloaded (vectorized) subtree.

        Split out of :meth:`_offload_cost` so the calibration layer's
        feature extraction (:mod:`repro.core.calibrate`) counts exactly
        the elements this model charges ``vector_op`` for.
        """
        term = path[term_position]
        remaining = self.remaining_indices(term.all_indices, removed)
        elements = 1.0
        for idx in remaining:
            elements *= self.iteration_count(idx, (term_position,), removed, path)
            removed = removed | {idx}
        return elements

    def _offload_cost(
        self,
        path: ContractionPath,
        term_position: int,
        root_index: str,
        removed: Removed,
    ) -> float:
        elements = self.offload_elements(path, term_position, root_index, removed)
        return self.call_overhead + 2.0 * elements * self.vector_op

    def _violation_penalty(
        self,
        path: ContractionPath,
        inner_positions: Positions,
        after_positions: Positions,
        removed: Removed,
    ) -> float:
        if self.buffer_dim_bound is None:
            return 0.0
        total = 0.0
        for _, kept in self.crossing_buffers(
            path, inner_positions, after_positions, removed
        ):
            if len(kept) > self.buffer_dim_bound:
                total += self.penalty
        return total

    def phi(
        self,
        path: ContractionPath,
        root_index: str,
        inner_positions: Positions,
        after_positions: Positions,
        removed: Removed,
        inner_cost: float,
    ) -> float:
        violation = self._violation_penalty(
            path, inner_positions, after_positions, removed
        )
        if self.offloadable(path, inner_positions, root_index, removed):
            return violation + self._offload_cost(
                path, inner_positions[0], root_index, removed
            )
        trips = self.iteration_count(root_index, inner_positions, removed, path)
        return violation + trips * (self.loop_overhead + inner_cost)

    def leaf(
        self,
        path: ContractionPath,
        term_position: int,
        after_positions: Positions,
        removed: Removed,
    ) -> float:
        return self.scalar_op * 2.0


# --------------------------------------------------------------------------- #
# Compositions
# --------------------------------------------------------------------------- #
class BoundedBufferCost(ExecutionCost):
    """Alias of :class:`ExecutionCost` emphasizing the buffer-dimension bound.

    Provided for readability at call sites that only care about the
    constraint (Figure 9's "bound of one / bound of two" experiment).
    """


class LexicographicCost(TreeSeparableCost):
    """Tuple of tree-separable costs compared lexicographically.

    The component costs must agree on the peeling structure (they always do,
    because the structure is determined by the loop order, not the cost).
    Note that lexicographic comparison is only a heuristic inside the
    dynamic program: optimal substructure is guaranteed for each component
    individually but not for the tuple.  The scheduler uses it for
    tie-breaking after filtering with the primary component.
    """

    def __init__(self, kernel: SpTTNKernel, components: Sequence[TreeSeparableCost]) -> None:
        super().__init__(kernel)
        if not components:
            raise ValueError("at least one component cost is required")
        self.components = tuple(components)

    def identity(self):  # type: ignore[override]
        return tuple(c.identity() for c in self.components)

    def combine(self, a, b):  # type: ignore[override]
        return tuple(c.combine(x, y) for c, x, y in zip(self.components, a, b))

    def phi(self, path, root_index, inner_positions, after_positions, removed, inner_cost):  # type: ignore[override]
        return tuple(
            c.phi(path, root_index, inner_positions, after_positions, removed, ic)
            for c, ic in zip(self.components, inner_cost)
        )

    def leaf(self, path, term_position, after_positions, removed):  # type: ignore[override]
        return tuple(
            c.leaf(path, term_position, after_positions, removed)
            for c in self.components
        )

    def is_better(self, a, b) -> bool:  # type: ignore[override]
        for comp, x, y in zip(self.components, a, b):
            if comp.is_better(x, y):
                return True
            if comp.is_better(y, x):
                return False
        return False

    def infinity(self):  # type: ignore[override]
        return tuple(c.infinity() for c in self.components)


# --------------------------------------------------------------------------- #
# Ground-truth evaluation via peeling
# --------------------------------------------------------------------------- #
def evaluate_cost(
    kernel: SpTTNKernel,
    path: ContractionPath,
    order: LoopOrder,
    cost: TreeSeparableCost,
) -> float:
    """Evaluate a tree-separable cost on a concrete loop order.

    This walks the peeling structure directly (Definition 4.2) and therefore
    serves as the ground truth against which Algorithm 1 is verified in the
    test suite.
    """
    if len(order) != len(path):
        raise ValueError("order and path must have the same number of terms")

    def forest(
        positions: Tuple[int, ...],
        orders: Tuple[Tuple[str, ...], ...],
        removed: Removed,
    ) -> float:
        total = cost.identity()
        i = 0
        n = len(positions)
        while i < n:
            if not orders[i]:
                after = positions[i + 1 :]
                contribution = cost.leaf(path, positions[i], after, removed)
                total = cost.combine(total, contribution)
                i += 1
                continue
            root = orders[i][0]
            j = i
            while j < n and orders[j] and orders[j][0] == root:
                j += 1
            inner_positions = positions[i:j]
            after_positions = positions[j:]
            inner_cost = forest(
                inner_positions,
                tuple(o[1:] for o in orders[i:j]),
                removed | {root},
            )
            contribution = cost.phi(
                path, root, inner_positions, after_positions, removed, inner_cost
            )
            total = cost.combine(total, contribution)
            i = j
        return total

    return forest(
        tuple(range(len(path))), tuple(tuple(o) for o in order), frozenset()
    )
