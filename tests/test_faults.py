"""Deterministic fault injection and supervised worker-pool recovery.

Unit tests for the :mod:`repro.util.faults` registry (grammar, seeding,
limits, the wired ``shm.publish``/``store.write`` points) and for the
supervised :class:`~repro.runtime.WorkerPool` map: SIGKILLed workers and
stuck tasks are detected, the pool respawns and retries, and the serial
fallback guarantees bit-identical results when retries run out.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import time

import numpy as np
import pytest

import repro.runtime.pool as pool_mod
from repro.engine.plan_store import PlanStore
from repro.runtime import (
    WorkerPool,
    publish,
    shared_pool,
    shutdown_pool,
    supervision_events,
)
from repro.runtime.pool import (
    default_supervise,
    default_task_retries,
    default_task_timeout,
)
from repro.util.faults import (
    FaultInjected,
    configure_faults,
    fault_point,
    faults_active,
    faults_snapshot,
    parse_faults,
    reset_faults,
)


class Square:
    """Picklable module-level callable for pool tests."""

    def __call__(self, x):
        return x * x


class SlowSquare:
    """Square with a fixed per-task delay (timeout tests)."""

    def __init__(self, seconds: float) -> None:
        self.seconds = seconds

    def __call__(self, x):
        time.sleep(self.seconds)
        return x * x


class CrashOnce:
    """SIGKILL the executing worker until a sentinel file exists.

    The first worker to run a task drops the sentinel and dies; after the
    supervised retry respawns the pool, every task sees the sentinel and
    completes — the retry itself succeeds in parallel, no serial fallback.
    """

    def __init__(self, sentinel: str) -> None:
        self.sentinel = sentinel

    def __call__(self, x):
        if not os.path.exists(self.sentinel):
            with open(self.sentinel, "w") as fh:
                fh.write(str(os.getpid()))
            if multiprocessing.parent_process() is not None:
                os.kill(os.getpid(), signal.SIGKILL)
        return x * x


def report_sigterm_disposition(_):
    """Worker-side probe: is SIGTERM back at the OS default?"""
    return signal.getsignal(signal.SIGTERM) == signal.SIG_DFL


@pytest.fixture(autouse=True)
def _fresh_faults():
    """No fault plan and no lingering (plan-inheriting) pools around tests."""
    shutdown_pool()
    configure_faults(None)
    yield
    shutdown_pool()
    reset_faults()


# --------------------------------------------------------------------------- #
# Plan grammar
# --------------------------------------------------------------------------- #
class TestParseFaults:
    def test_grammar_and_defaults(self):
        specs = parse_faults("pool.task:kill, serve.execute:delay, a.b:raise:0.5:3")
        assert set(specs) == {"pool.task", "serve.execute", "a.b"}
        assert specs["pool.task"].mode == "kill"
        assert specs["pool.task"].arg == 1.0  # kill/raise default: always fire
        assert specs["pool.task"].limit is None
        assert specs["serve.execute"].mode == "delay"
        assert specs["serve.execute"].arg == 0.05  # delay default: 50 ms
        assert specs["a.b"] .arg == 0.5
        assert specs["a.b"].limit == 3

    def test_empty_plans_parse_to_nothing(self):
        assert parse_faults(None) == {}
        assert parse_faults("") == {}
        assert parse_faults("  , ") == {}

    @pytest.mark.parametrize(
        "bad",
        [
            "justapoint",  # no mode
            "p:frobnicate",  # unknown mode
            ":kill",  # empty point
            "p:kill:x",  # non-numeric arg
            "p:kill:-1",  # negative arg
            "p:raise:0.5:x",  # non-integer limit
            "p:raise:1:-2",  # negative limit
            "p:kill:1:1:1",  # too many fields
        ],
    )
    def test_malformed_specs_fail_loudly(self, bad):
        with pytest.raises(ValueError, match="bad fault spec"):
            parse_faults(bad)


# --------------------------------------------------------------------------- #
# The registry
# --------------------------------------------------------------------------- #
class TestFaultPoint:
    def test_unconfigured_is_a_noop(self):
        assert not faults_active()
        fault_point("pool.task")  # must not raise
        assert faults_snapshot()["configured"] is None

    def test_raise_mode_fires_only_its_point(self):
        configure_faults("x.y:raise")
        fault_point("other.point")  # not in the plan
        with pytest.raises(FaultInjected, match="x.y"):
            fault_point("x.y")

    def test_limit_caps_firing_per_process(self):
        configure_faults("x.y:raise:1.0:2")
        for _ in range(2):
            with pytest.raises(FaultInjected):
                fault_point("x.y")
        fault_point("x.y")  # third hit: limit reached, no-op
        point = faults_snapshot()["points"]["x.y"]
        assert point["hits"] == 3
        assert point["fired"] == 2

    def test_probability_is_deterministic_per_seed(self):
        def outcomes(seed):
            configure_faults("x.y:raise:0.5", seed=seed)
            fired = []
            for _ in range(32):
                try:
                    fault_point("x.y")
                    fired.append(False)
                except FaultInjected:
                    fired.append(True)
            return fired

        first = outcomes(7)
        assert outcomes(7) == first  # same plan + seed -> same decisions
        assert any(first) and not all(first)  # p=0.5 actually mixes

    def test_delay_mode_sleeps(self):
        configure_faults("x.y:delay:0.05")
        t0 = time.perf_counter()
        fault_point("x.y")
        assert time.perf_counter() - t0 >= 0.04

    def test_kill_mode_is_survivable_in_the_parent(self):
        # in the parent process a kill plan downgrades to a no-op, so
        # serial fallbacks and the daemon survive by construction
        configure_faults("x.y:kill")
        fault_point("x.y")
        assert faults_snapshot()["points"]["x.y"]["fired"] == 1


# --------------------------------------------------------------------------- #
# Wired injection points
# --------------------------------------------------------------------------- #
class TestWiredPoints:
    def test_shm_publish_fault_reaches_the_caller(self):
        configure_faults("shm.publish:raise")
        with pytest.raises(FaultInjected):
            publish({"A": np.ones(16)})

    def test_plan_store_write_fault_degrades_to_miss(self, tmp_path):
        store = PlanStore(tmp_path)
        configure_faults("store.write:raise")
        assert store.put("some-key", {"x": 1}) is False
        assert store.errors == 1
        assert store.get("some-key") is None  # degraded write == miss
        configure_faults(None)
        assert store.put("some-key", {"x": 1}) is True
        assert store.get("some-key") is not None


# --------------------------------------------------------------------------- #
# Supervised pool recovery
# --------------------------------------------------------------------------- #
class TestSupervisedPool:
    def test_killed_workers_fall_back_to_bit_identical_serial(self):
        configure_faults("pool.task:kill")  # every worker task dies
        before = supervision_events()
        with WorkerPool(2, task_retries=1) as pool:
            with pytest.warns(RuntimeWarning, match="worker died mid-map"):
                assert pool.map(Square(), range(8)) == [x * x for x in range(8)]
            stats = pool.stats()
        # first attempt crashes, the retry's respawned workers crash too,
        # then the serial fallback (where kill is a no-op) answers
        assert stats["crashes"] == 2
        assert stats["retries"] == 1
        assert stats["respawns"] == 1
        assert stats["serial_maps"] == 1
        after = supervision_events()
        assert after["crashes"] >= before["crashes"] + 2
        assert after["last_crash_unix"] is not None

    def test_transient_crash_retries_to_a_parallel_success(self, tmp_path):
        task = CrashOnce(str(tmp_path / "sentinel"))
        with WorkerPool(2, task_retries=1) as pool:
            assert pool.map(task, range(8)) == [x * x for x in range(8)]
            stats = pool.stats()
        assert stats["crashes"] == 1
        assert stats["retries"] == 1
        assert stats["serial_maps"] == 0  # the retry itself succeeded

    def test_task_timeout_triggers_serial_fallback(self):
        with WorkerPool(2, task_timeout=0.15, task_retries=0) as pool:
            with pytest.warns(RuntimeWarning, match="task timeout"):
                assert pool.map(SlowSquare(0.4), [1, 2]) == [1, 4]
            assert pool.stats()["timeouts"] == 1
            assert pool.stats()["serial_maps"] == 1

    def test_workers_shed_inherited_asyncio_signal_plumbing(self):
        """Forked workers must not share the parent's signal wakeup pipe.

        A worker forked from an asyncio parent (the serving daemon)
        inherits the loop's no-op SIGTERM handler and wakeup fd; without
        the pool initializer resetting them, ``Pool.terminate()`` during
        a supervised respawn would hang on join *and* write into the
        shared pipe — which the parent's loop reads as its own SIGTERM,
        shutting the daemon down mid-session.
        """
        read_fd, write_fd = os.pipe()
        os.set_blocking(write_fd, False)
        old_fd = signal.set_wakeup_fd(write_fd)
        old_handler = signal.signal(signal.SIGTERM, lambda *a: None)
        try:
            with WorkerPool(2) as pool:
                # workers see the default disposition, not the no-op
                assert all(pool.map(report_sigterm_disposition, range(4)))
                pool.close()  # terminate() SIGTERMs the workers
            # ...and nothing leaked into the parent's wakeup pipe
            os.set_blocking(read_fd, False)
            with pytest.raises(BlockingIOError):
                os.read(read_fd, 1)
        finally:
            signal.signal(signal.SIGTERM, old_handler)
            signal.set_wakeup_fd(old_fd)
            os.close(read_fd)
            os.close(write_fd)

    @pytest.mark.parametrize("teardown", ["close", "drain"])
    def test_teardown_survives_externally_killed_idle_workers(self, teardown):
        """Idle workers killed from outside must not deadlock teardown.

        A process-group SIGTERM (systemd stopping the daemon's cgroup) or
        the OOM killer ends idle workers while they block in the task
        queue's ``get()`` — holding its reader lock, which dies with them.
        ``Pool._terminate_pool`` then hangs acquiring that lock (CPython
        bpo-22393), wedging ``close()``, ``drain()`` and the pool's GC
        finalizer.  ``_reap_for_teardown`` must post the orphaned lock
        back so every teardown path completes.
        """
        import gc
        import threading

        pool = WorkerPool(2)
        assert pool.map(Square(), range(8)) == [x * x for x in range(8)]
        procs = list(pool._pool._pool)
        for p in procs:
            os.kill(p.pid, signal.SIGKILL)
        for p in procs:
            p.join(5.0)
        assert all(p.exitcode is not None for p in procs)

        def tear_down():
            getattr(pool, teardown)()  # must release the orphaned lock
            gc.collect()  # ...and the GC finalizer must complete too

        worker = threading.Thread(target=tear_down, daemon=True)
        worker.start()
        worker.join(20.0)
        assert not worker.is_alive(), (
            f"{teardown}() deadlocked on a dead worker's queue lock"
        )
        assert pool._pool is None

    def test_unsupervised_pool_still_maps(self):
        with WorkerPool(2, supervise=False) as pool:
            assert pool.map(Square(), range(6)) == [x * x for x in range(6)]
            assert pool.stats()["supervised"] is False

    def test_stats_surface_the_supervision_knobs(self):
        with WorkerPool(2, task_timeout=2.5, task_retries=3) as pool:
            stats = pool.stats()
        assert stats["task_timeout"] == 2.5
        assert stats["task_retries"] == 3
        assert stats["supervised"] is True


class TestEnvKnobs:
    def test_task_timeout_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_TASK_TIMEOUT", raising=False)
        assert default_task_timeout() is None
        monkeypatch.setenv("REPRO_TASK_TIMEOUT", "2.5")
        assert default_task_timeout() == 2.5
        monkeypatch.setenv("REPRO_TASK_TIMEOUT", "0")
        assert default_task_timeout() is None
        with pytest.warns(RuntimeWarning, match="REPRO_TASK_TIMEOUT"):
            monkeypatch.setenv("REPRO_TASK_TIMEOUT", "soon")
            assert default_task_timeout() is None

    def test_task_retries_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_TASK_RETRIES", raising=False)
        assert default_task_retries() == 1
        monkeypatch.setenv("REPRO_TASK_RETRIES", "3")
        assert default_task_retries() == 3
        monkeypatch.setenv("REPRO_TASK_RETRIES", "-2")
        assert default_task_retries() == 0
        with pytest.warns(RuntimeWarning, match="REPRO_TASK_RETRIES"):
            monkeypatch.setenv("REPRO_TASK_RETRIES", "many")
            assert default_task_retries() == 1

    def test_supervise_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_POOL_SUPERVISE", raising=False)
        assert default_supervise() is True
        for off in ("0", "false", "no", "off"):
            monkeypatch.setenv("REPRO_POOL_SUPERVISE", off)
            assert default_supervise() is False
        monkeypatch.setenv("REPRO_POOL_SUPERVISE", "1")
        assert default_supervise() is True


class TestSharedPoolEviction:
    def test_lru_eviction_drains_instead_of_terminating(self, monkeypatch):
        drained, closed = [], []
        orig_drain = pool_mod.WorkerPool.drain
        monkeypatch.setattr(
            pool_mod.WorkerPool,
            "drain",
            lambda self: (drained.append(self.workers), orig_drain(self)),
        )
        monkeypatch.setattr(
            pool_mod.WorkerPool,
            "close",
            lambda self: closed.append(self.workers),
        )
        for n in range(2, 2 + pool_mod._MAX_SHARED_POOLS + 1):
            shared_pool(n)
        # one size over the cap: the least-recently-used pool is drained
        # (graceful — another thread may be mid-map on it), never closed
        assert drained == [2]
        assert closed == []
