"""Chrome-trace-event JSON export of recorded spans (Perfetto-loadable).

Spans drained from the tracer become *complete* (``"ph": "X"``) trace
events on the Chrome trace event timeline: microsecond timestamps aligned
to the epoch (so spans recorded in pool worker processes line up with the
parent's), one track per ``(pid, tid)``, the span category as the event
category and the span attributes as ``args``.  Process metadata events
label the exporting process ``repro`` and every other pid ``repro
worker``, which is how the worker fan-out reads in the Perfetto UI.

The written file is a single JSON object ``{"traceEvents": [...]}`` — the
format both ``chrome://tracing`` and https://ui.perfetto.dev load
directly.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.obs.trace import Span, drain_spans


def trace_events(spans: Sequence[Span]) -> List[Dict[str, object]]:
    """Convert spans to Chrome trace events (plus process metadata)."""
    events: List[Dict[str, object]] = []
    own_pid = os.getpid()
    for pid in sorted({s.pid for s in spans}):
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": "repro" if pid == own_pid else "repro worker"},
            }
        )
    for s in spans:
        event: Dict[str, object] = {
            "name": s.name,
            "cat": s.category,
            "ph": "X",
            "ts": s.start_s * 1e6,
            "dur": max(s.duration_s * 1e6, 0.001),
            "pid": s.pid,
            "tid": s.tid,
        }
        if s.attrs:
            event["args"] = {k: _jsonable(v) for k, v in s.attrs.items()}
        events.append(event)
    return events


def _jsonable(value: object) -> object:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def write_trace(
    path: Union[str, Path], spans: Optional[Sequence[Span]] = None
) -> Path:
    """Write spans (default: drain the tracer) as one Chrome-trace file.

    Returns the written path; parent directories are created as needed.

    Examples
    --------
    >>> enable_tracing()
    >>> service.run(requests)
    >>> write_trace("out.json")     # load in ui.perfetto.dev
    """
    if spans is None:
        spans = drain_spans()
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    document = {"traceEvents": trace_events(spans), "displayTimeUnit": "ms"}
    path.write_text(json.dumps(document) + "\n")
    return path


__all__ = ["trace_events", "write_trace"]
