"""Baseline execution strategies re-implemented on the shared substrate.

The paper compares SpTTN-Cyclops against four external systems.  Those
systems cannot be vendored here, so each is represented by a faithful
re-implementation of its *strategy* on top of this repository's tensor
substrate (see DESIGN.md, substitution table):

* :class:`~repro.frameworks.taco_like.TacoLikeBaseline` — the default TACO /
  COMET schedule: a single *unfactorized* loop nest that multiplies all
  operands in the innermost loop (Section 2.4.1).
* :class:`~repro.frameworks.ctf_like.CTFLikeBaseline` — CTF-style *pairwise*
  contraction: each term of a contraction path is executed independently and
  its intermediate is fully materialized (Section 2.4.2), with the attendant
  memory blow-up.
* :class:`~repro.frameworks.sparselnr_like.SparseLNRLikeBaseline` —
  factorize-and-fuse with the limited fusion SparseLNR's user-specified
  schedules achieve (only the first sparse index is fused; Section 6/7).
* :class:`~repro.frameworks.splatt_like.SplattLikeBaseline` — a specialized,
  hand-fused CSF MTTKRP in the style of SPLATT.
* :class:`~repro.frameworks.spttn_cyclops.SpTTNCyclopsBaseline` — this
  library's own scheduler + executor, wrapped in the same interface so the
  benchmark harness can sweep all systems uniformly.
"""

from repro.frameworks.base import BaselineResult, FrameworkBaseline
from repro.frameworks.taco_like import TacoLikeBaseline
from repro.frameworks.ctf_like import CTFLikeBaseline, IntermediateMemoryError
from repro.frameworks.sparselnr_like import SparseLNRLikeBaseline
from repro.frameworks.splatt_like import SplattLikeBaseline
from repro.frameworks.spttn_cyclops import SpTTNCyclopsBaseline

ALL_BASELINES = (
    SpTTNCyclopsBaseline,
    TacoLikeBaseline,
    SparseLNRLikeBaseline,
    CTFLikeBaseline,
    SplattLikeBaseline,
)

__all__ = [
    "BaselineResult",
    "FrameworkBaseline",
    "TacoLikeBaseline",
    "CTFLikeBaseline",
    "IntermediateMemoryError",
    "SparseLNRLikeBaseline",
    "SplattLikeBaseline",
    "SpTTNCyclopsBaseline",
    "ALL_BASELINES",
]
