"""Typed IR for lowered (flat, vectorized) loop-nest execution.

The lowering pass (:mod:`repro.engine.lowering.lower`) compiles the symbolic
site steps of a :class:`~repro.engine.plan_cache.CompiledPlan` into a small
linear program over flat arrays: gathers of dense operands into *lane*
layout, broadcast multiplies / contractions over lanes, segment reductions
along the CSF level pointers, and scatter-accumulates into the output.  The
program is array-independent (operands are named slots, CSF level arrays are
read from whatever tensor the execution binds) and is executed by
:mod:`repro.engine.lowering.vm` with no per-fiber Python dispatch.

Lanes
-----
A *lane* is one iteration of the enclosing sparse loops: at CSF level ``k``
there is one lane per stored node of that level (``nnz_{I_1..I_{k+1}}`` of
the paper), and level ``-1`` denotes the scalar context outside all sparse
loops (a single lane).  Register values are arrays whose first axis is the
lane axis (when present), followed by named dense axes — dense loop indices
vectorized as batch axes and the free axes of an offload site.

Counts
------
Operation accounting must match the interpreter exactly, so every op carries
symbolic :data:`Count` terms ``(factor, level)`` evaluating to
``factor * n_lanes(level)`` once a concrete tensor is bound; ``factor``
folds in the static dense dimensions (batch sizes, free-index spaces).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple, Union

#: Symbolic operation count: ``factor * n_lanes(level)``; level ``-1`` means
#: one lane (outside all sparse loops).
Count = Tuple[int, int]

#: Per-axis action of :class:`ReadArray` / :class:`ScatterAdd`.
#: ``("gather", level)`` indexes the axis with each lane's level-``level``
#: ancestor id; ``("keep", -1)`` keeps the axis whole (dense batch or free).
AxisSpec = Tuple[str, int]

GATHER = "gather"
KEEP = "keep"


@dataclass(frozen=True)
class Charge:
    """Counter bookkeeping equivalent to the interpreted execution.

    ``flops`` and ``resets`` are tuples of :data:`Count`; ``calls`` pairs a
    BLAS-style kernel name with the :data:`Count` of interpreted calls it
    replaces.
    """

    flops: Tuple[Count, ...] = ()
    calls: Tuple[Tuple[str, Count], ...] = ()
    resets: Tuple[Count, ...] = ()


@dataclass(frozen=True)
class LoadValues:
    """``reg[dst] = csf.values`` — one lane per stored nonzero (leaf level)."""

    dst: int


@dataclass(frozen=True)
class ReadArray:
    """Gather one dense operand into lane layout at ``level``.

    ``axes`` has one entry per source-array axis.  Gathered axes are indexed
    by the lane's bound ancestor id and collapse into the lane axis; kept
    axes survive in source order after it.  With no gathers the result is
    the source array itself (no lane axis).
    """

    dst: int
    slot: Tuple[str, Optional[str]]
    level: int
    axes: Tuple[AxisSpec, ...]


@dataclass(frozen=True)
class Contract:
    """``reg[dst] = einsum(spec, *reg[srcs])`` plus interpreter-equivalent
    accounting.

    The subscripts are prebuilt by the lowering pass: the lane letter is
    shared by lane-carrying operands, dense loop (batch) axes align by
    letter, and contracted free axes are exactly those the interpreted
    offload site would contract.
    """

    dst: int
    spec: str
    srcs: Tuple[int, ...]
    charge: Charge = field(default_factory=Charge)


@dataclass(frozen=True)
class SegmentReduce:
    """Sum lanes from ``from_level`` down to ``to_level`` along the CSF tree.

    One ``np.add.reduceat`` per intermediate level, in child order — the
    same accumulation order as the interpreted loops.
    """

    dst: int
    src: int
    from_level: int
    to_level: int


@dataclass(frozen=True)
class LaneExpand:
    """Replicate lanes from ``from_level`` down to ``to_level`` (repeat by
    child counts) so a shallow producer can be consumed under deeper loops."""

    dst: int
    src: int
    from_level: int
    to_level: int


@dataclass(frozen=True)
class LaneSum:
    """Sum away the lane axis entirely (reduce level-0 lanes to the scalar
    context)."""

    dst: int
    src: int


@dataclass(frozen=True)
class ScatterLanes:
    """Turn the lane axis at ``level`` into a dense axis of size ``dim``.

    Each lane's value lands at position ``fids[level]`` of a fresh zero
    axis inserted right after the parent lane axis (level ``level - 1``; no
    lane axis remains when ``level`` is 0).  Children of one parent have
    distinct ids, so this is a conflict-free assignment.  Used when an
    intermediate buffer keeps a sparse index that is a bound loop at its
    producer: the interpreter writes one buffer slot per iteration of that
    loop, the lowered program writes all slots of a parent at once.
    """

    dst: int
    src: int
    level: int
    dim: int


@dataclass(frozen=True)
class GatherAxis:
    """Select one slot of a named dense axis per lane (the consumer-side
    dual of :class:`ScatterLanes`): ``dst[lane, ...] = src[lane, ...,
    ids[lane], ...]`` with ids bound at ``level`` and lanes at
    ``at_level``.  When the source has no lane axis the gather creates one.
    """

    dst: int
    src: int
    axis: int
    level: int
    at_level: int
    src_has_lane: bool


@dataclass(frozen=True)
class ScatterAdd:
    """Accumulate ``reg[src]`` into the dense output array.

    ``axes`` has one entry per output-array axis; gathered axes are indexed
    with lane ancestor ids at ``level``, kept axes align positionally with
    the source's post-lane axes.  ``direct`` marks the fast path where the
    gathered axes form a leading prefix whose id tuples are unique per lane
    (a full CSF prefix), allowing a plain fancy-indexed ``+=``; otherwise
    the VM uses an unbuffered ``np.add.at``.
    """

    src: int
    level: int
    axes: Tuple[AxisSpec, ...]
    direct: bool


@dataclass(frozen=True)
class AccumulateLeaf:
    """``out_values += reg[src]`` for sparse-pattern outputs (leaf-aligned)."""

    src: int


@dataclass(frozen=True)
class Note:
    """Accounting-only op (loop-step buffer resets the vectorized execution
    makes implicit by allocating fresh contributions)."""

    charge: Charge


Op = Union[
    LoadValues,
    ReadArray,
    Contract,
    SegmentReduce,
    LaneExpand,
    LaneSum,
    ScatterLanes,
    GatherAxis,
    ScatterAdd,
    AccumulateLeaf,
    Note,
]


@dataclass(frozen=True)
class Program:
    """A lowered loop nest: a straight-line op list over ``n_regs`` registers."""

    ops: Tuple[Op, ...]
    n_regs: int

    @property
    def n_ops(self) -> int:
        return len(self.ops)

    def describe(self) -> str:
        """Readable dump of the program (for tests and the CLI)."""
        lines = [f"lowered program: {len(self.ops)} ops, {self.n_regs} registers"]
        for i, op in enumerate(self.ops):
            lines.append(f"  {i:3d}: {op}")
        return "\n".join(lines)
