"""Intermediate-buffer management for loop nest execution.

Every intermediate of a contraction path is materialized as a dense NumPy
array whose axes are the buffer's *remaining* indices (the producer's output
indices that are not common-ancestor loops of producer and consumer,
Equation 5 of the paper).  The :class:`BufferSet` allocates those arrays,
translates an index binding into a NumPy indexing key, and performs the
reset-before-produce writes that Algorithm 2 inserts when producer and
consumer separate in the fused forest.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.loop_nest import BufferSpec
from repro.util.counters import OpCounter

IndexKey = Tuple[Union[int, slice], ...]


class BufferSet:
    """Dense buffers for the intermediates of one loop nest."""

    def __init__(
        self,
        specs: Sequence[BufferSpec],
        index_dims: Mapping[str, int],
        counter: Optional[OpCounter] = None,
    ) -> None:
        self.specs: Dict[str, BufferSpec] = {}
        self.arrays: Dict[str, np.ndarray] = {}
        self.counter = counter
        for spec in specs:
            if spec.name in self.specs:
                raise ValueError(f"duplicate buffer name {spec.name!r}")
            shape = tuple(int(index_dims[idx]) for idx in spec.indices)
            self.specs[spec.name] = spec
            self.arrays[spec.name] = np.zeros(shape if shape else (), dtype=np.float64)

    # ------------------------------------------------------------------ #
    def __contains__(self, name: str) -> bool:
        return name in self.arrays

    def axes(self, name: str) -> Tuple[str, ...]:
        return self.specs[name].indices

    def array(self, name: str) -> np.ndarray:
        return self.arrays[name]

    def total_elements(self) -> int:
        return sum(int(a.size) for a in self.arrays.values())

    def max_dimension(self) -> int:
        return max((len(s.indices) for s in self.specs.values()), default=0)

    # ------------------------------------------------------------------ #
    def key_for(self, name: str, bound: Mapping[str, int]) -> IndexKey:
        """NumPy indexing key selecting the bound portion of a buffer."""
        return tuple(
            int(bound[idx]) if idx in bound else slice(None)
            for idx in self.specs[name].indices
        )

    def view(self, name: str, bound: Mapping[str, int]) -> np.ndarray:
        """View of the buffer with bound axes fixed (free axes remain)."""
        return self.arrays[name][self.key_for(name, bound)]

    def free_indices(self, name: str, bound: Mapping[str, int]) -> Tuple[str, ...]:
        return tuple(idx for idx in self.specs[name].indices if idx not in bound)

    def reset(self, name: str, bound: Mapping[str, int]) -> None:
        """Zero the portion of the buffer visible under the current binding."""
        key = self.key_for(name, bound)
        arr = self.arrays[name]
        view = arr[key]
        if np.ndim(view) == 0:
            arr[key] = 0.0
        else:
            view[...] = 0.0
        if self.counter is not None:
            self.counter.add_reset()
            self.counter.add_bytes(int(np.size(view)) * 8)
