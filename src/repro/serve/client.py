"""Blocking client for the contraction-serving daemon.

:class:`ServeClient` speaks the NDJSON protocol of
:mod:`repro.serve.protocol` over one TCP connection.  Submissions are
written immediately and return :class:`PendingReply` handles; because the
daemon streams replies in *completion* order, the client demultiplexes
inbound lines by message id, buffering replies that belong to other
handles.  The API deliberately mirrors the in-process service — submit,
futures, ``run`` — so switching a caller between the two is mechanical.

Examples
--------
>>> with ServeClient("127.0.0.1", 7421) as client:
...     pending = client.submit(mttkrp_request(T, [B, C], mode=0))
...     out = pending.result()              # blocks until streamed back
...     outs = client.run(scenario_mix(8))  # submit all, collect in order
...     client.stats()["service"]["served"]
"""

from __future__ import annotations

import socket
import time
from typing import Any, Dict, List, Optional, Sequence, Union

import numpy as np

from repro.serve import protocol
from repro.serve.request import ContractionRequest
from repro.sptensor.coo import COOTensor

Output = Union[np.ndarray, COOTensor]


class PendingReply:
    """Handle for one submitted request's streamed reply.

    ``result()`` blocks on the connection until the daemon's reply for this
    id arrives (buffering any other replies that stream back first) and
    returns the decoded tensor, or raises
    :class:`~repro.serve.protocol.ServeError` for a structured error reply.

    After a successful ``result()``, :attr:`timings` holds the reply's
    per-stage latency breakdown (seconds keyed by stage name — see
    ``repro.serve.service.STAGES``) when the daemon supplied one.
    """

    __slots__ = ("msg_id", "timings", "_client")

    def __init__(self, msg_id: str, client: "ServeClient") -> None:
        self.msg_id = msg_id
        self.timings: Optional[Dict[str, float]] = None
        self._client = client

    @property
    def done(self) -> bool:
        """Whether the reply is already buffered client-side (non-blocking)."""
        return self.msg_id in self._client._replies

    def result(self) -> Output:
        """Block until this request's reply arrives; decode or raise."""
        message = self._client._reply_for(self.msg_id)
        self.timings = message.get("timings")
        return protocol.decode_result(message)


class ServeClient:
    """One blocking NDJSON connection to a :class:`~repro.serve.daemon.ServeDaemon`.

    Parameters
    ----------
    host, port:
        Daemon address.  ``host`` may also be a ``"host:port"`` string
        (then *port* must be omitted).
    timeout:
        Socket timeout in seconds for connect and reads (``None`` blocks
        indefinitely — results can take as long as a batch takes).
    retry:
        Keep retrying the initial connection for up to this many seconds —
        lets scripts race a freshly spawned daemon (the CI session does).
    """

    def __init__(
        self,
        host: str,
        port: Optional[int] = None,
        timeout: Optional[float] = None,
        retry: float = 0.0,
    ) -> None:
        if port is None:
            host, _, port_s = host.rpartition(":")
            if not host or not port_s:
                raise ValueError("address must be 'host:port' when port is omitted")
            port = int(port_s)
        self.address = (host, int(port))
        self._timeout = timeout
        self._sock = self._connect(retry)
        self._rfile = self._sock.makefile("rb")
        self._next_id = 0
        self._replies: Dict[str, Dict[str, Any]] = {}

    def _connect(self, retry: float) -> socket.socket:
        deadline = time.monotonic() + retry
        while True:
            try:
                sock = socket.create_connection(self.address, timeout=self._timeout)
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                return sock
            except OSError:
                if time.monotonic() >= deadline:
                    raise
                time.sleep(0.1)

    # ------------------------------------------------------------------ #
    # Wire helpers
    # ------------------------------------------------------------------ #
    def _send(self, message: Dict[str, Any]) -> None:
        self._sock.sendall(protocol.dumps(message))

    def _read_message(self) -> Dict[str, Any]:
        try:
            line = self._rfile.readline()
        except socket.timeout:
            host, port = self.address
            raise TimeoutError(
                f"no reply from daemon at {host}:{port} within "
                f"{self._timeout:g}s; the connection may be stale — "
                "reconnect with a fresh ServeClient"
            ) from None
        if not line:
            raise ConnectionError("daemon closed the connection")
        return protocol.loads(line)

    def _dispatch(self, message: Dict[str, Any]) -> None:
        msg_id = message.get("id")
        if msg_id is not None:
            self._replies[str(msg_id)] = message
        # replies with a null id (unrecoverable protocol errors for garbage
        # we did not send) are dropped: nothing can be waiting on them

    def _reply_for(self, msg_id: str) -> Dict[str, Any]:
        while msg_id not in self._replies:
            self._dispatch(self._read_message())
        return self._replies.pop(msg_id)

    def _fresh_id(self) -> str:
        self._next_id += 1
        return f"c{self._next_id}"

    # ------------------------------------------------------------------ #
    # Operations
    # ------------------------------------------------------------------ #
    def submit(self, request: ContractionRequest) -> PendingReply:
        """Send one contraction request; returns its reply handle."""
        msg_id = self._fresh_id()
        self._send(
            {"op": "submit", "id": msg_id, "request": protocol.encode_request(request)}
        )
        return PendingReply(msg_id, self)

    def submit_many(
        self, requests: Sequence[ContractionRequest]
    ) -> List[PendingReply]:
        """Send several requests back to back (replies stream unordered)."""
        return [self.submit(r) for r in requests]

    def run(self, requests: Sequence[ContractionRequest]) -> List[Output]:
        """Submit all *requests* and collect results in request order."""
        pending = self.submit_many(requests)
        return [p.result() for p in pending]

    def stats(self) -> Dict[str, Any]:
        """Fetch the daemon's stats document (service, caches, pool)."""
        msg_id = self._fresh_id()
        self._send({"op": "stats", "id": msg_id})
        reply = protocol.raise_if_error(self._reply_for(msg_id))
        return reply.get("stats", {})

    def metrics(self, format: Optional[str] = None) -> Union[Dict[str, Any], str]:
        """Fetch the daemon's metrics registry snapshot.

        With ``format="prometheus"`` the reply is the text exposition
        format (one string); otherwise the structured JSON snapshot.
        """
        msg_id = self._fresh_id()
        message: Dict[str, Any] = {"op": "metrics", "id": msg_id}
        if format is not None:
            message["format"] = format
        self._send(message)
        reply = protocol.raise_if_error(self._reply_for(msg_id))
        return reply.get("metrics", {})

    def health(self) -> Dict[str, Any]:
        """Fetch the daemon's lightweight health document.

        Cheaper than :meth:`stats`: no cache or pool introspection, just
        readiness (``status`` of ``ready``/``degraded``/``draining``),
        load, and last-crash supervision info.
        """
        msg_id = self._fresh_id()
        self._send({"op": "health", "id": msg_id})
        reply = protocol.raise_if_error(self._reply_for(msg_id))
        return reply.get("health", {})

    def ping(self) -> bool:
        """Round-trip liveness probe."""
        msg_id = self._fresh_id()
        self._send({"op": "ping", "id": msg_id})
        reply = protocol.raise_if_error(self._reply_for(msg_id))
        return bool(reply.get("pong"))

    def shutdown_server(self, wait: bool = True) -> int:
        """Ask the daemon to drain and exit; returns its pending count.

        With *wait* (the default) the call also consumes the stream until
        the daemon closes the connection, so any still-pending replies of
        this client are buffered and remain retrievable from their
        :class:`PendingReply` handles.
        """
        msg_id = self._fresh_id()
        self._send({"op": "shutdown", "id": msg_id})
        reply = protocol.raise_if_error(self._reply_for(msg_id))
        if wait:
            try:
                while True:
                    self._dispatch(self._read_message())
            except (ConnectionError, OSError):
                pass
        return int(reply.get("draining", 0))

    def close(self) -> None:
        """Close the connection (idempotent)."""
        try:
            self._rfile.close()
        except Exception:  # pragma: no cover - already closed
            pass
        try:
            self._sock.close()
        except Exception:  # pragma: no cover - already closed
            pass

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


__all__ = ["PendingReply", "ServeClient"]
