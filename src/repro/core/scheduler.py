"""End-to-end schedule selection (Section 5 of the paper).

The runtime's scheduling policy is:

1. enumerate contraction paths and rank them by leading-order operation
   count (paths within a configurable factor of the best estimate are
   considered "asymptotically optimal");
2. for each such path, run Algorithm 1 with the default BLAS-aware cost
   model (bounded intermediate-buffer dimension, maximal offloadable dense
   loops);
3. pick the loop nest with the overall lowest cost; if every candidate
   violates the buffer-dimension constraint, progressively consider paths
   with higher operation counts before finally relaxing the constraint.

The resulting :class:`Schedule` is what the execution engine consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.contraction_path import (
    ContractionPath,
    enumerate_contraction_paths,
    path_flop_estimate,
    rank_contraction_paths,
)
from repro.core.cost_model import (
    CONSTRAINT_PENALTY,
    ExecutionCost,
    TreeSeparableCost,
)
from repro.core.expr import SpTTNKernel
from repro.core.loop_nest import LoopNest, LoopOrder
from repro.core.optimizer import OptimalLoopOrderSearch, SearchResult
from repro.util.validation import require


@dataclass
class Schedule:
    """A fully specified execution plan for an SpTTN kernel."""

    kernel: SpTTNKernel
    loop_nest: LoopNest
    cost_value: float
    flop_estimate: float
    path_rank: int
    candidates_considered: int
    search_stats: Dict[str, int] = field(default_factory=dict)

    @property
    def path(self) -> ContractionPath:
        return self.loop_nest.path

    @property
    def order(self) -> LoopOrder:
        return self.loop_nest.order

    def max_buffer_dimension(self) -> int:
        return self.loop_nest.max_buffer_dimension()

    def describe(self) -> str:
        lines = [
            f"schedule for {self.kernel!r}",
            f"  estimated flops: {self.flop_estimate:.3e}",
            f"  cost-model value: {self.cost_value:.3e}",
            f"  max buffer dimension: {self.max_buffer_dimension()}",
            f"  contraction path rank: {self.path_rank}",
        ]
        lines.append(self.loop_nest.describe(self.kernel))
        return "\n".join(lines)


class SpTTNScheduler:
    """Selects the minimum-cost loop nest for an SpTTN kernel.

    Parameters
    ----------
    kernel:
        The kernel to schedule.
    cost:
        Tree-separable cost function; defaults to
        :class:`~repro.core.cost_model.ExecutionCost` with the given buffer
        dimension bound.
    buffer_dim_bound:
        Maximum allowed intermediate-buffer dimension (the paper's
        experiments use 2).  Ignored when an explicit *cost* is passed.
    flop_tolerance:
        A contraction path is considered asymptotically optimal when its
        estimated operation count is within this multiplicative factor of
        the best path's estimate.
    max_paths:
        Optional cap on the number of contraction paths enumerated (the
        enumeration is factorial in the number of dense operands).
    """

    def __init__(
        self,
        kernel: SpTTNKernel,
        cost: Optional[TreeSeparableCost] = None,
        buffer_dim_bound: Optional[int] = 2,
        flop_tolerance: float = 1.5,
        max_paths: Optional[int] = 5000,
        enforce_csf_order: bool = True,
    ) -> None:
        require(flop_tolerance >= 1.0, "flop_tolerance must be >= 1")
        self.kernel = kernel
        self.buffer_dim_bound = buffer_dim_bound
        self.cost = cost if cost is not None else ExecutionCost(
            kernel, buffer_dim_bound=buffer_dim_bound
        )
        self.flop_tolerance = float(flop_tolerance)
        self.max_paths = max_paths
        self.enforce_csf_order = bool(enforce_csf_order)

    # ------------------------------------------------------------------ #
    def ranked_paths(self) -> List[Tuple[ContractionPath, float]]:
        """All contraction paths, best estimated operation count first."""
        paths = enumerate_contraction_paths(self.kernel, max_paths=self.max_paths)
        return rank_contraction_paths(self.kernel, paths)

    def schedule(self) -> Schedule:
        """Pick the minimum-cost loop nest for the kernel."""
        ranked = self.ranked_paths()
        require(len(ranked) > 0, "no contraction paths found")
        best_flops = ranked[0][1]
        searcher = OptimalLoopOrderSearch(
            self.kernel, self.cost, enforce_csf_order=self.enforce_csf_order
        )

        best: Optional[Schedule] = None
        feasible_found = False
        considered = 0

        def consider(path: ContractionPath, flops: float, rank: int) -> None:
            nonlocal best, feasible_found, considered
            result: SearchResult = searcher.search(path)
            considered += 1
            feasible = result.cost < CONSTRAINT_PENALTY
            candidate = Schedule(
                kernel=self.kernel,
                loop_nest=LoopNest(path, result.order),
                cost_value=result.cost,
                flop_estimate=flops,
                path_rank=rank,
                candidates_considered=considered,
                search_stats=result.stats.as_dict(),
            )
            if best is None:
                best = candidate
                feasible_found = feasible
                return
            if feasible and not feasible_found:
                best = candidate
                feasible_found = True
                return
            if feasible == feasible_found and self.cost.is_better(
                result.cost, best.cost_value
            ):
                best = candidate

        # Pass 1: asymptotically optimal paths only.
        optimal_band = [
            (rank, path, flops)
            for rank, (path, flops) in enumerate(ranked)
            if flops <= best_flops * self.flop_tolerance
        ]
        for rank, path, flops in optimal_band:
            consider(path, flops, rank)
        if best is not None and feasible_found:
            best.candidates_considered = considered
            return best

        # Pass 2: the constraint could not be met at optimal asymptotic cost;
        # sweep the remaining paths in cost order until a feasible nest is
        # found (Section 5: "iterates over the contraction paths with
        # suboptimal asymptotic complexity until it finds a loop nest that
        # adheres to the constraints").
        for rank, (path, flops) in enumerate(ranked):
            if flops <= best_flops * self.flop_tolerance:
                continue  # already considered
            consider(path, flops, rank)
            if feasible_found:
                break

        require(best is not None, "scheduler failed to produce any schedule")
        best.candidates_considered = considered
        return best

    # ------------------------------------------------------------------ #
    def schedule_for_path(self, path: ContractionPath) -> Schedule:
        """Run the loop-order search for one externally chosen path."""
        searcher = OptimalLoopOrderSearch(
            self.kernel, self.cost, enforce_csf_order=self.enforce_csf_order
        )
        result = searcher.search(path)
        return Schedule(
            kernel=self.kernel,
            loop_nest=LoopNest(path, result.order),
            cost_value=result.cost,
            flop_estimate=path_flop_estimate(self.kernel, path),
            path_rank=0,
            candidates_considered=1,
            search_stats=result.stats.as_dict(),
        )
