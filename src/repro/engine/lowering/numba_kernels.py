"""Optional Numba kernels for the jit tier's innermost CSF lane sweeps.

Numba is a *soft* dependency: when importable (and not disabled via
``REPRO_JIT_NUMBA=0``) the jit tier routes contiguous float64 segment
reductions — the innermost lane sweep over CSF level pointers — through a
compiled left-fold loop instead of ``np.add.reduceat``.  When Numba is
absent, fails to import, or fails to compile, :func:`available` latches
``False`` and every caller transparently keeps the NumPy path; nothing
else in the tier changes.

The availability probe compiles and runs the kernel on a tiny input once
per process, so a broken Numba installation costs one failed attempt, not
one failure per execution.
"""

from __future__ import annotations

import os
from typing import Optional

import numpy as np

#: Environment switch: ``0`` disables the Numba path even when importable.
NUMBA_ENV = "REPRO_JIT_NUMBA"

_STATE = {"resolved": False, "ok": False}
_seg_reduce = None


def _resolve() -> None:
    _STATE["resolved"] = True
    _STATE["ok"] = False
    if os.environ.get(NUMBA_ENV, "").strip() == "0":
        return
    global _seg_reduce
    try:
        from numba import njit
    except Exception:
        return
    try:
        @njit(cache=False)
        def seg_reduce(values, bounds, out):  # pragma: no cover - compiled
            n_seg = bounds.shape[0] - 1
            width = values.shape[1]
            for seg in range(n_seg):
                lo = bounds[seg]
                hi = bounds[seg + 1]
                for col in range(width):
                    acc = values[lo, col]
                    for row in range(lo + 1, hi):
                        acc += values[row, col]
                    out[seg, col] = acc

        probe = np.arange(6.0).reshape(3, 2)
        probe_bounds = np.array([0, 1, 3], dtype=np.int64)
        probe_out = np.empty((2, 2))
        seg_reduce(probe, probe_bounds, probe_out)
        if not np.array_equal(probe_out, [[0.0, 1.0], [6.0, 8.0]]):
            return
    except Exception:
        return
    _seg_reduce = seg_reduce
    _STATE["ok"] = True


def available() -> bool:
    """Whether the compiled segment-reduce lane sweep is usable."""
    if not _STATE["resolved"]:
        _resolve()
    return _STATE["ok"]


def segment_reduce(value: np.ndarray, bounds: np.ndarray) -> Optional[np.ndarray]:
    """Left-fold segment reduction over axis 0, or ``None`` to decline.

    ``bounds`` holds ``n_seg + 1`` monotone lane offsets (CSF level
    pointers).  Only contiguous float64 inputs are taken — anything else
    returns ``None`` and the caller falls back to ``np.add.reduceat``.
    """
    if not available():
        return None
    if value.dtype != np.float64 or not value.flags.c_contiguous:
        return None
    flat = value.reshape(value.shape[0], -1)
    out = np.empty((bounds.shape[0] - 1, flat.shape[1]))
    _seg_reduce(flat, bounds, out)
    return out.reshape((bounds.shape[0] - 1,) + value.shape[1:])
