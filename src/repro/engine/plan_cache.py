"""Compiled execution plans and the process-wide plan/schedule caches.

The paper's premise is that loop-nest *search* is cheap relative to
execution — but only if search and planning results are amortized across the
many executions a real workload performs (CP-ALS and Tucker-HOOI run the
same MTTKRP/TTMc kernel once per mode per sweep, dozens of times total).
This module provides that amortization layer:

* :class:`CompiledPlan` — the array-independent result of the executor's
  preprocessing stage (Algorithm 2, stage 1).  A plan maps each recursion
  site of the fused loop nest to a list of *symbolic* steps: loops, buffer
  resets and offload sites whose operand recipes name slots (``dense``
  operand, intermediate ``buffer``, kernel ``out``) instead of embedding
  concrete arrays.  Binding a plan to freshly allocated arrays is a cheap
  substitution pass, so repeated ``execute()`` calls on the same structure
  perform zero per-call symbolic analysis.
* :class:`PlanCache` — an LRU cache with hit/miss/eviction counters and an
  optional *memory budget* (size-accounted eviction plus admission control
  for oversized entries), keyed by the full structural identity of a loop
  nest (:func:`plan_key`: kernel signature, loop orders, contraction path,
  CSF mode order, operand shapes/dtypes, offload flag).
* :func:`cached_schedule` — the same amortization for the scheduler's
  search itself, keyed by kernel signature plus sparsity statistics, so
  applications that repeatedly schedule structurally identical kernels
  (the apps in :mod:`repro.apps`, benchmark sweeps) pay for the search
  once per process.

Caches are per-process and rely on the GIL for consistency; entries are
immutable once built, so sharing a :class:`CompiledPlan` between executors
is safe.
"""

from __future__ import annotations

import os
import sys
import threading
from collections import OrderedDict
from typing import Callable, Dict, Hashable, List, Mapping, Optional, Tuple, Union

import numpy as np

from repro.core.expr import SpTTNKernel
from repro.engine.keys import canonical_key, key_digest
from repro.engine.plan_store import (
    PlanStore,
    default_plan_store,
    schedule_from_payload,
    schedule_payload,
)
from repro.obs.metrics import inc_counter, register_source
from repro.obs.trace import span as _span
from repro.core.loop_nest import LoopNest
from repro.core.scheduler import Schedule, SpTTNScheduler
from repro.sptensor.coo import COOTensor
from repro.sptensor.csf import CSFTensor
from repro.sptensor.dense import DenseTensor

PlanKey = Tuple[Hashable, ...]

#: A recursion site of the fused loop nest: (term positions, loop depth).
SiteKey = Tuple[Tuple[int, ...], int]

# --------------------------------------------------------------------------- #
# Recipe encoding shared by plan producers and consumers
# --------------------------------------------------------------------------- #
# Operand-recipe modes (first element of a recipe tuple).  Plans store these
# symbolic recipes; both the interpreter (repro.engine.executor) and the
# vectorized lowering pass (repro.engine.lowering) decode them.
SPARSE_LEAF = 0      # scalar: csf.values[csf_pos]
SPARSE_LOOKUP = 1    # scalar: find_leaf over the bound csf-mode values
SPARSE_FIBER = 2     # vector: csf.values[lo:hi] of the current node's children
ARRAY = 3            # dense array / buffer / dense output slice
SPARSE_OUT_LEAF = 4  # accumulate into out_values[csf_pos]
SPARSE_OUT_LOOKUP = 5
SPARSE_OUT_FIBER = 6  # accumulate into out_values[lo:hi]

# Symbolic array slots used in cached (array-independent) recipes; bound to
# concrete arrays (or registers) per execution.
SLOT_DENSE = "dense"    # a dense input operand, by name
SLOT_BUFFER = "buffer"  # an intermediate buffer, by name
SLOT_OUT = "out"        # the dense output array


# --------------------------------------------------------------------------- #
# Structural keys
# --------------------------------------------------------------------------- #
def kernel_signature(kernel: SpTTNKernel) -> PlanKey:
    """Hashable structural identity of a kernel (no sparsity statistics)."""
    return (
        tuple((op.name, op.indices, op.is_sparse) for op in kernel.operands),
        (kernel.output.name, kernel.output.indices, kernel.output.is_sparse),
        tuple(sorted(kernel.index_dims.items())),
        kernel.csf_mode_order,
    )


def operand_signature(
    kernel: SpTTNKernel, tensors: Mapping[str, object]
) -> PlanKey:
    """Shapes and dtypes of the concrete operands, in operand order."""
    sig: List[Tuple[Hashable, ...]] = []
    for op in kernel.operands:
        value = tensors[op.name]
        if isinstance(value, (COOTensor, CSFTensor)):
            sig.append(("sparse", tuple(value.shape), str(value.values.dtype)))
        elif isinstance(value, DenseTensor):
            sig.append(("dense", tuple(value.data.shape), str(value.data.dtype)))
        else:
            arr = np.asarray(value)
            sig.append(("dense", tuple(arr.shape), str(arr.dtype)))
    return tuple(sig)


def plan_key(
    kernel: SpTTNKernel,
    loop_nest: LoopNest,
    offload: bool = True,
    operands: PlanKey = (),
) -> PlanKey:
    """Full structural identity of one compiled plan.

    Two executions share a plan exactly when this key matches: same kernel
    signature, same contraction path, same per-term loop orders, same CSF
    mode order (part of the kernel signature), same operand shapes/dtypes
    and the same offload setting.
    """
    path = loop_nest.path
    return (
        kernel_signature(kernel),
        tuple(
            (t.lhs, t.rhs, t.out, t.lhs_indices, t.rhs_indices, t.out_indices)
            for t in path
        ),
        tuple(tuple(order) for order in loop_nest.order),
        bool(offload),
        tuple(operands),
    )


def schedule_key(
    kernel: SpTTNKernel,
    buffer_dim_bound: Optional[int],
    flop_tolerance: float,
    max_paths: Optional[int],
    enforce_csf_order: bool,
) -> PlanKey:
    """Identity of one scheduling problem (kernel structure + sparsity stats)."""
    stats = kernel.sparse_stats
    prefix = stats.get("prefix_nnz") or {}
    return (
        kernel_signature(kernel),
        stats.get("nnz"),
        tuple(sorted(prefix.items())),
        buffer_dim_bound,
        float(flop_tolerance),
        max_paths,
        bool(enforce_csf_order),
    )


# --------------------------------------------------------------------------- #
# Compiled plans
# --------------------------------------------------------------------------- #
class CompiledPlan:
    """Symbolic execution plan for one loop-nest structure.

    The plan is a mapping from recursion sites (term positions, depth) to
    step lists produced by the executor's preprocessing stage.  Steps are
    array-independent: operand recipes reference slots by name and are bound
    to concrete arrays per execution.  Sites are discovered lazily during
    the first execution and reused verbatim afterwards.

    ``lowered`` records the whole-nest vectorization decision (the general
    lowering of :mod:`repro.engine.lowering`): ``None`` until the first
    execution attempts the lowering pass, then either ``False`` (not
    lowerable — the interpreter is used) or the compiled
    :class:`~repro.engine.lowering.ir.Program`.  ``jit`` records the same
    tri-state for the codegen tier (``None`` / ``False`` / a
    :class:`~repro.engine.lowering.codegen.CompiledJit`), and ``vm_pool``
    holds the lowered VM's per-plan reusable buffer pool — both live on
    the plan so the cache's byte budget accounts for compiled callables
    and pooled buffers alongside the plan itself.
    """

    __slots__ = ("key", "sites", "lowered", "jit", "vm_pool")

    def __init__(self, key: PlanKey) -> None:
        self.key = key
        self.sites: Dict[SiteKey, list] = {}
        self.lowered: object = None
        self.jit: object = None
        self.vm_pool: Optional[dict] = None

    @property
    def n_sites(self) -> int:
        return len(self.sites)

    def site(self, site_key: SiteKey) -> Optional[list]:
        return self.sites.get(site_key)

    def add_site(self, site_key: SiteKey, steps: list) -> list:
        self.sites[site_key] = steps
        return steps

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CompiledPlan(sites={len(self.sites)})"


#: Flat size charged for callables (specialized offload closures bound into
#: plan steps) and other opaque leaves the size walker does not descend into.
_OPAQUE_BYTES = 256


def approx_nbytes(value: object, _seen: Optional[set] = None) -> int:
    """Approximate in-memory footprint of one cache entry, in bytes.

    A structural walk rather than serialization: plan steps embed
    specialized NumPy closures that cannot be pickled, and pickling would
    copy every lowered-program array just to count it.  Arrays report their
    buffer size; containers and objects (``__dict__``/``__slots__``) are
    recursed with cycle protection; callables and unknown leaves are
    charged a flat :data:`_OPAQUE_BYTES`.  Shared substructure is counted
    once per entry, so totals are an upper-ish bound good enough for a
    budget, not an exact accounting.
    """
    if value is None or isinstance(value, (bool, int, float, complex, np.generic)):
        return 32
    # the cycle/dedup guard must precede the array and string leaves: an
    # array referenced from several steps of one plan is charged once
    if _seen is None:
        _seen = set()
    oid = id(value)
    if oid in _seen:
        return 0
    _seen.add(oid)
    if isinstance(value, np.ndarray):
        return int(value.nbytes) + 128
    if isinstance(value, (str, bytes)):
        return sys.getsizeof(value)
    if isinstance(value, (list, tuple, set, frozenset)):
        return sys.getsizeof(value) + sum(
            approx_nbytes(item, _seen) for item in value
        )
    if isinstance(value, dict):
        return sys.getsizeof(value) + sum(
            approx_nbytes(k, _seen) + approx_nbytes(v, _seen)
            for k, v in value.items()
        )
    if callable(value):
        return _OPAQUE_BYTES
    total = _OPAQUE_BYTES
    attrs = getattr(value, "__dict__", None)
    if attrs:
        total += approx_nbytes(attrs, _seen)
    for slot in getattr(type(value), "__slots__", ()):
        total += approx_nbytes(getattr(value, slot, None), _seen)
    return total


class PlanCache:
    """Bounded LRU cache with hit/miss/eviction counters and a byte budget.

    Used process-wide for compiled plans and schedules; create private
    instances for isolation (tests, benchmarks measuring cold starts).

    Two independent bounds apply, each optional:

    * ``max_entries`` — entry-count LRU, the PR-1 behaviour;
    * ``max_bytes`` — a memory budget.  Entries are size-accounted (with
      ``size_of``, defaulting to :func:`approx_nbytes`) on insertion and on
      :meth:`reaccount`, and least-recently-used entries are evicted until
      the total fits.  A single value larger than the whole budget is
      *not admitted*: it is returned to the caller but never stored (and
      counted in ``rejections``), so one oversized plan cannot flush the
      entire working set.
    """

    def __init__(
        self,
        max_entries: Optional[int] = 512,
        max_bytes: Optional[int] = None,
        size_of: Optional[Callable[[object], int]] = None,
        name: str = "cache",
    ) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be None or >= 1")
        if max_bytes is not None and max_bytes < 1:
            raise ValueError("max_bytes must be None or >= 1")
        self.name = name
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.size_of = size_of if size_of is not None else approx_nbytes
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.rejections = 0
        self.bytes = 0
        self._entries: "OrderedDict[PlanKey, object]" = OrderedDict()
        self._sizes: Dict[PlanKey, int] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: PlanKey) -> bool:
        return key in self._entries

    def get(self, key: PlanKey) -> Optional[object]:
        """Peek without touching the counters or the LRU order."""
        return self._entries.get(key)

    def _measure(self, value: object) -> int:
        if self.max_bytes is None:
            # no budget: skip the (pickling) size probe entirely
            return 0
        return max(1, int(self.size_of(value)))

    def _evict_lru(self) -> None:
        key, _ = self._entries.popitem(last=False)
        self.bytes -= self._sizes.pop(key, 0)
        self.evictions += 1

    def _shrink_to_budget(self) -> None:
        """Evict LRU entries until both bounds hold (never the newest)."""
        if self.max_entries is not None:
            while len(self._entries) > self.max_entries:
                self._evict_lru()
        if self.max_bytes is not None:
            while self.bytes > self.max_bytes and len(self._entries) > 1:
                self._evict_lru()

    def get_or_create(self, key: PlanKey, factory: Callable[[], object]) -> object:
        """Return the cached value for *key*, building it on first use."""
        value = self._entries.get(key)
        if value is not None:
            self.hits += 1
            self._entries.move_to_end(key)
            return value
        self.misses += 1
        with _span("build", "cache", cache=self.name):
            value = factory()
        size = self._measure(value)
        if self.max_bytes is not None and size > self.max_bytes:
            # admission control: serve the value, never cache it
            self.rejections += 1
            return value
        self._entries[key] = value
        self._sizes[key] = size
        self.bytes += size
        self._shrink_to_budget()
        return value

    def reaccount(self, key: PlanKey) -> None:
        """Re-measure one entry whose value grew after insertion.

        Compiled plans are populated *lazily* (recursion sites during the
        first interpreted execution, the lowered program on the first
        lowered one), so their insertion-time size is near zero; the
        executor calls this after any execution that changed its plan.  The
        entry is treated as most-recently used; if it now exceeds the whole
        budget it is dropped and counted as a rejection.
        """
        value = self._entries.get(key)
        if value is None:
            return
        size = self._measure(value)
        if self.max_bytes is not None and size > self.max_bytes:
            del self._entries[key]
            self.bytes -= self._sizes.pop(key, 0)
            self.rejections += 1
            return
        self.bytes += size - self._sizes.get(key, 0)
        self._sizes[key] = size
        self._entries.move_to_end(key)
        self._shrink_to_budget()

    def clear(self) -> None:
        self._entries.clear()
        self._sizes.clear()
        self.bytes = 0

    def reset_stats(self) -> None:
        self.hits = self.misses = self.evictions = self.rejections = 0

    def stats(self) -> Dict[str, int]:
        return {
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "rejections": self.rejections,
            "bytes": self.bytes,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PlanCache(entries={len(self._entries)}, hits={self.hits}, "
            f"misses={self.misses}, bytes={self.bytes})"
        )


#: Environment variable bounding the default plan cache's memory use, in
#: bytes (unset/invalid = entry-count bound only, the PR-1 behaviour).
PLAN_CACHE_BYTES_ENV = "REPRO_PLAN_CACHE_BYTES"


def _env_plan_cache_bytes() -> Optional[int]:
    raw = os.environ.get(PLAN_CACHE_BYTES_ENV)
    if raw is None or not raw.strip():
        return None
    try:
        value = int(raw)
    except ValueError:
        return None
    return value if value > 0 else None


_DEFAULT_PLAN_CACHE = PlanCache(max_bytes=_env_plan_cache_bytes(), name="plan")
_DEFAULT_SCHEDULE_CACHE = PlanCache(max_entries=256, name="schedule")
_DEFAULT_EXECUTOR_CACHE = PlanCache(max_entries=128, name="executor")


def default_plan_cache() -> PlanCache:
    """The process-wide cache of compiled plans used by the executor."""
    return _DEFAULT_PLAN_CACHE


def default_schedule_cache() -> PlanCache:
    """The process-wide cache of schedules used by :func:`cached_schedule`."""
    return _DEFAULT_SCHEDULE_CACHE


def default_executor_cache() -> PlanCache:
    """The process-wide cache of executors used by :func:`cached_executor`."""
    return _DEFAULT_EXECUTOR_CACHE


def clear_caches() -> None:
    """Drop all cached plans, schedules and executors (stats are kept)."""
    _DEFAULT_PLAN_CACHE.clear()
    _DEFAULT_SCHEDULE_CACHE.clear()
    _DEFAULT_EXECUTOR_CACHE.clear()


def caches_snapshot() -> Dict[str, Dict[str, int]]:
    """One coherent stats snapshot of all three process-wide caches.

    The canonical introspection document shared by ``repro cache``, the
    serving layer's ``cache_stats`` and the daemon's ``stats`` endpoint:
    a dict keyed ``plan``/``schedule``/``executor``/``jit``, each value
    the corresponding cache's entries/hits/misses/evictions/rejections/
    bytes counters (:meth:`PlanCache.stats`; the ``jit`` entry comes from
    :func:`~repro.engine.lowering.codegen.jit_stats` and covers compiled
    callables, their buffer pools and the per-tensor prep cache).

    Examples
    --------
    >>> caches_snapshot()["schedule"]["misses"]   # schedule searches paid
    3
    """
    # imported lazily: the lowering package imports this module at load
    from repro.engine.lowering.codegen import jit_stats

    return {
        "plan": _DEFAULT_PLAN_CACHE.stats(),
        "schedule": _DEFAULT_SCHEDULE_CACHE.stats(),
        "executor": _DEFAULT_EXECUTOR_CACHE.stats(),
        "jit": jit_stats(),
    }


# --------------------------------------------------------------------------- #
# Per-plan-signature execution timings
# --------------------------------------------------------------------------- #
def describe_plan_key(key: PlanKey) -> str:
    """Short human-readable label of one plan key: spec plus loop orders."""
    try:
        kernel_sig, _path, orders = key[0], key[1], key[2]
        operands, output = kernel_sig[0], kernel_sig[1]
        spec = (
            ",".join("".join(op[1]) for op in operands)
            + "->"
            + "".join(output[1])
        )
        order_s = ";".join(",".join(order) for order in orders)
        return f"{spec} [{order_s}]"
    except Exception:  # foreign key shapes must not break introspection
        return canonical_key(key)[:80]


#: Environment variable bounding the default timing registry's signature
#: count (unset/invalid = the built-in default below).
PLAN_TIMINGS_CAP_ENV = "REPRO_PLAN_TIMINGS_CAP"

#: Default bound on distinct ``(plan key, engine, phase)`` rows retained.
DEFAULT_PLAN_TIMINGS_CAP = 1024


def _env_timings_cap() -> int:
    raw = os.environ.get(PLAN_TIMINGS_CAP_ENV)
    if raw is None or not raw.strip():
        return DEFAULT_PLAN_TIMINGS_CAP
    try:
        value = int(raw)
    except ValueError:
        return DEFAULT_PLAN_TIMINGS_CAP
    return value if value >= 1 else DEFAULT_PLAN_TIMINGS_CAP


class PlanTimings:
    """Measured execution times accumulated per plan signature.

    The calibration feed for measurement-driven autotuning (ROADMAP item
    4): every :meth:`~repro.engine.executor.LoopNestExecutor.execute` call
    records wall-clock time under ``(plan key, engine actually run,
    phase)``, where the phase separates one-time preparation
    (``"prepare"``: COO→CSF conversion, plan build, lowering/jit
    compilation) from steady-state execution (``"execute"``) so cold-call
    compilation never poisons the calibration fit.  :meth:`snapshot`
    reports count/total/min/mean/max per signature — visible via
    ``repro cache``, the service stats and the daemon's
    ``stats``/``metrics`` operations.

    The registry is a *capped* LRU over signatures (``max_records``,
    defaulting to ``REPRO_PLAN_TIMINGS_CAP`` else
    :data:`DEFAULT_PLAN_TIMINGS_CAP`): a long-lived daemon serving many
    distinct plans ages out the least-recently-recorded rows instead of
    growing without bound, counting them in ``evictions``.

    Executors additionally register the cost model's *feature vector* of
    each plan (:func:`repro.core.calibrate.cost_features`) together with
    the model's predicted seconds; :meth:`training_rows` joins those with
    the measured execute-phase timings to form the calibration fit's
    input, and :meth:`drift_rows` the observed-vs-predicted pairs driving
    online re-tuning.

    Thread-safe: serving flushes record from worker threads.
    """

    def __init__(self, max_records: Optional[int] = None) -> None:
        if max_records is not None and max_records < 1:
            raise ValueError("max_records must be None or >= 1")
        self._lock = threading.Lock()
        self.max_records = (
            _env_timings_cap() if max_records is None else max_records
        )
        self.evictions = 0
        # (key, engine, phase) -> [count, total, min, max], LRU order
        self._records: "OrderedDict[Tuple[PlanKey, str, str], List[float]]" = (
            OrderedDict()
        )
        # plan key -> cost-model feature vector / predicted seconds
        self._features: Dict[PlanKey, Tuple[float, ...]] = {}
        self._predictions: Dict[PlanKey, float] = {}

    def record(
        self, key: PlanKey, engine: str, seconds: float, phase: str = "execute"
    ) -> None:
        """Account one *phase* of one execution of *key* on *engine*."""
        with self._lock:
            record_key = (key, engine, phase)
            rec = self._records.get(record_key)
            if rec is None:
                self._records[record_key] = [1, seconds, seconds, seconds]
            else:
                rec[0] += 1
                rec[1] += seconds
                rec[2] = min(rec[2], seconds)
                rec[3] = max(rec[3], seconds)
                self._records.move_to_end(record_key)
            while len(self._records) > self.max_records:
                (old_key, _, _), _ = self._records.popitem(last=False)
                self.evictions += 1
                if not any(k == old_key for k, _, _ in self._records):
                    self._features.pop(old_key, None)
                    self._predictions.pop(old_key, None)

    def record_features(
        self,
        key: PlanKey,
        features: Tuple[float, ...],
        predicted_s: Optional[float] = None,
    ) -> None:
        """Attach a cost-model feature vector (and prediction) to *key*."""
        with self._lock:
            self._features[key] = tuple(float(f) for f in features)
            if predicted_s is not None:
                self._predictions[key] = float(predicted_s)
            while len(self._features) > self.max_records:
                self._features.pop(next(iter(self._features)))
            while len(self._predictions) > self.max_records:
                self._predictions.pop(next(iter(self._predictions)))

    def features_of(self, key: PlanKey) -> Optional[Tuple[float, ...]]:
        with self._lock:
            return self._features.get(key)

    def feature_items(self) -> List[Tuple[PlanKey, Tuple[float, ...]]]:
        """All registered ``(plan key, feature vector)`` pairs."""
        with self._lock:
            return list(self._features.items())

    def training_rows(
        self, engine: Optional[str] = None, phase: str = "execute"
    ) -> List[Tuple[Tuple[float, ...], float]]:
        """``(feature vector, mean measured seconds)`` pairs for fitting.

        Only rows of the requested *phase* (steady-state execution by
        default) whose plan key has a registered feature vector
        participate; *engine* restricts to one engine's measurements
        (``None`` = all).
        """
        with self._lock:
            items = list(self._records.items())
            features = dict(self._features)
        rows = []
        for (key, eng, ph), (count, total, _lo, _hi) in items:
            if ph != phase or (engine is not None and eng != engine):
                continue
            vector = features.get(key)
            if vector is None or count < 1:
                continue
            rows.append((vector, total / count))
        return rows

    def drift_rows(self, phase: str = "execute") -> List[Tuple[float, float]]:
        """``(predicted seconds, observed mean seconds)`` pairs."""
        with self._lock:
            items = list(self._records.items())
            predictions = dict(self._predictions)
        rows = []
        for (key, _eng, ph), (count, total, _lo, _hi) in items:
            if ph != phase or count < 1:
                continue
            predicted = predictions.get(key)
            if predicted is None or predicted <= 0.0:
                continue
            rows.append((predicted, total / count))
        return rows

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def clear(self) -> None:
        """Drop every accumulated record, feature and prediction."""
        with self._lock:
            self._records.clear()
            self._features.clear()
            self._predictions.clear()

    def stats(self) -> Dict[str, int]:
        """Bound/occupancy counters for the stats surfaces."""
        with self._lock:
            return {
                "signatures": len(self._records),
                "cap": self.max_records,
                "evictions": self.evictions,
                "features": len(self._features),
            }

    def snapshot(self) -> List[Dict[str, object]]:
        """JSON-safe rows sorted by total time descending.

        Each row carries the canonical ``digest`` of the structural key
        (:func:`repro.engine.keys.key_digest` — stable across processes
        and NumPy versions, so snapshots from different daemon runs
        correlate), a readable ``plan`` label, the engine, the phase and
        the count/total/min/mean/max statistics in seconds.
        """
        with self._lock:
            items = list(self._records.items())
        rows = []
        for (key, engine, phase), (count, total, lo, hi) in items:
            rows.append(
                {
                    "digest": key_digest(key),
                    "plan": describe_plan_key(key),
                    "engine": engine,
                    "phase": phase,
                    "count": int(count),
                    "total_s": total,
                    "min_s": lo,
                    "mean_s": total / count if count else 0.0,
                    "max_s": hi,
                }
            )
        rows.sort(key=lambda row: row["total_s"], reverse=True)
        return rows


_DEFAULT_PLAN_TIMINGS = PlanTimings()

#: Records between online drift checks (kept coarse so the steady-state
#: recording path stays a dict update).
_RETUNE_CHECK_EVERY = 64
_records_since_check = 0


def default_plan_timings() -> PlanTimings:
    """The process-wide per-plan timing registry the executor records into."""
    return _DEFAULT_PLAN_TIMINGS


def record_plan_timing(
    key: PlanKey, engine: str, seconds: float, phase: str = "execute"
) -> None:
    """Record one measured phase into the process-wide registry.

    Every :data:`_RETUNE_CHECK_EVERY` records the calibration layer is
    given a chance to re-fit (:func:`repro.core.calibrate.maybe_retune`)
    when observed latencies have drifted from the model's predictions; a
    re-fit is persisted through the default plan store when one is
    configured.
    """
    _DEFAULT_PLAN_TIMINGS.record(key, engine, seconds, phase=phase)
    global _records_since_check
    _records_since_check += 1
    if _records_since_check >= _RETUNE_CHECK_EVERY:
        _records_since_check = 0
        from repro.core.calibrate import maybe_retune

        coefficients = maybe_retune(_DEFAULT_PLAN_TIMINGS)
        if coefficients is not None:
            store = default_plan_store()
            if store is not None:
                store.save_calibration(coefficients.as_dict())


def record_plan_features(
    key: PlanKey,
    features: Tuple[float, ...],
    predicted_s: Optional[float] = None,
) -> None:
    """Register a plan's cost-model features in the process registry."""
    _DEFAULT_PLAN_TIMINGS.record_features(key, features, predicted_s)


def plan_timings_snapshot() -> List[Dict[str, object]]:
    """Rows of the process-wide per-plan timing registry (total-desc)."""
    return _DEFAULT_PLAN_TIMINGS.snapshot()


def plan_timings_stats() -> Dict[str, int]:
    """Bound/occupancy counters of the process-wide timing registry."""
    return _DEFAULT_PLAN_TIMINGS.stats()


def clear_plan_timings() -> None:
    """Drop the process-wide per-plan timing records (test isolation)."""
    _DEFAULT_PLAN_TIMINGS.clear()


# The metrics registry embeds these documents in its snapshots; registering
# here (the producer) keeps repro.obs free of engine-layer imports.
register_source("caches", caches_snapshot)
register_source("plan_timings", plan_timings_snapshot)


# --------------------------------------------------------------------------- #
# Schedule caching
# --------------------------------------------------------------------------- #
#: Count of real schedule searches run by :func:`cached_schedule` (i.e.
#: neither the in-memory LRU nor the plan store had the answer).
_schedule_searches = 0


def schedule_search_count() -> int:
    """Process-wide number of schedule searches actually executed."""
    return _schedule_searches


def cached_schedule(
    kernel: SpTTNKernel,
    buffer_dim_bound: Optional[int] = 2,
    flop_tolerance: float = 1.5,
    max_paths: Optional[int] = 5000,
    enforce_csf_order: bool = True,
    cache: Optional[PlanCache] = None,
    store: Union[PlanStore, bool, None] = True,
) -> Schedule:
    """Run the scheduler's search once per kernel structure per process.

    Structurally identical kernels (same operands, dimensions, CSF mode
    order and sparsity statistics) reuse the previously selected
    :class:`~repro.core.scheduler.Schedule`; the returned schedule's
    ``loop_nest`` is kernel-object independent and can be executed against
    any kernel with the same signature.  Custom cost functions cannot be
    keyed, so use :class:`~repro.core.scheduler.SpTTNScheduler` directly
    for those.

    On an in-memory miss the disk store is consulted before searching:
    ``store=True`` (default) resolves the ``REPRO_PLAN_STORE`` default
    store (no-op when unset), a :class:`~repro.engine.plan_store.PlanStore`
    instance uses that store (isolation for tests), ``False``/``None``
    disables persistence.  A store hit deserializes the previously
    selected schedule — zero search — and any fresh search result is
    written back, so the *next* process warm-starts.

    Examples
    --------
    >>> kernel = parse_kernel("ijk,ja,ka->ia", [T, B, C])
    >>> nest = cached_schedule(kernel).loop_nest    # search runs once
    >>> nest is cached_schedule(kernel).loop_nest   # later calls hit
    True
    """
    cache = cache if cache is not None else _DEFAULT_SCHEDULE_CACHE
    key = schedule_key(
        kernel, buffer_dim_bound, flop_tolerance, max_paths, enforce_csf_order
    )
    if store is True:
        resolved_store: Optional[PlanStore] = default_plan_store()
    elif store is False or store is None:
        resolved_store = None
    else:
        resolved_store = store

    def build() -> Schedule:
        if resolved_store is not None:
            payload = resolved_store.get(key)
            if payload is not None:
                try:
                    restored = schedule_from_payload(kernel, payload)
                except Exception:
                    # digest collision or foreign/hand-edited entry: count
                    # it as a miss and fall through to a fresh search
                    resolved_store.note_invalid()
                else:
                    inc_counter("store.schedule_loads")
                    return restored
        scheduler = SpTTNScheduler(
            kernel,
            buffer_dim_bound=buffer_dim_bound,
            flop_tolerance=flop_tolerance,
            max_paths=max_paths,
            enforce_csf_order=enforce_csf_order,
        )
        with _span("schedule_search", "scheduler"):
            schedule = scheduler.schedule()
        global _schedule_searches
        _schedule_searches += 1
        inc_counter("schedule.searches")
        if resolved_store is not None:
            resolved_store.put(key, schedule_payload(schedule))
        return schedule

    schedule = cache.get_or_create(key, build)
    assert isinstance(schedule, Schedule)
    return schedule


# --------------------------------------------------------------------------- #
# Executor caching
# --------------------------------------------------------------------------- #
def cached_executor(
    kernel: SpTTNKernel,
    loop_nest: LoopNest,
    offload: bool = True,
    engine: Optional[str] = None,
    cache: Optional[PlanCache] = None,
):
    """One process-wide executor per loop-nest structure.

    Reusing an executor across ``execute()`` calls is the library's fast
    path (the compiled plan is bound, never rebuilt); this helper makes the
    reuse automatic for callers that cannot conveniently hold the executor
    themselves — the measured sweeps' :class:`~repro.core.search.ExecutionRunner`
    (one executor per candidate per worker process) and the distributed
    runtime (one executor shared by all virtual ranks of a kernel).

    ``engine=None`` is resolved through the ``REPRO_ENGINE`` default *now*,
    so the cache key always names a concrete engine and later environment
    changes cannot alias entries.  Cached executors accumulate their
    ``counter`` across uses and are not safe for concurrent use from
    threads; pass ``cache=``\\ a private :class:`PlanCache` (or construct
    :class:`~repro.engine.executor.LoopNestExecutor` directly) for
    isolation.

    Examples
    --------
    >>> nest = cached_schedule(kernel).loop_nest
    >>> out = cached_executor(kernel, nest).execute(tensors)   # compiles
    >>> out = cached_executor(kernel, nest).execute(tensors)   # plan reused
    """
    # Imported here: repro.engine.executor imports this module at load time.
    from repro.engine.executor import LoopNestExecutor, default_engine

    resolved = default_engine() if engine is None else engine
    cache = cache if cache is not None else _DEFAULT_EXECUTOR_CACHE
    key = ("executor", plan_key(kernel, loop_nest, offload=offload), resolved)
    executor = cache.get_or_create(
        key,
        lambda: LoopNestExecutor(
            kernel, loop_nest, offload=offload, engine=resolved
        ),
    )
    assert isinstance(executor, LoopNestExecutor)
    return executor
