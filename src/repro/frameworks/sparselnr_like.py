"""SparseLNR-style factorize-and-fuse baseline with limited fusion.

SparseLNR extends TACO with kernel distribution and fusion directives, but
the schedule is user-specified and, as reported in Sections 6-7 of the
paper, the schedules it produces for SpTTN kernels fuse far less than the
optimum:

* order-3 TTMc: the expression order is followed literally (contract the
  sparse tensor with the *first* dense operand), and only the first sparse
  index is fused across the two contractions, leaving a ``K x R``
  intermediate;
* order-4 TTMc: the first three tensors are contracted at once and only the
  first index is fused, leaving an ``L x R x S`` intermediate;
* MTTKRP: fusion fails entirely and the schedule degenerates to the
  unfactorized TACO loop nest.

This baseline reproduces that behaviour generically: it builds the
left-to-right (expression-order) contraction chain and a loop order that
shares only the first sparse index between consecutive terms, then runs it
on the same loop-nest executor used by SpTTN-Cyclops.  For kernels whose
optimal loop depth equals the unfactorized depth (MTTKRP-like kernels) it
falls back to the unfactorized strategy, mirroring the failed fusion.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Tuple

from repro.core.contraction_path import ContractionPath, single_term_path
from repro.core.expr import SpTTNKernel
from repro.core.loop_nest import LoopNest, LoopOrder
from repro.engine.executor import LoopNestExecutor
from repro.frameworks.base import FrameworkBaseline, Output, TensorLike
from repro.frameworks.taco_like import TacoLikeBaseline


class SparseLNRLikeBaseline(FrameworkBaseline):
    """Factorize-and-fuse with only the leading sparse index fused."""

    name = "sparselnr"

    def __init__(self, counter=None) -> None:
        super().__init__(counter)
        self._last_nest: LoopNest = None  # type: ignore[assignment]

    # ------------------------------------------------------------------ #
    def build_loop_nest(self, kernel: SpTTNKernel) -> LoopNest:
        """The limited-fusion loop nest this baseline executes."""
        path = self._expression_order_path(kernel)
        orders: List[Tuple[str, ...]] = []
        lead = kernel.csf_mode_order[0]
        for term in path:
            indices = term.all_indices
            sparse_rest = [
                i
                for i in kernel.csf_mode_order
                if i in set(indices) and i != lead
            ]
            dense = [i for i in indices if i not in kernel.sparse_indices]
            order: List[str] = []
            if lead in set(indices):
                order.append(lead)
            order.extend(sparse_rest)
            order.extend(dense)
            orders.append(tuple(order))
        # Ensure that only the leading index can fuse: make the second loop
        # index of consecutive terms differ whenever possible by keeping each
        # term's own (sparse-then-dense) order — fusion beyond `lead` only
        # happens if the index sets force it.
        return LoopNest(path, LoopOrder(tuple(orders)))

    def _expression_order_path(self, kernel: SpTTNKernel) -> ContractionPath:
        """Left-to-right chain: sparse tensor with the first dense operand, etc."""
        return single_term_path(kernel)

    def _degenerates_to_unfactorized(self, kernel: SpTTNKernel) -> bool:
        """SparseLNR fails to fuse kernels whose terms all need every index.

        This is the MTTKRP situation described in the paper: distributing
        the kernel does not reduce the loop depth, so the tool emits the
        default TACO schedule.
        """
        nest = self.build_loop_nest(kernel)
        unfused_depth = len(kernel.index_names)
        return nest.max_loop_depth() >= unfused_depth

    # ------------------------------------------------------------------ #
    def _execute(
        self, kernel: SpTTNKernel, tensors: Mapping[str, TensorLike]
    ) -> Output:
        if self._degenerates_to_unfactorized(kernel):
            taco = TacoLikeBaseline(self.counter)
            self._last_nest = None
            return taco._execute(kernel, tensors)
        nest = self.build_loop_nest(kernel)
        self._last_nest = nest
        executor = LoopNestExecutor(kernel, nest, offload=True, counter=self.counter)
        return executor.execute(tensors)

    def metadata(self) -> Dict[str, object]:
        meta: Dict[str, object] = {"strategy": "factorize-and-fuse (lead index only)"}
        if self._last_nest is not None:
            meta["max_buffer_dimension"] = self._last_nest.max_buffer_dimension()
        else:
            meta["fallback"] = "unfactorized"
        return meta
