"""Pooled array primitives shared by the lowered VM and the jit tier.

Warm executions of a lowered program allocate the same intermediate shapes
over and over; on the fig7/TTMc workloads those allocations (page faults on
multi-megabyte einsum outputs, fresh gather buffers per call) dominate the
actual arithmetic.  This module centralizes the fix: a *pool* is a plain
``dict`` owned by the plan (one per lowered program for the VM, one per
compiled jit callable), mapping stable slot keys to reusable ``ndarray``
buffers.  Each primitive computes into the pooled buffer via the NumPy
``out=`` parameter when the cached buffer still matches, and transparently
re-allocates (updating the pool) when it does not — so results are
bit-identical to the unpooled expressions while warm calls allocate
nothing.

The pool is intentionally dumb: no locking (plans are not shared across
threads), no size cap of its own (pool bytes are charged to the owning
plan-cache entry through :func:`pool_nbytes` /
:func:`~repro.engine.plan_cache.approx_nbytes`).
"""

from __future__ import annotations

from typing import Dict, Hashable

import numpy as np

#: A buffer pool: slot key -> reusable array.
Pool = Dict[Hashable, np.ndarray]


def pool_nbytes(pool: Pool) -> int:
    """Total bytes held by one pool's buffers."""
    return sum(int(buf.nbytes) for buf in pool.values())


def buffer(pool: Pool, key: Hashable, shape, dtype) -> np.ndarray:
    """An uninitialized pooled buffer of exactly ``shape``/``dtype``."""
    buf = pool.get(key)
    if buf is None or buf.shape != tuple(shape) or buf.dtype != dtype:
        buf = np.empty(shape, dtype)
        pool[key] = buf
    return buf


def take_into(pool: Pool, key: Hashable, arr: np.ndarray, ids: np.ndarray,
              axis: int) -> np.ndarray:
    """``np.take`` into a pooled buffer, lane axis moved to the front.

    Matches the VM's gather semantics exactly: the gathered axis stays at
    ``axis`` in the backing buffer and the returned value is a
    ``moveaxis`` view with the lane axis first.
    """
    buf = pool.get(key)
    if buf is not None:
        try:
            np.take(arr, ids, axis=axis, out=buf)
        except (ValueError, TypeError):
            buf = None
    if buf is None:
        buf = np.take(arr, ids, axis=axis)
        pool[key] = buf
    return np.moveaxis(buf, axis, 0) if axis else buf


def _einsum_shape(spec: str, operands) -> tuple:
    """Output shape of an explicit (no-ellipsis) einsum spec."""
    inputs, output = spec.split("->")
    dims = {}
    for sub, op in zip(inputs.split(","), operands):
        for letter, dim in zip(sub, op.shape):
            dims[letter] = dim
    return tuple(dims[letter] for letter in output)


def einsum_into(pool: Pool, key: Hashable, spec: str, *operands) -> np.ndarray:
    """``np.einsum`` into a pooled buffer (fresh allocation on mismatch).

    The buffer shape is checked against the spec's output shape up front:
    ``np.einsum`` *broadcasts* a smaller result into a larger ``out=``
    buffer instead of raising, which would silently return stale-shaped
    data when the same plan is re-bound to differently-shaped operands
    (e.g. distributed ranks with varying local nnz).
    """
    buf = pool.get(key)
    if (
        buf is not None
        and buf.shape == _einsum_shape(spec, operands)
        and buf.dtype == np.result_type(*operands)
    ):
        try:
            return np.einsum(spec, *operands, out=buf)
        except (ValueError, TypeError):
            pass
    out = np.einsum(spec, *operands)
    if isinstance(out, np.ndarray) and out.ndim:
        pool[key] = out
    return out


def reduceat_into(pool: Pool, key: Hashable, value: np.ndarray,
                  starts: np.ndarray) -> np.ndarray:
    """``np.add.reduceat`` along axis 0 into a pooled buffer.

    The buffer shape is checked explicitly (like :func:`einsum_into`):
    ufunc ``out=`` arguments accept broadcast-compatible shapes, so a
    length-1 result would silently smear across a stale longer buffer.
    """
    buf = pool.get(key)
    expected = (len(starts),) + value.shape[1:]
    if buf is not None and buf.shape == expected and buf.dtype == value.dtype:
        try:
            return np.add.reduceat(value, starts, axis=0, out=buf)
        except (ValueError, TypeError):
            pass
    out = np.add.reduceat(value, starts, axis=0)
    pool[key] = out
    return out


def sum0_into(pool: Pool, key: Hashable, value: np.ndarray) -> np.ndarray:
    """``value.sum(axis=0)`` into a pooled buffer (shape checked, see above)."""
    buf = pool.get(key)
    if buf is not None and buf.shape == value.shape[1:] and buf.dtype == value.dtype:
        try:
            return np.sum(value, axis=0, out=buf)
        except (ValueError, TypeError):
            pass
    out = value.sum(axis=0)
    if isinstance(out, np.ndarray) and out.ndim:
        pool[key] = out
    return out


def scatter_lanes_into(pool: Pool, key: Hashable, src: np.ndarray, shape) -> np.ndarray:
    """A zeroed pooled buffer for a lane scatter (``fill(0)`` on reuse)."""
    buf = buffer(pool, key, shape, src.dtype)
    buf.fill(0)
    return buf
