"""Distributed-memory execution and strong scaling (Figure 8 in miniature).

Shows the two faces of the simulated distributed runtime:

* ``execute(p)`` really runs every virtual rank's local fused loop nest on
  its cyclically assigned nonzeros and reduces the partial outputs — the
  result is bitwise-identical to the single-process run;
* ``simulate(p)`` estimates the parallel runtime from the measured
  single-rank time, the per-rank load balance and the alpha-beta
  communication model, producing the strong-scaling curves of Figure 8.

Run with:  python examples/distributed_scaling.py
"""

import numpy as np

import repro
from repro.distributed import DistributedSpTTN, strong_scaling
from repro.kernels.mttkrp import mttkrp_kernel


def main() -> None:
    T = repro.random_sparse_tensor((96, 96, 96), nnz=8_000, seed=3)
    rank = 32
    factors = [repro.random_dense_matrix(d, rank, seed=i) for i, d in enumerate(T.shape)]
    kernel, tensors = mttkrp_kernel(T, factors, mode=0)

    runtime = DistributedSpTTN(kernel, tensors)

    # --- exactness of the distributed algorithm ------------------------------
    serial = runtime.execute(1)
    parallel = runtime.execute(8)
    print(
        "distributed execution on 8 virtual ranks matches the serial result:",
        bool(np.allclose(serial, parallel)),
    )

    # --- strong scaling -------------------------------------------------------
    counts = [1, 2, 4, 8, 16, 32, 64]
    result = strong_scaling(kernel, tensors, counts, kernel_name="mttkrp")
    print("\nsimulated strong scaling (MTTKRP, R=32):")
    print(f"{'procs':>6s} {'grid':>10s} {'time[ms]':>10s} {'efficiency':>11s} {'imbalance':>10s}")
    for row in result.as_rows():
        print(
            f"{row['processes']:6d} {row['grid']:>10s} "
            f"{row['time_s'] * 1e3:10.3f} {row['efficiency']:11.2f} "
            f"{row['load_imbalance']:10.2f}"
        )


if __name__ == "__main__":
    main()
