"""Tests for the baseline execution strategies (TACO/CTF/SparseLNR/SPLATT-like).

Every supported baseline must produce the reference result; the operation
counters must reflect the algorithmic differences the paper describes
(unfactorized > factorized operation counts, pairwise intermediate blow-up).
"""

import numpy as np
import pytest

from repro.engine.reference import assert_same_result, reference_output
from repro.frameworks import (
    ALL_BASELINES,
    CTFLikeBaseline,
    IntermediateMemoryError,
    SparseLNRLikeBaseline,
    SplattLikeBaseline,
    SpTTNCyclopsBaseline,
    TacoLikeBaseline,
)

KERNELS = ["mttkrp_setup", "ttmc_setup", "tttp_setup", "allmode_setup", "ttmc4_setup"]


@pytest.mark.parametrize("fixture_name", KERNELS)
@pytest.mark.parametrize("baseline_cls", ALL_BASELINES)
class TestBaselineCorrectness:
    def test_matches_reference(self, fixture_name, baseline_cls, request):
        kernel, tensors = request.getfixturevalue(fixture_name)
        baseline = baseline_cls()
        if not baseline.supports(kernel):
            pytest.skip(f"{baseline.name} does not support this kernel")
        expected = reference_output(kernel, tensors)
        result = baseline.run(kernel, tensors)
        assert_same_result(result.output, expected)
        assert result.seconds >= 0.0
        assert result.framework == baseline.name


class TestSupportMatrix:
    def test_splatt_only_supports_mttkrp(self, mttkrp_setup, ttmc_setup):
        splatt = SplattLikeBaseline()
        assert splatt.supports(mttkrp_setup[0])
        assert not splatt.supports(ttmc_setup[0])

    def test_splatt_rejects_unsupported_run(self, ttmc_setup):
        kernel, tensors = ttmc_setup
        with pytest.raises(NotImplementedError):
            SplattLikeBaseline().run(kernel, tensors)

    def test_splatt_supports_order4_mttkrp(self, random_coo4):
        from repro.kernels.mttkrp import mttkrp_kernel

        factors = [np.ones((d, 3)) for d in random_coo4.shape]
        kernel, tensors = mttkrp_kernel(random_coo4, factors, mode=2)
        assert SplattLikeBaseline().supports(kernel)

    def test_generic_baselines_support_everything(self, tttp_setup):
        kernel, _ = tttp_setup
        for cls in (TacoLikeBaseline, CTFLikeBaseline, SparseLNRLikeBaseline):
            assert cls().supports(kernel)


class TestOperationCountShapes:
    """The relative operation counts must reproduce Section 2.4's analysis."""

    def test_unfactorized_mttkrp_costs_more_than_fused(self, mttkrp_setup):
        kernel, tensors = mttkrp_setup
        taco = TacoLikeBaseline().run(kernel, tensors)
        ours = SpTTNCyclopsBaseline().run(kernel, tensors)
        # 3 nnz R  vs  2 nnz R + 2 nnz_IJ R
        assert taco.counter.flops > ours.counter.flops

    def test_unfactorized_ttmc_costs_much_more(self, ttmc_setup):
        kernel, tensors = ttmc_setup
        taco = TacoLikeBaseline().run(kernel, tensors)
        ours = SpTTNCyclopsBaseline().run(kernel, tensors)
        # 3 nnz R S  vs  2 nnz S + 2 nnz_IJ S R: asymptotic reduction
        assert taco.counter.flops > 1.5 * ours.counter.flops

    def test_ctf_pairwise_intermediate_blowup(self, ttmc_setup):
        kernel, tensors = ttmc_setup
        ctf = CTFLikeBaseline()
        ctf.run(kernel, tensors)
        fused_footprint = SpTTNCyclopsBaseline()
        schedule = fused_footprint.schedule_for(kernel)
        fused_elems = sum(
            b.size(kernel.index_dims) for b in schedule.loop_nest.buffers()
        )
        assert ctf.metadata()["max_intermediate_elements"] > fused_elems

    def test_ctf_memory_limit_enforced(self, ttmc_setup):
        kernel, tensors = ttmc_setup
        tiny_limit = CTFLikeBaseline(memory_limit_elements=10)
        with pytest.raises(IntermediateMemoryError):
            tiny_limit.run(kernel, tensors)

    def test_splatt_flops_match_fused(self, mttkrp_setup):
        """SPLATT and SpTTN-Cyclops implement the same factorized algorithm."""
        kernel, tensors = mttkrp_setup
        splatt = SplattLikeBaseline().run(kernel, tensors)
        ours = SpTTNCyclopsBaseline().run(kernel, tensors)
        ratio = splatt.counter.flops / max(1, ours.counter.flops)
        assert 0.4 < ratio < 2.5


class TestSparseLNRBehaviour:
    def test_mttkrp_falls_back_to_unfactorized(self, mttkrp_setup):
        kernel, tensors = mttkrp_setup
        lnr = SparseLNRLikeBaseline()
        lnr.run(kernel, tensors)
        assert lnr.metadata().get("fallback") == "unfactorized"

    def test_ttmc_uses_limited_fusion(self, ttmc_setup):
        kernel, tensors = ttmc_setup
        lnr = SparseLNRLikeBaseline()
        lnr.run(kernel, tensors)
        meta = lnr.metadata()
        assert "max_buffer_dimension" in meta
        # SparseLNR's TTMc intermediate is K x R (dimension 2), larger than
        # the optimum's single dense vector
        ours = SpTTNCyclopsBaseline()
        schedule = ours.schedule_for(kernel)
        assert meta["max_buffer_dimension"] >= schedule.max_buffer_dimension()

    def test_build_loop_nest_is_valid(self, ttmc4_setup):
        from repro.core.loop_nest import validate_loop_order

        kernel, _ = ttmc4_setup
        nest = SparseLNRLikeBaseline().build_loop_nest(kernel)
        validate_loop_order(kernel, nest.path, nest.order)


class TestSpTTNCyclopsAdapter:
    def test_schedule_cached(self, ttmc_setup):
        kernel, tensors = ttmc_setup
        baseline = SpTTNCyclopsBaseline()
        s1 = baseline.schedule_for(kernel)
        s2 = baseline.schedule_for(kernel)
        assert s1 is s2

    def test_metadata_after_run(self, ttmc_setup):
        kernel, tensors = ttmc_setup
        baseline = SpTTNCyclopsBaseline()
        baseline.run(kernel, tensors)
        meta = baseline.metadata()
        assert meta["max_buffer_dimension"] <= 2

    def test_counter_reset_between_runs(self, mttkrp_setup):
        kernel, tensors = mttkrp_setup
        baseline = SpTTNCyclopsBaseline()
        first = baseline.run(kernel, tensors).counter.flops
        second = baseline.run(kernel, tensors).counter.flops
        assert first == second
