"""Unit tests for contraction paths and their enumeration."""

import pytest

from repro.core.contraction_path import (
    count_contraction_paths,
    enumerate_contraction_paths,
    path_flop_estimate,
    path_intermediate_size_estimate,
    rank_contraction_paths,
    single_term_path,
    term_flop_estimate,
)


def _operand_names(kernel):
    return {op.name for op in kernel.operands}


class TestEnumeration:
    def test_two_dense_operands_paths(self, ttmc_setup):
        kernel, _ = ttmc_setup
        paths = enumerate_contraction_paths(kernel)
        # 3 input tensors -> 3 unordered pairings for the first contraction
        assert len(paths) == 3
        for path in paths:
            assert len(path) == 2

    def test_three_dense_operands_paths(self, ttmc4_setup):
        kernel, _ = ttmc4_setup
        paths = enumerate_contraction_paths(kernel)
        assert len(paths) > 3
        assert len(paths) <= count_contraction_paths(4)

    def test_every_path_ends_at_output(self, ttmc_setup):
        kernel, _ = ttmc_setup
        for path in enumerate_contraction_paths(kernel):
            assert path[-1].out == kernel.output.name
            assert set(path[-1].out_indices) == set(kernel.output.indices)

    def test_every_input_used_exactly_once(self, ttmc4_setup):
        kernel, _ = ttmc4_setup
        names = _operand_names(kernel)
        for path in enumerate_contraction_paths(kernel):
            used = [t.lhs for t in path] + [t.rhs for t in path]
            for name in names:
                assert used.count(name) == 1

    def test_intermediates_consumed_exactly_once(self, ttmc4_setup):
        kernel, _ = ttmc4_setup
        for path in enumerate_contraction_paths(kernel):
            consumers = path.consumers()
            assert len(consumers) == len(path) - 1
            for producer, consumer in consumers.items():
                assert consumer > producer

    def test_intermediate_indices_only_keep_needed(self, ttmc_setup):
        kernel, _ = ttmc_setup
        for path in enumerate_contraction_paths(kernel):
            for term in path.terms[:-1]:
                for idx in term.out_indices:
                    # every kept index is needed by the output or another term
                    needed = set(kernel.output.indices)
                    assert idx in needed or any(
                        idx in t.lhs_indices or idx in t.rhs_indices
                        for t in path.terms
                        if t is not term
                    )

    def test_max_paths_cap(self, ttmc4_setup):
        kernel, _ = ttmc4_setup
        paths = enumerate_contraction_paths(kernel, max_paths=2)
        assert len(paths) == 2

    def test_dedupe_reduces_count(self, ttmc4_setup):
        kernel, _ = ttmc4_setup
        deduped = enumerate_contraction_paths(kernel, dedupe=True)
        raw = enumerate_contraction_paths(kernel, dedupe=False)
        assert len(deduped) <= len(raw)

    def test_count_formula(self):
        assert count_contraction_paths(2) == 1
        assert count_contraction_paths(3) == 3
        assert count_contraction_paths(4) == 18
        assert count_contraction_paths(5) == 180

    def test_count_requires_two(self):
        with pytest.raises(ValueError):
            count_contraction_paths(1)


class TestTermProperties:
    def test_all_indices_union(self, ttmc_setup):
        kernel, _ = ttmc_setup
        path = enumerate_contraction_paths(kernel)[0]
        for term in path:
            assert set(term.all_indices) == (
                set(term.lhs_indices) | set(term.rhs_indices) | set(term.out_indices)
            )

    def test_contracted_indices(self, ttmc_setup):
        kernel, _ = ttmc_setup
        for path in enumerate_contraction_paths(kernel):
            for term in path:
                for idx in term.contracted_indices:
                    assert idx not in term.out_indices

    def test_max_loop_depth(self, ttmc_setup):
        kernel, _ = ttmc_setup
        paths = enumerate_contraction_paths(kernel)
        depths = {p.max_loop_depth() for p in paths}
        # T-first paths have depth 4; the dense-first path (Figure 1d) has 5
        assert 4 in depths and 5 in depths

    def test_involves(self, ttmc_setup):
        kernel, _ = ttmc_setup
        path = enumerate_contraction_paths(kernel)[0]
        assert any(t.involves("T") for t in path)


class TestCostEstimates:
    def test_term_flops_use_nnz_statistics(self, ttmc_setup):
        kernel, tensors = ttmc_setup
        paths = enumerate_contraction_paths(kernel)
        t_first = next(
            p for p in paths if "T" in (p[0].lhs, p[0].rhs)
        )
        first = t_first[0]
        expected_sparse = kernel.sparse_subset_nnz(
            [i for i in first.all_indices if i in kernel.sparse_indices]
        )
        dense = 1.0
        for i in first.all_indices:
            if i not in kernel.sparse_indices:
                dense *= kernel.index_dims[i]
        assert term_flop_estimate(kernel, first) == pytest.approx(
            2.0 * expected_sparse * dense
        )

    def test_ranking_prefers_sparse_first_for_ttmc(self, ttmc_setup):
        kernel, _ = ttmc_setup
        ranked = rank_contraction_paths(kernel)
        best_path = ranked[0][0]
        # the best TTMc path contracts the sparse tensor first (Figure 1a-c),
        # not the dense-dense pair (Figure 1d)
        assert "T" in (best_path[0].lhs, best_path[0].rhs)
        assert ranked[0][1] <= ranked[-1][1]

    def test_path_flops_sum_of_terms(self, ttmc_setup):
        kernel, _ = ttmc_setup
        path = enumerate_contraction_paths(kernel)[0]
        assert path_flop_estimate(kernel, path) == pytest.approx(
            sum(term_flop_estimate(kernel, t) for t in path)
        )

    def test_intermediate_size_estimate_positive(self, ttmc_setup):
        kernel, _ = ttmc_setup
        for path in enumerate_contraction_paths(kernel):
            assert path_intermediate_size_estimate(kernel, path) > 0


class TestSingleTermPath:
    def test_single_term_path_structure(self, ttmc_setup):
        kernel, _ = ttmc_setup
        path = single_term_path(kernel)
        assert len(path) == kernel.n_inputs - 1
        assert path[0].lhs == kernel.sparse_operand.name
        assert path[-1].out == kernel.output.name

    def test_single_term_path_order4(self, ttmc4_setup):
        kernel, _ = ttmc4_setup
        path = single_term_path(kernel)
        used = [t.lhs for t in path] + [t.rhs for t in path]
        for op in kernel.operands:
            assert used.count(op.name) == 1
