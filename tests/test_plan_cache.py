"""Plan-cache correctness: hit/miss keying, bit-identical results, memos."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.enumeration import enumerate_loop_orders
from repro.core.loop_nest import LoopNest
from repro.core.scheduler import SpTTNScheduler
from repro.engine.executor import LoopNestExecutor
from repro.engine.plan_cache import (
    PlanCache,
    cached_schedule,
    default_plan_cache,
    kernel_signature,
    plan_key,
)
from repro.sptensor import COOTensor, CSFTensor, random_dense_matrix, random_sparse_tensor
from repro.sptensor.csf import csf_for_mode_order
from repro.core.expr import parse_kernel


def _schedule_nest(kernel) -> LoopNest:
    return SpTTNScheduler(kernel).schedule().loop_nest


def _outputs_equal(a, b) -> None:
    if isinstance(a, COOTensor):
        assert isinstance(b, COOTensor)
        np.testing.assert_array_equal(a.indices, b.indices)
        np.testing.assert_array_equal(a.values, b.values)
    else:
        np.testing.assert_array_equal(np.asarray(a), np.asarray(b))


class TestPlanCacheKeying:
    def test_hit_on_identical_structure(self, mttkrp_setup):
        kernel, tensors = mttkrp_setup
        nest = _schedule_nest(kernel)
        cache = PlanCache()

        executor = LoopNestExecutor(kernel, nest, plan_cache=cache)
        first = executor.execute(tensors)
        assert cache.stats()["misses"] == 1 and cache.stats()["hits"] == 0

        second = executor.execute(tensors)
        assert cache.stats()["hits"] == 1
        _outputs_equal(first, second)

        # a brand-new executor over the same structure shares the plan
        other = LoopNestExecutor(kernel, nest, plan_cache=cache)
        third = other.execute(tensors)
        assert cache.stats()["hits"] == 2
        assert cache.stats()["misses"] == 1
        assert other._plan is executor._plan
        _outputs_equal(first, third)

    def test_miss_on_changed_loop_order(self, mttkrp_setup):
        kernel, tensors = mttkrp_setup
        nest = _schedule_nest(kernel)
        orders = [
            order
            for order in enumerate_loop_orders(kernel, nest.path)
            if order != nest.order
        ]
        cache = PlanCache()
        LoopNestExecutor(kernel, nest, plan_cache=cache).execute(tensors)
        LoopNestExecutor(
            kernel, LoopNest(nest.path, orders[0]), plan_cache=cache
        ).execute(tensors)
        assert cache.stats()["misses"] == 2
        assert cache.stats()["hits"] == 0

    def test_miss_on_changed_shape(self):
        def build(dim):
            T = random_sparse_tensor((10, dim, 6), nnz=40, seed=3)
            B = random_dense_matrix(dim, 4, seed=1, name="B")
            C = random_dense_matrix(6, 4, seed=2, name="C")
            kernel = parse_kernel("ijk,ja,ka->ia", [T, B, C], names=["T", "B", "C"])
            return kernel, {"T": T, "B": B, "C": C}

        cache = PlanCache()
        for dim in (8, 9):
            kernel, tensors = build(dim)
            nest = _schedule_nest(kernel)
            LoopNestExecutor(kernel, nest, plan_cache=cache).execute(tensors)
        assert cache.stats()["misses"] == 2
        assert cache.stats()["hits"] == 0

    def test_miss_on_changed_dtype(self, mttkrp_setup):
        kernel, tensors = mttkrp_setup
        nest = _schedule_nest(kernel)
        cache = PlanCache()
        LoopNestExecutor(kernel, nest, plan_cache=cache).execute(tensors)

        downcast = dict(tensors)
        downcast["B"] = np.asarray(tensors["B"].data, dtype=np.float32)
        LoopNestExecutor(kernel, nest, plan_cache=cache).execute(downcast)
        assert cache.stats()["misses"] == 2

    def test_miss_on_offload_flag(self, mttkrp_setup):
        kernel, tensors = mttkrp_setup
        nest = _schedule_nest(kernel)
        cache = PlanCache()
        LoopNestExecutor(kernel, nest, plan_cache=cache).execute(tensors)
        LoopNestExecutor(kernel, nest, offload=False, plan_cache=cache).execute(
            tensors
        )
        assert cache.stats()["misses"] == 2

    def test_plan_key_is_hashable_and_stable(self, mttkrp_setup):
        kernel, tensors = mttkrp_setup
        nest = _schedule_nest(kernel)
        key1 = plan_key(kernel, nest)
        key2 = plan_key(kernel, nest)
        assert key1 == key2
        assert hash(key1) == hash(key2)
        assert kernel_signature(kernel) == kernel_signature(kernel)

    def test_lru_eviction(self, mttkrp_setup):
        kernel, tensors = mttkrp_setup
        nest = _schedule_nest(kernel)
        orders = list(enumerate_loop_orders(kernel, nest.path))[:3]
        cache = PlanCache(max_entries=1)
        for order in orders:
            LoopNestExecutor(
                kernel, LoopNest(nest.path, order), plan_cache=cache
            ).execute(tensors)
        assert len(cache) == 1
        assert cache.stats()["evictions"] == 2

    def test_default_cache_is_used(self, mttkrp_setup):
        kernel, tensors = mttkrp_setup
        nest = _schedule_nest(kernel)
        cache = default_plan_cache()
        executor = LoopNestExecutor(kernel, nest)  # plan_cache=True default
        executor.execute(tensors)
        assert cache.get(executor._plan.key) is executor._plan


class TestPlanCacheResults:
    @pytest.mark.parametrize(
        "fixture", ["mttkrp_setup", "ttmc_setup", "tttp_setup", "allmode_setup"]
    )
    def test_bit_identical_cached_vs_fresh(self, request, fixture):
        kernel, tensors = request.getfixturevalue(fixture)
        nest = _schedule_nest(kernel)

        cache = PlanCache()
        cached_exec = LoopNestExecutor(kernel, nest, plan_cache=cache)
        warm1 = cached_exec.execute(tensors)
        warm2 = cached_exec.execute(tensors)  # cache hit
        fresh = LoopNestExecutor(kernel, nest, plan_cache=None).execute(tensors)

        _outputs_equal(warm1, warm2)
        _outputs_equal(warm1, fresh)
        assert cache.stats()["hits"] >= 1

    def test_disabled_cache_rebuilds_plans(self, mttkrp_setup):
        kernel, tensors = mttkrp_setup
        nest = _schedule_nest(kernel)
        executor = LoopNestExecutor(kernel, nest, plan_cache=None)
        executor.execute(tensors)
        plan_a = executor._plan
        executor.execute(tensors)
        assert executor._plan is not plan_a  # rebuilt per call


class TestScheduleCache:
    def test_schedule_cache_hits(self, mttkrp_setup):
        kernel, _ = mttkrp_setup
        cache = PlanCache()
        first = cached_schedule(kernel, cache=cache)
        second = cached_schedule(kernel, cache=cache)
        assert first is second
        assert cache.stats() == {
            "entries": 1,
            "hits": 1,
            "misses": 1,
            "evictions": 0,
            "rejections": 0,
            "bytes": 0,
        }

    def test_schedule_cache_misses_on_different_stats(self):
        cache = PlanCache()
        for seed in (1, 2):
            T = random_sparse_tensor((12, 10, 8), nnz=30 + seed * 10, seed=seed)
            B = random_dense_matrix(10, 3, seed=1, name="B")
            C = random_dense_matrix(8, 3, seed=2, name="C")
            kernel = parse_kernel("ijk,ja,ka->ia", [T, B, C], names=["T", "B", "C"])
            cached_schedule(kernel, cache=cache)
        assert cache.stats()["misses"] == 2

    def test_cached_schedule_matches_scheduler(self, ttmc_setup):
        kernel, _ = ttmc_setup
        direct = SpTTNScheduler(kernel).schedule()
        cached = cached_schedule(kernel, cache=PlanCache())
        assert cached.loop_nest.order == direct.loop_nest.order
        assert cached.path.terms == direct.path.terms


class TestCSFMemo:
    def test_coo_conversion_is_memoized(self):
        coo = random_sparse_tensor((8, 7, 6), nnz=30, seed=5)
        a = csf_for_mode_order(coo, (0, 1, 2))
        b = csf_for_mode_order(coo, (0, 1, 2))
        assert a is b
        c = csf_for_mode_order(coo, (2, 1, 0))
        assert c is not a and c.mode_order == (2, 1, 0)
        np.testing.assert_allclose(c.to_coo().to_dense(), coo.to_dense())

    def test_csf_identity_shortcut(self):
        coo = random_sparse_tensor((8, 7, 6), nnz=30, seed=5)
        csf = CSFTensor.from_coo(coo, (1, 0, 2))
        assert csf_for_mode_order(csf, (1, 0, 2)) is csf
        remode = csf_for_mode_order(csf, (0, 1, 2))
        assert remode.mode_order == (0, 1, 2)
        assert csf_for_mode_order(csf, (0, 1, 2)) is remode


class TestMemoryBudget:
    """Size-accounted LRU eviction and admission control (max_bytes)."""

    def test_approx_nbytes_tracks_array_payload(self):
        from repro.engine.plan_cache import approx_nbytes

        small = approx_nbytes({"a": np.zeros(10)})
        large = approx_nbytes({"a": np.zeros(10_000)})
        assert large - small >= 9_000 * 8
        # cycles terminate
        lst = [1, 2]
        lst.append(lst)
        assert approx_nbytes(lst) > 0
        # shared substructure is charged once per entry, not per reference
        arr = np.zeros(10_000)
        assert approx_nbytes([arr, arr]) < 2 * arr.nbytes

    def test_byte_budget_evicts_lru(self):
        cache = PlanCache(max_entries=None, max_bytes=3_000)
        for i in range(6):
            cache.get_or_create(("k", i), lambda: np.zeros(100))  # ~928 B each
        stats = cache.stats()
        assert stats["bytes"] <= 3_000
        assert stats["evictions"] >= 1
        assert ("k", 5) in cache  # newest survives
        assert ("k", 0) not in cache  # oldest evicted

    def test_oversized_value_not_admitted(self):
        cache = PlanCache(max_entries=None, max_bytes=1_000)
        value = cache.get_or_create(("big",), lambda: np.zeros(10_000))
        assert value.shape == (10_000,)  # still served
        assert len(cache) == 0
        assert cache.stats()["rejections"] == 1

    def test_unbudgeted_cache_skips_size_probe(self):
        cache = PlanCache()
        cache.get_or_create(("k",), lambda: np.zeros(1_000))
        assert cache.stats()["bytes"] == 0  # no budget, no accounting

    def test_executor_reaccounts_lazily_populated_plans(self, mttkrp_setup):
        kernel, tensors = mttkrp_setup
        nest = _schedule_nest(kernel)
        cache = PlanCache(max_entries=None, max_bytes=50_000_000)
        executor = LoopNestExecutor(kernel, nest, plan_cache=cache)
        executor.execute(tensors)
        populated = cache.stats()["bytes"]
        # the empty plan inserted before execution is tiny; the reaccount
        # after the first execution must see the real (site/lowering) size
        assert populated > 1_000

    def test_budget_evicts_real_plans(self, mttkrp_setup):
        kernel, tensors = mttkrp_setup
        nest = _schedule_nest(kernel)
        probe_cache = PlanCache(max_entries=None, max_bytes=50_000_000)
        LoopNestExecutor(kernel, nest, plan_cache=probe_cache).execute(tensors)
        one_plan = probe_cache.stats()["bytes"]

        orders = list(enumerate_loop_orders(kernel, nest.path))[:4]
        cache = PlanCache(max_entries=None, max_bytes=int(one_plan * 2.5))
        for order in orders:
            LoopNestExecutor(
                kernel, LoopNest(nest.path, order), plan_cache=cache
            ).execute(tensors)
        stats = cache.stats()
        assert stats["evictions"] >= 1
        assert len(cache) < len(orders)
        assert stats["bytes"] <= int(one_plan * 2.5)

    def test_clear_resets_bytes(self):
        cache = PlanCache(max_entries=None, max_bytes=10_000)
        cache.get_or_create(("k",), lambda: np.zeros(100))
        assert cache.stats()["bytes"] > 0
        cache.clear()
        assert cache.stats()["bytes"] == 0 and len(cache) == 0
