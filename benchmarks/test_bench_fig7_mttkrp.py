"""E1 — Figure 7: single-thread MTTKRP across frameworks.

The paper compares SpTTN-Cyclops against TACO, SparseLNR, CTF and SPLATT on
FROSTT tensors with rank R = 64 and reports: SpTTN-Cyclops 1.3-3.4x faster
than TACO, roughly on par with SPLATT (0.7-1.7x), SparseLNR equal to TACO
(fusion fails for MTTKRP), and CTF far behind.

Expected shape here: ``spttn-cyclops`` and ``splatt`` are the two fastest
and within a small factor of each other; ``taco-unfactorized`` and
``sparselnr`` are slower; ``ctf-pairwise`` is slowest.
"""

from __future__ import annotations

import pytest

from repro.frameworks import (
    CTFLikeBaseline,
    SparseLNRLikeBaseline,
    SplattLikeBaseline,
    SpTTNCyclopsBaseline,
    TacoLikeBaseline,
)
from repro.kernels.mttkrp import mttkrp_kernel

from _workloads import FIG7_DATASETS, FIG7_RANK, factor_matrices, preset_tensor

FRAMEWORKS = {
    "spttn-cyclops": SpTTNCyclopsBaseline,
    "splatt": SplattLikeBaseline,
    "taco-unfactorized": TacoLikeBaseline,
    "sparselnr": SparseLNRLikeBaseline,
    "ctf-pairwise": CTFLikeBaseline,
}


def _setup(dataset: str):
    tensor = preset_tensor(dataset)
    factors = factor_matrices(tensor, FIG7_RANK, seed=1)
    kernel, tensors = mttkrp_kernel(tensor, factors, mode=0)
    return kernel, tensors


@pytest.mark.parametrize("dataset", FIG7_DATASETS)
@pytest.mark.parametrize("framework", list(FRAMEWORKS))
def test_fig7_mttkrp_single_thread(benchmark, dataset, framework):
    kernel, tensors = _setup(dataset)
    baseline = FRAMEWORKS[framework]()
    if not baseline.supports(kernel):
        pytest.skip(f"{framework} does not support MTTKRP on this preset")
    if isinstance(baseline, SpTTNCyclopsBaseline):
        baseline.schedule_for(kernel)  # schedule once, outside the timed region

    benchmark.extra_info["dataset"] = dataset
    benchmark.extra_info["framework"] = framework
    benchmark.extra_info["nnz"] = tensors[kernel.sparse_operand.name].nnz
    benchmark.extra_info["rank"] = FIG7_RANK

    result = benchmark.pedantic(
        lambda: baseline.run(kernel, tensors), rounds=3, iterations=1, warmup_rounds=1
    )
    benchmark.extra_info["flops"] = result.counter.flops


@pytest.mark.smoke
def test_fig7_smoke(benchmark):
    """Tiny CI case: the paper's system on the smallest fig7 preset."""
    kernel, tensors = _setup("nips")
    baseline = SpTTNCyclopsBaseline()
    baseline.schedule_for(kernel)
    result = benchmark.pedantic(
        lambda: baseline.run(kernel, tensors), rounds=1, iterations=1
    )
    assert result.counter.flops > 0
