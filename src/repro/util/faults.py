"""Deterministic fault injection for chaos testing the serving stack.

Production failure modes — a pool worker SIGKILLed by the OOM killer, a
native kernel segfaulting mid-batch, a plan-store write hitting a full
disk, an execution stalling long enough to blow a request deadline —
are rare and nondeterministic in the wild.  This module makes them
*injectable and reproducible*: well-known call sites in the runtime and
serving layers call :func:`fault_point` with a stable name, and a fault
plan configured via ``REPRO_FAULTS`` (or :func:`configure_faults`)
decides, with a seeded per-point RNG, whether that hit kills the
process, raises, or sleeps.

Fault plan grammar (comma-separated specs)::

    point:mode[:arg[:limit]]

    pool.task:kill:1.0:1        # first pool task hit SIGKILLs its worker
    serve.execute:delay:0.2     # every service execute sleeps 200 ms
    store.write:raise:0.5       # half of plan-store writes raise
    shm.publish:raise           # every shm publish raises

Modes:

* ``kill`` — ``SIGKILL`` the *current process*, but only when it is a
  child process (``multiprocessing.parent_process()`` is set).  In the
  parent the kill downgrades to a no-op, so supervised serial fallbacks
  and the daemon itself survive a kill plan by construction.  *arg* is
  the firing probability (default 1).
* ``raise`` — raise :class:`FaultInjected`.  *arg* is the probability.
* ``delay`` — ``time.sleep(arg)`` seconds (default 0.05), always fires.

``limit`` caps how many times the point fires in one process; pool
workers forked after configuration inherit the plan with fresh counters,
so ``pool.task:kill:1.0:1`` kills exactly one task per worker process.
Decisions come from a per-point ``random.Random`` seeded from
``REPRO_FAULTS_SEED`` and the point name — the same plan, seed and call
sequence always injects the same faults.

The registry is import-cheap and hot-path-cheap: with no plan configured
:func:`fault_point` is one module-global check.
"""

from __future__ import annotations

import multiprocessing
import os
import random
import signal
import time
from dataclasses import dataclass
from typing import Dict, Optional

#: Environment variable holding the fault plan (empty/unset → no faults).
FAULTS_ENV = "REPRO_FAULTS"
#: Environment variable seeding the per-point decision RNGs.
FAULTS_SEED_ENV = "REPRO_FAULTS_SEED"

#: Injection modes understood by the spec grammar.
MODES = ("kill", "raise", "delay")

#: Call sites instrumented across the stack (documentation aid; specs may
#: name any point, unknown names simply never fire).
KNOWN_POINTS = ("pool.task", "shm.publish", "store.write", "serve.execute")


class FaultInjected(RuntimeError):
    """Raised by ``raise``-mode fault points; never raised organically."""


@dataclass(frozen=True)
class FaultSpec:
    """One parsed ``point:mode[:arg[:limit]]`` clause of a fault plan."""

    point: str
    mode: str
    arg: float
    limit: Optional[int]


class _PointState:
    """Mutable per-process firing state for one configured point."""

    __slots__ = ("spec", "rng", "hits", "fired")

    def __init__(self, spec: FaultSpec, seed: int) -> None:
        self.spec = spec
        self.rng = random.Random(f"{seed}:{spec.point}:{spec.mode}")
        self.hits = 0
        self.fired = 0


def parse_faults(text: Optional[str]) -> Dict[str, FaultSpec]:
    """Parse a fault plan string into specs keyed by point name.

    Raises ``ValueError`` on malformed clauses so misconfigured chaos
    runs fail loudly instead of silently injecting nothing.
    """
    specs: Dict[str, FaultSpec] = {}
    if not text or not text.strip():
        return specs
    for clause in text.split(","):
        clause = clause.strip()
        if not clause:
            continue
        parts = clause.split(":")
        if len(parts) < 2 or len(parts) > 4:
            raise ValueError(f"bad fault spec {clause!r} (want point:mode[:arg[:limit]])")
        point, mode = parts[0].strip(), parts[1].strip()
        if not point:
            raise ValueError(f"bad fault spec {clause!r} (empty point name)")
        if mode not in MODES:
            raise ValueError(f"bad fault spec {clause!r} (mode must be one of {MODES})")
        arg = 0.05 if mode == "delay" else 1.0
        if len(parts) >= 3 and parts[2].strip():
            try:
                arg = float(parts[2])
            except ValueError:
                raise ValueError(f"bad fault spec {clause!r} (arg must be a number)") from None
            if arg < 0:
                raise ValueError(f"bad fault spec {clause!r} (arg must be >= 0)")
        limit = None
        if len(parts) == 4 and parts[3].strip():
            try:
                limit = int(parts[3])
            except ValueError:
                raise ValueError(f"bad fault spec {clause!r} (limit must be an int)") from None
            if limit < 0:
                raise ValueError(f"bad fault spec {clause!r} (limit must be >= 0)")
        specs[point] = FaultSpec(point=point, mode=mode, arg=arg, limit=limit)
    return specs


# Lazily loaded state: None means "not yet loaded from the environment".
_STATE: Optional[Dict[str, _PointState]] = None
_CONFIGURED: Optional[str] = None
_SEED: int = 0


def _default_seed() -> int:
    raw = os.environ.get(FAULTS_SEED_ENV)
    if raw is None or not raw.strip():
        return 0
    try:
        return int(raw)
    except ValueError:
        return 0


def _load() -> Dict[str, _PointState]:
    global _STATE, _CONFIGURED, _SEED
    if _STATE is None:
        _CONFIGURED = os.environ.get(FAULTS_ENV) or None
        _SEED = _default_seed()
        specs = parse_faults(_CONFIGURED)
        _STATE = {name: _PointState(spec, _SEED) for name, spec in specs.items()}
    return _STATE


def configure_faults(plan: Optional[str], seed: int = 0) -> None:
    """Install a fault plan programmatically (overrides the environment).

    ``None``/empty disables every point.  Pool workers forked *after* the
    call inherit the plan; already-running workers keep their old state,
    so chaos tests shut the shared pools down before configuring.
    """
    global _STATE, _CONFIGURED, _SEED
    _CONFIGURED = plan or None
    _SEED = seed
    specs = parse_faults(plan)
    _STATE = {name: _PointState(spec, seed) for name, spec in specs.items()}


def reset_faults() -> None:
    """Drop any installed plan; the next hit reloads from the environment."""
    global _STATE, _CONFIGURED
    _STATE = None
    _CONFIGURED = None


def faults_active() -> bool:
    """Whether any fault point is configured in this process."""
    return bool(_load())


def fault_active(name: str) -> bool:
    """Whether the named point is configured (cheap wrap-or-not check)."""
    return name in _load()


def fault_point(name: str) -> None:
    """Fire the named injection point if the active plan targets it.

    No-op (one dict lookup) when no plan is configured or the plan does
    not name this point.
    """
    state = _load()
    if not state:
        return
    point = state.get(name)
    if point is None:
        return
    point.hits += 1
    spec = point.spec
    if spec.limit is not None and point.fired >= spec.limit:
        return
    if spec.mode != "delay" and spec.arg < 1.0 and point.rng.random() >= spec.arg:
        return
    point.fired += 1
    if spec.mode == "delay":
        time.sleep(spec.arg)
        return
    if spec.mode == "raise":
        raise FaultInjected(f"injected fault at {name!r}")
    # kill: only child processes die — the parent (daemon, serial
    # fallback, test process) treats a kill plan as survivable noise.
    if multiprocessing.parent_process() is not None:
        os.kill(os.getpid(), signal.SIGKILL)


def faults_snapshot() -> dict:
    """Plan + per-point hit/fire counters (metrics source, daemon stats)."""
    state = _load()
    return {
        "configured": _CONFIGURED,
        "seed": _SEED,
        "points": {
            name: {
                "mode": point.spec.mode,
                "arg": point.spec.arg,
                "limit": point.spec.limit,
                "hits": point.hits,
                "fired": point.fired,
            }
            for name, point in state.items()
        },
    }
