"""Generic SpTTN kernel construction and execution helpers."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.expr import SpTTNKernel, parse_kernel
from repro.core.scheduler import Schedule, SpTTNScheduler
from repro.engine.executor import LoopNestExecutor, TensorLike
from repro.sptensor.coo import COOTensor
from repro.sptensor.csf import CSFTensor
from repro.util.counters import OpCounter
from repro.util.validation import require

#: Index letters used for sparse modes, then dense (rank) modes.
_SPARSE_LETTERS = "ijklmnop"
_DENSE_LETTERS = "rstuvwab"


@dataclass
class KernelBuilder:
    """Incrementally builds the einsum specification of an SpTTN kernel.

    Example
    -------
    >>> kb = KernelBuilder(sparse_order=3)
    >>> kb.sparse_subscripts
    'ijk'
    """

    sparse_order: int

    def __post_init__(self) -> None:
        require(
            1 <= self.sparse_order <= len(_SPARSE_LETTERS),
            f"sparse tensor order must be in 1..{len(_SPARSE_LETTERS)}",
        )

    @property
    def sparse_subscripts(self) -> str:
        return _SPARSE_LETTERS[: self.sparse_order]

    def sparse_index(self, mode: int) -> str:
        require(0 <= mode < self.sparse_order, f"mode {mode} out of range")
        return _SPARSE_LETTERS[mode]

    def dense_index(self, position: int) -> str:
        require(
            0 <= position < len(_DENSE_LETTERS),
            f"too many dense indices (max {len(_DENSE_LETTERS)})",
        )
        return _DENSE_LETTERS[position]


def build_kernel(
    spec: str,
    tensors: Sequence[TensorLike],
    names: Optional[Sequence[str]] = None,
) -> Tuple[SpTTNKernel, Dict[str, TensorLike]]:
    """Parse a kernel and return it with its operand-name -> tensor mapping."""
    kernel = parse_kernel(spec, tensors, names=names)
    mapping = {op.name: t for op, t in zip(kernel.operands, tensors)}
    return kernel, mapping


def run_kernel(
    spec: str,
    tensors: Sequence[TensorLike],
    names: Optional[Sequence[str]] = None,
    schedule: Optional[Schedule] = None,
    buffer_dim_bound: Optional[int] = 2,
    counter: Optional[OpCounter] = None,
    offload: bool = True,
    engine: Optional[str] = None,
) -> Tuple[Union[np.ndarray, COOTensor], Schedule]:
    """Schedule (unless given) and execute a kernel; return (output, schedule)."""
    kernel, mapping = build_kernel(spec, tensors, names=names)
    if schedule is None:
        scheduler = SpTTNScheduler(kernel, buffer_dim_bound=buffer_dim_bound)
        schedule = scheduler.schedule()
    executor = LoopNestExecutor(
        kernel, schedule.loop_nest, offload=offload, counter=counter, engine=engine
    )
    return executor.execute(mapping), schedule


def sparse_order_of(tensor: TensorLike) -> int:
    if isinstance(tensor, (COOTensor, CSFTensor)):
        return tensor.order
    raise TypeError("expected a sparse tensor (COOTensor or CSFTensor)")
