"""Observability subsystem: tracer, metrics registry, export, plan timings.

The contracts under test:

* span nesting is correct within a thread, isolated across threads, and
  worker-process spans merge back into the parent with their own identity;
* disabled tracing is effectively free — the per-site cost extrapolated
  over a warm serving workload stays under the 2% acceptance bound;
* the metrics registry round-trips through the daemon's ``stats`` and
  ``metrics`` operations (JSON and Prometheus text) without disturbing the
  pre-existing stats schema;
* the exporter writes valid Chrome-trace JSON that covers every
  instrumented layer of a parallel daemon session;
* per-plan-signature timing records accumulate per executed plan.
"""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.engine.plan_cache import (
    clear_plan_timings,
    plan_timings_snapshot,
)
from repro.obs import (
    MetricsRegistry,
    Tracer,
    capture_spans,
    default_tracer,
    disable_tracing,
    drain_spans,
    enable_tracing,
    metrics_snapshot,
    prometheus_text,
    reset_metrics,
    span,
    trace_events,
    tracing_enabled,
    write_trace,
)
from repro.runtime import WorkerPool
from repro.serve import (
    ContractionService,
    ServeClient,
    scenario_mix,
    start_daemon_thread,
)
from repro.util.timing import Timer


@pytest.fixture(autouse=True)
def _clean_obs_state():
    """Every test starts and ends with tracing off and fresh buffers."""
    disable_tracing()
    default_tracer().reset()
    reset_metrics()
    clear_plan_timings()
    yield
    disable_tracing()
    default_tracer().reset()
    reset_metrics()
    clear_plan_timings()


# --------------------------------------------------------------------------- #
# Tracer core
# --------------------------------------------------------------------------- #
class TestTracer:
    def test_disabled_span_is_noop_singleton(self):
        assert not tracing_enabled()
        first = span("a", "cat")
        second = span("b", "other")
        assert first is second  # the shared null context manager
        with first:
            pass
        assert drain_spans() == []

    def test_records_name_category_attrs_and_duration(self):
        enable_tracing()
        with span("work", "layer", items=3):
            time.sleep(0.001)
        (recorded,) = drain_spans()
        assert recorded.name == "work"
        assert recorded.category == "layer"
        assert recorded.attrs == {"items": 3}
        assert recorded.duration_s >= 0.001
        assert recorded.parent_id is None

    def test_nesting_links_parent_ids(self):
        enable_tracing()
        with span("outer", "t"):
            with span("inner", "t"):
                pass
            with span("sibling", "t"):
                pass
        by_name = {s.name: s for s in drain_spans()}
        assert by_name["inner"].parent_id == by_name["outer"].span_id
        assert by_name["sibling"].parent_id == by_name["outer"].span_id
        assert by_name["outer"].parent_id is None

    def test_nesting_is_isolated_across_threads(self):
        enable_tracing()
        barrier = threading.Barrier(2)

        def worker(label: str) -> None:
            with span(f"outer-{label}", "t"):
                barrier.wait(5.0)  # both outers open simultaneously
                with span(f"inner-{label}", "t"):
                    pass

        threads = [
            threading.Thread(target=worker, args=(label,)) for label in ("a", "b")
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        by_name = {s.name: s for s in drain_spans()}
        assert len(by_name) == 4
        for label in ("a", "b"):
            inner, outer = by_name[f"inner-{label}"], by_name[f"outer-{label}"]
            assert inner.parent_id == outer.span_id
            assert inner.tid == outer.tid
        assert by_name["outer-a"].tid != by_name["outer-b"].tid

    def test_capture_spans_redirects_and_forces(self):
        assert not tracing_enabled()
        with capture_spans(force=True) as captured:
            with span("forced", "t"):
                pass
        assert not tracing_enabled()  # force is scoped to the context
        assert [s.name for s in captured] == ["forced"]
        assert drain_spans() == []  # nothing leaked into the buffer

    def test_buffer_is_bounded(self):
        tracer = Tracer(enabled=True, max_spans=4)
        for i in range(8):
            with tracer.span("s", "t"):
                pass
        assert len(tracer.drain()) == 4
        assert tracer.dropped == 4

    def test_stats_accumulate_sections(self):
        enable_tracing()
        for _ in range(3):
            with span("step", "phase"):
                pass
        stats = default_tracer().stats()
        assert stats["enabled"] is True
        assert stats["sections"]["phase.step"]["calls"] == 3


class TestPoolSpanMerge:
    def test_worker_spans_ship_back_with_results(self):
        enable_tracing()
        with WorkerPool(workers=2) as pool:
            results = pool.map(_square, list(range(6)))
        assert results == [n * n for n in range(6)]
        spans = drain_spans()
        names = {(s.category, s.name) for s in spans}
        assert ("pool", "map") in names
        assert ("pool", "task") in names
        tasks = [s for s in spans if s.name == "task"]
        assert len(tasks) == 6
        # worker identity survives the merge: tasks ran in forked processes
        # (or, on the serial fallback, in this one — either way pid is set)
        assert all(s.pid > 0 for s in tasks)

    def test_serial_map_records_no_pool_wrapper_overhead_when_disabled(self):
        assert not tracing_enabled()
        with WorkerPool(workers=2) as pool:
            assert pool.map(_square, [1, 2, 3]) == [1, 4, 9]
        assert drain_spans() == []


def _square(n: int) -> int:
    return n * n


# --------------------------------------------------------------------------- #
# Overhead guard
# --------------------------------------------------------------------------- #
def test_disabled_tracing_overhead_under_two_percent():
    """Extrapolated cost of disabled instrumentation sites stays <2%.

    Measures the per-call cost of a disabled :func:`span` site, counts how
    many sites one warm serving workload actually crosses (by running it
    once with tracing on), and asserts per-call cost x site count is under
    2% of the workload's warm serving time.  This bounds the disabled
    overhead without the noise of differencing two end-to-end timings.
    """
    assert not tracing_enabled()
    requests = scenario_mix(8, seed=5)
    service = ContractionService(workers=0)
    service.run(requests)  # warm every cache

    start = time.perf_counter()
    service.run(requests)
    warm_s = time.perf_counter() - start

    enable_tracing()
    service.run(requests)
    span_count = len(drain_spans())
    disable_tracing()
    assert span_count > 0

    calls = 100_000
    start = time.perf_counter()
    for _ in range(calls):
        with span("probe", "overhead"):
            pass
    per_call_s = (time.perf_counter() - start) / calls

    assert per_call_s * span_count < 0.02 * warm_s, (
        f"disabled tracing would cost {per_call_s * span_count * 1e6:.1f}us "
        f"across {span_count} sites vs warm workload {warm_s * 1e3:.1f}ms"
    )


# --------------------------------------------------------------------------- #
# Metrics registry
# --------------------------------------------------------------------------- #
class TestMetrics:
    def test_counter_gauge_histogram_snapshot(self):
        registry = MetricsRegistry()
        registry.counter("hits").inc()
        registry.counter("hits").inc(2)
        registry.gauge("depth").set(7)
        hist = registry.histogram("latency", buckets=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(0.5)
        hist.observe(5.0)
        snap = registry.snapshot()
        assert snap["counters"]["hits"] == 3
        assert snap["gauges"]["depth"] == 7
        latency = snap["histograms"]["latency"]
        assert latency["count"] == 3
        assert latency["sum"] == pytest.approx(5.55)
        assert latency["buckets"] == [[0.1, 1], [1.0, 2]]

    def test_sources_are_lazily_snapshotted(self):
        registry = MetricsRegistry()
        registry.register_source("layer", lambda: {"value": 42})
        snap = registry.snapshot()
        assert snap["sources"]["layer"] == {"value": 42}
        assert "sources" not in registry.snapshot(include_sources=False)

    def test_broken_source_is_isolated(self):
        registry = MetricsRegistry()

        def boom():
            raise RuntimeError("kaput")

        registry.register_source("bad", boom)
        registry.register_source("good", lambda: 1)
        snap = registry.snapshot()
        assert snap["sources"]["good"] == 1
        assert "kaput" in snap["sources"]["bad"]["error"]

    def test_prometheus_text_format(self):
        registry = MetricsRegistry()
        registry.counter("serve.served").inc(5)
        registry.gauge("queue.depth").set(2)
        registry.histogram("serve.flush", buckets=(0.5,)).observe(0.1)
        text = prometheus_text(registry=registry, prefix="repro")
        assert "# TYPE repro_serve_served_total counter" in text
        assert "repro_serve_served_total 5" in text
        assert "repro_queue_depth 2" in text
        assert 'repro_serve_flush_seconds_bucket{le="0.5"} 1' in text
        assert 'repro_serve_flush_seconds_bucket{le="+Inf"} 1' in text
        assert "repro_serve_flush_seconds_count 1" in text

    def test_service_populates_default_registry(self):
        service = ContractionService(workers=0)
        service.run(scenario_mix(4, seed=2))
        snap = metrics_snapshot()
        assert snap["counters"]["serve.served"] == 4
        assert snap["counters"]["serve.flushes"] == 1
        for stage in ("queue_wait", "schedule", "build", "execute", "reduce"):
            assert snap["histograms"][f"serve.stage.{stage}"]["count"] == 4
        # producer-registered sources embed the cache and pool views
        assert set(snap["sources"]) >= {"caches", "plan_timings", "pool"}


# --------------------------------------------------------------------------- #
# Plan timings
# --------------------------------------------------------------------------- #
def test_plan_timings_record_per_signature(ttmc_setup):
    from repro.core.scheduler import SpTTNScheduler
    from repro.engine.executor import LoopNestExecutor

    kernel, tensors = ttmc_setup
    nest = SpTTNScheduler(kernel).schedule().loop_nest
    executor = LoopNestExecutor(kernel, nest)
    for _ in range(3):
        executor.execute(tensors)
    rows = plan_timings_snapshot()
    # one plan signature, two phases: cold-call preparation (CSF
    # conversion, plan build, JIT) and steady-state execution
    assert len(rows) == 2
    assert {row["phase"] for row in rows} == {"prepare", "execute"}
    assert len({row["digest"] for row in rows}) == 1
    for row in rows:
        assert row["count"] == 3
        assert row["total_s"] >= row["min_s"] * 3 - 1e-9
        assert row["mean_s"] == pytest.approx(row["total_s"] / 3)
        assert row["max_s"] >= row["mean_s"] - 1e-12
        assert "ijk,jr,ks->irs" in row["plan"]
        assert len(row["digest"]) == 16  # blake2s, 8 bytes hex


# --------------------------------------------------------------------------- #
# Chrome-trace export
# --------------------------------------------------------------------------- #
class TestExport:
    def test_written_file_is_valid_chrome_trace(self, tmp_path):
        enable_tracing()
        with span("outer", "t", detail="x"):
            with span("inner", "t"):
                pass
        path = write_trace(tmp_path / "out.json")
        doc = json.loads(path.read_text())
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        events = doc["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        meta = [e for e in events if e["ph"] == "M"]
        assert len(complete) == 2 and len(meta) == 1
        for event in complete:
            assert {"name", "cat", "ph", "ts", "dur", "pid", "tid"} <= set(event)
            assert event["dur"] > 0
        outer = next(e for e in complete if e["name"] == "outer")
        inner = next(e for e in complete if e["name"] == "inner")
        assert outer["args"] == {"detail": "x"}
        # the outer interval contains the inner one on the timeline
        assert outer["ts"] <= inner["ts"]
        assert outer["ts"] + outer["dur"] >= inner["ts"] + inner["dur"]

    def test_non_json_attrs_are_stringified(self):
        enable_tracing()
        with span("s", "t", obj=object()):
            pass
        (event,) = [e for e in trace_events(drain_spans()) if e["ph"] == "X"]
        assert isinstance(event["args"]["obj"], str)


# --------------------------------------------------------------------------- #
# Daemon integration
# --------------------------------------------------------------------------- #
class TestDaemonObservability:
    def test_stats_carries_metrics_and_plan_timings(self):
        requests = scenario_mix(4, mix="mttkrp", seed=1)
        with start_daemon_thread(workers=0) as handle:
            with ServeClient(*handle.address, timeout=30) as client:
                client.run(requests)
                stats = client.stats()
        # the pre-existing schema is untouched; the new keys are top-level
        assert set(stats["caches"]) == {"plan", "schedule", "executor", "jit"}
        assert stats["metrics"]["counters"]["serve.served"] == 4
        assert "sources" not in stats["metrics"]  # already top-level keys
        assert len(stats["plan_timings"]) >= 1
        assert stats["plan_timings"][0]["count"] >= 1

    def test_metrics_op_json_and_prometheus(self):
        with start_daemon_thread(workers=0) as handle:
            with ServeClient(*handle.address, timeout=30) as client:
                client.run(scenario_mix(2, mix="mttkrp", seed=2))
                snap = client.metrics()
                text = client.metrics(format="prometheus")
        assert snap["counters"]["serve.served"] == 2
        assert set(snap["sources"]) >= {"caches", "plan_timings", "pool"}
        assert isinstance(text, str)
        assert "repro_serve_served_total 2" in text

    def test_replies_carry_stage_timings(self):
        from repro.serve.service import STAGES

        with start_daemon_thread(workers=0) as handle:
            with ServeClient(*handle.address, timeout=30) as client:
                pending = client.submit_many(scenario_mix(3, mix="ttmc", seed=3))
                for reply in pending:
                    reply.result()
                    assert reply.timings is not None
                    assert set(reply.timings) == set(STAGES)
                    assert all(v >= 0.0 for v in reply.timings.values())

    def test_trace_dir_session_covers_all_layers(self, tmp_path):
        # one kernel family -> repeated plan signatures -> the parallel
        # dispatch path engages and pool workers record task spans
        requests = scenario_mix(8, mix="mttkrp", seed=3)
        with start_daemon_thread(workers=2, trace_dir=tmp_path) as handle:
            with ServeClient(*handle.address, timeout=60) as client:
                daemon_outputs = client.run(requests)
                client.shutdown_server()
        port = handle.address[1]
        path = tmp_path / f"trace-daemon-{port}.json"
        assert path.exists()  # written before the daemon thread joined
        doc = json.loads(path.read_text())
        events = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        categories = {e["cat"] for e in events}
        # the acceptance criterion: spans from scheduler, plan cache, VM,
        # pool workers and the daemon itself, in one loadable trace
        assert {"scheduler", "cache", "vm", "pool", "daemon", "serve"} <= categories
        own_pid = {e["pid"] for e in events if e["cat"] == "daemon"}
        task_pids = {
            e["pid"] for e in events if e["cat"] == "pool" and e["name"] == "task"
        }
        assert task_pids - own_pid, "pool task spans must come from workers"
        assert len(daemon_outputs) == len(requests)
        # a fresh daemon session starts a fresh trace: tracing was enabled
        # by the constructor, then the shutdown path drained the buffer
        assert drain_spans() == []


# --------------------------------------------------------------------------- #
# Timer (the tracer's accumulation primitive)
# --------------------------------------------------------------------------- #
def test_timer_accumulates_concurrently():
    timer = Timer()
    n_threads, n_adds = 4, 1000

    def hammer():
        for _ in range(n_adds):
            timer.add("section", 0.001)

    threads = [threading.Thread(target=hammer) for _ in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    snap = timer.snapshot()
    assert snap["section"]["calls"] == n_threads * n_adds
    assert snap["section"]["total_s"] == pytest.approx(
        n_threads * n_adds * 0.001
    )
