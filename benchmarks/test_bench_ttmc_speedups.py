"""E2 — Section 7 TTMc comparison: SpTTN-Cyclops vs TACO / SparseLNR / CTF.

The paper reports order-of-magnitude speedups for TTMc: 29.3x / 110.5x over
TACO / SparseLNR on nell-2, 125.9x / 4x on vast-3d, and 0.8x-12.6x over CTF,
because the fused schedule removes the ``R x S`` (or ``R x S x T``) factor
from the per-nonzero work.

Expected shape: ``spttn-cyclops`` is the fastest generalized system on every
dataset for both order-3 and order-4 TTMc, with the TACO gap much larger
than it was for MTTKRP.
"""

from __future__ import annotations

import pytest

from repro.frameworks import (
    CTFLikeBaseline,
    SparseLNRLikeBaseline,
    SpTTNCyclopsBaseline,
    TacoLikeBaseline,
)
from repro.kernels.ttmc import ttmc_kernel
from repro.sptensor import random_dense_matrix, random_sparse_tensor

from _workloads import TTMC_RANK, factor_matrices, preset_tensor

FRAMEWORKS = {
    "spttn-cyclops": SpTTNCyclopsBaseline,
    "taco-unfactorized": TacoLikeBaseline,
    "sparselnr": SparseLNRLikeBaseline,
    "ctf-pairwise": CTFLikeBaseline,
}

ORDER3_DATASETS = ("nell-2", "vast-3d")


def _order3_setup(dataset: str):
    tensor = preset_tensor(dataset)
    factors = factor_matrices(tensor, TTMC_RANK, seed=2)
    return ttmc_kernel(tensor, factors, mode=0)


def _order4_setup():
    tensor = random_sparse_tensor((22, 20, 18, 16), nnz=2500, seed=5)
    factors = [
        random_dense_matrix(dim, 8, seed=10 + mode)
        for mode, dim in enumerate(tensor.shape)
    ]
    return ttmc_kernel(tensor, factors, mode=0)


@pytest.mark.parametrize("dataset", ORDER3_DATASETS)
@pytest.mark.parametrize("framework", list(FRAMEWORKS))
def test_ttmc_order3(benchmark, dataset, framework):
    kernel, tensors = _order3_setup(dataset)
    baseline = FRAMEWORKS[framework]()
    if isinstance(baseline, SpTTNCyclopsBaseline):
        baseline.schedule_for(kernel)
    benchmark.extra_info.update(
        dataset=dataset,
        framework=framework,
        kernel="ttmc-order3",
        rank=TTMC_RANK,
        nnz=tensors[kernel.sparse_operand.name].nnz,
    )
    result = benchmark.pedantic(
        lambda: baseline.run(kernel, tensors), rounds=3, iterations=1, warmup_rounds=1
    )
    benchmark.extra_info["flops"] = result.counter.flops


@pytest.mark.parametrize("framework", list(FRAMEWORKS))
def test_ttmc_order4(benchmark, framework):
    kernel, tensors = _order4_setup()
    baseline = FRAMEWORKS[framework]()
    if isinstance(baseline, SpTTNCyclopsBaseline):
        baseline.schedule_for(kernel)
    benchmark.extra_info.update(
        dataset="synthetic-order4",
        framework=framework,
        kernel="ttmc-order4",
        nnz=tensors[kernel.sparse_operand.name].nnz,
    )
    result = benchmark.pedantic(
        lambda: baseline.run(kernel, tensors), rounds=2, iterations=1, warmup_rounds=1
    )
    benchmark.extra_info["flops"] = result.counter.flops


@pytest.mark.smoke
def test_ttmc_smoke(benchmark):
    """Tiny CI case: the paper's system on the order-3 TTMc workload."""
    kernel, tensors = _order3_setup("nell-2")
    baseline = SpTTNCyclopsBaseline()
    baseline.schedule_for(kernel)
    result = benchmark.pedantic(
        lambda: baseline.run(kernel, tensors), rounds=1, iterations=1
    )
    assert result.counter.flops > 0
