"""Virtual-rank distributed execution of SpTTN kernels.

:class:`DistributedSpTTN` drives the Section 5.2 algorithm on virtual
processes:

1. partition the sparse tensor cyclically over a processor grid;
2. replicate/partition the dense operands (communication volume recorded);
3. run the *same* scheduled loop nest on every rank's local sparse tensor;
4. reduce the output (rank-order sum of the per-rank partial outputs for
   dense outputs, tree-structured disjoint union for sparse-pattern
   outputs).

Execution runs on the shared parallel runtime of :mod:`repro.runtime` in
three tiers:

* **serial virtual ranks** — ``execute(n_procs)`` with the worker count
  resolving to one runs every rank in this process through a single cached
  executor (one :class:`~repro.engine.plan_cache.CompiledPlan` for the
  whole sweep, via :func:`~repro.engine.plan_cache.cached_executor`);
* **shared-memory parallel ranks** — with ``workers > 1`` (or
  ``REPRO_WORKERS`` set) the ranks fan out over the persistent worker
  pool: the dense operands are broadcast once through
  ``multiprocessing.shared_memory`` (zero per-task pickling of factor
  data), each task ships only its rank's local sparse tensor, and every
  worker process compiles the plan once and binds it per rank.  The
  order-preserving map plus the fixed reduction order (rank-order sums for
  dense outputs, a log-depth concatenation tree for disjoint sparse
  outputs) make the result bit-identical to the serial tier;
* **analytic simulation** — :meth:`simulate` estimates the parallel runtime
  for a process count from one measured single-rank execution, the
  per-rank nonzero counts (load imbalance is respected) and the alpha-beta
  communication model — this is what the Figure 8 strong-scaling
  benchmarks sweep, now checkable against the measured parallel tier.
"""

from __future__ import annotations

import time
import weakref
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Union

import numpy as np

from repro.core.expr import SpTTNKernel
from repro.core.loop_nest import LoopNest
from repro.core.scheduler import Schedule
from repro.distributed.comm_model import AlphaBetaModel
from repro.distributed.distribution import CyclicDistribution, partition_sparse_tensor
from repro.distributed.grid import ProcessorGrid
from repro.engine.executor import TensorLike
from repro.engine.plan_cache import cached_executor, cached_schedule
from repro.runtime import attach, parallel_map, publish, resolve_workers, tree_reduce
from repro.sptensor.coo import COOTensor
from repro.sptensor.csf import CSFTensor
from repro.sptensor.dense import DenseTensor
from repro.util.validation import require

Output = Union[np.ndarray, COOTensor]


class _RankTask:
    """Picklable per-rank execution task for the worker pool.

    The task carries only structure (kernel, loop nest, engine) plus
    shared-memory handles for the dense operands; the per-task argument is
    the rank's local sparse tensor.  Workers resolve the executor through
    :func:`~repro.engine.plan_cache.cached_executor`, so symbolic
    preprocessing (and the lowering compile) happens once per kernel
    structure per worker process — not once per rank, and not once per
    repeat.
    """

    def __init__(
        self,
        kernel: SpTTNKernel,
        loop_nest: LoopNest,
        handles: Mapping[str, object],
        engine: Optional[str],
    ) -> None:
        self.kernel = kernel
        self.loop_nest = loop_nest
        self.handles = dict(handles)
        self.engine = engine

    def __call__(self, local: COOTensor) -> Output:
        tensors: Dict[str, TensorLike] = {
            self.kernel.sparse_operand.name: local
        }
        for name, handle in self.handles.items():
            tensors[name] = attach(handle)
        executor = cached_executor(self.kernel, self.loop_nest, engine=self.engine)
        return executor.execute(tensors)


@dataclass
class SimulatedRun:
    """Breakdown of one simulated distributed execution."""

    processes: int
    grid_dims: Sequence[int]
    compute_seconds: float
    communication_seconds: float
    load_imbalance: float
    max_local_nnz: int
    broadcast_elements: int
    reduction_elements: int

    @property
    def total_seconds(self) -> float:
        return self.compute_seconds + self.communication_seconds

    def speedup_over(self, single: "SimulatedRun") -> float:
        if self.total_seconds <= 0:
            return float("inf")
        return single.total_seconds / self.total_seconds


@dataclass
class DistributedSpTTN:
    """Distributed execution / simulation of one SpTTN kernel.

    Operands are treated as immutable for the instance's lifetime (the
    partition and the shared-memory operand broadcast are built once and
    reused across :meth:`execute` calls); construct a new instance to run
    with different tensor values.
    """

    kernel: SpTTNKernel
    tensors: Mapping[str, TensorLike]
    schedule: Optional[Schedule] = None
    comm_model: AlphaBetaModel = field(default_factory=AlphaBetaModel)
    #: effective scalar throughput (multiply-adds per second) assumed for a
    #: single process when converting operation counts to time in simulate();
    #: only the relative compute/communication balance matters for scaling.
    flop_rate: float = 2.0e9
    #: execution engine forwarded to the per-rank executors (``None`` =
    #: the ``REPRO_ENGINE`` process default).
    engine: Optional[str] = None
    #: default worker count for :meth:`execute` (``None`` = the
    #: ``REPRO_WORKERS`` process default, ``0`` = serial, ``-1`` = one per
    #: CPU).
    workers: Optional[int] = None

    def __post_init__(self) -> None:
        if self.schedule is None:
            # Schedule search is amortized process-wide: structurally
            # identical kernels reuse one Schedule.
            self.schedule = cached_schedule(self.kernel)
        self._sparse = self._sparse_coo()
        self._single_rank_seconds: Optional[float] = None
        #: most recent (grid dims, per-rank locals): repeated executions on
        #: one process count (timed repeats, ALS-style sweeps) skip
        #: re-partitioning and reuse the same local tensor objects, so the
        #: per-tensor CSF conversion memo hits across calls in-process.
        self._partition: Optional[tuple] = None
        #: shared-memory broadcast of the dense operands, published on the
        #: first parallel execution and reused for the instance's lifetime
        #: (operands are treated as immutable); segments are unlinked when
        #: the instance is garbage-collected.
        self._broadcast = None

    # ------------------------------------------------------------------ #
    def _sparse_coo(self) -> COOTensor:
        value = self.tensors[self.kernel.sparse_operand.name]
        if isinstance(value, CSFTensor):
            return value.to_coo()
        require(isinstance(value, COOTensor), "sparse operand must be COO or CSF")
        return value

    def grid_for(self, n_procs: int) -> ProcessorGrid:
        mode_sizes = [
            self.kernel.index_dims[i] for i in self.kernel.sparse_operand.indices
        ]
        return ProcessorGrid.for_tensor(n_procs, mode_sizes)

    def _resolved_engine(self) -> str:
        """The engine both tiers run, resolved in the parent process.

        Resolving ``engine=None`` here (rather than inside each pool
        worker) matters because forked workers snapshot the environment:
        a later ``REPRO_ENGINE`` change would otherwise split the serial
        and parallel tiers onto different engines, breaking their
        bit-identity.
        """
        from repro.engine.executor import default_engine

        return default_engine() if self.engine is None else self.engine

    def _rank_executor(self):
        """The (process-wide cached) executor all virtual ranks share."""
        return cached_executor(
            self.kernel, self.schedule.loop_nest, engine=self._resolved_engine()
        )

    def _dense_arrays(self) -> Dict[str, np.ndarray]:
        """The dense operands as float64 arrays (what executors consume)."""
        out: Dict[str, np.ndarray] = {}
        for op in self.kernel.dense_operands:
            value = self.tensors[op.name]
            arr = value.data if isinstance(value, DenseTensor) else value
            out[op.name] = np.asarray(arr, dtype=np.float64)
        return out

    # ------------------------------------------------------------------ #
    # Exact execution over virtual ranks
    # ------------------------------------------------------------------ #
    def execute(self, n_procs: int, workers: Optional[int] = None) -> Output:
        """Run every virtual rank's local kernel and reduce the results.

        *workers* selects the runtime tier: a count resolving to one (the
        default when neither the ``workers`` field nor ``REPRO_WORKERS`` is
        set) runs the ranks serially in this process; more workers fan the
        ranks out over the shared persistent pool with the dense operands
        broadcast through shared memory.  Both tiers produce bit-identical
        results: partials arrive in rank order from the order-preserving
        map and are combined by :meth:`_reduce` in a fixed order that
        depends only on the rank count.

        Examples
        --------
        >>> dist = DistributedSpTTN(kernel, tensors)
        >>> out = dist.execute(16)                # serial virtual ranks
        >>> np.array_equal(out, dist.execute(16, workers=4))
        True
        """
        grid = self.grid_for(n_procs)
        if self._partition is None or self._partition[0] != grid.dims:
            self._partition = (
                grid.dims,
                partition_sparse_tensor(self._sparse, grid),
            )
        active = [local for local in self._partition[1] if local.nnz > 0]
        n_workers = resolve_workers(self.workers if workers is None else workers)
        if n_workers > 1 and len(active) > 1:
            partials = self._execute_parallel(active, n_workers)
        else:
            partials = self._execute_serial(active)
        return self._reduce(partials)

    def _execute_serial(self, active: List[COOTensor]) -> List[Output]:
        executor = self._rank_executor()
        partials: List[Output] = []
        for local in active:
            local_tensors = dict(self.tensors)
            local_tensors[self.kernel.sparse_operand.name] = local
            partials.append(executor.execute(local_tensors))
        return partials

    def _operand_broadcast(self):
        """Publish the dense operands once per instance.

        Repeated parallel executions (timed repeats, per-count sweeps)
        reuse the same shared-memory segments, so each pool worker attaches
        each operand set once — the zero-copy broadcast is paid per
        instance, not per call.
        """
        if self._broadcast is None:
            broadcast = publish(self._dense_arrays())
            weakref.finalize(self, broadcast.close)
            self._broadcast = broadcast
        return self._broadcast

    def _execute_parallel(
        self, active: List[COOTensor], n_workers: int
    ) -> List[Output]:
        task = _RankTask(
            self.kernel,
            self.schedule.loop_nest,
            self._operand_broadcast().handles,
            self._resolved_engine(),
        )
        return parallel_map(task, active, workers=n_workers)

    def _reduce(self, partials: List[Output]) -> Output:
        """Combine the rank-ordered partials into the kernel output.

        Sparse-pattern outputs have disjoint per-rank nonzero sets, so
        their reduction — concatenation — is exactly associative and runs
        as a log-depth binary tree (the recursive-halving shape of a real
        distributed reduce) that is bit-identical to the sequential
        concatenation.  Dense outputs are floating-point *sums*, where
        combine order changes low-order bits; they accumulate in fixed
        rank order, the unique order bit-compatible with the single-process
        semantics this runtime has always had.  Partials arrive rank-ordered
        from the order-preserving map either way, so serial and parallel
        tiers agree to the last bit.
        """
        if self.kernel.output.is_sparse:
            if not partials:
                return COOTensor.empty(self._sparse.shape)
            # Tree nodes merge *lists of array references* (cheap pointer
            # concatenation); the data itself is copied exactly once at the
            # root, matching the one-shot cost of the old sequential concat.
            coords_parts, values_parts = tree_reduce(
                [([p.indices], [p.values]) for p in partials],  # type: ignore[union-attr]
                lambda a, b: (a[0] + b[0], a[1] + b[1]),
            )
            return COOTensor(
                self._sparse.shape,
                np.vstack(coords_parts),
                np.concatenate(values_parts),
                sort=True,
            )
        shape = tuple(
            self.kernel.index_dims[i] for i in self.kernel.output.indices
        )
        total = np.zeros(shape if shape else (), dtype=np.float64)
        for p in partials:
            total += np.asarray(p)
        return total

    # ------------------------------------------------------------------ #
    # Runtime estimation (strong scaling)
    # ------------------------------------------------------------------ #
    def measure_single_rank(self, repeats: int = 1) -> float:
        """Measure (and cache) the single-process execution time.

        The executor (and through it the compiled plan and its lowering)
        is resolved once and reused across repeats; one untimed warmup
        execution keeps one-time process state (plan compilation, the
        memoized CSF conversion) out of the measurement.
        """
        if self._single_rank_seconds is None:
            executor = self._rank_executor()
            tensors = dict(self.tensors)
            executor.execute(tensors)  # warmup: compile/bind once, untimed
            best = float("inf")
            for _ in range(max(1, repeats)):
                start = time.perf_counter()
                executor.execute(tensors)
                best = min(best, time.perf_counter() - start)
            self._single_rank_seconds = best
        return self._single_rank_seconds

    def measure_execute(
        self,
        n_procs: int,
        workers: Optional[int] = None,
        repeats: int = 1,
        warmup: bool = True,
    ) -> float:
        """Wall-clock seconds of :meth:`execute` (min over *repeats*).

        ``warmup=True`` performs one untimed execution first so one-time
        costs — plan compilation, pool start-up, partitioning (cached per
        grid) and the serial tier's memoized CSF conversions — are not
        charged to the measurement.  Pool workers receive freshly unpickled
        local tensors each call, so the parallel tier's per-rank CSF
        analysis stays inside the measurement, as the scatter cost would in
        a real distributed run.
        """
        require(repeats >= 1, "repeats must be >= 1")
        if warmup:
            self.execute(n_procs, workers=workers)
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            self.execute(n_procs, workers=workers)
            best = min(best, time.perf_counter() - start)
        return best

    def simulate(self, n_procs: int, measure: bool = True) -> SimulatedRun:
        """Estimate the parallel runtime on *n_procs* virtual processes.

        ``measure=True`` (default) anchors the compute term to one measured
        single-rank execution and scales it by the most-loaded rank's share
        of the nonzeros; ``measure=False`` instead derives the compute term
        from the schedule's estimated operation count and :attr:`flop_rate`
        (fully analytic, used when the tensor is too large to execute).
        """
        require(n_procs >= 1, "n_procs must be positive")
        grid = self.grid_for(n_procs)
        plan = CyclicDistribution.plan(self.kernel, grid)
        local_nnz = plan.local_nnz(self._sparse)
        total_nnz = max(1, self._sparse.nnz)
        max_local = int(local_nnz.max()) if local_nnz.size else 0

        if measure:
            single = self.measure_single_rank()
            compute = single * (max_local / total_nnz) if total_nnz else 0.0
        else:
            flops = self.schedule.flop_estimate
            compute = (flops / self.flop_rate) * (max_local / total_nnz)

        comm = 0.0
        if n_procs > 1:
            for placement in plan.dense_placements:
                comm += self.comm_model.broadcast(
                    placement.broadcast_elements, n_procs
                ).total
            comm += self.comm_model.reduce(
                plan.output_reduction_elements, n_procs
            ).total
            # per-iteration latency floor: every rank participates in the
            # setup and reduction collectives
            comm += self.comm_model.alpha * np.log2(max(2, n_procs))

        return SimulatedRun(
            processes=n_procs,
            grid_dims=grid.dims,
            compute_seconds=float(compute),
            communication_seconds=float(comm),
            load_imbalance=plan.load_imbalance(self._sparse),
            max_local_nnz=max_local,
            broadcast_elements=plan.total_broadcast_elements(),
            reduction_elements=plan.output_reduction_elements,
        )
