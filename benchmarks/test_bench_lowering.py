"""Lowered vs interpreted execution: the general vectorized lowering tier.

PR 1 vectorized one idiom (the fused MTTKRP sweep); the lowering subsystem
(:mod:`repro.engine.lowering`) generalizes it to every lowerable scheduled
loop nest.  This module measures that tier directly: the same scheduled
nest executed by the interpreter and by the lowered engine, for the TTMc
and TTTc workloads whose fused schedules the paper's evaluation features
(complementing the fig7 MTTKRP numbers, whose fast path now also goes
through the general lowering).

Expected shape: the lowered engine wins by a growing factor as nnz rises —
per-fiber Python dispatch costs O(nnz) interpreter steps while the lowered
program runs O(loop-nest-size) NumPy ops — with >= 2x on the TTMc smoke
workload and an order of magnitude on deeper nests (TTTc).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core.expr import parse_kernel
from repro.core.scheduler import SpTTNScheduler
from repro.engine.executor import LoopNestExecutor
from repro.kernels.tttc import tt_core_shapes, tttc_kernel
from repro.sptensor import DenseTensor, random_dense_matrix, random_sparse_tensor

from _workloads import TTMC_RANK, record_rows

REPEATS = 5


def _ttmc_case(shape=(300, 250, 200), nnz=20000, rank=TTMC_RANK, seed=1):
    tensor = random_sparse_tensor(shape, nnz=nnz, seed=seed)
    u = random_dense_matrix(shape[1], rank, seed=seed + 1, name="U")
    v = random_dense_matrix(shape[2], rank, seed=seed + 2, name="V")
    kernel = parse_kernel("ijk,jr,ks->irs", [tensor, u, v], names=["T", "U", "V"])
    return kernel, {"T": tensor, "U": u, "V": v}


def _tttc_case(order=6, dim=14, nnz=4000, rank=8, seed=3):
    tensor = random_sparse_tensor(tuple(dim for _ in range(order)), nnz=nnz, seed=seed)
    rng = np.random.default_rng(seed + 1)
    cores = [
        DenseTensor(rng.random(shape), name=f"G{i}")
        for i, shape in enumerate(tt_core_shapes(tensor.shape, rank))
    ]
    return tttc_kernel(tensor, cores, removed_core=order - 1)


def _best_time(executor, tensors, repeats=REPEATS):
    executor.execute(tensors)  # warm the cached plan (and lowered program)
    best = np.inf
    for _ in range(repeats):
        start = time.perf_counter()
        executor.execute(tensors)
        best = min(best, time.perf_counter() - start)
    return best


def _engine_times(kernel, tensors, repeats=REPEATS):
    times = {}
    for engine in ("lowered", "interpret"):
        executor = LoopNestExecutor(
            kernel, SpTTNScheduler(kernel).schedule().loop_nest, engine=engine
        )
        times[engine] = _best_time(executor, tensors, repeats=repeats)
        assert executor.last_engine == engine
    return times


@pytest.mark.parametrize("engine", ["lowered", "interpret"])
def test_ttmc_engines(benchmark, engine):
    kernel, tensors = _ttmc_case()
    executor = LoopNestExecutor(
        kernel, SpTTNScheduler(kernel).schedule().loop_nest, engine=engine
    )
    executor.execute(tensors)  # warm plan
    benchmark.extra_info.update(engine=engine, kernel="ttmc", rank=TTMC_RANK)
    benchmark.pedantic(lambda: executor.execute(tensors), rounds=3, iterations=1)
    assert executor.last_engine == engine


@pytest.mark.smoke
def test_lowering_speedup_smoke(benchmark):
    """Lowered TTMc/TTTc vs the interpreter on one small workload each.

    The acceptance bar: >= 2x on TTMc (measured ~3-4x even at this scale;
    TTTc lands an order of magnitude ahead)."""
    ttmc_kernel_, ttmc_tensors = _ttmc_case(shape=(120, 100, 80), nnz=6000)
    tttc_kernel_, tttc_tensors = _tttc_case(dim=12, nnz=1500)

    def measure():
        return {
            "ttmc": _engine_times(ttmc_kernel_, ttmc_tensors),
            "tttc": _engine_times(tttc_kernel_, tttc_tensors),
        }

    times = benchmark.pedantic(measure, rounds=1, iterations=1)
    rows = [
        {
            "kernel": name,
            "lowered_ms": engine_times["lowered"] * 1e3,
            "interpret_ms": engine_times["interpret"] * 1e3,
            "speedup": engine_times["interpret"] / engine_times["lowered"],
        }
        for name, engine_times in times.items()
    ]
    record_rows(benchmark, rows)
    speedups = {row["kernel"]: row["speedup"] for row in rows}
    benchmark.extra_info["speedups"] = speedups
    assert speedups["ttmc"] >= 2.0
    assert speedups["tttc"] >= 2.0
