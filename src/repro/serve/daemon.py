"""Network-facing asyncio daemon fronting the batched contraction service.

:class:`ServeDaemon` turns the in-process :class:`~repro.serve.ContractionService`
into a long-running TCP server speaking the newline-delimited JSON protocol
of :mod:`repro.serve.protocol` (see ``docs/PROTOCOL.md``).  The event loop
owns connections and admission; contraction work runs off-loop so the
daemon keeps accepting, answering ``stats`` and applying backpressure while
a batch executes:

* **admission with backpressure** — every ``submit`` is validated (the
  request's spec is parsed against its operands) and counted against the
  service's ``max_pending`` bound *at receipt*; a full queue or an invalid
  request raises :class:`~repro.serve.AdmissionError` internally and is
  answered with a structured ``admission`` error reply, exactly mirroring
  in-process :meth:`~repro.serve.ContractionService.submit`;
* **per-client fairness** — admitted requests queue per connection and a
  single dispatch task drains them round-robin (rotating the starting
  client every cycle) with a per-client in-flight quota, so one chatty
  client cannot starve the rest;
* **batching across clients** — each dispatch cycle submits its drained
  requests to the shared :class:`~repro.serve.ContractionService` and
  flushes once, so requests from *different* connections that agree on the
  plan-cache signature are served from one schedule search and one
  compiled plan, exactly as in-process batching does;
* **streaming results** — replies are written as each
  :class:`~repro.serve.ServeFuture` resolves (the service resolves futures
  group by group inside a flush), not when the whole flush returns, so
  early groups stream back while later groups still execute;
* **graceful shutdown** — ``SIGTERM``/``SIGINT`` (or a ``shutdown``
  operation) stop the listener, drain every queued and in-flight request,
  deliver all replies, close the connections and drain the shared worker
  pool before the daemon exits.

Examples
--------
Serve on a TCP port until SIGTERM (the ``repro serve --daemon`` CLI path)::

    ServeDaemon(host="127.0.0.1", port=7421, workers=2).run()

Tests and benchmarks embed the daemon in a background thread::

    with start_daemon_thread(workers=0) as handle:
        client = ServeClient(*handle.address)
"""

from __future__ import annotations

import asyncio
import os
import signal
import threading
import time
from collections import OrderedDict, deque
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Deque, Dict, List, Optional, Tuple, Union

from repro.core.calibrate import calibration_state
from repro.engine.plan_cache import (
    caches_snapshot,
    plan_timings_snapshot,
    plan_timings_stats,
)
from repro.engine.plan_store import plan_store_snapshot
from repro.obs.export import write_trace
from repro.obs.metrics import metrics_snapshot, observe, prometheus_text
from repro.obs.trace import (
    TRACE_DIR_ENV,
    enable_tracing,
    span as _span,
    tracing_enabled,
)
from repro.runtime import drain_pools, pool_stats, supervision_events
from repro.serve import protocol
from repro.serve.request import ContractionRequest
from repro.serve.service import (
    AdmissionError,
    ContractionService,
    DeadlineError,
    QuarantinedError,
    ServeFuture,
)
from repro.util.faults import faults_snapshot

#: Maximum NDJSON line length accepted from a client (64 MiB) — bounds the
#: per-connection read buffer; operands above this must be split or served
#: in process.
MAX_LINE_BYTES = 64 * 1024 * 1024

#: Default TCP port of ``repro serve --daemon``.
DEFAULT_PORT = 7421

#: Environment variable: seconds a connection may sit idle (no inbound
#: traffic, nothing queued or in flight) before the daemon closes it.
IDLE_TIMEOUT_ENV = "REPRO_IDLE_TIMEOUT"


def default_idle_timeout() -> Optional[float]:
    """Idle-connection timeout from ``REPRO_IDLE_TIMEOUT`` (``None`` = off)."""
    raw = os.environ.get(IDLE_TIMEOUT_ENV)
    if raw is None or not raw.strip():
        return None
    try:
        value = float(raw)
    except ValueError:
        return None
    return value if value > 0 else None


class _QueuedItem:
    """One admitted submit operation waiting in a connection's backlog."""

    __slots__ = ("client", "msg_id", "request", "expires_at")

    def __init__(
        self,
        client: "_Client",
        msg_id: Any,
        request: ContractionRequest,
        expires_at: Optional[float] = None,
    ) -> None:
        self.client = client
        self.msg_id = msg_id
        self.request = request
        #: absolute ``time.monotonic()`` deadline stamped at receipt, so
        #: time spent in the backlog counts against ``deadline_ms``.
        self.expires_at = expires_at


class _Client:
    """Per-connection state: backlog, in-flight count, outbound queue."""

    __slots__ = (
        "conn_id",
        "writer",
        "outbox",
        "backlog",
        "inflight",
        "pending_ids",
        "closed",
    )

    def __init__(self, conn_id: int, writer: asyncio.StreamWriter) -> None:
        self.conn_id = conn_id
        self.writer = writer
        self.outbox: "asyncio.Queue[Optional[bytes]]" = asyncio.Queue()
        self.backlog: Deque[_QueuedItem] = deque()
        self.inflight = 0
        self.pending_ids: set = set()
        self.closed = False

    def send(self, message: Dict[str, Any]) -> None:
        """Enqueue one reply for the writer task (no-op once closed)."""
        if not self.closed:
            self.outbox.put_nowait(protocol.dumps(message))


@dataclass
class DaemonStats:
    """Daemon-level counters (the service and caches keep their own)."""

    connections: int = 0
    active_connections: int = 0
    received: int = 0
    admitted: int = 0
    rejected: int = 0
    replied: int = 0
    protocol_errors: int = 0
    cycles: int = 0
    #: requests answered with a ``timeout`` error (deadline expirations).
    expired: int = 0
    #: requests answered with a ``quarantined`` error (poison signatures).
    quarantined: int = 0
    #: idle connections closed by the read timeout.
    idle_closed: int = 0
    #: service flushes that raised (futures still resolve; daemon survives).
    flush_errors: int = 0

    def as_dict(self) -> Dict[str, int]:
        """Plain-dict view for the ``stats`` reply."""
        return {
            "connections": self.connections,
            "active_connections": self.active_connections,
            "received": self.received,
            "admitted": self.admitted,
            "rejected": self.rejected,
            "replied": self.replied,
            "protocol_errors": self.protocol_errors,
            "cycles": self.cycles,
            "expired": self.expired,
            "quarantined": self.quarantined,
            "idle_closed": self.idle_closed,
            "flush_errors": self.flush_errors,
        }


class ServeDaemon:
    """Asyncio TCP server streaming batched contraction results.

    Parameters
    ----------
    host, port:
        Listen address; ``port=0`` binds an ephemeral port (the bound
        address is available as :attr:`address` once serving).
    service:
        The :class:`~repro.serve.ContractionService` to front (one is
        constructed from *workers*/*engine*/*max_pending* when omitted).
    workers, engine, max_pending:
        Forwarded to the constructed service; ``max_pending`` is also the
        daemon's backpressure bound across queued + in-flight requests.
    client_quota:
        Maximum in-flight requests per connection per dispatch cycle — the
        fairness knob: a client beyond its quota waits for the next cycle
        while other connections drain.
    trace_dir:
        When set (or via the ``REPRO_TRACE_DIR`` environment variable),
        tracing is enabled for the daemon's lifetime and a Chrome-trace
        JSON file (``trace-daemon-<port>.json``, Perfetto-loadable) is
        written into this directory during shutdown.
    idle_timeout:
        Seconds a connection may sit idle — no inbound bytes and nothing
        queued or in flight — before the daemon closes it, so half-dead
        clients cannot pin connection state forever.  ``None`` defers to
        ``REPRO_IDLE_TIMEOUT`` (default: no timeout); connections with
        work in flight are never closed by this.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        service: Optional[ContractionService] = None,
        workers: Optional[int] = None,
        engine: Optional[str] = None,
        max_pending: int = 4096,
        client_quota: int = 64,
        trace_dir: Optional[Union[str, Path]] = None,
        idle_timeout: Optional[float] = None,
    ) -> None:
        if client_quota < 1:
            raise ValueError("client_quota must be >= 1")
        self.host = host
        self.port = port
        self.idle_timeout = (
            default_idle_timeout() if idle_timeout is None else idle_timeout
        )
        if trace_dir is None:
            trace_dir = os.environ.get(TRACE_DIR_ENV) or None
        self.trace_dir = Path(trace_dir) if trace_dir is not None else None
        if self.trace_dir is not None:
            enable_tracing()
        self.service = (
            service
            if service is not None
            else ContractionService(
                workers=workers, engine=engine, max_pending=max_pending
            )
        )
        self.client_quota = client_quota
        self.stats = DaemonStats()
        #: Dispatch-cycle trace: one list of connection ids per cycle, in
        #: drain order — the observable artifact of round-robin fairness
        #: (tests assert on it; ``stats`` reports its length as ``cycles``).
        self.dispatch_trace: List[List[int]] = []
        self.address: Optional[Tuple[str, int]] = None
        self._clients: "OrderedDict[int, _Client]" = OrderedDict()
        self._next_conn_id = 0
        self._inflight_total = 0
        self._cycle = 0
        self._draining = False
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._work: Optional[asyncio.Event] = None
        self._gate: Optional[asyncio.Event] = None
        self._writer_tasks: List[asyncio.Task] = []

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    async def serve(
        self,
        started: Optional[threading.Event] = None,
        install_signal_handlers: bool = False,
    ) -> None:
        """Run the daemon until a graceful shutdown completes.

        *started* (if given) is set once the listener is bound and
        :attr:`address` is valid.  With *install_signal_handlers*,
        ``SIGTERM``/``SIGINT`` trigger the same drain-then-exit path as a
        ``shutdown`` operation.
        """
        self._loop = asyncio.get_running_loop()
        self._work = asyncio.Event()
        self._gate = asyncio.Event()
        self._gate.set()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port, limit=MAX_LINE_BYTES
        )
        sock = self._server.sockets[0]
        self.address = sock.getsockname()[:2]
        if install_signal_handlers:
            for signum in (signal.SIGTERM, signal.SIGINT):
                try:
                    self._loop.add_signal_handler(signum, self.begin_shutdown)
                except (NotImplementedError, RuntimeError):  # pragma: no cover
                    pass  # non-Unix loop: rely on the shutdown operation
        if started is not None:
            started.set()
        try:
            await self._dispatch_loop()
        finally:
            await self._close_everything()

    def run(self) -> None:
        """Blocking entry point: serve with signal handlers installed."""
        asyncio.run(self.serve(install_signal_handlers=True))

    def begin_shutdown(self) -> None:
        """Stop accepting, then drain all pending work (idempotent).

        Safe to call from the event loop (signal handler, ``shutdown``
        operation); from other threads use ``call_soon_threadsafe``.
        """
        if self._draining:
            return
        self._draining = True
        if self._server is not None:
            self._server.close()
        if self._gate is not None:
            self._gate.set()  # a paused daemon must still drain on SIGTERM
        if self._work is not None:
            self._work.set()

    def pause_dispatch(self) -> None:
        """Hold the dispatch loop before its next cycle (testing hook)."""
        assert self._gate is not None
        self._gate.clear()

    def resume_dispatch(self) -> None:
        """Release a :meth:`pause_dispatch` hold (testing hook)."""
        assert self._gate is not None
        self._gate.set()

    # ------------------------------------------------------------------ #
    # Connection handling (event-loop thread)
    # ------------------------------------------------------------------ #
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        conn_id = self._next_conn_id
        self._next_conn_id += 1
        client = _Client(conn_id, writer)
        self._clients[conn_id] = client
        self.stats.connections += 1
        self.stats.active_connections += 1
        writer_task = asyncio.ensure_future(self._writer_loop(client))
        self._writer_tasks.append(writer_task)
        try:
            while True:
                try:
                    if self.idle_timeout is not None:
                        try:
                            line = await asyncio.wait_for(
                                reader.readline(), self.idle_timeout
                            )
                        except asyncio.TimeoutError:
                            if (
                                client.backlog
                                or client.inflight
                                or client.pending_ids
                            ):
                                # not idle — results are still owed; the
                                # timeout only reaps silent, empty links
                                continue
                            self.stats.idle_closed += 1
                            break
                    else:
                        line = await reader.readline()
                except (
                    asyncio.LimitOverrunError,
                    ValueError,
                ):  # oversized line: unrecoverable framing loss
                    client.send(
                        protocol.error_reply(
                            None,
                            protocol.ERROR_PROTOCOL,
                            f"line exceeds {MAX_LINE_BYTES} bytes",
                        )
                    )
                    break
                except (ConnectionError, OSError):
                    break
                if not line:
                    break  # EOF
                if line.strip():
                    self._handle_line(client, line)
        finally:
            self._drop_client(client)

    def _handle_line(self, client: _Client, line: bytes) -> None:
        """Decode and act on one inbound message (errors stay structured)."""
        self.stats.received += 1
        msg_id: Any = None
        try:
            message = protocol.loads(line)
            msg_id = message.get("id")
            op = message.get("op")
            if op == "submit":
                self._handle_submit(client, msg_id, message)
            elif op == "stats":
                client.send(protocol.stats_reply(msg_id, self.snapshot()))
            elif op == "metrics":
                if message.get("format") == "prometheus":
                    payload: Union[Dict[str, Any], str] = prometheus_text()
                else:
                    payload = metrics_snapshot()
                client.send(protocol.metrics_reply(msg_id, payload))
            elif op == "health":
                client.send(protocol.health_reply(msg_id, self.health()))
            elif op == "ping":
                client.send(protocol.pong_reply(msg_id))
            elif op == "shutdown":
                client.send(protocol.shutdown_reply(msg_id, self._pending_total()))
                self.begin_shutdown()
            else:
                raise protocol.ProtocolError(
                    f"unknown op {op!r}; expected one of {protocol.OPS}"
                )
        except protocol.ProtocolError as exc:
            # malformed traffic never kills the connection: reply with a
            # structured error (id echoes when it was recoverable) and
            # keep reading
            self.stats.protocol_errors += 1
            client.send(
                protocol.error_reply(msg_id, protocol.ERROR_PROTOCOL, str(exc))
            )

    def _handle_submit(
        self, client: _Client, msg_id: Any, message: Dict[str, Any]
    ) -> None:
        if msg_id is None:
            raise protocol.ProtocolError("submit requires a non-null id")
        if msg_id in client.pending_ids:
            raise protocol.ProtocolError(
                f"id {msg_id!r} is already in flight on this connection"
            )
        if self._draining:
            self.stats.rejected += 1
            client.send(
                protocol.error_reply(
                    msg_id, protocol.ERROR_SHUTDOWN, "daemon is draining"
                )
            )
            return
        request = protocol.decode_request(message.get("request"))
        expires_at = None
        if request.deadline_ms is not None:
            expires_at = time.monotonic() + request.deadline_ms / 1000.0
            if request.deadline_ms <= 0:
                # already expired at receipt: shed before it costs a queue
                # slot or a dispatch cycle
                self.stats.expired += 1
                client.send(
                    protocol.error_reply(
                        msg_id,
                        protocol.ERROR_TIMEOUT,
                        f"deadline ({request.deadline_ms}ms) expired "
                        f"before admission",
                    )
                )
                return
        try:
            self._admit(request)
        except AdmissionError as exc:
            self.stats.rejected += 1
            client.send(
                protocol.error_reply(msg_id, protocol.ERROR_ADMISSION, str(exc))
            )
            return
        client.pending_ids.add(msg_id)
        client.backlog.append(_QueuedItem(client, msg_id, request, expires_at))
        self.stats.admitted += 1
        assert self._work is not None
        self._work.set()

    def _admit(self, request: ContractionRequest) -> None:
        """Admission control: the service's bound and eager validation.

        Raises :class:`~repro.serve.AdmissionError` — the same exception
        and semantics as in-process ``submit`` — when the daemon-wide
        pending count (queued + in-flight) has reached the service's
        ``max_pending``, or when the request's spec fails to parse against
        its operands.
        """
        if self._pending_total() >= self.service.max_pending:
            raise AdmissionError(
                f"queue full ({self.service.max_pending} pending); retry "
                f"after results drain"
            )
        try:
            request.build()
        except Exception as exc:
            raise AdmissionError(f"invalid request: {exc}") from exc

    def _pending_total(self) -> int:
        backlog = sum(len(c.backlog) for c in self._clients.values())
        return backlog + self._inflight_total

    def _drop_client(self, client: _Client) -> None:
        """Forget a disconnected client without poisoning its batch.

        Queued-but-undispatched requests are discarded; in-flight requests
        keep executing (their futures belong to the whole batch) and their
        replies are dropped at delivery.
        """
        if client.closed:
            return
        client.closed = True
        client.backlog.clear()
        self._clients.pop(client.conn_id, None)
        self.stats.active_connections -= 1
        try:
            client.outbox.put_nowait(None)
        except Exception:  # pragma: no cover - queue is unbounded
            pass

    async def _writer_loop(self, client: _Client) -> None:
        """Drain one connection's outbox to its socket, in order."""
        try:
            while True:
                payload = await client.outbox.get()
                if payload is None:
                    break
                client.writer.write(payload)
                await client.writer.drain()
        except (ConnectionError, OSError):
            pass
        finally:
            try:
                client.writer.close()
            except Exception:  # pragma: no cover - already closed
                pass

    # ------------------------------------------------------------------ #
    # Dispatch: round-robin drain -> service submit -> off-loop flush
    # ------------------------------------------------------------------ #
    async def _dispatch_loop(self) -> None:
        assert self._work is not None and self._gate is not None
        while True:
            await self._work.wait()
            await self._gate.wait()
            self._work.clear()
            batch = self._take_round_robin()
            if not batch:
                if self._draining and self._pending_total() == 0:
                    return
                continue
            self.dispatch_trace.append([item.client.conn_id for item in batch])
            self.stats.cycles += 1
            await self._run_batch(batch)
            if self._pending_total() > 0 or self._draining:
                self._work.set()

    def _take_round_robin(self) -> List[_QueuedItem]:
        """Drain client backlogs fairly for one dispatch cycle.

        Clients are visited in connection order starting from a rotating
        offset; each pass takes one request per client, repeating until
        every backlog is empty or at its ``client_quota`` of in-flight
        requests.  The result interleaves clients deterministically, so a
        connection with a deep backlog cannot occupy a whole cycle.
        """
        clients = [c for c in self._clients.values() if c.backlog]
        if not clients:
            return []
        start = self._cycle % len(clients)
        order = clients[start:] + clients[:start]
        self._cycle += 1
        batch: List[_QueuedItem] = []
        took = True
        while took:
            took = False
            for client in order:
                if client.backlog and client.inflight < self.client_quota:
                    item = client.backlog.popleft()
                    client.inflight += 1
                    self._inflight_total += 1
                    batch.append(item)
                    took = True
        return batch

    async def _run_batch(self, batch: List[_QueuedItem]) -> None:
        """Submit one cycle's requests and flush the service off-loop."""
        with _span(
            "dispatch", "daemon", requests=len(batch), cycle=self.stats.cycles
        ):
            await self._submit_and_flush(batch)

    async def _submit_and_flush(self, batch: List[_QueuedItem]) -> None:
        assert self._loop is not None
        submitted = False
        for item in batch:
            if (
                item.expires_at is not None
                and time.monotonic() >= item.expires_at
            ):
                # the deadline ran out while the request sat in the
                # daemon's backlog: shed it without touching the service
                self.stats.expired += 1
                self._finish_item(
                    item,
                    protocol.error_reply(
                        item.msg_id,
                        protocol.ERROR_TIMEOUT,
                        f"deadline ({item.request.deadline_ms}ms) expired "
                        f"while queued",
                    ),
                )
                continue
            try:
                future = self.service.submit(
                    item.request, expires_at=item.expires_at
                )
            except QuarantinedError as exc:
                self.stats.quarantined += 1
                self._finish_item(
                    item,
                    protocol.error_reply(
                        item.msg_id, protocol.ERROR_QUARANTINED, str(exc)
                    ),
                )
                continue
            except DeadlineError as exc:
                self.stats.expired += 1
                self._finish_item(
                    item,
                    protocol.error_reply(
                        item.msg_id, protocol.ERROR_TIMEOUT, str(exc)
                    ),
                )
                continue
            except AdmissionError as exc:
                # unreachable through the daemon's own accounting unless the
                # service is shared with in-process callers; keep the
                # structured-reply contract either way
                self.stats.rejected += 1
                self._finish_item(
                    item,
                    protocol.error_reply(
                        item.msg_id, protocol.ERROR_ADMISSION, str(exc)
                    ),
                )
                continue
            submitted = True
            future.add_done_callback(self._make_streamer(item))
        if submitted:
            # flush in a worker thread: futures resolve group by group and
            # their callbacks stream replies back through the loop while
            # later groups are still executing
            try:
                await self._loop.run_in_executor(None, self.service.flush)
            except Exception:
                # a flush abort already resolved every future with a
                # structured error (the service's BaseException handler);
                # the daemon must outlive it — record and keep serving
                self.stats.flush_errors += 1

    def _make_streamer(self, item: _QueuedItem):
        """Done-callback delivering one resolved future to its connection."""
        assert self._loop is not None
        loop = self._loop

        def _on_done(future: ServeFuture) -> None:
            encode_t0 = time.perf_counter()
            try:
                reply = protocol.result_reply(item.msg_id, future.result())
            except RuntimeError as exc:
                # RequestFailed carries a code ("timeout" for deadline
                # expirations); anything else is an execution failure.
                # (service.stats.expired counts these; daemon.expired only
                # counts daemon-side sheds, keeping it loop-thread-owned.)
                code = (
                    protocol.ERROR_TIMEOUT
                    if getattr(exc, "code", None) == "timeout"
                    else protocol.ERROR_EXECUTION
                )
                reply = protocol.error_reply(item.msg_id, code, str(exc))
            wire_encode = time.perf_counter() - encode_t0
            observe("serve.stage.wire_encode", wire_encode)
            if future.timings:
                timings = dict(future.timings)
                timings["wire_encode"] = wire_encode
                reply["timings"] = timings
            loop.call_soon_threadsafe(self._finish_item, item, reply)

        return _on_done

    def _finish_item(self, item: _QueuedItem, reply: Dict[str, Any]) -> None:
        """Deliver one reply on the loop thread and release its quota."""
        item.client.inflight -= 1
        self._inflight_total -= 1
        item.client.pending_ids.discard(item.msg_id)
        if not item.client.closed:
            item.client.send(reply)
            self.stats.replied += 1
        assert self._work is not None
        self._work.set()

    # ------------------------------------------------------------------ #
    # Introspection and teardown
    # ------------------------------------------------------------------ #
    def health(self) -> Dict[str, Any]:
        """Lightweight readiness document (the ``health`` operation).

        Unlike :meth:`snapshot` this touches no caches or metric sources —
        it is cheap enough for tight probe loops.  ``status`` is
        ``"ready"``, ``"draining"`` (shutdown in progress) or
        ``"degraded"`` (at least one plan signature is quarantined);
        supervision totals and the last worker-crash timestamp ride along
        so probes can alert on crash churn without pulling full stats.
        """
        events = supervision_events()
        quarantine = self.service.quarantine_snapshot()
        if self._draining:
            status = "draining"
        elif quarantine["entries"]:
            status = "degraded"
        else:
            status = "ready"
        return {
            "status": status,
            "ready": status == "ready",
            "version": protocol.PROTOCOL_VERSION,
            "pending": self._pending_total(),
            "active_connections": self.stats.active_connections,
            "quarantined_signatures": len(quarantine["entries"]),
            "expired": self.stats.expired + self.service.stats.expired,
            "crashes": events["crashes"],
            "worker_timeouts": events["timeouts"],
            "respawns": events["respawns"],
            "last_crash_unix": events["last_crash_unix"],
        }

    def snapshot(self) -> Dict[str, Any]:
        """One coherent stats document: daemon, service, caches, pool.

        ``metrics`` is the registry-only slice (counters, gauges and the
        per-stage latency histograms; the caches/pool sources are already
        present as top-level keys) and ``plan_timings`` the per-plan-
        signature timing records — the calibration feed of ROADMAP item 4.
        ``plan_timings_stats`` reports that registry's LRU bound and
        eviction count, ``plan_store`` the disk-backed schedule store
        (``{"configured": False}`` without ``REPRO_PLAN_STORE``) and
        ``calibration`` the measured-coefficient state of
        :mod:`repro.core.calibrate`.
        """
        return {
            "version": protocol.PROTOCOL_VERSION,
            "draining": self._draining,
            "pending": self._pending_total(),
            "daemon": self.stats.as_dict(),
            "service": self.service.stats.as_dict(),
            "caches": caches_snapshot(),
            "pool": pool_stats(),
            "metrics": metrics_snapshot(include_sources=False),
            "plan_timings": plan_timings_snapshot(),
            "plan_timings_stats": plan_timings_stats(),
            "plan_store": plan_store_snapshot(),
            "calibration": calibration_state(),
            "quarantine": self.service.quarantine_snapshot(),
            "faults": faults_snapshot(),
        }

    async def _close_everything(self) -> None:
        """Stop the listener, flush outboxes, close sockets, drain pools."""
        if self._server is not None:
            self._server.close()
            try:
                await self._server.wait_closed()
            except Exception:  # pragma: no cover - platform dependent
                pass
        for client in list(self._clients.values()):
            self._drop_client(client)
        if self._writer_tasks:
            await asyncio.gather(*self._writer_tasks, return_exceptions=True)
        # the drain hook waits for outstanding pool tasks instead of
        # terminating mid-map; a later in-process use refills the pools
        await asyncio.get_running_loop().run_in_executor(None, drain_pools)
        # written last so the file is complete once the daemon thread joins
        if self.trace_dir is not None and tracing_enabled():
            port = self.address[1] if self.address is not None else self.port
            try:
                write_trace(self.trace_dir / f"trace-daemon-{port}.json")
            except OSError:  # pragma: no cover - unwritable trace dir
                pass


# --------------------------------------------------------------------------- #
# Embedding helper: daemon on a background thread (tests, benchmarks)
# --------------------------------------------------------------------------- #
class DaemonHandle:
    """A running :class:`ServeDaemon` on a background thread.

    Exposes the bound :attr:`address`, the daemon object (for stats and the
    dispatch testing hooks, via ``call_soon_threadsafe``) and
    :meth:`shutdown`; usable as a context manager.
    """

    def __init__(self, daemon: ServeDaemon, thread: threading.Thread) -> None:
        self.daemon = daemon
        self.thread = thread

    @property
    def address(self) -> Tuple[str, int]:
        """The daemon's bound ``(host, port)``."""
        assert self.daemon.address is not None
        return self.daemon.address

    def call(self, fn, *args) -> None:
        """Run *fn* on the daemon's event loop thread (fire and forget)."""
        assert self.daemon._loop is not None
        self.daemon._loop.call_soon_threadsafe(fn, *args)

    def shutdown(self, timeout: float = 60.0) -> None:
        """Drain the daemon and join its thread (idempotent)."""
        if self.thread.is_alive():
            self.call(self.daemon.begin_shutdown)
        self.thread.join(timeout)
        if self.thread.is_alive():  # pragma: no cover - deadlock guard
            raise RuntimeError("daemon thread did not exit within timeout")

    def __enter__(self) -> "DaemonHandle":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()


def start_daemon_thread(
    host: str = "127.0.0.1", port: int = 0, timeout: float = 30.0, **kwargs
) -> DaemonHandle:
    """Start a :class:`ServeDaemon` on a daemon thread and wait until bound.

    Keyword arguments are forwarded to :class:`ServeDaemon`; the default
    ``port=0`` binds an ephemeral port.  Returns a :class:`DaemonHandle`
    whose :attr:`~DaemonHandle.address` is ready to connect to.

    Examples
    --------
    >>> with start_daemon_thread(workers=0) as handle:
    ...     with ServeClient(*handle.address) as client:
    ...         client.ping()
    """
    daemon = ServeDaemon(host=host, port=port, **kwargs)
    started = threading.Event()

    def _run() -> None:
        asyncio.run(daemon.serve(started=started))

    thread = threading.Thread(target=_run, name="repro-serve-daemon", daemon=True)
    thread.start()
    if not started.wait(timeout):  # pragma: no cover - startup failure
        raise RuntimeError("daemon failed to start within timeout")
    return DaemonHandle(daemon, thread)


__all__ = [
    "DEFAULT_PORT",
    "IDLE_TIMEOUT_ENV",
    "MAX_LINE_BYTES",
    "DaemonHandle",
    "DaemonStats",
    "ServeDaemon",
    "default_idle_timeout",
    "start_daemon_thread",
]
