"""Shared utilities: validation helpers, timers, and operation counters."""

from repro.util.validation import (
    check_axis,
    check_dtype_real,
    check_positive_int,
    check_shape,
    require,
)
from repro.util.timing import Timer, timed
from repro.util.counters import OpCounter

__all__ = [
    "check_axis",
    "check_dtype_real",
    "check_positive_int",
    "check_shape",
    "require",
    "Timer",
    "timed",
    "OpCounter",
]
