"""Tests for the named kernel library (MTTKRP, TTMc, TTTP, TTTc, SDDMM)."""

import numpy as np
import pytest

from repro.kernels import (
    all_mode_ttmc,
    mttkrp,
    sddmm,
    tttc,
    tttp,
    ttmc,
)
from repro.kernels.mttkrp import mttkrp_spec, mttkrp_kernel
from repro.kernels.spttn import KernelBuilder, sparse_order_of
from repro.kernels.ttmc import all_mode_ttmc_spec, ttmc_spec
from repro.kernels.tttc import tt_core_shapes, tttc_spec
from repro.kernels.tttp import tttp_spec
from repro.core.scheduler import SpTTNScheduler
from repro.sptensor import DenseTensor, random_dense_matrix, random_sparse_tensor


@pytest.fixture
def tensor3():
    return random_sparse_tensor((16, 14, 12), density=0.03, seed=21)


@pytest.fixture
def factors3(tensor3):
    return [random_dense_matrix(d, 5, seed=n) for n, d in enumerate(tensor3.shape)]


class TestSpecBuilders:
    def test_mttkrp_specs(self):
        assert mttkrp_spec(3, 0) == "ijk,jr,kr->ir"
        assert mttkrp_spec(3, 1) == "ijk,ir,kr->jr"
        assert mttkrp_spec(4, 3) == "ijkl,ir,jr,kr->lr"

    def test_ttmc_specs(self):
        assert ttmc_spec(3, 0) == "ijk,jr,ks->irs"
        assert ttmc_spec(3, 2) == "ijk,ir,js->krs"
        assert ttmc_spec(4, 0) == "ijkl,jr,ks,lt->irst"

    def test_all_mode_ttmc_spec(self):
        assert all_mode_ttmc_spec(3) == "ijk,ir,js,kt->rst"

    def test_tttp_spec(self):
        assert tttp_spec(3) == "ijk,ir,jr,kr->ijk"
        assert tttp_spec(4) == "ijkl,ir,jr,kr,lr->ijkl"

    def test_tttc_spec_last_core(self):
        assert tttc_spec(4) == "ijkl,ir,rjs,skt->tl"

    def test_tttc_spec_mid_core(self):
        assert tttc_spec(4, removed_core=1) == "ijkl,ir,skt,tl->rjs"
        assert tttc_spec(3, removed_core=0) == "ijk,rjs,sk->ir"

    def test_mode_out_of_range(self):
        with pytest.raises(ValueError):
            mttkrp_spec(3, 3)
        with pytest.raises(ValueError):
            ttmc_spec(3, -1)
        with pytest.raises(ValueError):
            tttc_spec(3, removed_core=5)

    def test_kernel_builder_limits(self):
        kb = KernelBuilder(3)
        assert kb.sparse_subscripts == "ijk"
        with pytest.raises(ValueError):
            KernelBuilder(0)
        with pytest.raises(ValueError):
            kb.dense_index(50)

    def test_sparse_order_of_requires_sparse(self):
        with pytest.raises(TypeError):
            sparse_order_of(np.zeros((3, 3)))


class TestMTTKRP:
    @pytest.mark.parametrize("mode", [0, 1, 2])
    def test_all_modes_match_reference(self, tensor3, factors3, mode):
        out = mttkrp(tensor3, factors3, mode=mode)
        dense = tensor3.to_dense()
        letters = "ijk"
        spec = (
            letters
            + ","
            + ",".join(f"{letters[n]}r" for n in range(3) if n != mode)
            + "->"
            + letters[mode]
            + "r"
        )
        other = [factors3[n].data for n in range(3) if n != mode]
        np.testing.assert_allclose(out, np.einsum(spec, dense, *other), atol=1e-10)

    def test_accepts_reduced_factor_list(self, tensor3, factors3):
        full = mttkrp(tensor3, factors3, mode=0)
        reduced = mttkrp(tensor3, factors3[1:], mode=0)
        np.testing.assert_allclose(full, reduced)

    def test_wrong_factor_count_rejected(self, tensor3, factors3):
        with pytest.raises(ValueError):
            mttkrp(tensor3, factors3[:1], mode=0)

    def test_schedule_reuse(self, tensor3, factors3):
        kernel, _ = mttkrp_kernel(tensor3, factors3, mode=0)
        schedule = SpTTNScheduler(kernel).schedule()
        a = mttkrp(tensor3, factors3, mode=0, schedule=schedule)
        b = mttkrp(tensor3, factors3, mode=0)
        np.testing.assert_allclose(a, b)


class TestTTMc:
    @pytest.mark.parametrize("mode", [0, 1, 2])
    def test_all_modes_match_reference(self, tensor3, factors3, mode):
        # use distinct ranks per factor so axis ordering bugs are caught
        factors = [
            random_dense_matrix(d, 3 + n, seed=n) for n, d in enumerate(tensor3.shape)
        ]
        out = ttmc(tensor3, factors, mode=mode)
        dense = tensor3.to_dense()
        letters = "ijk"
        ranks = "rst"
        ins = []
        outs = letters[mode]
        args = []
        pos = 0
        for n in range(3):
            if n == mode:
                continue
            ins.append(letters[n] + ranks[pos])
            outs += ranks[pos]
            args.append(factors[n].data)
            pos += 1
        spec = "ijk," + ",".join(ins) + "->" + outs
        np.testing.assert_allclose(out, np.einsum(spec, dense, *args), atol=1e-10)

    def test_all_mode_ttmc(self, tensor3, factors3):
        out = all_mode_ttmc(tensor3, factors3)
        ref = np.einsum(
            "ijk,ir,js,kt->rst",
            tensor3.to_dense(),
            factors3[0].data,
            factors3[1].data,
            factors3[2].data,
        )
        np.testing.assert_allclose(out, ref, atol=1e-10)

    def test_all_mode_requires_all_factors(self, tensor3, factors3):
        with pytest.raises(ValueError):
            all_mode_ttmc(tensor3, factors3[:2])


class TestTTTPAndSDDMM:
    def test_tttp_values(self, tensor3, factors3):
        out = tttp(tensor3, factors3)
        assert out.same_pattern(tensor3)
        model = np.einsum(
            "ir,jr,kr->ijk", factors3[0].data, factors3[1].data, factors3[2].data
        )
        dense = tensor3.to_dense()
        expected = np.array([dense[tuple(c)] * model[tuple(c)] for c in out.indices])
        np.testing.assert_allclose(out.values, expected, atol=1e-10)

    def test_tttp_factor_count(self, tensor3, factors3):
        with pytest.raises(ValueError):
            tttp(tensor3, factors3[:2])

    def test_tttp_order4(self, random_coo4):
        factors = [random_dense_matrix(d, 3, seed=n) for n, d in enumerate(random_coo4.shape)]
        out = tttp(random_coo4, factors)
        assert out.same_pattern(random_coo4)

    def test_sddmm(self):
        M = random_sparse_tensor((20, 15), density=0.08, seed=3)
        L = random_dense_matrix(20, 6, seed=4)
        R = random_dense_matrix(15, 6, seed=5)
        out = sddmm(M, L, R)
        dd = L.data @ R.data.T
        dense = M.to_dense()
        expected = np.array([dense[tuple(c)] * dd[tuple(c)] for c in out.indices])
        np.testing.assert_allclose(out.values, expected, atol=1e-10)

    def test_sddmm_requires_matrix(self, tensor3):
        with pytest.raises(ValueError):
            sddmm(tensor3, np.ones((16, 3)), np.ones((14, 3)))


class TestTTTc:
    def test_core_shapes(self):
        shapes = tt_core_shapes((6, 5, 4, 3), 2)
        assert shapes == [(6, 2), (2, 5, 2), (2, 4, 2), (2, 3)]
        with pytest.raises(ValueError):
            tt_core_shapes((6,), 2)

    def test_order3_last_core(self):
        T = random_sparse_tensor((10, 9, 8), density=0.05, seed=9)
        cores = [
            DenseTensor(np.random.default_rng(n).random(s))
            for n, s in enumerate(tt_core_shapes(T.shape, 3))
        ]
        out = tttc(T, cores)
        ref = np.einsum(
            "ijk,ir,rjs->sk", T.to_dense(), cores[0].data, cores[1].data
        )
        np.testing.assert_allclose(out, ref, atol=1e-10)

    @pytest.mark.parametrize("removed", [0, 1, 2, 3])
    def test_order4_any_removed_core(self, removed):
        T = random_sparse_tensor((8, 7, 6, 5), density=0.02, seed=10)
        cores = [
            DenseTensor(np.random.default_rng(n).random(s))
            for n, s in enumerate(tt_core_shapes(T.shape, 2))
        ]
        out = tttc(T, cores, removed_core=removed)
        subs = ["ia", "ajb", "bkc", "cl"]
        outs = subs[removed]
        ins = ["ijkl"] + [s for n, s in enumerate(subs) if n != removed]
        ref = np.einsum(
            ",".join(ins) + "->" + outs,
            T.to_dense(),
            *[cores[n].data for n in range(4) if n != removed],
        )
        np.testing.assert_allclose(out, ref.reshape(out.shape), atol=1e-10)

    def test_reduced_core_list(self):
        T = random_sparse_tensor((10, 9, 8), density=0.05, seed=9)
        cores = [
            DenseTensor(np.random.default_rng(n).random(s))
            for n, s in enumerate(tt_core_shapes(T.shape, 3))
        ]
        full = tttc(T, cores, removed_core=2)
        reduced = tttc(T, cores[:2], removed_core=2)
        np.testing.assert_allclose(full, reduced)
