"""Synthetic sparse tensor generators.

The paper evaluates on FROSTT datasets plus randomly generated tensors of
prescribed order, dimension and sparsity.  FROSTT files are not bundled with
this repository (no network access), so the dataset presets in
:mod:`repro.sptensor.datasets` are backed by these generators: uniform random
patterns for the synthetic strong-scaling experiments and power-law (skewed)
patterns that mimic the long-tailed mode distributions of real FROSTT
tensors such as nell-2 or enron.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.sptensor.coo import COOTensor
from repro.sptensor.dense import DenseTensor
from repro.util.validation import check_positive_int, check_shape, require


def _resolve_nnz(shape: Tuple[int, ...], nnz: Optional[int], density: Optional[float]) -> int:
    total = float(np.prod([float(s) for s in shape]))
    if (nnz is None) == (density is None):
        raise ValueError("exactly one of nnz or density must be given")
    if nnz is None:
        require(0.0 < density <= 1.0, f"density must be in (0, 1], got {density}")
        nnz = int(round(total * float(density)))
    nnz = max(1, int(nnz))
    require(nnz <= total, f"requested nnz={nnz} exceeds dense size {int(total)}")
    return nnz


def _dedupe_target(
    draw, shape: Tuple[int, ...], nnz: int, rng: np.random.Generator, max_rounds: int = 64
) -> np.ndarray:
    """Draw index rows with *draw* until *nnz* distinct coordinates are found."""
    collected = np.zeros((0, len(shape)), dtype=np.int64)
    need = nnz
    for _ in range(max_rounds):
        batch = draw(int(need * 1.3) + 8)
        collected = np.unique(np.vstack([collected, batch]), axis=0)
        if collected.shape[0] >= nnz:
            break
        need = nnz - collected.shape[0]
    if collected.shape[0] < nnz:
        raise RuntimeError(
            f"could not generate {nnz} distinct coordinates for shape {shape}"
        )
    sel = rng.choice(collected.shape[0], size=nnz, replace=False)
    return collected[np.sort(sel)]


def random_sparse_tensor(
    shape: Sequence[int],
    nnz: Optional[int] = None,
    density: Optional[float] = None,
    seed: Optional[int] = None,
    value_distribution: str = "uniform",
) -> COOTensor:
    """A sparse tensor whose nonzero coordinates are uniform without replacement.

    Parameters
    ----------
    shape:
        Tensor dimensions.
    nnz, density:
        Exactly one must be given: the number of stored entries or the
        fraction of the dense size.
    seed:
        Seed for reproducibility.
    value_distribution:
        ``"uniform"`` (values in [0,1)), ``"normal"`` (standard normal) or
        ``"ones"`` (all stored values are 1.0, useful for counting tests).
    """
    shape = check_shape(shape)
    nnz = _resolve_nnz(shape, nnz, density)
    rng = np.random.default_rng(seed)
    total = int(np.prod([int(s) for s in shape]))
    if total <= 2 ** 62 and total > 0:
        # Sample flat positions without replacement when the dense size fits
        # in an integer range; this is exact and fast for the sizes we use.
        flat = rng.choice(total, size=nnz, replace=False)
        coords = np.stack(np.unravel_index(np.sort(flat), shape), axis=1).astype(np.int64)
    else:  # pragma: no cover - astronomically large shapes
        def draw(n: int) -> np.ndarray:
            return np.stack(
                [rng.integers(0, s, size=n) for s in shape], axis=1
            ).astype(np.int64)

        coords = _dedupe_target(draw, shape, nnz, rng)
    values = _draw_values(rng, nnz, value_distribution)
    return COOTensor(shape, coords, values, sort=True)


def power_law_sparse_tensor(
    shape: Sequence[int],
    nnz: Optional[int] = None,
    density: Optional[float] = None,
    seed: Optional[int] = None,
    exponent: float = 1.1,
    value_distribution: str = "uniform",
) -> COOTensor:
    """A sparse tensor with skewed (Zipf-like) per-mode index distributions.

    Real FROSTT tensors have highly non-uniform mode marginals (a few very
    dense slices, a long tail of nearly empty ones).  This generator draws
    each coordinate of each mode from a truncated Zipf distribution with the
    given *exponent*, then de-duplicates, reproducing that skew.
    """
    shape = check_shape(shape)
    nnz = _resolve_nnz(shape, nnz, density)
    require(exponent > 1.0, f"exponent must exceed 1.0, got {exponent}")
    rng = np.random.default_rng(seed)

    def draw(n: int) -> np.ndarray:
        cols = []
        for s in shape:
            # truncated Zipf via inverse-CDF on a precomputed table
            ranks = np.arange(1, s + 1, dtype=np.float64)
            probs = ranks ** (-exponent)
            probs /= probs.sum()
            cols.append(rng.choice(s, size=n, p=probs))
        # Random per-mode permutation so the "hot" indices are not all 0.
        out = np.stack(cols, axis=1).astype(np.int64)
        return out

    coords = _dedupe_target(draw, shape, nnz, rng)
    # Permute hot indices to random positions, consistently per mode.
    for mode, s in enumerate(shape):
        perm = rng.permutation(s)
        coords[:, mode] = perm[coords[:, mode]]
    values = _draw_values(rng, nnz, value_distribution)
    return COOTensor(shape, coords, values, sort=True)


def block_sparse_tensor(
    shape: Sequence[int],
    block_shape: Sequence[int],
    n_blocks: int,
    seed: Optional[int] = None,
    fill: float = 1.0,
    value_distribution: str = "uniform",
) -> COOTensor:
    """A sparse tensor whose nonzeros cluster into dense blocks.

    Useful for cache-model tests: blocked patterns have very different reuse
    behaviour from uniform patterns at identical nnz.
    """
    shape = check_shape(shape)
    block_shape = check_shape(block_shape)
    require(len(block_shape) == len(shape), "block_shape must match tensor order")
    for b, s in zip(block_shape, shape):
        require(b <= s, f"block dimension {b} exceeds tensor dimension {s}")
    n_blocks = check_positive_int(n_blocks, "n_blocks")
    require(0.0 < fill <= 1.0, "fill must be in (0, 1]")
    rng = np.random.default_rng(seed)

    all_coords = []
    for _ in range(n_blocks):
        origin = [int(rng.integers(0, s - b + 1)) for s, b in zip(shape, block_shape)]
        grids = np.meshgrid(
            *[np.arange(o, o + b) for o, b in zip(origin, block_shape)], indexing="ij"
        )
        block = np.stack([g.ravel() for g in grids], axis=1)
        if fill < 1.0:
            keep = rng.random(block.shape[0]) < fill
            block = block[keep]
        all_coords.append(block)
    coords = np.unique(np.vstack(all_coords), axis=0).astype(np.int64)
    values = _draw_values(rng, coords.shape[0], value_distribution)
    return COOTensor(shape, coords, values, sort=True)


def random_dense_matrix(
    rows: int, cols: int, seed: Optional[int] = None, name: Optional[str] = None
) -> DenseTensor:
    """Convenience constructor for the dense factor matrices of SpTTN kernels."""
    rows = check_positive_int(rows, "rows")
    cols = check_positive_int(cols, "cols")
    return DenseTensor.random((rows, cols), name=name, seed=seed)


def _draw_values(rng: np.random.Generator, n: int, distribution: str) -> np.ndarray:
    if distribution == "uniform":
        vals = rng.random(n)
        # Shift away from zero so that explicit zeros never appear by chance.
        return vals * 0.9 + 0.1
    if distribution == "normal":
        return rng.standard_normal(n)
    if distribution == "ones":
        return np.ones(n)
    raise ValueError(
        f"unknown value_distribution {distribution!r}; "
        "expected 'uniform', 'normal' or 'ones'"
    )
