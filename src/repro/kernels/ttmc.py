"""Tensor-Times-Matrix chain (TTMc) and its all-mode variant.

TTMc is the bottleneck kernel of Tucker/HOOI (Equation 2 of the paper): the
sparse tensor is contracted with one factor matrix on every mode except the
target mode, which is left open::

    S(i_m, r_0, ..., r_{m-1}, r_{m+1}, ...) =
        sum_{i_n, n != m} T(i_0, ..., i_{d-1}) * prod_{n != m} F_n(i_n, r_n)

The *all-mode* TTMc contracts every mode (the core-tensor update of HOOI and
the kernel of the Figure 9/10 experiments)::

    S(r_0, ..., r_{d-1}) = sum_{i_0..i_{d-1}} T(...) * prod_n F_n(i_n, r_n)
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.expr import SpTTNKernel
from repro.core.scheduler import Schedule
from repro.engine.executor import TensorLike
from repro.kernels.spttn import KernelBuilder, build_kernel, run_kernel, sparse_order_of
from repro.sptensor.dense import DenseTensor
from repro.util.counters import OpCounter
from repro.util.validation import require


def ttmc_spec(order: int, mode: int) -> str:
    """Einsum specification of the mode-*mode* TTMc for an order-*order* tensor."""
    kb = KernelBuilder(order)
    require(0 <= mode < order, f"mode {mode} out of range for order {order}")
    inputs = [kb.sparse_subscripts]
    output = kb.sparse_index(mode)
    dense_pos = 0
    for n in range(order):
        if n == mode:
            continue
        rank = kb.dense_index(dense_pos)
        dense_pos += 1
        inputs.append(kb.sparse_index(n) + rank)
        output += rank
    return ",".join(inputs) + "->" + output


def all_mode_ttmc_spec(order: int) -> str:
    """Einsum specification of the all-mode TTMc (every sparse mode contracted)."""
    kb = KernelBuilder(order)
    inputs = [kb.sparse_subscripts]
    output = ""
    for n in range(order):
        rank = kb.dense_index(n)
        inputs.append(kb.sparse_index(n) + rank)
        output += rank
    return ",".join(inputs) + "->" + output


def _factor_list(
    order: int, mode: Optional[int], factors: Sequence[Union[DenseTensor, np.ndarray]]
) -> List[Union[DenseTensor, np.ndarray]]:
    if mode is None:
        require(
            len(factors) == order,
            f"all-mode TTMc needs {order} factors, got {len(factors)}",
        )
        return list(factors)
    if len(factors) == order:
        return [f for n, f in enumerate(factors) if n != mode]
    require(
        len(factors) == order - 1,
        f"expected {order} or {order - 1} factors, got {len(factors)}",
    )
    return list(factors)


def ttmc_kernel(
    tensor: TensorLike,
    factors: Sequence[Union[DenseTensor, np.ndarray]],
    mode: int = 0,
) -> Tuple[SpTTNKernel, dict]:
    """Build (without executing) the TTMc kernel and its operand mapping."""
    order = sparse_order_of(tensor)
    spec = ttmc_spec(order, mode)
    operands = [tensor] + list(_factor_list(order, mode, factors))
    return build_kernel(spec, operands)


def ttmc(
    tensor: TensorLike,
    factors: Sequence[Union[DenseTensor, np.ndarray]],
    mode: int = 0,
    schedule: Optional[Schedule] = None,
    counter: Optional[OpCounter] = None,
    buffer_dim_bound: Optional[int] = 2,
) -> np.ndarray:
    """Compute the mode-*mode* TTMc of a sparse tensor with factor matrices."""
    order = sparse_order_of(tensor)
    spec = ttmc_spec(order, mode)
    operands = [tensor] + list(_factor_list(order, mode, factors))
    output, _ = run_kernel(
        spec,
        operands,
        schedule=schedule,
        counter=counter,
        buffer_dim_bound=buffer_dim_bound,
    )
    assert isinstance(output, np.ndarray)
    return output


def all_mode_ttmc_kernel(
    tensor: TensorLike,
    factors: Sequence[Union[DenseTensor, np.ndarray]],
) -> Tuple[SpTTNKernel, dict]:
    """Build (without executing) the all-mode TTMc kernel and operand mapping."""
    order = sparse_order_of(tensor)
    spec = all_mode_ttmc_spec(order)
    operands = [tensor] + _factor_list(order, None, factors)
    return build_kernel(spec, operands)


def all_mode_ttmc(
    tensor: TensorLike,
    factors: Sequence[Union[DenseTensor, np.ndarray]],
    schedule: Optional[Schedule] = None,
    counter: Optional[OpCounter] = None,
    buffer_dim_bound: Optional[int] = 2,
) -> np.ndarray:
    """Contract every mode of the sparse tensor with a factor matrix."""
    order = sparse_order_of(tensor)
    spec = all_mode_ttmc_spec(order)
    operands = [tensor] + _factor_list(order, None, factors)
    output, _ = run_kernel(
        spec,
        operands,
        schedule=schedule,
        counter=counter,
        buffer_dim_bound=buffer_dim_bound,
    )
    assert isinstance(output, np.ndarray)
    return output
