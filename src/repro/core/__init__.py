"""Core algorithms of the reproduction.

This subpackage contains the paper's primary contribution:

* :mod:`repro.core.expr` — SpTTN kernel intermediate representation
  (einsum-style parsing and validation, Section 3 of the paper).
* :mod:`repro.core.contraction_path` — contraction paths (Definition 3.1)
  and their enumeration (Section 4.1.1).
* :mod:`repro.core.loop_nest` — loop orders, peeling, fully-fused loop nest
  forests and intermediate-buffer inference (Definitions 3.2, 4.1–4.3,
  Equation 5).
* :mod:`repro.core.cost_model` — tree-separable cost functions
  (Definitions 4.4–4.6) plus the BLAS-aware execution-cost model used by
  the default scheduler (Section 5/7).
* :mod:`repro.core.optimizer` — Algorithm 1, the dynamic-programming search
  for cost-optimal loop orders, with memoization.
* :mod:`repro.core.enumeration` — exhaustive enumeration of loop orders and
  loop nests for autotuning (Section 4.1.2).
* :mod:`repro.core.scheduler` — the end-to-end schedule selection used by
  the runtime (sweep contraction paths in asymptotic-cost order, run the DP,
  apply constraints; Section 5).
* :mod:`repro.core.autotune` — measured-time autotuning over enumerated
  loop nests (used for the Figure 10 experiment).
* :mod:`repro.core.search` — deterministic parallel sweeps over the
  enumeration space (cost-model scoring and measured autotuning fanned
  across ``multiprocessing`` workers).
"""

from repro.core.expr import IndexInfo, KernelOperand, SpTTNKernel, parse_kernel
from repro.core.contraction_path import (
    ContractionTerm,
    ContractionPath,
    enumerate_contraction_paths,
    count_contraction_paths,
    path_flop_estimate,
    rank_contraction_paths,
)
from repro.core.loop_nest import (
    LoopOrder,
    LoopNest,
    LoopVertex,
    FusedForest,
    build_fused_forest,
    intermediate_buffers,
    validate_loop_order,
)
from repro.core.cost_model import (
    TreeSeparableCost,
    MaxBufferDimCost,
    MaxBufferSizeCost,
    CacheMissCost,
    ExecutionCost,
    BoundedBufferCost,
    LexicographicCost,
    evaluate_cost,
)
from repro.core.optimizer import OptimalLoopOrderSearch, find_optimal_loop_order
from repro.core.enumeration import (
    enumerate_loop_orders_for_term,
    enumerate_loop_orders,
    enumerate_loop_nests,
    count_loop_orders,
)
from repro.core.scheduler import Schedule, SpTTNScheduler
from repro.core.autotune import Autotuner, AutotuneResult
from repro.core.search import (
    CostModelEvaluator,
    ExecutionRunner,
    SweepEntry,
    SweepResult,
    best_loop_nest,
    measure_loop_nests,
    parallel_map,
    resolve_workers,
    sweep_loop_nests,
    sweep_loop_orders,
)

__all__ = [
    "IndexInfo",
    "KernelOperand",
    "SpTTNKernel",
    "parse_kernel",
    "ContractionTerm",
    "ContractionPath",
    "enumerate_contraction_paths",
    "count_contraction_paths",
    "path_flop_estimate",
    "rank_contraction_paths",
    "LoopOrder",
    "LoopNest",
    "LoopVertex",
    "FusedForest",
    "build_fused_forest",
    "intermediate_buffers",
    "validate_loop_order",
    "TreeSeparableCost",
    "MaxBufferDimCost",
    "MaxBufferSizeCost",
    "CacheMissCost",
    "ExecutionCost",
    "BoundedBufferCost",
    "LexicographicCost",
    "evaluate_cost",
    "OptimalLoopOrderSearch",
    "find_optimal_loop_order",
    "enumerate_loop_orders_for_term",
    "enumerate_loop_orders",
    "enumerate_loop_nests",
    "count_loop_orders",
    "Schedule",
    "SpTTNScheduler",
    "Autotuner",
    "AutotuneResult",
    "CostModelEvaluator",
    "ExecutionRunner",
    "SweepEntry",
    "SweepResult",
    "best_loop_nest",
    "measure_loop_nests",
    "parallel_map",
    "resolve_workers",
    "sweep_loop_nests",
    "sweep_loop_orders",
]
