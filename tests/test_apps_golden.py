"""Golden regression tests for the apps layer.

CP-ALS and Tucker-HOOI drive every engine layer — schedule cache, compiled
plans, the lowered VM, BLAS offload — through dozens of kernel executions,
so their seeded fit trajectories are a sensitive end-to-end probe: a future
engine change that silently shifts numerics (a reassociated reduction, a
changed accumulation order, a broken recipe) moves these values long before
any unit test notices.

The stored values were produced by the seed revision of this test (NumPy
substrate, float64 accumulation).  Tolerances are tight enough to catch
algorithmic drift but leave room for BLAS/LAPACK library variation across
platforms: the trajectories are fit values and norms — invariant under the
sign/rotation ambiguity of the underlying SVD factors — so 1e-6 relative
slack is platform noise, not drift.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.cp_als import cp_als
from repro.apps.tucker_hooi import tucker_hooi
from repro.sptensor import random_sparse_tensor

_RTOL = 1e-6
_ATOL = 1e-9

#: Seeded fit trajectory of cp_als(T(12,10,8; nnz=150; seed=42), rank=4,
#: iterations=5, seed=7, tolerance=0).
_CP_FITS = [
    0.11160780868986775,
    0.12703641227644002,
    0.13724516185448865,
    0.1490595732808081,
    0.15782069401649013,
]
#: Sorted column weights after the final sweep.
_CP_WEIGHTS = [
    1.7917970257772893,
    2.188581264087112,
    2.3116347506911676,
    2.672995635846958,
]

#: Seeded fit trajectory of tucker_hooi(same tensor, ranks=(3,3,2),
#: iterations=4, seed=7, tolerance=0).
_TUCKER_FITS = [
    0.044939275804668166,
    0.05398270429268737,
    0.06257218832890754,
    0.07844977580080692,
]
_TUCKER_CORE_NORM = 2.879782264670812


@pytest.fixture
def golden_tensor():
    return random_sparse_tensor((12, 10, 8), nnz=150, seed=42)


def test_cp_als_fit_trajectory_matches_golden(golden_tensor):
    result = cp_als(golden_tensor, rank=4, iterations=5, seed=7, tolerance=0.0)
    assert result.iterations == len(_CP_FITS)
    np.testing.assert_allclose(result.fits, _CP_FITS, rtol=_RTOL, atol=_ATOL)
    np.testing.assert_allclose(
        np.sort(result.weights), _CP_WEIGHTS, rtol=_RTOL, atol=_ATOL
    )
    # fits must be monotonically non-decreasing on this workload — a sanity
    # anchor independent of the stored constants
    assert all(b >= a - 1e-12 for a, b in zip(result.fits, result.fits[1:]))


def test_tucker_hooi_fit_trajectory_matches_golden(golden_tensor):
    result = tucker_hooi(
        golden_tensor, ranks=(3, 3, 2), iterations=4, seed=7, tolerance=0.0
    )
    assert result.iterations == len(_TUCKER_FITS)
    np.testing.assert_allclose(result.fits, _TUCKER_FITS, rtol=_RTOL, atol=_ATOL)
    np.testing.assert_allclose(
        float(np.linalg.norm(result.core)), _TUCKER_CORE_NORM, rtol=_RTOL
    )
    assert all(b >= a - 1e-12 for a, b in zip(result.fits, result.fits[1:]))


@pytest.mark.parametrize("engine", ["lowered", "interpret"])
def test_golden_trajectories_stable_across_engines(
    golden_tensor, engine, monkeypatch
):
    """The golden values must hold on both engine tiers (the apps follow
    the ``REPRO_ENGINE`` process default)."""
    monkeypatch.setenv("REPRO_ENGINE", engine)
    result = cp_als(golden_tensor, rank=4, iterations=5, seed=7, tolerance=0.0)
    np.testing.assert_allclose(result.fits, _CP_FITS, rtol=_RTOL, atol=_ATOL)
