"""Compiled execution plans and the process-wide plan/schedule caches.

The paper's premise is that loop-nest *search* is cheap relative to
execution — but only if search and planning results are amortized across the
many executions a real workload performs (CP-ALS and Tucker-HOOI run the
same MTTKRP/TTMc kernel once per mode per sweep, dozens of times total).
This module provides that amortization layer:

* :class:`CompiledPlan` — the array-independent result of the executor's
  preprocessing stage (Algorithm 2, stage 1).  A plan maps each recursion
  site of the fused loop nest to a list of *symbolic* steps: loops, buffer
  resets and offload sites whose operand recipes name slots (``dense``
  operand, intermediate ``buffer``, kernel ``out``) instead of embedding
  concrete arrays.  Binding a plan to freshly allocated arrays is a cheap
  substitution pass, so repeated ``execute()`` calls on the same structure
  perform zero per-call symbolic analysis.
* :class:`PlanCache` — a small LRU cache with hit/miss/eviction counters,
  keyed by the full structural identity of a loop nest
  (:func:`plan_key`: kernel signature, loop orders, contraction path, CSF
  mode order, operand shapes/dtypes, offload flag).
* :func:`cached_schedule` — the same amortization for the scheduler's
  search itself, keyed by kernel signature plus sparsity statistics, so
  applications that repeatedly schedule structurally identical kernels
  (the apps in :mod:`repro.apps`, benchmark sweeps) pay for the search
  once per process.

Caches are per-process and rely on the GIL for consistency; entries are
immutable once built, so sharing a :class:`CompiledPlan` between executors
is safe.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Dict, Hashable, List, Mapping, Optional, Tuple

import numpy as np

from repro.core.expr import SpTTNKernel
from repro.core.loop_nest import LoopNest
from repro.core.scheduler import Schedule, SpTTNScheduler
from repro.sptensor.coo import COOTensor
from repro.sptensor.csf import CSFTensor
from repro.sptensor.dense import DenseTensor

PlanKey = Tuple[Hashable, ...]

#: A recursion site of the fused loop nest: (term positions, loop depth).
SiteKey = Tuple[Tuple[int, ...], int]

# --------------------------------------------------------------------------- #
# Recipe encoding shared by plan producers and consumers
# --------------------------------------------------------------------------- #
# Operand-recipe modes (first element of a recipe tuple).  Plans store these
# symbolic recipes; both the interpreter (repro.engine.executor) and the
# vectorized lowering pass (repro.engine.lowering) decode them.
SPARSE_LEAF = 0      # scalar: csf.values[csf_pos]
SPARSE_LOOKUP = 1    # scalar: find_leaf over the bound csf-mode values
SPARSE_FIBER = 2     # vector: csf.values[lo:hi] of the current node's children
ARRAY = 3            # dense array / buffer / dense output slice
SPARSE_OUT_LEAF = 4  # accumulate into out_values[csf_pos]
SPARSE_OUT_LOOKUP = 5
SPARSE_OUT_FIBER = 6  # accumulate into out_values[lo:hi]

# Symbolic array slots used in cached (array-independent) recipes; bound to
# concrete arrays (or registers) per execution.
SLOT_DENSE = "dense"    # a dense input operand, by name
SLOT_BUFFER = "buffer"  # an intermediate buffer, by name
SLOT_OUT = "out"        # the dense output array


# --------------------------------------------------------------------------- #
# Structural keys
# --------------------------------------------------------------------------- #
def kernel_signature(kernel: SpTTNKernel) -> PlanKey:
    """Hashable structural identity of a kernel (no sparsity statistics)."""
    return (
        tuple((op.name, op.indices, op.is_sparse) for op in kernel.operands),
        (kernel.output.name, kernel.output.indices, kernel.output.is_sparse),
        tuple(sorted(kernel.index_dims.items())),
        kernel.csf_mode_order,
    )


def operand_signature(
    kernel: SpTTNKernel, tensors: Mapping[str, object]
) -> PlanKey:
    """Shapes and dtypes of the concrete operands, in operand order."""
    sig: List[Tuple[Hashable, ...]] = []
    for op in kernel.operands:
        value = tensors[op.name]
        if isinstance(value, (COOTensor, CSFTensor)):
            sig.append(("sparse", tuple(value.shape), str(value.values.dtype)))
        elif isinstance(value, DenseTensor):
            sig.append(("dense", tuple(value.data.shape), str(value.data.dtype)))
        else:
            arr = np.asarray(value)
            sig.append(("dense", tuple(arr.shape), str(arr.dtype)))
    return tuple(sig)


def plan_key(
    kernel: SpTTNKernel,
    loop_nest: LoopNest,
    offload: bool = True,
    operands: PlanKey = (),
) -> PlanKey:
    """Full structural identity of one compiled plan.

    Two executions share a plan exactly when this key matches: same kernel
    signature, same contraction path, same per-term loop orders, same CSF
    mode order (part of the kernel signature), same operand shapes/dtypes
    and the same offload setting.
    """
    path = loop_nest.path
    return (
        kernel_signature(kernel),
        tuple(
            (t.lhs, t.rhs, t.out, t.lhs_indices, t.rhs_indices, t.out_indices)
            for t in path
        ),
        tuple(tuple(order) for order in loop_nest.order),
        bool(offload),
        tuple(operands),
    )


def schedule_key(
    kernel: SpTTNKernel,
    buffer_dim_bound: Optional[int],
    flop_tolerance: float,
    max_paths: Optional[int],
    enforce_csf_order: bool,
) -> PlanKey:
    """Identity of one scheduling problem (kernel structure + sparsity stats)."""
    stats = kernel.sparse_stats
    prefix = stats.get("prefix_nnz") or {}
    return (
        kernel_signature(kernel),
        stats.get("nnz"),
        tuple(sorted(prefix.items())),
        buffer_dim_bound,
        float(flop_tolerance),
        max_paths,
        bool(enforce_csf_order),
    )


# --------------------------------------------------------------------------- #
# Compiled plans
# --------------------------------------------------------------------------- #
class CompiledPlan:
    """Symbolic execution plan for one loop-nest structure.

    The plan is a mapping from recursion sites (term positions, depth) to
    step lists produced by the executor's preprocessing stage.  Steps are
    array-independent: operand recipes reference slots by name and are bound
    to concrete arrays per execution.  Sites are discovered lazily during
    the first execution and reused verbatim afterwards.

    ``lowered`` records the whole-nest vectorization decision (the general
    lowering of :mod:`repro.engine.lowering`): ``None`` until the first
    execution attempts the lowering pass, then either ``False`` (not
    lowerable — the interpreter is used) or the compiled
    :class:`~repro.engine.lowering.ir.Program`.
    """

    __slots__ = ("key", "sites", "lowered")

    def __init__(self, key: PlanKey) -> None:
        self.key = key
        self.sites: Dict[SiteKey, list] = {}
        self.lowered: object = None

    @property
    def n_sites(self) -> int:
        return len(self.sites)

    def site(self, site_key: SiteKey) -> Optional[list]:
        return self.sites.get(site_key)

    def add_site(self, site_key: SiteKey, steps: list) -> list:
        self.sites[site_key] = steps
        return steps

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CompiledPlan(sites={len(self.sites)})"


class PlanCache:
    """Bounded LRU cache with hit/miss/eviction counters.

    Used process-wide for compiled plans and schedules; create private
    instances for isolation (tests, benchmarks measuring cold starts).
    """

    def __init__(self, max_entries: Optional[int] = 512) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be None or >= 1")
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._entries: "OrderedDict[PlanKey, object]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: PlanKey) -> bool:
        return key in self._entries

    def get(self, key: PlanKey) -> Optional[object]:
        """Peek without touching the counters or the LRU order."""
        return self._entries.get(key)

    def get_or_create(self, key: PlanKey, factory: Callable[[], object]) -> object:
        """Return the cached value for *key*, building it on first use."""
        value = self._entries.get(key)
        if value is not None:
            self.hits += 1
            self._entries.move_to_end(key)
            return value
        self.misses += 1
        value = factory()
        self._entries[key] = value
        if self.max_entries is not None and len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.evictions += 1
        return value

    def clear(self) -> None:
        self._entries.clear()

    def reset_stats(self) -> None:
        self.hits = self.misses = self.evictions = 0

    def stats(self) -> Dict[str, int]:
        return {
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PlanCache(entries={len(self._entries)}, hits={self.hits}, "
            f"misses={self.misses})"
        )


_DEFAULT_PLAN_CACHE = PlanCache()
_DEFAULT_SCHEDULE_CACHE = PlanCache(max_entries=256)
_DEFAULT_EXECUTOR_CACHE = PlanCache(max_entries=128)


def default_plan_cache() -> PlanCache:
    """The process-wide cache of compiled plans used by the executor."""
    return _DEFAULT_PLAN_CACHE


def default_schedule_cache() -> PlanCache:
    """The process-wide cache of schedules used by :func:`cached_schedule`."""
    return _DEFAULT_SCHEDULE_CACHE


def default_executor_cache() -> PlanCache:
    """The process-wide cache of executors used by :func:`cached_executor`."""
    return _DEFAULT_EXECUTOR_CACHE


def clear_caches() -> None:
    """Drop all cached plans, schedules and executors (stats are kept)."""
    _DEFAULT_PLAN_CACHE.clear()
    _DEFAULT_SCHEDULE_CACHE.clear()
    _DEFAULT_EXECUTOR_CACHE.clear()


# --------------------------------------------------------------------------- #
# Schedule caching
# --------------------------------------------------------------------------- #
def cached_schedule(
    kernel: SpTTNKernel,
    buffer_dim_bound: Optional[int] = 2,
    flop_tolerance: float = 1.5,
    max_paths: Optional[int] = 5000,
    enforce_csf_order: bool = True,
    cache: Optional[PlanCache] = None,
) -> Schedule:
    """Run the scheduler's search once per kernel structure per process.

    Structurally identical kernels (same operands, dimensions, CSF mode
    order and sparsity statistics) reuse the previously selected
    :class:`~repro.core.scheduler.Schedule`; the returned schedule's
    ``loop_nest`` is kernel-object independent and can be executed against
    any kernel with the same signature.  Custom cost functions cannot be
    keyed, so use :class:`~repro.core.scheduler.SpTTNScheduler` directly
    for those.
    """
    cache = cache if cache is not None else _DEFAULT_SCHEDULE_CACHE
    key = schedule_key(
        kernel, buffer_dim_bound, flop_tolerance, max_paths, enforce_csf_order
    )

    def build() -> Schedule:
        scheduler = SpTTNScheduler(
            kernel,
            buffer_dim_bound=buffer_dim_bound,
            flop_tolerance=flop_tolerance,
            max_paths=max_paths,
            enforce_csf_order=enforce_csf_order,
        )
        return scheduler.schedule()

    schedule = cache.get_or_create(key, build)
    assert isinstance(schedule, Schedule)
    return schedule


# --------------------------------------------------------------------------- #
# Executor caching
# --------------------------------------------------------------------------- #
def cached_executor(
    kernel: SpTTNKernel,
    loop_nest: LoopNest,
    offload: bool = True,
    engine: Optional[str] = None,
    cache: Optional[PlanCache] = None,
):
    """One process-wide executor per loop-nest structure.

    Reusing an executor across ``execute()`` calls is the library's fast
    path (the compiled plan is bound, never rebuilt); this helper makes the
    reuse automatic for callers that cannot conveniently hold the executor
    themselves — the measured sweeps' :class:`~repro.core.search.ExecutionRunner`
    (one executor per candidate per worker process) and the distributed
    runtime (one executor shared by all virtual ranks of a kernel).

    ``engine=None`` is resolved through the ``REPRO_ENGINE`` default *now*,
    so the cache key always names a concrete engine and later environment
    changes cannot alias entries.  Cached executors accumulate their
    ``counter`` across uses and are not safe for concurrent use from
    threads; pass ``cache=``\\ a private :class:`PlanCache` (or construct
    :class:`~repro.engine.executor.LoopNestExecutor` directly) for
    isolation.
    """
    # Imported here: repro.engine.executor imports this module at load time.
    from repro.engine.executor import LoopNestExecutor, default_engine

    resolved = default_engine() if engine is None else engine
    cache = cache if cache is not None else _DEFAULT_EXECUTOR_CACHE
    key = ("executor", plan_key(kernel, loop_nest, offload=offload), resolved)
    executor = cache.get_or_create(
        key,
        lambda: LoopNestExecutor(
            kernel, loop_nest, offload=offload, engine=resolved
        ),
    )
    assert isinstance(executor, LoopNestExecutor)
    return executor
