"""E3/E4/E5 — Figure 8: strong scaling of TTMc, MTTKRP and TTTP.

The paper runs these kernels on Stampede2 with 64 MPI ranks per node on
synthetic tensors with identical mode sizes (order-3 dimension 8192, order-4
dimension 1024, 0.1% sparsity, R = 32) and shows near-linear scaling that
tapers as communication and load imbalance take over; TTTP additionally
starts more than 340x ahead of CTF on a single node.

Here the distributed runtime is the simulator described in DESIGN.md: the
single-rank execution is measured, and the parallel time combines the
most-loaded rank's share of the nonzeros with the alpha-beta communication
model.  Each benchmark times the end-to-end sweep and attaches the per-rank
series (time, efficiency, load imbalance) as ``extra_info`` rows — the data
behind the Figure 8 curves.

Expected shape: times decrease monotonically with the process count, with
parallel efficiency degrading gracefully (communication/latency floor), and
the sparse-output TTTP scaling best because it needs no output reduction.
"""

from __future__ import annotations

import pytest

from repro.distributed import measured_scaling, strong_scaling
from repro.kernels.mttkrp import mttkrp_kernel
from repro.kernels.ttmc import ttmc_kernel
from repro.kernels.tttp import tttp_kernel
from repro.runtime import shutdown_pool
from repro.sptensor import random_dense_matrix, random_sparse_tensor

from _workloads import bench_rng, record_rows

PROCESS_COUNTS = (1, 2, 4, 8, 16, 32, 64)
RANK = 32


def _tensor3(dim=96, nnz=6000, seed=0):
    return random_sparse_tensor((dim, dim, dim), nnz=nnz, seed=seed)


def _factors(tensor, rank=RANK, seed=0):
    return [
        random_dense_matrix(d, rank, seed=seed + i) for i, d in enumerate(tensor.shape)
    ]


def _run_scaling(benchmark, kernel, tensors, name):
    result = benchmark.pedantic(
        lambda: strong_scaling(kernel, tensors, PROCESS_COUNTS, kernel_name=name),
        rounds=1,
        iterations=1,
    )
    rows = result.as_rows()
    record_rows(benchmark, rows)
    times = result.times()
    # shape assertions: strong scaling must actually help, monotonically at
    # the small end and by a large factor overall
    assert times[1] < times[0]
    assert times[-1] < times[0] / 4
    return result


@pytest.mark.smoke
def test_fig8a_ttmc_strong_scaling(benchmark):
    tensor = _tensor3(seed=1)
    factors = _factors(tensor, rank=8, seed=1)
    kernel, tensors = ttmc_kernel(tensor, factors, mode=0)
    _run_scaling(benchmark, kernel, tensors, "ttmc")


def test_fig8b_mttkrp_strong_scaling(benchmark):
    tensor = _tensor3(seed=2)
    factors = _factors(tensor, rank=RANK, seed=2)
    kernel, tensors = mttkrp_kernel(tensor, factors, mode=0)
    _run_scaling(benchmark, kernel, tensors, "mttkrp")


def test_fig8b_mttkrp_order4_strong_scaling(benchmark):
    tensor = random_sparse_tensor((28, 28, 28, 28), nnz=4000, seed=3)
    factors = _factors(tensor, rank=16, seed=3)
    kernel, tensors = mttkrp_kernel(tensor, factors, mode=0)
    _run_scaling(benchmark, kernel, tensors, "mttkrp-order4")


def test_fig8c_tttp_strong_scaling(benchmark):
    tensor = _tensor3(seed=4)
    factors = _factors(tensor, rank=RANK, seed=4)
    kernel, tensors = tttp_kernel(tensor, factors)
    result = _run_scaling(benchmark, kernel, tensors, "tttp")
    # sparse-pattern output: no reduction volume at all
    assert all(run.reduction_elements == 0 for run in result.runs)


def test_fig8_measured_parallel_vs_simulated(benchmark):
    """Overlay *measured* rank-parallel execute times on simulate().

    The simulator's Figure 8 curves were previously validated only against
    their own alpha-beta model; the worker-pool tier makes the same sweep
    measurable.  On a small workload the absolute times are dominated by
    per-task overheads the model does not see, so the assertion is about
    the overlay existing and being well-formed (both series positive and
    recorded side by side), not about the curves coinciding — the rows in
    ``extra_info`` are the data behind a measured-vs-predicted Figure 8
    panel.
    """
    seed = int(bench_rng(88).integers(2**16))
    tensor = random_sparse_tensor((72, 72, 72), nnz=20000, seed=seed)
    factors = _factors(tensor, rank=16, seed=seed)
    kernel, tensors = mttkrp_kernel(tensor, factors, mode=0)

    rows = benchmark.pedantic(
        lambda: measured_scaling(
            kernel,
            tensors,
            (1, 2, 4),
            kernel_name="mttkrp-measured",
            workers=2,
            engine="lowered",
        ),
        rounds=1,
        iterations=1,
    )
    shutdown_pool()
    # record how far the measured curve sits from the prediction per count
    for row in rows:
        row["measured_over_predicted"] = row["measured_s"] / row["predicted_s"]
    record_rows(benchmark, rows)
    assert [row["processes"] for row in rows] == [1, 2, 4]
    assert all(row["measured_s"] > 0 for row in rows)
    assert all(row["predicted_s"] > 0 for row in rows)


def test_fig8c_tttp_single_node_vs_ctf(benchmark):
    """The single-node TTTP gap vs CTF-style pairwise contraction.

    The paper reports >340x at full scale because the pairwise approach must
    materialize (and compute over) intermediates that are dense over the
    sparse tensor's modes, whose size grows with the cube of the mode
    dimension while the fused approach's work stays proportional to nnz.  At
    the scaled-down sizes that fit the Python substrate the pairwise
    intermediates still fit in memory and NumPy evaluates them in a handful
    of vectorized calls, so the *time* gap does not yet open up; the
    operation-count gap — the quantity that drives the full-scale result —
    does, and is what is asserted here (the wall-clock ratio is recorded in
    ``extra_info``).
    """
    from repro.frameworks import CTFLikeBaseline, SpTTNCyclopsBaseline

    tensor = random_sparse_tensor((40, 40, 40), nnz=2500, seed=5)
    factors = _factors(tensor, rank=RANK, seed=5)
    kernel, tensors = tttp_kernel(tensor, factors)

    ours = SpTTNCyclopsBaseline()
    ours.schedule_for(kernel)
    ctf = CTFLikeBaseline()

    def both():
        ours_res = ours.run(kernel, tensors)
        ctf_res = ctf.run(kernel, tensors)
        return ours_res, ctf_res

    ours_res, ctf_res = benchmark.pedantic(both, rounds=1, iterations=1)
    benchmark.extra_info["spttn_seconds"] = ours_res.seconds
    benchmark.extra_info["ctf_seconds"] = ctf_res.seconds
    benchmark.extra_info["spttn_flops"] = ours_res.counter.flops
    benchmark.extra_info["ctf_flops"] = ctf_res.counter.flops
    benchmark.extra_info["time_ratio"] = ctf_res.seconds / max(ours_res.seconds, 1e-12)
    benchmark.extra_info["flop_ratio"] = ctf_res.counter.flops / max(
        ours_res.counter.flops, 1
    )
    assert ours_res.counter.flops * 2 < ctf_res.counter.flops
