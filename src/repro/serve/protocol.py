"""Newline-delimited JSON wire protocol of the serving daemon.

Every message — in either direction — is one JSON object encoded as UTF-8
on one ``\\n``-terminated line (NDJSON).  Clients send *operations*
(``submit``, ``stats``, ``metrics``, ``health``, ``ping``, ``shutdown``)
carrying a caller-chosen
``id``; the daemon answers each operation with exactly one reply echoing
that ``id``, but replies are **streamed** in completion order, not request
order, so a client must demultiplex by ``id``.

Tensor operands and results travel as exact bytes: arrays are encoded as
``{"dtype", "shape", "data"}`` with ``data`` the base64 of the C-order
buffer, so a round trip through the daemon is *bit-identical* to handing
the same arrays to the in-process :class:`~repro.serve.ContractionService`.
Sparse COO tensors ship their canonical (deduplicated, sorted)
coordinate/value arrays and are rebuilt without a re-sort pass.

The full message schemas, error codes and a copy-pasteable session are
documented in ``docs/PROTOCOL.md``; this module is the single
encoder/decoder both the daemon and the blocking client use.

Examples
--------
>>> from repro.serve import mttkrp_request
>>> from repro.serve.protocol import decode_request, encode_request
>>> wire = encode_request(mttkrp_request(T, [B, C], mode=0))
>>> request = decode_request(wire)     # bit-identical operands
"""

from __future__ import annotations

import base64
import json
from typing import Any, Dict, List, Optional, Union

import numpy as np

from repro.serve.request import ContractionRequest
from repro.sptensor.coo import COOTensor
from repro.sptensor.dense import DenseTensor

#: Protocol revision carried in ``hello``/stats replies; bump on breaking
#: wire-format changes.
PROTOCOL_VERSION = 1

#: Client operations the daemon understands.
OPS = ("submit", "stats", "metrics", "health", "ping", "shutdown")

#: Structured error codes used in error replies.
ERROR_PROTOCOL = "protocol"      # malformed JSON / unknown op / bad schema
ERROR_ADMISSION = "admission"    # backpressure or invalid request spec
ERROR_EXECUTION = "execution"    # the contraction itself failed
ERROR_SHUTDOWN = "shutdown"      # daemon is draining; no new work accepted
ERROR_TIMEOUT = "timeout"        # the request's deadline_ms expired
ERROR_QUARANTINED = "quarantined"  # plan signature quarantined (poison)


class ProtocolError(ValueError):
    """A message violated the wire protocol (bad JSON, schema or types)."""


class ServeError(RuntimeError):
    """A structured error reply from the daemon, raised client-side.

    Attributes
    ----------
    code:
        One of the ``ERROR_*`` constants (``protocol``, ``admission``,
        ``execution``, ``shutdown``).
    """

    def __init__(self, code: str, message: str) -> None:
        super().__init__(f"[{code}] {message}")
        self.code = code


# --------------------------------------------------------------------------- #
# Array / tensor codecs
# --------------------------------------------------------------------------- #
def encode_array(arr: np.ndarray) -> Dict[str, Any]:
    """Encode one ndarray as ``{"dtype", "shape", "data"}`` (exact bytes)."""
    arr = np.ascontiguousarray(arr)
    return {
        "dtype": str(arr.dtype),
        "shape": list(arr.shape),
        "data": base64.b64encode(arr.tobytes()).decode("ascii"),
    }


def decode_array(obj: Any) -> np.ndarray:
    """Rebuild an ndarray from :func:`encode_array` output (writable copy)."""
    if not isinstance(obj, dict) or not {"dtype", "shape", "data"} <= set(obj):
        raise ProtocolError("array must be an object with dtype/shape/data")
    try:
        dtype = np.dtype(obj["dtype"])
        shape = tuple(int(d) for d in obj["shape"])
        raw = base64.b64decode(obj["data"])
        flat = np.frombuffer(raw, dtype=dtype)
        return flat.reshape(shape).copy()
    except ProtocolError:
        raise
    except Exception as exc:
        raise ProtocolError(f"malformed array: {exc}") from exc


def encode_tensor(value: Union[np.ndarray, DenseTensor, COOTensor]) -> Dict[str, Any]:
    """Encode one operand or result tensor (dense or sparse COO)."""
    if isinstance(value, COOTensor):
        return {
            "kind": "sparse",
            "shape": list(value.shape),
            "indices": encode_array(value.indices),
            "values": encode_array(value.values),
        }
    arr = value.data if isinstance(value, DenseTensor) else np.asarray(value)
    encoded = encode_array(arr)
    encoded["kind"] = "dense"
    return encoded


def decode_tensor(obj: Any) -> Union[np.ndarray, COOTensor]:
    """Rebuild one tensor from :func:`encode_tensor` output.

    Sparse tensors are rebuilt with ``sort=False``: the wire format carries
    the canonical (deduplicated, lexicographically sorted) arrays, so the
    constructor's sort pass is skipped and the round trip is bit-exact.
    """
    if not isinstance(obj, dict) or "kind" not in obj:
        raise ProtocolError("tensor must be an object with a 'kind' field")
    kind = obj["kind"]
    if kind == "dense":
        return decode_array(obj)
    if kind == "sparse":
        try:
            shape = tuple(int(d) for d in obj["shape"])
        except Exception as exc:
            raise ProtocolError(f"malformed sparse shape: {exc}") from exc
        indices = decode_array(obj.get("indices"))
        values = decode_array(obj.get("values"))
        try:
            return COOTensor(shape, indices, values, sort=False)
        except Exception as exc:
            raise ProtocolError(f"malformed sparse tensor: {exc}") from exc
    raise ProtocolError(f"unknown tensor kind {kind!r}")


# --------------------------------------------------------------------------- #
# Request codec
# --------------------------------------------------------------------------- #
def encode_request(request: ContractionRequest) -> Dict[str, Any]:
    """Encode one :class:`~repro.serve.ContractionRequest` for the wire."""
    encoded: Dict[str, Any] = {
        "spec": request.spec,
        "kind": request.kind,
        "operands": [encode_tensor(op) for op in request.operands],
    }
    if request.names is not None:
        encoded["names"] = list(request.names)
    if request.engine is not None:
        encoded["engine"] = request.engine
    if request.deadline_ms is not None:
        encoded["deadline_ms"] = float(request.deadline_ms)
    return encoded


def decode_request(obj: Any) -> ContractionRequest:
    """Rebuild a :class:`~repro.serve.ContractionRequest` from the wire."""
    if not isinstance(obj, dict):
        raise ProtocolError("request must be an object")
    spec = obj.get("spec")
    operands = obj.get("operands")
    if not isinstance(spec, str) or not spec:
        raise ProtocolError("request.spec must be a non-empty string")
    if not isinstance(operands, list) or not operands:
        raise ProtocolError("request.operands must be a non-empty array")
    names = obj.get("names")
    if names is not None and (
        not isinstance(names, list) or not all(isinstance(n, str) for n in names)
    ):
        raise ProtocolError("request.names must be an array of strings")
    engine = obj.get("engine")
    if engine is not None and not isinstance(engine, str):
        raise ProtocolError("request.engine must be a string")
    kind = obj.get("kind", "spec")
    if not isinstance(kind, str):
        raise ProtocolError("request.kind must be a string")
    deadline_ms = obj.get("deadline_ms")
    if deadline_ms is not None:
        if isinstance(deadline_ms, bool) or not isinstance(
            deadline_ms, (int, float)
        ):
            raise ProtocolError("request.deadline_ms must be a number")
        deadline_ms = float(deadline_ms)
    return ContractionRequest(
        spec=spec,
        operands=tuple(decode_tensor(op) for op in operands),
        names=tuple(names) if names is not None else None,
        engine=engine,
        kind=kind,
        deadline_ms=deadline_ms,
    )


# --------------------------------------------------------------------------- #
# Message framing and reply builders
# --------------------------------------------------------------------------- #
def dumps(message: Dict[str, Any]) -> bytes:
    """Serialize one message to a ``\\n``-terminated UTF-8 NDJSON line."""
    return json.dumps(message, separators=(",", ":")).encode("utf-8") + b"\n"


def loads(line: Union[bytes, str]) -> Dict[str, Any]:
    """Parse one NDJSON line into a message object; raises ProtocolError."""
    try:
        message = json.loads(line)
    except Exception as exc:
        raise ProtocolError(f"invalid JSON: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError("message must be a JSON object")
    return message


def result_reply(msg_id: Any, output: Union[np.ndarray, COOTensor]) -> Dict[str, Any]:
    """Success reply carrying one contraction result."""
    return {"id": msg_id, "ok": True, "result": encode_tensor(output)}


def error_reply(msg_id: Any, code: str, message: str) -> Dict[str, Any]:
    """Structured error reply (``id`` is null when unrecoverable)."""
    return {"id": msg_id, "ok": False, "error": {"code": code, "message": message}}


def stats_reply(msg_id: Any, stats: Dict[str, Any]) -> Dict[str, Any]:
    """Reply to a ``stats`` operation."""
    return {"id": msg_id, "ok": True, "stats": stats}


def metrics_reply(msg_id: Any, payload: Union[Dict[str, Any], str]) -> Dict[str, Any]:
    """Reply to a ``metrics`` operation.

    *payload* is either the structured registry snapshot (JSON object) or,
    when the client asked for ``format: "prometheus"``, the exposition text
    as one string.
    """
    return {"id": msg_id, "ok": True, "metrics": payload}


def health_reply(msg_id: Any, health: Dict[str, Any]) -> Dict[str, Any]:
    """Reply to a ``health`` operation (lightweight liveness/readiness)."""
    return {"id": msg_id, "ok": True, "health": health}


def pong_reply(msg_id: Any) -> Dict[str, Any]:
    """Reply to a ``ping`` operation."""
    return {"id": msg_id, "ok": True, "pong": True, "version": PROTOCOL_VERSION}


def shutdown_reply(msg_id: Any, draining: int) -> Dict[str, Any]:
    """Acknowledgement of a ``shutdown`` operation (*draining* = pending)."""
    return {"id": msg_id, "ok": True, "draining": draining}


def raise_if_error(message: Dict[str, Any]) -> Dict[str, Any]:
    """Client-side guard: raise :class:`ServeError` on an error reply."""
    if message.get("ok", False):
        return message
    error = message.get("error") or {}
    raise ServeError(
        str(error.get("code", "protocol")), str(error.get("message", "unknown error"))
    )


def decode_result(message: Dict[str, Any]) -> Union[np.ndarray, COOTensor]:
    """Extract and decode the tensor payload of one success reply."""
    raise_if_error(message)
    if "result" not in message:
        raise ProtocolError("reply carries no result payload")
    return decode_tensor(message["result"])


__all__ = [
    "PROTOCOL_VERSION",
    "OPS",
    "ERROR_PROTOCOL",
    "ERROR_ADMISSION",
    "ERROR_EXECUTION",
    "ERROR_SHUTDOWN",
    "ERROR_TIMEOUT",
    "ERROR_QUARANTINED",
    "ProtocolError",
    "ServeError",
    "encode_array",
    "decode_array",
    "encode_tensor",
    "decode_tensor",
    "encode_request",
    "decode_request",
    "dumps",
    "loads",
    "result_reply",
    "error_reply",
    "stats_reply",
    "metrics_reply",
    "health_reply",
    "pong_reply",
    "shutdown_reply",
    "raise_if_error",
    "decode_result",
]
