"""Parallel search sweeps: determinism, argmin equality, autotune wiring."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.core.autotune import Autotuner
from repro.core.cost_model import ExecutionCost, TreeSeparableCost
from repro.core.enumeration import enumerate_loop_orders
from repro.core.loop_nest import LoopNest
from repro.core.optimizer import OptimalLoopOrderSearch
from repro.core.scheduler import SpTTNScheduler
from repro.core.search import (
    CostModelEvaluator,
    ExecutionRunner,
    measure_loop_nests,
    parallel_map,
    resolve_workers,
    sweep_loop_nests,
    sweep_loop_orders,
)
from repro.engine.executor import LoopNestExecutor
from repro.__main__ import main as cli_main

ENUMERATION_FIXTURES = ["mttkrp_setup", "ttmc_setup", "tttp_setup", "allmode_setup"]


class ConstantCost(TreeSeparableCost):
    """Every loop nest costs the same — exercises deterministic tie-breaking."""

    def combine(self, a, b):
        return a + b

    def phi(self, path, root_index, inner_positions, after_positions, removed, inner_cost):
        return 0.0

    def leaf(self, path, term_position, after_positions, removed):
        return 0.0


class TestResolveWorkers:
    def test_resolution(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert resolve_workers(None) == 1
        assert resolve_workers(0) == 1
        assert resolve_workers(3) == 3
        assert resolve_workers(-1) >= 1

    def test_env_default_is_shared_with_the_runtime_layer(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "2")
        assert resolve_workers(None) == 2
        assert resolve_workers(0) == 1  # explicit serial beats the env


class TestParallelMap:
    def test_matches_serial(self):
        evaluator = CostModelEvaluatorStandIn()
        items = list(range(17))
        assert parallel_map(evaluator, items, workers=2) == [x * x for x in items]

    def test_unpicklable_falls_back_to_serial(self):
        items = [1, 2, 3]
        result = parallel_map(lambda x: x + 1, items, workers=2)
        assert result == [2, 3, 4]

    def test_empty_and_single(self):
        evaluator = CostModelEvaluatorStandIn()
        assert parallel_map(evaluator, [], workers=4) == []
        assert parallel_map(evaluator, [3], workers=4) == [9]


class CostModelEvaluatorStandIn:
    """Picklable module-level callable for the pool tests."""

    def __call__(self, x):
        return x * x


class TestCostModelSweep:
    @pytest.mark.parametrize("fixture", ENUMERATION_FIXTURES)
    def test_parallel_matches_serial_argmin(self, request, fixture):
        kernel, _ = request.getfixturevalue(fixture)
        path = SpTTNScheduler(kernel).schedule().path
        serial = sweep_loop_orders(kernel, path, workers=1, limit=36)
        parallel = sweep_loop_orders(kernel, path, workers=2, limit=36)
        assert serial.values() == parallel.values()
        assert serial.best.index == parallel.best.index
        assert serial.best.nest == parallel.best.nest
        assert serial.best.value == parallel.best.value

    def test_sweep_matches_optimizer(self, mttkrp_setup):
        kernel, _ = mttkrp_setup
        path = SpTTNScheduler(kernel).schedule().path
        cost = ExecutionCost(kernel)
        sweep = sweep_loop_orders(kernel, path, cost=cost, workers=2)
        dp = OptimalLoopOrderSearch(kernel, cost).search(path)
        assert sweep.best.value == pytest.approx(dp.cost)

    def test_deterministic_tie_break(self, mttkrp_setup):
        kernel, _ = mttkrp_setup
        path = SpTTNScheduler(kernel).schedule().path
        cost = ConstantCost(kernel)
        serial = sweep_loop_orders(kernel, path, cost=cost, workers=1)
        parallel = sweep_loop_orders(kernel, path, cost=cost, workers=2)
        # all candidates tie; the earliest enumerated one must win everywhere
        assert serial.best.index == 0
        assert parallel.best.index == 0
        assert parallel.best.nest == serial.best.nest

    def test_full_space_sweep(self, mttkrp_setup):
        kernel, _ = mttkrp_setup
        sweep = sweep_loop_nests(kernel, workers=2, limit_per_path=12)
        assert len(sweep) > 0
        ranked = sweep.sorted_entries()
        assert ranked[0].value <= ranked[-1].value
        assert sweep.rank_of(sweep.best.nest) == 0

    def test_evaluator_pickles(self, mttkrp_setup):
        kernel, _ = mttkrp_setup
        path = SpTTNScheduler(kernel).schedule().path
        nest = LoopNest(path, next(iter(enumerate_loop_orders(kernel, path))))
        evaluator = CostModelEvaluator(kernel)
        clone = pickle.loads(pickle.dumps(evaluator))
        assert clone(nest) == evaluator(nest)


class TestMeasuredSweep:
    def test_execution_runner_pickles_and_matches_executor(self, ttmc_setup):
        kernel, tensors = ttmc_setup
        nest = SpTTNScheduler(kernel).schedule().loop_nest
        runner = ExecutionRunner(kernel, tensors)
        clone = pickle.loads(pickle.dumps(runner))
        direct = LoopNestExecutor(kernel, nest).execute(tensors)
        np.testing.assert_array_equal(np.asarray(clone(nest)), np.asarray(direct))

    def test_measured_sweep_parallel_covers_all_candidates(self, mttkrp_setup):
        kernel, tensors = mttkrp_setup
        path = SpTTNScheduler(kernel).schedule().path
        nests = [
            LoopNest(path, order)
            for order in enumerate_loop_orders(kernel, path, limit=6)
        ]
        runner = ExecutionRunner(kernel, tensors)
        sweep = measure_loop_nests(nests, runner, workers=2)
        assert len(sweep) == len(nests)
        assert all(entry.value > 0 for entry in sweep.entries)
        assert [entry.nest for entry in sweep.entries] == nests  # order kept


class TestAutotunerWiring:
    def test_parallel_autotune_same_candidate_ranking_universe(self, mttkrp_setup):
        kernel, tensors = mttkrp_setup
        path = SpTTNScheduler(kernel).schedule().path
        runner = ExecutionRunner(kernel, tensors)
        tuner = Autotuner(kernel, runner, repeats=1)
        serial = tuner.tune_path(path, max_candidates=6)
        parallel = tuner.tune_path(path, max_candidates=6, workers=2)
        def key(entry):
            return entry.loop_nest.order

        assert sorted(map(key, serial.entries), key=str) == sorted(
            map(key, parallel.entries), key=str
        )
        assert parallel.rank_of(serial.best.loop_nest) is not None

    def test_closure_runner_still_works(self, mttkrp_setup):
        kernel, tensors = mttkrp_setup
        path = SpTTNScheduler(kernel).schedule().path
        calls = []

        def runner(nest):  # not picklable across processes -> serial fallback
            calls.append(nest)
            return LoopNestExecutor(kernel, nest).execute(tensors)

        tuner = Autotuner(kernel, runner, repeats=1, workers=2)
        result = tuner.tune_path(path, max_candidates=4)
        assert len(result.entries) == 4
        # 4 timed runs plus the one untimed process warmup
        assert len(calls) == 5


class TestTuneCLI:
    def test_tune_command_runs(self, capsys):
        rc = cli_main(
            [
                "tune",
                "--spec", "ijk,ja,ka->ia",
                "--shape", "12,10,8",
                "--nnz", "60",
                "--rank", "3",
                "--workers", "2",
                "--top", "3",
                "--measure",
                "--measure-candidates", "3",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "cost-model sweep" in out
        assert "scheduler's pick" in out
        assert "measured 3 candidates" in out
