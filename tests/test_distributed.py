"""Tests for the simulated distributed-memory runtime."""

import numpy as np
import pytest

from repro.distributed import (
    AlphaBetaModel,
    CyclicDistribution,
    DistributedSpTTN,
    ProcessorGrid,
    factor_processors,
    partition_sparse_tensor,
    strong_scaling,
)
from repro.engine.reference import assert_same_result, reference_output
from repro.kernels.mttkrp import mttkrp_kernel


class TestProcessorGrid:
    def test_factorization_product(self):
        for p in (1, 2, 6, 8, 12, 64):
            dims = factor_processors(p, 3)
            assert int(np.prod(dims)) == p

    def test_factorization_favours_large_modes(self):
        dims = factor_processors(8, 3, mode_sizes=[1000, 10, 10])
        assert dims[0] >= max(dims[1], dims[2])

    def test_rank_coords_roundtrip(self):
        grid = ProcessorGrid((2, 3, 2))
        for rank in grid.iter_ranks():
            assert grid.rank_of(grid.coords_of(rank)) == rank

    def test_owner_is_cyclic(self):
        grid = ProcessorGrid((2, 2))
        assert grid.owner_of((0, 0)) == grid.owner_of((2, 4))
        assert grid.owner_of((1, 0)) != grid.owner_of((0, 0))

    def test_fiber_group_size(self):
        grid = ProcessorGrid((2, 3, 2))
        assert grid.fiber_group_size(1) == 4

    def test_invalid_inputs(self):
        grid = ProcessorGrid((2, 2))
        with pytest.raises(ValueError):
            grid.rank_of((2, 0))
        with pytest.raises(ValueError):
            grid.coords_of(5)
        with pytest.raises(ValueError):
            ProcessorGrid((0, 2))

    def test_for_tensor(self):
        grid = ProcessorGrid.for_tensor(12, (100, 50, 2))
        assert grid.size == 12
        assert grid.order == 3


class TestPartitioning:
    def test_partition_preserves_all_nonzeros(self, random_coo3):
        grid = ProcessorGrid.for_tensor(6, random_coo3.shape)
        locals_ = partition_sparse_tensor(random_coo3, grid)
        assert sum(t.nnz for t in locals_) == random_coo3.nnz
        total = np.zeros(random_coo3.shape)
        for t in locals_:
            total += t.to_dense()
        np.testing.assert_allclose(total, random_coo3.to_dense())

    def test_partition_ownership_is_cyclic(self, random_coo3):
        grid = ProcessorGrid.for_tensor(4, random_coo3.shape)
        locals_ = partition_sparse_tensor(random_coo3, grid)
        for rank, local in enumerate(locals_):
            for coords, _ in local:
                assert grid.owner_of(coords) == rank

    def test_partition_grid_mismatch(self, random_coo3):
        with pytest.raises(ValueError):
            partition_sparse_tensor(random_coo3, ProcessorGrid((2, 2)))

    def test_local_nnz_matches_partition(self, random_coo3):
        grid = ProcessorGrid.for_tensor(8, random_coo3.shape)
        from repro.kernels.mttkrp import mttkrp_kernel

        kernel, _ = mttkrp_kernel(
            random_coo3, [np.ones((d, 3)) for d in random_coo3.shape], 0
        )
        plan = CyclicDistribution.plan(kernel, grid)
        counts = plan.local_nnz(random_coo3)
        locals_ = partition_sparse_tensor(random_coo3, grid)
        np.testing.assert_array_equal(counts, [t.nnz for t in locals_])

    def test_load_imbalance_at_least_one(self, random_coo3):
        grid = ProcessorGrid.for_tensor(8, random_coo3.shape)
        kernel, _ = mttkrp_kernel(
            random_coo3, [np.ones((d, 3)) for d in random_coo3.shape], 0
        )
        plan = CyclicDistribution.plan(kernel, grid)
        assert plan.load_imbalance(random_coo3) >= 1.0


class TestDistributionPlan:
    def test_dense_replication_volumes(self, mttkrp_setup):
        kernel, tensors = mttkrp_setup
        grid = ProcessorGrid.for_tensor(8, tensors["T"].shape)
        plan = CyclicDistribution.plan(kernel, grid)
        assert len(plan.dense_placements) == len(kernel.dense_operands)
        for placement in plan.dense_placements:
            assert placement.local_elements > 0
            assert placement.broadcast_elements >= 0

    def test_output_reduction_dense_vs_sparse(self, mttkrp_setup, tttp_setup):
        dense_kernel, dense_tensors = mttkrp_setup
        sparse_kernel, sparse_tensors = tttp_setup
        grid = ProcessorGrid.for_tensor(4, dense_tensors["T"].shape)
        dense_plan = CyclicDistribution.plan(dense_kernel, grid)
        sparse_plan = CyclicDistribution.plan(sparse_kernel, grid)
        assert dense_plan.output_reduction_elements > 0
        assert sparse_plan.output_reduction_elements == 0

    def test_grid_order_mismatch_rejected(self, mttkrp_setup):
        kernel, _ = mttkrp_setup
        with pytest.raises(ValueError):
            CyclicDistribution.plan(kernel, ProcessorGrid((2, 2)))


class TestAlphaBetaModel:
    def test_single_process_is_free(self):
        model = AlphaBetaModel()
        assert model.broadcast(1000, 1).total == 0.0
        assert model.allreduce(1000, 1).total == 0.0

    def test_costs_scale_with_volume(self):
        model = AlphaBetaModel()
        small = model.broadcast(1000, 8).total
        large = model.broadcast(1000000, 8).total
        assert large > small

    def test_latency_grows_with_processes(self):
        model = AlphaBetaModel(alpha=1e-5, beta=0.0)
        assert model.reduce(10, 64).total > model.reduce(10, 2).total

    def test_allreduce_more_expensive_than_reduce(self):
        model = AlphaBetaModel()
        assert model.allreduce(1 << 20, 16).total >= model.reduce(1 << 20, 16).total

    def test_point_to_point(self):
        model = AlphaBetaModel(alpha=1e-6, beta=1e-9)
        est = model.point_to_point(1000)
        assert est.latency_seconds == pytest.approx(1e-6)
        assert est.bandwidth_seconds == pytest.approx(8000 * 1e-9)


class TestDistributedExecution:
    @pytest.mark.parametrize("n_procs", [1, 3, 8])
    def test_mttkrp_exact(self, mttkrp_setup, n_procs):
        kernel, tensors = mttkrp_setup
        expected = reference_output(kernel, tensors)
        dist = DistributedSpTTN(kernel, tensors)
        assert_same_result(dist.execute(n_procs), expected)

    def test_ttmc_exact(self, ttmc_setup):
        kernel, tensors = ttmc_setup
        expected = reference_output(kernel, tensors)
        dist = DistributedSpTTN(kernel, tensors)
        assert_same_result(dist.execute(6), expected)

    def test_tttp_exact_sparse_output(self, tttp_setup):
        kernel, tensors = tttp_setup
        expected = reference_output(kernel, tensors)
        dist = DistributedSpTTN(kernel, tensors)
        assert_same_result(dist.execute(4), expected)

    def test_simulation_fields(self, mttkrp_setup):
        kernel, tensors = mttkrp_setup
        dist = DistributedSpTTN(kernel, tensors)
        run = dist.simulate(8)
        assert run.processes == 8
        assert run.compute_seconds > 0
        assert run.communication_seconds > 0
        assert run.max_local_nnz <= tensors["T"].nnz
        assert run.load_imbalance >= 1.0

    def test_single_process_has_no_communication(self, mttkrp_setup):
        kernel, tensors = mttkrp_setup
        dist = DistributedSpTTN(kernel, tensors)
        run = dist.simulate(1)
        assert run.communication_seconds == 0.0

    def test_analytic_mode(self, mttkrp_setup):
        kernel, tensors = mttkrp_setup
        dist = DistributedSpTTN(kernel, tensors)
        run = dist.simulate(16, measure=False)
        assert run.compute_seconds > 0

    def test_compute_time_decreases_with_processes(self, mttkrp_setup):
        kernel, tensors = mttkrp_setup
        dist = DistributedSpTTN(kernel, tensors)
        t1 = dist.simulate(1).compute_seconds
        t16 = dist.simulate(16).compute_seconds
        assert t16 < t1


class TestStrongScaling:
    def test_scaling_result_structure(self, ttmc_setup):
        kernel, tensors = ttmc_setup
        result = strong_scaling(kernel, tensors, [1, 2, 4, 8], kernel_name="ttmc")
        assert result.processes() == [1, 2, 4, 8]
        assert len(result.times()) == 4
        rows = result.as_rows()
        assert rows[0]["kernel"] == "ttmc"
        assert all(0 < row["efficiency"] <= 1.5 for row in rows)

    def test_speedup_generally_increases(self, ttmc_setup):
        kernel, tensors = ttmc_setup
        result = strong_scaling(kernel, tensors, [1, 4, 16], kernel_name="ttmc")
        times = result.times()
        assert times[1] < times[0]
        assert times[2] < times[0]

    def test_empty_process_list_rejected(self, ttmc_setup):
        kernel, tensors = ttmc_setup
        with pytest.raises(ValueError):
            strong_scaling(kernel, tensors, [], kernel_name="ttmc")
