"""Algorithm 1: dynamic-programming search for cost-optimal loop orders.

Given a contraction path ``(T, L)`` and a tree-separable cost function, the
search returns a loop order of minimal cost among all fully-fused loop nests
for that path (Theorem 4.7).  Subproblems are identified by

* a contiguous subsequence ``[start, end)`` of the path's terms, and
* the set of indices already iterated (peeled) by enclosing loops,

and are memoized, which reduces the search from the ``O((m!)^N)`` size of
the loop-order space to ``O(N^3 2^m m)`` work (Section 4.2).

In addition to the best loop order, every subproblem also records the best
loop order whose outermost loop differs from the best one's — the "second
best with a different root" needed on line 17 of the paper's pseudocode to
preserve full fusion when the suffix forest would otherwise start with the
same index as the loop just created.

The search honours the runtime's CSF restriction (Section 5): a sparse index
may only become a loop root once every sparse index preceding it in CSF
storage order has already been iterated (for the terms it covers).  Pass
``enforce_csf_order=False`` to search the unrestricted space.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.core.contraction_path import ContractionPath
from repro.core.cost_model import ExecutionCost, TreeSeparableCost
from repro.core.expr import SpTTNKernel
from repro.core.loop_nest import LoopNest, LoopOrder, validate_loop_order

Orders = Tuple[Tuple[str, ...], ...]
Removed = FrozenSet[str]


@dataclass
class SearchStats:
    """Instrumentation of one search run (used by the E9 benchmark)."""

    subproblems: int = 0
    cache_hits: int = 0
    candidates_evaluated: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "subproblems": self.subproblems,
            "cache_hits": self.cache_hits,
            "candidates_evaluated": self.candidates_evaluated,
        }


@dataclass
class SearchResult:
    """Outcome of :class:`OptimalLoopOrderSearch.search`."""

    order: LoopOrder
    cost: float
    second_order: Optional[LoopOrder]
    second_cost: Optional[float]
    stats: SearchStats = field(default_factory=SearchStats)

    def loop_nest(self, path: ContractionPath) -> LoopNest:
        return LoopNest(path, self.order)


@dataclass
class _Solution:
    """Best and second-best (different outermost root) orders of a subproblem."""

    best_orders: Optional[Orders]
    best_cost: float
    second_orders: Optional[Orders]
    second_cost: float
    best_root: Optional[str]


class OptimalLoopOrderSearch:
    """Algorithm 1, bound to one kernel and one cost function."""

    def __init__(
        self,
        kernel: SpTTNKernel,
        cost: Optional[TreeSeparableCost] = None,
        enforce_csf_order: bool = True,
    ) -> None:
        self.kernel = kernel
        self.cost = cost if cost is not None else ExecutionCost(kernel)
        self.enforce_csf_order = bool(enforce_csf_order)

    # ------------------------------------------------------------------ #
    def search(self, path: ContractionPath) -> SearchResult:
        """Find the cost-optimal loop order for *path*."""
        if len(path) == 0:
            raise ValueError("contraction path has no terms")
        stats = SearchStats()
        memo: Dict[Tuple[int, int, Removed], _Solution] = {}
        term_indices: List[Tuple[str, ...]] = [t.all_indices for t in path]
        cost = self.cost

        def csf_root_allowed(q: str, positions: Tuple[int, ...], removed: Removed) -> bool:
            """May *q* become the outermost loop of these terms right now?"""
            if not self.enforce_csf_order or q not in self.kernel.sparse_indices:
                return True
            level = self.kernel.csf_mode_order.index(q)
            earlier = self.kernel.csf_mode_order[:level]
            for pos in positions:
                remaining = [
                    i for i in term_indices[pos] if i not in removed
                ]
                for e in earlier:
                    if e in remaining:
                        return False
            return True

        def solve(start: int, end: int, removed: Removed) -> _Solution:
            if start >= end:
                return _Solution((), cost.identity(), None, cost.infinity(), None)
            key = (start, end, removed)
            if key in memo:
                stats.cache_hits += 1
                return memo[key]
            stats.subproblems += 1

            first_remaining = tuple(
                i for i in term_indices[start] if i not in removed
            )
            if not first_remaining:
                # The first term is already fully nested: emit it as a leaf
                # and solve the rest.  Its (scalar) contribution is combined
                # in front of the remaining forest's cost.
                rest = solve(start + 1, end, removed)
                leaf_cost = cost.leaf(
                    path, start, tuple(range(start + 1, end)), removed
                )
                best = (
                    ((),) + rest.best_orders if rest.best_orders is not None else None
                )
                second = (
                    ((),) + rest.second_orders
                    if rest.second_orders is not None
                    else None
                )
                # The forest of this subproblem starts with a bare leaf (not a
                # loop), so the caller's same-root fusion check never applies:
                # report no root and no second-best alternative.
                solution = _Solution(
                    best,
                    cost.combine(leaf_cost, rest.best_cost)
                    if best is not None
                    else cost.infinity(),
                    second,
                    cost.combine(leaf_cost, rest.second_cost)
                    if second is not None and rest.second_orders is not None
                    else cost.infinity(),
                    None,
                )
                memo[key] = solution
                return solution

            best_orders: Optional[Orders] = None
            best_cost = cost.infinity()
            best_root: Optional[str] = None
            second_orders: Optional[Orders] = None
            second_cost = cost.infinity()
            second_root: Optional[str] = None

            for q in first_remaining:
                # maximal prefix of terms (from `start`) that all contain q
                k = 0
                for pos in range(start, end):
                    remaining = [i for i in term_indices[pos] if i not in removed]
                    if q in remaining:
                        k += 1
                    else:
                        break
                if k == 0:
                    continue

                q_best_orders: Optional[Orders] = None
                q_best_cost = cost.infinity()

                for s in range(1, k + 1):
                    inner_positions = tuple(range(start, start + s))
                    if not csf_root_allowed(q, inner_positions, removed):
                        # Including a term whose earlier CSF level is still
                        # pending would violate the storage-order restriction;
                        # larger prefixes only add more terms, so stop.
                        break
                    after_positions = tuple(range(start + s, end))
                    stats.candidates_evaluated += 1

                    x = solve(start, start + s, removed | {q})
                    if x.best_orders is None:
                        continue
                    y = solve(start + s, end, removed)
                    y_orders = y.best_orders
                    y_cost = y.best_cost
                    if y_orders is not None and y.best_root == q:
                        # Using q again as the root of the suffix forest's
                        # first tree would break full fusion; fall back to the
                        # best suffix order with a different root.
                        y_orders = y.second_orders
                        y_cost = y.second_cost
                    if y_orders is None:
                        continue

                    delta = cost.combine(
                        cost.phi(
                            path, q, inner_positions, after_positions, removed, x.best_cost
                        ),
                        y_cost,
                    )
                    if q_best_orders is None or cost.is_better(delta, q_best_cost):
                        prefixed = tuple((q,) + xo for xo in x.best_orders)
                        q_best_orders = prefixed + y_orders
                        q_best_cost = delta

                if q_best_orders is None:
                    continue
                if best_orders is None or cost.is_better(q_best_cost, best_cost):
                    if best_orders is not None and best_root != q:
                        second_orders, second_cost, second_root = (
                            best_orders,
                            best_cost,
                            best_root,
                        )
                    best_orders, best_cost, best_root = q_best_orders, q_best_cost, q
                elif (
                    q != best_root
                    and (second_orders is None or cost.is_better(q_best_cost, second_cost))
                ):
                    second_orders, second_cost, second_root = (
                        q_best_orders,
                        q_best_cost,
                        q,
                    )

            solution = _Solution(
                best_orders, best_cost, second_orders, second_cost, best_root
            )
            memo[key] = solution
            return solution

        top = solve(0, len(path), frozenset())
        if top.best_orders is None:
            raise RuntimeError(
                "no valid loop order found; check the CSF-order restriction"
            )
        order = LoopOrder(top.best_orders)
        validate_loop_order(
            self.kernel, path, order, enforce_csf_order=self.enforce_csf_order
        )
        second = (
            LoopOrder(top.second_orders) if top.second_orders is not None else None
        )
        return SearchResult(
            order=order,
            cost=top.best_cost,
            second_order=second,
            second_cost=top.second_cost if second is not None else None,
            stats=stats,
        )


def find_optimal_loop_order(
    kernel: SpTTNKernel,
    path: ContractionPath,
    cost: Optional[TreeSeparableCost] = None,
    enforce_csf_order: bool = True,
) -> SearchResult:
    """Convenience wrapper: run Algorithm 1 on one contraction path."""
    search = OptimalLoopOrderSearch(kernel, cost, enforce_csf_order)
    return search.search(path)
