"""Matricized-Tensor Times Khatri-Rao Product (MTTKRP).

MTTKRP is the bottleneck kernel of CP-ALS (Equation 1 of the paper): for an
order-``d`` sparse tensor ``T`` and factor matrices ``F_0, ..., F_{d-1}``
(each ``I_n x R``), the mode-``m`` MTTKRP is::

    A(i_m, r) = sum_{i_n, n != m}  T(i_0, ..., i_{d-1}) * prod_{n != m} F_n(i_n, r)

The helpers below build the kernel specification for any order and mode and
execute it through the SpTTN scheduler/executor.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.expr import SpTTNKernel
from repro.core.scheduler import Schedule
from repro.engine.executor import TensorLike
from repro.kernels.spttn import KernelBuilder, build_kernel, run_kernel, sparse_order_of
from repro.sptensor.dense import DenseTensor
from repro.util.counters import OpCounter
from repro.util.validation import require


def mttkrp_spec(order: int, mode: int) -> str:
    """Einsum specification of the mode-*mode* MTTKRP for an order-*order* tensor."""
    kb = KernelBuilder(order)
    require(0 <= mode < order, f"mode {mode} out of range for order {order}")
    rank = kb.dense_index(0)
    inputs = [kb.sparse_subscripts]
    for n in range(order):
        if n == mode:
            continue
        inputs.append(kb.sparse_index(n) + rank)
    output = kb.sparse_index(mode) + rank
    return ",".join(inputs) + "->" + output


def _factor_list(
    order: int, mode: int, factors: Sequence[Union[DenseTensor, np.ndarray]]
) -> List[Union[DenseTensor, np.ndarray]]:
    if len(factors) == order:
        return [f for n, f in enumerate(factors) if n != mode]
    require(
        len(factors) == order - 1,
        f"expected {order} factors (one per mode) or {order - 1} "
        f"(excluding the target mode), got {len(factors)}",
    )
    return list(factors)


def mttkrp_kernel(
    tensor: TensorLike,
    factors: Sequence[Union[DenseTensor, np.ndarray]],
    mode: int = 0,
) -> Tuple[SpTTNKernel, dict]:
    """Build (without executing) the MTTKRP kernel and its operand mapping."""
    order = sparse_order_of(tensor)
    spec = mttkrp_spec(order, mode)
    operands = [tensor] + list(_factor_list(order, mode, factors))
    return build_kernel(spec, operands)


def mttkrp(
    tensor: TensorLike,
    factors: Sequence[Union[DenseTensor, np.ndarray]],
    mode: int = 0,
    schedule: Optional[Schedule] = None,
    counter: Optional[OpCounter] = None,
    buffer_dim_bound: Optional[int] = 2,
) -> np.ndarray:
    """Compute the mode-*mode* MTTKRP of a sparse tensor with factor matrices.

    Parameters
    ----------
    tensor:
        The sparse tensor (COO or CSF).
    factors:
        Either one factor matrix per mode (the target mode's entry is
        ignored) or one per non-target mode, each of shape ``(I_n, R)``.
    mode:
        The target mode.
    schedule:
        Optionally reuse a previously computed schedule (the search is
        data-independent, so CP-ALS reuses one schedule per mode across
        iterations).
    """
    order = sparse_order_of(tensor)
    spec = mttkrp_spec(order, mode)
    operands = [tensor] + list(_factor_list(order, mode, factors))
    output, _ = run_kernel(
        spec,
        operands,
        schedule=schedule,
        counter=counter,
        buffer_dim_bound=buffer_dim_bound,
    )
    assert isinstance(output, np.ndarray)
    return output
