"""Measurement-calibrated cost coefficients for :class:`ExecutionCost`.

The scheduler ranks candidate loop nests with
:class:`~repro.core.cost_model.ExecutionCost`, whose four per-op-class
coefficients (interpreted loop iteration, scalar multiply-add, vectorized
element, vectorized-call dispatch) ship as hand-tuned constants.  The
model is *linear* in those coefficients: the cost of any loop nest is

    ``vector_op·F₀ + call_overhead·F₁ + loop_overhead·F₂ + scalar_op·F₃
    + penalty·F₄``

where ``F`` is a per-nest *feature vector* counting vectorized elements,
offloaded calls, interpreted loop iterations, scalar operations and
buffer-bound violations.  This module exploits that linearity to replace
the constants with *measured* per-op-class timings (ROADMAP item 4):

* :func:`cost_features` extracts ``F`` with a tree-separable walk that
  mirrors ``ExecutionCost`` exactly (same offload decision, same trip
  counts) — ``dot(coefficients, F[:4]) + penalty·F₄`` reproduces the
  model's value bit-for-bit, a property the test suite asserts.
* :func:`fit_coefficients` solves a non-negative least-squares problem
  mapping accumulated feature vectors to measured *execute-phase* seconds
  from the :class:`~repro.engine.plan_cache.PlanTimings` registry, giving
  coefficients in seconds-per-unit.
* :func:`apply_calibration` installs a fit as the process-wide default
  (:func:`~repro.core.cost_model.set_active_coefficients`), so every
  subsequently constructed ``ExecutionCost`` — the scheduler, the sweeps,
  ``cached_schedule`` — ranks with measured numbers.
* :func:`maybe_retune` re-fits *online*: the executor registers each
  plan's predicted seconds next to its measurements, and when the
  observed mean drifts from the prediction by more than a configurable
  factor (``REPRO_CALIBRATE_DRIFT``) on enough plans, the coefficients
  are re-fit from the current measurements and re-persisted through the
  plan store.

This module deliberately imports only :mod:`repro.core`; the engine layer
(executor, plan cache) calls *into* it, never vice versa.
"""

from __future__ import annotations

import math
import os
import threading
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.core.cost_model import (
    CONSTRAINT_PENALTY,
    DEFAULT_COEFFICIENTS,
    ExecutionCost,
    TreeSeparableCost,
    evaluate_cost,
    set_active_coefficients,
)
from repro.core.contraction_path import ContractionPath
from repro.core.expr import SpTTNKernel
from repro.core.loop_nest import LoopNest

#: Feature-vector component order produced by :func:`cost_features`.
FEATURE_NAMES = (
    "vector_elems",   # scalar multiply-adds inside offloaded subtrees
    "offload_calls",  # vectorized-kernel dispatches
    "loop_iters",     # interpreted loop iterations
    "scalar_ops",     # interpreted innermost multiply-adds
    "violations",     # buffers exceeding the dimension bound
)

#: Environment variable: observed/predicted latency ratio beyond which a
#: plan counts as drifted ("0"/"off" disables online re-tuning).
CALIBRATE_DRIFT_ENV = "REPRO_CALIBRATE_DRIFT"
DEFAULT_DRIFT_FACTOR = 4.0

#: Environment variable: minimum predicted plans before drift is judged.
CALIBRATE_MIN_SAMPLES_ENV = "REPRO_CALIBRATE_MIN_SAMPLES"
DEFAULT_MIN_SAMPLES = 8

#: Fraction of predicted plans that must drift to trigger a re-fit.
_DRIFT_FRACTION = 0.25


@dataclass(frozen=True)
class CostCoefficients:
    """A fitted set of :class:`ExecutionCost` coefficients (seconds/unit)."""

    loop_overhead: float
    scalar_op: float
    vector_op: float
    call_overhead: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "loop_overhead": self.loop_overhead,
            "scalar_op": self.scalar_op,
            "vector_op": self.vector_op,
            "call_overhead": self.call_overhead,
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, float]) -> "CostCoefficients":
        return cls(
            loop_overhead=float(doc["loop_overhead"]),
            scalar_op=float(doc["scalar_op"]),
            vector_op=float(doc["vector_op"]),
            call_overhead=float(doc["call_overhead"]),
        )

    def predict_seconds(self, features: Sequence[float]) -> float:
        """Predicted execute-phase seconds of a nest with *features*."""
        return (
            self.vector_op * features[0]
            + self.call_overhead * features[1]
            + self.loop_overhead * features[2]
            + self.scalar_op * features[3]
        )


# --------------------------------------------------------------------------- #
# Feature extraction
# --------------------------------------------------------------------------- #
class _FeatureCost(TreeSeparableCost):
    """Vector-valued twin of :class:`ExecutionCost`.

    Evaluating this cost over a loop nest yields the 5-vector ``F`` such
    that ``ExecutionCost``'s scalar value equals ``coefficients · F[:4] +
    penalty · F[4]``.  The offload decision and trip-count estimates are
    delegated to a real ``ExecutionCost`` instance so the two walks can
    never diverge.
    """

    def __init__(
        self, kernel: SpTTNKernel, buffer_dim_bound: Optional[int] = 2
    ) -> None:
        super().__init__(kernel)
        self._exec = ExecutionCost(kernel, buffer_dim_bound=buffer_dim_bound)

    def identity(self):  # type: ignore[override]
        return np.zeros(len(FEATURE_NAMES))

    def combine(self, a, b):  # type: ignore[override]
        return a + b

    def leaf(self, path, term_position, after_positions, removed):  # type: ignore[override]
        out = np.zeros(len(FEATURE_NAMES))
        out[3] = 2.0  # one multiply + one accumulate
        return out

    def phi(  # type: ignore[override]
        self,
        path: ContractionPath,
        root_index: str,
        inner_positions,
        after_positions,
        removed,
        inner_cost,
    ):
        out = np.zeros(len(FEATURE_NAMES))
        bound = self._exec.buffer_dim_bound
        if bound is not None:
            for _, kept in self.crossing_buffers(
                path, inner_positions, after_positions, removed
            ):
                if len(kept) > bound:
                    out[4] += 1.0
        if self._exec.offloadable(path, inner_positions, root_index, removed):
            elements = self._exec.offload_elements(
                path, inner_positions[0], root_index, removed
            )
            out[0] = 2.0 * elements
            out[1] = 1.0
            return out  # the offloaded subtree's inner cost is subsumed
        trips = self.iteration_count(root_index, inner_positions, removed, path)
        out[2] = trips
        return out + trips * inner_cost


def cost_features(
    kernel: SpTTNKernel,
    nest: LoopNest,
    buffer_dim_bound: Optional[int] = 2,
) -> Tuple[float, ...]:
    """The :data:`FEATURE_NAMES` vector of one loop nest."""
    vector = evaluate_cost(
        kernel, nest.path, nest.order, _FeatureCost(kernel, buffer_dim_bound)
    )
    return tuple(float(x) for x in vector)


def features_value(
    features: Sequence[float],
    coefficients: Dict[str, float],
    penalty: float = CONSTRAINT_PENALTY,
) -> float:
    """``ExecutionCost``'s scalar value implied by a feature vector."""
    return (
        coefficients["vector_op"] * features[0]
        + coefficients["call_overhead"] * features[1]
        + coefficients["loop_overhead"] * features[2]
        + coefficients["scalar_op"] * features[3]
        + penalty * features[4]
    )


# --------------------------------------------------------------------------- #
# Fitting
# --------------------------------------------------------------------------- #
def fit_coefficients(
    rows: Sequence[Tuple[Sequence[float], float]],
) -> Optional[CostCoefficients]:
    """Non-negative least-squares fit of ``(features, seconds)`` rows.

    Rows with a buffer-bound violation or a non-positive measurement are
    excluded (the penalty column is a constraint, not a fitted quantity).
    Returns ``None`` when the system is too underdetermined to trust
    (fewer than two usable rows, or a degenerate solution).
    """
    usable = [
        (tuple(float(x) for x in features), float(seconds))
        for features, seconds in rows
        if float(seconds) > 0.0 and len(features) >= 5 and features[4] == 0.0
    ]
    if len(usable) < 2:
        return None
    matrix = np.array([features[:4] for features, _ in usable])
    target = np.array([seconds for _, seconds in usable])
    solution: Optional[np.ndarray] = None
    try:
        from scipy.optimize import nnls

        solution, _residual = nnls(matrix, target)
    except Exception:
        # scipy unavailable or the solver failed: clipped least squares
        lsq, *_rest = np.linalg.lstsq(matrix, target, rcond=None)
        solution = np.clip(lsq, 0.0, None)
    if solution is None or not np.all(np.isfinite(solution)):
        return None
    if float(np.sum(solution)) <= 0.0:
        return None
    vector_op, call_overhead, loop_overhead, scalar_op = (
        float(x) for x in solution
    )
    return CostCoefficients(
        loop_overhead=loop_overhead,
        scalar_op=scalar_op,
        vector_op=vector_op,
        call_overhead=call_overhead,
    )


def fit_from_timings(
    timings, engine: Optional[str] = None
) -> Optional[CostCoefficients]:
    """Fit coefficients from a :class:`PlanTimings` registry's records.

    Joins each plan's registered feature vector with its measured
    execute-phase mean (cold-call preparation is recorded under a
    separate phase and never pollutes the fit).
    """
    return fit_coefficients(timings.training_rows(engine=engine))


# --------------------------------------------------------------------------- #
# Process-wide calibration state
# --------------------------------------------------------------------------- #
_state_lock = threading.Lock()
_fitted: Optional[CostCoefficients] = None
_retunes = 0
_retuning = False


def apply_calibration(coefficients: CostCoefficients) -> None:
    """Install a fit as the process-wide ``ExecutionCost`` default."""
    global _fitted
    with _state_lock:
        _fitted = coefficients
    set_active_coefficients(coefficients.as_dict())


def reset_calibration() -> None:
    """Restore the hand-tuned default coefficients (test isolation)."""
    global _fitted, _retunes
    with _state_lock:
        _fitted = None
        _retunes = 0
    set_active_coefficients(None)


def current_calibration() -> Optional[CostCoefficients]:
    """The active fitted coefficients, or ``None`` when uncalibrated."""
    with _state_lock:
        return _fitted


def predict_seconds(features: Sequence[float]) -> Optional[float]:
    """Predicted execute seconds under the active fit (``None`` if none).

    Predictions are only meaningful once a measured fit is installed; the
    hand-tuned defaults are relative magnitudes, not seconds, so no
    prediction (and hence no drift judgement) is made under them.
    """
    fitted = current_calibration()
    if fitted is None:
        return None
    return fitted.predict_seconds(features)


def calibration_state() -> Dict[str, object]:
    """JSON-safe view of the calibration layer for the stats surfaces."""
    with _state_lock:
        fitted = _fitted
        retunes = _retunes
    return {
        "active": fitted is not None,
        "coefficients": (
            fitted.as_dict() if fitted is not None else dict(DEFAULT_COEFFICIENTS)
        ),
        "retunes": retunes,
        "drift_factor": _drift_factor(),
        "min_samples": _min_samples(),
    }


def _drift_factor() -> Optional[float]:
    raw = os.environ.get(CALIBRATE_DRIFT_ENV, "")
    text = raw.strip().lower()
    if not text:
        return DEFAULT_DRIFT_FACTOR
    if text in ("0", "off", "none", "disable", "disabled"):
        return None
    try:
        value = float(text)
    except ValueError:
        return DEFAULT_DRIFT_FACTOR
    if not math.isfinite(value) or value <= 1.0:
        return None
    return value


def _min_samples() -> int:
    raw = os.environ.get(CALIBRATE_MIN_SAMPLES_ENV, "")
    try:
        value = int(raw.strip())
    except ValueError:
        return DEFAULT_MIN_SAMPLES
    return value if value >= 2 else DEFAULT_MIN_SAMPLES


def maybe_retune(timings) -> Optional[CostCoefficients]:
    """Re-fit online when observed latency drifts from prediction.

    Called periodically from the timing-record path with the process
    registry.  A re-fit happens only when (a) a measured calibration is
    already active (the hand-tuned defaults make no seconds predictions),
    (b) online re-tuning is enabled (``REPRO_CALIBRATE_DRIFT``), (c) at
    least ``REPRO_CALIBRATE_MIN_SAMPLES`` predicted plans have execute
    measurements and a quarter of them drift beyond the factor, and (d)
    the re-fit itself succeeds.  Returns the new coefficients when a
    re-fit was applied (the caller persists them), else ``None``.
    """
    global _retunes, _retuning
    with _state_lock:
        if _fitted is None or _retuning:
            return None
        _retuning = True
    try:
        factor = _drift_factor()
        if factor is None:
            return None
        pairs = timings.drift_rows()
        if len(pairs) < _min_samples():
            return None
        drifted = sum(
            1
            for predicted, observed in pairs
            if observed > 0.0
            and max(observed / predicted, predicted / observed) > factor
        )
        if drifted < math.ceil(_DRIFT_FRACTION * len(pairs)):
            return None
        coefficients = fit_from_timings(timings)
        if coefficients is None:
            return None
        apply_calibration(coefficients)
        with _state_lock:
            _retunes += 1
        # refresh the stored predictions so the drift that triggered this
        # re-fit is not re-judged against stale numbers forever
        for key, vector in timings.feature_items():
            timings.record_features(
                key, vector, coefficients.predict_seconds(vector)
            )
        return coefficients
    finally:
        with _state_lock:
            _retuning = False


def calibrate_from_measurements(
    rows: Sequence[Tuple[Sequence[float], float]],
) -> Optional[CostCoefficients]:
    """Fit *and apply* coefficients from explicit measurement rows."""
    coefficients = fit_coefficients(rows)
    if coefficients is not None:
        apply_calibration(coefficients)
    return coefficients
