"""Tests for the decomposition / completion applications."""

import numpy as np
import pytest

from repro.apps import (
    cp_als,
    cp_completion,
    tensor_train_decomposition,
    tucker_hooi,
)
from repro.sptensor import COOTensor, random_sparse_tensor


@pytest.fixture
def lowrank_tensor():
    """A sparse tensor sampled from an exactly rank-3 dense tensor."""
    rng = np.random.default_rng(3)
    A = rng.random((14, 3))
    B = rng.random((12, 3))
    C = rng.random((10, 3))
    dense = np.einsum("ir,jr,kr->ijk", A, B, C)
    mask = rng.random(dense.shape) < 0.15
    return COOTensor.from_dense(dense * mask)


class TestCPALS:
    def test_fit_improves_monotonically(self, lowrank_tensor):
        result = cp_als(lowrank_tensor, rank=3, iterations=6, seed=0)
        assert len(result.fits) == result.iterations
        assert all(b >= a - 1e-9 for a, b in zip(result.fits, result.fits[1:]))

    def test_factor_shapes_and_normalization(self, lowrank_tensor):
        result = cp_als(lowrank_tensor, rank=4, iterations=3, seed=1)
        assert result.rank == 4
        for mode, factor in enumerate(result.factors):
            assert factor.shape == (lowrank_tensor.shape[mode], 4)
        # all but the weight-carrying scaling is normalized
        norms = np.linalg.norm(result.factors[0], axis=0)
        assert np.all(norms < 10.0)

    def test_reconstruction_reduces_error(self, lowrank_tensor):
        result = cp_als(lowrank_tensor, rank=3, iterations=8, seed=0)
        recon = result.reconstruct()
        dense = lowrank_tensor.to_dense()
        err = np.linalg.norm(recon - dense) / np.linalg.norm(dense)
        assert err < 1.0

    def test_model_values_at(self, lowrank_tensor):
        result = cp_als(lowrank_tensor, rank=3, iterations=3, seed=0)
        values = result.model_values_at(lowrank_tensor.indices[:5])
        recon = result.reconstruct()
        expected = [recon[tuple(c)] for c in lowrank_tensor.indices[:5]]
        np.testing.assert_allclose(values, expected, atol=1e-10)

    def test_initial_factors_respected(self, lowrank_tensor):
        init = [np.ones((d, 2)) for d in lowrank_tensor.shape]
        result = cp_als(lowrank_tensor, rank=2, iterations=1, initial_factors=init)
        assert result.rank == 2

    def test_bad_initial_factor_shape(self, lowrank_tensor):
        init = [np.ones((d, 2)) for d in lowrank_tensor.shape]
        init[0] = np.ones((3, 2))
        with pytest.raises(ValueError):
            cp_als(lowrank_tensor, rank=2, iterations=1, initial_factors=init)

    def test_order4_tensor(self, random_coo4):
        result = cp_als(random_coo4, rank=2, iterations=2, seed=0)
        assert len(result.factors) == 4

    def test_invalid_rank(self, lowrank_tensor):
        with pytest.raises(ValueError):
            cp_als(lowrank_tensor, rank=0)


class TestTuckerHOOI:
    def test_fit_improves(self, lowrank_tensor):
        result = tucker_hooi(lowrank_tensor, ranks=(3, 3, 3), iterations=4, seed=0)
        assert all(b >= a - 1e-9 for a, b in zip(result.fits, result.fits[1:]))

    def test_factors_orthonormal(self, lowrank_tensor):
        result = tucker_hooi(lowrank_tensor, ranks=(3, 4, 2), iterations=2, seed=0)
        for factor in result.factors:
            gram = factor.T @ factor
            np.testing.assert_allclose(gram, np.eye(gram.shape[0]), atol=1e-8)

    def test_core_shape(self, lowrank_tensor):
        result = tucker_hooi(lowrank_tensor, ranks=(2, 3, 4), iterations=1, seed=0)
        assert result.core.shape == (2, 3, 4)
        assert result.ranks == (2, 3, 4)

    def test_reconstruction_shape(self, lowrank_tensor):
        result = tucker_hooi(lowrank_tensor, ranks=(3, 3, 3), iterations=2, seed=0)
        assert result.reconstruct().shape == lowrank_tensor.shape

    def test_rank_validation(self, lowrank_tensor):
        with pytest.raises(ValueError):
            tucker_hooi(lowrank_tensor, ranks=(3, 3), iterations=1)
        with pytest.raises(ValueError):
            tucker_hooi(lowrank_tensor, ranks=(3, 3, 100), iterations=1)


class TestCompletion:
    def test_rmse_decreases(self, lowrank_tensor):
        result = cp_completion(
            lowrank_tensor, rank=3, iterations=12, learning_rate=0.5, seed=0
        )
        assert result.rmse_history[-1] < result.rmse_history[0]

    def test_prediction_interface(self, lowrank_tensor):
        result = cp_completion(lowrank_tensor, rank=3, iterations=5, seed=0)
        preds = result.predict(lowrank_tensor.indices[:7])
        assert preds.shape == (7,)
        assert np.all(np.isfinite(preds))

    def test_requires_observations(self):
        with pytest.raises(ValueError):
            cp_completion(COOTensor.empty((4, 4, 4)), rank=2)

    def test_held_out_prediction_better_than_zero_model(self, rng):
        """Completion generalizes: held-out entries are predicted better than
        by the all-zeros model."""
        A = rng.random((16, 2))
        B = rng.random((14, 2))
        C = rng.random((12, 2))
        dense = np.einsum("ir,jr,kr->ijk", A, B, C)
        mask = rng.random(dense.shape) < 0.25
        observed = COOTensor.from_dense(dense * mask)
        result = cp_completion(
            observed, rank=2, iterations=40, learning_rate=0.6, seed=1
        )
        holdout_mask = (~mask) & (rng.random(dense.shape) < 0.05)
        coords = np.argwhere(holdout_mask)
        truth = dense[holdout_mask]
        preds = result.predict(coords)
        rmse_model = np.sqrt(np.mean((preds - truth) ** 2))
        rmse_zero = np.sqrt(np.mean(truth**2))
        assert rmse_model < rmse_zero


class TestTensorTrain:
    def test_rmse_decreases(self, random_coo4):
        result = tensor_train_decomposition(
            random_coo4, rank=2, iterations=10, learning_rate=0.5, seed=0
        )
        assert result.rmse_history[-1] <= result.rmse_history[0]

    def test_core_shapes(self, random_coo4):
        result = tensor_train_decomposition(
            random_coo4, rank=3, iterations=2, seed=0
        )
        shapes = [c.shape for c in result.cores]
        d = random_coo4.shape
        assert shapes[0] == (d[0], 3)
        assert shapes[1] == (3, d[1], 3)
        assert shapes[-1] == (3, d[3])

    def test_values_at_matches_reconstruct(self, random_coo3):
        result = tensor_train_decomposition(
            random_coo3, rank=2, iterations=1, seed=0
        )
        recon = result.reconstruct(random_coo3.shape)
        sample = random_coo3.indices[:10]
        vals = result.values_at(sample)
        expected = [recon[tuple(c)] for c in sample]
        np.testing.assert_allclose(vals, expected, atol=1e-10)

    def test_order2_supported(self):
        m = random_sparse_tensor((12, 10), density=0.1, seed=4)
        result = tensor_train_decomposition(m, rank=2, iterations=3, seed=0)
        assert len(result.cores) == 2

    def test_validation(self, random_coo3):
        with pytest.raises(ValueError):
            tensor_train_decomposition(random_coo3, rank=0)
        with pytest.raises(ValueError):
            tensor_train_decomposition(COOTensor.empty((3, 3)), rank=1)
