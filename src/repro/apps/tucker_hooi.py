"""Tucker decomposition via higher-order orthogonal iteration (HOOI).

Each HOOI sweep recomputes one factor matrix per mode from the leading left
singular vectors of the mode-``n`` TTMc of the sparse tensor with all other
factors (Equation 2 of the paper), then forms the core with the all-mode
TTMc.  Both kernels are scheduled once and reused across sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.engine.executor import LoopNestExecutor
from repro.engine.plan_cache import cached_schedule
from repro.kernels.ttmc import all_mode_ttmc_kernel, ttmc_kernel
from repro.sptensor.coo import COOTensor
from repro.sptensor.csf import CSFTensor
from repro.util.validation import check_positive_int, require

SparseInput = Union[COOTensor, CSFTensor]


@dataclass
class TuckerDecomposition:
    """Result of :func:`tucker_hooi`."""

    factors: List[np.ndarray]
    core: np.ndarray
    fits: List[float] = field(default_factory=list)
    iterations: int = 0

    @property
    def ranks(self) -> Sequence[int]:
        return tuple(self.core.shape)

    def reconstruct(self) -> np.ndarray:
        """Dense reconstruction (only for small tensors / tests)."""
        order = len(self.factors)
        sparse_letters = "ijklmnop"[:order]
        rank_letters = "rstuvwab"[:order]
        spec = (
            rank_letters
            + ","
            + ",".join(f"{sparse_letters[n]}{rank_letters[n]}" for n in range(order))
            + "->"
            + sparse_letters
        )
        return np.einsum(spec, self.core, *self.factors)


def _leading_singular_vectors(matrix: np.ndarray, rank: int) -> np.ndarray:
    u, _, _ = np.linalg.svd(matrix, full_matrices=False)
    if u.shape[1] < rank:
        pad = np.zeros((u.shape[0], rank - u.shape[1]))
        u = np.hstack([u, pad])
    return u[:, :rank]


def tucker_hooi(
    tensor: SparseInput,
    ranks: Sequence[int],
    iterations: int = 5,
    seed: Optional[int] = 0,
    tolerance: float = 1.0e-8,
) -> TuckerDecomposition:
    """Tucker/HOOI decomposition of a sparse tensor.

    Parameters
    ----------
    tensor:
        Sparse input tensor.
    ranks:
        Tucker ranks, one per mode.
    iterations:
        Maximum number of HOOI sweeps.
    seed:
        Seed for the random initial factors (columns are orthonormalized).
    tolerance:
        Stop when the fit improves by less than this amount between sweeps.
    """
    coo = tensor.to_coo() if isinstance(tensor, CSFTensor) else tensor
    require(isinstance(coo, COOTensor), "tensor must be a sparse tensor")
    order = coo.order
    require(len(ranks) == order, "need one Tucker rank per mode")
    ranks = [check_positive_int(r, f"ranks[{n}]") for n, r in enumerate(ranks)]
    for n, (r, dim) in enumerate(zip(ranks, coo.shape)):
        require(r <= dim, f"rank {r} exceeds dimension {dim} of mode {n}")

    rng = np.random.default_rng(seed)
    factors: List[np.ndarray] = []
    for dim, r in zip(coo.shape, ranks):
        q, _ = np.linalg.qr(rng.standard_normal((dim, r)))
        factors.append(q)

    norm_t = coo.frobenius_norm()

    # Schedule the mode-n TTMc kernels and the all-mode core kernel once
    # (cached process-wide) and keep one executor per kernel so every sweep
    # reuses the compiled plan.
    kernels = {}
    executors: Dict[int, LoopNestExecutor] = {}
    for mode in range(order):
        placeholder = [np.ones((coo.shape[n], ranks[n])) for n in range(order)]
        kernel, _ = ttmc_kernel(coo, placeholder, mode)
        kernels[mode] = kernel
        executors[mode] = LoopNestExecutor(kernel, cached_schedule(kernel).loop_nest)
    core_kernel, _ = all_mode_ttmc_kernel(
        coo, [np.ones((coo.shape[n], ranks[n])) for n in range(order)]
    )
    core_executor = LoopNestExecutor(
        core_kernel, cached_schedule(core_kernel).loop_nest
    )

    fits: List[float] = []
    previous_fit = -np.inf
    core = np.zeros(tuple(ranks))
    sweeps = 0
    for sweep in range(iterations):
        for mode in range(order):
            kernel = kernels[mode]
            other = [factors[n] for n in range(order) if n != mode]
            mapping = {kernel.sparse_operand.name: coo}
            for op, factor in zip(kernel.dense_operands, other):
                mapping[op.name] = factor
            y = np.asarray(executors[mode].execute(mapping))
            unfolded = y.reshape(coo.shape[mode], -1)
            factors[mode] = _leading_singular_vectors(unfolded, ranks[mode])

        mapping = {core_kernel.sparse_operand.name: coo}
        for op, factor in zip(core_kernel.dense_operands, factors):
            mapping[op.name] = factor
        core = np.asarray(core_executor.execute(mapping))

        # With orthonormal factors, ||T - model||^2 = ||T||^2 - ||core||^2.
        core_norm = float(np.linalg.norm(core))
        residual_sq = max(0.0, norm_t**2 - core_norm**2)
        fit = 1.0 - np.sqrt(residual_sq) / norm_t if norm_t > 0 else 1.0
        fits.append(fit)
        sweeps = sweep + 1
        if abs(fit - previous_fit) < tolerance:
            break
        previous_fit = fit

    return TuckerDecomposition(
        factors=factors, core=core, fits=fits, iterations=sweeps
    )
