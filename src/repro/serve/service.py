"""Batched contraction service: many concurrent requests, one runtime.

:class:`ContractionService` is the serving layer the ROADMAP's north star
asks for: callers :meth:`~ContractionService.submit` contraction requests
(the four named kernel families or arbitrary ``build_kernel`` spec strings)
and receive :class:`ServeFuture` handles; the service executes the queue in
*batches* and resolves every future in submission order.

The throughput lever is the paper's own amortization argument applied
across requests instead of across iterations:

* **batching by plan-cache signature** — queued requests are grouped by the
  structural identity that determines their schedule and compiled plan
  (kernel signature + sparsity statistics + operand shapes/dtypes +
  engine).  Each group resolves one
  :func:`~repro.engine.plan_cache.cached_schedule` and one
  :func:`~repro.engine.plan_cache.cached_executor`, so the scheduler's
  loop-order search and the executor's symbolic preprocessing are paid once
  per group, not once per request;
* **dispatch on the shared runtime** — with ``workers > 1`` (or
  ``REPRO_WORKERS`` set) each group fans out over the persistent
  :func:`~repro.runtime.shared_pool`.  Operands referenced by more than
  one request of a group — dense factor matrices *and* the COO sparse
  tensor's coordinate/value arrays — are broadcast once through
  ``multiprocessing.shared_memory`` (:mod:`repro.runtime.shm`); each task
  ships only its request's private operands, and workers rebuild each
  broadcast sparse tensor once (cached per segment), so its CSF conversion
  is reused across the whole batch.  The order-preserving map keeps
  results in submission order, so the parallel tier is bit-identical to
  serial serving;
* **admission control** — the queue is bounded (``max_pending``) and every
  request is validated (spec parsed against its operands) at submission:
  malformed work is rejected with :class:`AdmissionError` before it can
  occupy the queue.  Per-request *execution* failures resolve only their
  own future; the rest of the batch is unaffected.

The memory side of admission lives in the plan cache itself: the process
caches are LRU with an optional byte budget (``REPRO_PLAN_CACHE_BYTES``),
so a long-running service cannot grow its compiled-plan footprint without
bound.  :meth:`ContractionService.cache_stats` surfaces the hit/miss/
eviction/bytes counters per cache.
"""

from __future__ import annotations

import hashlib
import os
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.expr import SpTTNKernel
from repro.core.loop_nest import LoopNest
from repro.engine.executor import (
    ENGINES,
    LoopNestExecutor,
    TensorLike,
    default_engine,
)
from repro.engine.plan_cache import (
    cached_executor,
    cached_schedule,
    caches_snapshot,
    operand_signature,
    schedule_key,
)
from repro.core.scheduler import SpTTNScheduler
from repro.obs.metrics import inc_counter, observe
from repro.obs.trace import span as _span
from repro.runtime import (
    attach,
    parallel_map,
    publish,
    resolve_workers,
    supervision_events,
)
from repro.serve.request import ContractionRequest
from repro.sptensor.coo import COOTensor
from repro.sptensor.dense import DenseTensor
from repro.util.faults import fault_point
from repro.util.validation import require

Output = Union[np.ndarray, COOTensor]

#: Scheduling knobs shared by every request the service plans.  They are
#: part of the group signature implicitly (all groups use the same knobs),
#: and they match the :func:`~repro.engine.plan_cache.cached_schedule`
#: defaults so service traffic and library callers share cache entries.
_SCHEDULE_KNOBS = dict(
    buffer_dim_bound=2, flop_tolerance=1.5, max_paths=5000, enforce_csf_order=True
)

#: Per-request latency stages reported in :attr:`ServeFuture.timings` and
#: aggregated into the ``serve.stage.*`` histograms; the daemon adds
#: ``wire_encode`` when it serializes the reply.
STAGES = ("queue_wait", "schedule", "build", "execute", "reduce", "wire_encode")


class AdmissionError(RuntimeError):
    """A request was refused at submission (full queue or invalid spec)."""


class DeadlineError(RuntimeError):
    """A request's deadline had already expired when it was submitted."""


class QuarantinedError(RuntimeError):
    """A request matches a quarantined plan signature and fails fast."""


class RequestFailed(RuntimeError):
    """A submitted request resolved with an error.

    :attr:`code` classifies the failure — ``"execution"`` for ordinary
    per-request errors, ``"timeout"`` for deadline expirations — so
    callers (the daemon's reply streamer) can map it to a structured
    wire error without parsing the message.
    """

    def __init__(self, message: str, code: str = "execution") -> None:
        super().__init__(message)
        self.code = code


@dataclass
class _RequestError:
    """Picklable marker carrying one request's execution failure.

    ``code`` mirrors :attr:`RequestFailed.code` (``"execution"`` or
    ``"timeout"``).
    """

    message: str
    code: str = "execution"


#: Environment variable: how long (seconds) a poison signature stays
#: quarantined.  ``0`` disables quarantining entirely.
QUARANTINE_TTL_ENV = "REPRO_QUARANTINE_TTL"
#: Worker-crash strikes against one signature before it is quarantined.
QUARANTINE_STRIKES = 2


def default_quarantine_ttl() -> float:
    """Quarantine TTL in seconds from ``REPRO_QUARANTINE_TTL`` (default 30)."""
    raw = os.environ.get(QUARANTINE_TTL_ENV)
    if raw is None or not raw.strip():
        return 30.0
    try:
        return max(0.0, float(raw))
    except ValueError:
        return 30.0


@dataclass
class _SharedSparse:
    """Picklable reference to a shm-broadcast COO sparse operand.

    Ships only the two :class:`~repro.runtime.shm.SharedArrayHandle`\\ s of
    the coordinate/value arrays; workers rebuild (and cache) the tensor via
    :func:`_resolve_sparse`.
    """

    shape: Tuple[int, ...]
    indices: object
    values: object


#: Worker-side cache of rebuilt broadcast sparse tensors, keyed by the
#: values segment name.  Returning the *same* COOTensor object for every
#: request of a batch is what makes the per-object CSF-conversion memo hit
#: across the batch — one CSF analysis per worker, not one per request.
_SPARSE_ATTACHED: "OrderedDict[str, COOTensor]" = OrderedDict()
_SPARSE_ATTACH_CAP = 8


def _resolve_sparse(ref: _SharedSparse) -> COOTensor:
    key = getattr(ref.values, "segment", None)
    if key is not None:
        cached = _SPARSE_ATTACHED.get(key)
        if cached is not None:
            _SPARSE_ATTACHED.move_to_end(key)
            return cached
    # the broadcast arrays are already canonical (deduped, sorted), so the
    # constructor's sort pass is skipped
    tensor = COOTensor(ref.shape, attach(ref.indices), attach(ref.values), sort=False)
    if key is not None:
        _SPARSE_ATTACHED[key] = tensor
        if len(_SPARSE_ATTACHED) > _SPARSE_ATTACH_CAP:
            _SPARSE_ATTACHED.popitem(last=False)
    return tensor


class ServeFuture:
    """Handle for one submitted request's result.

    ``result()`` on a still-pending future triggers a service
    :meth:`~ContractionService.flush` (the service is synchronous — there
    is no background thread), then returns the output or raises
    ``RuntimeError`` if that request failed during execution.

    Done callbacks registered with :meth:`add_done_callback` fire as soon
    as the future resolves — *inside* the flush, in whatever thread runs
    it — which is how the serving daemon streams results per signature
    group instead of waiting for the whole flush to return.

    :attr:`timings` carries the request's per-stage latency breakdown
    (seconds per :data:`STAGES` entry) once resolved; the daemon embeds it
    in the result reply.
    """

    __slots__ = ("request", "timings", "_service", "_done", "_value", "_callbacks")

    def __init__(self, request: ContractionRequest, service: "ContractionService"):
        self.request = request
        self.timings: Dict[str, float] = {}
        self._service = service
        self._done = False
        self._value: object = None
        self._callbacks: List[object] = []

    @property
    def done(self) -> bool:
        """Whether this future has been resolved by a flush."""
        return self._done

    def add_done_callback(self, fn) -> None:
        """Call ``fn(self)`` once resolved (immediately if already done).

        Callbacks run in the thread executing the flush and must not
        raise; exceptions are swallowed so one subscriber cannot poison
        the batch that is still resolving.
        """
        if self._done:
            self._invoke(fn)
        else:
            self._callbacks.append(fn)

    def _invoke(self, fn) -> None:
        try:
            fn(self)
        except Exception:  # subscriber bugs must not break the flush
            pass

    def _resolve(self, value: object) -> None:
        self._done = True
        self._value = value
        callbacks, self._callbacks = self._callbacks, []
        for fn in callbacks:
            self._invoke(fn)

    def result(self) -> Output:
        """Flush the service if needed and return (or raise) this result.

        Failures raise :class:`RequestFailed` (a ``RuntimeError``) whose
        ``code`` distinguishes execution errors from deadline timeouts.
        """
        if not self._done:
            self._service.flush()
        assert self._done, "flush() must resolve every pending future"
        if isinstance(self._value, _RequestError):
            raise RequestFailed(
                f"request {self.request.kind!r} ({self.request.spec}) failed: "
                f"{self._value.message}",
                code=self._value.code,
            )
        return self._value  # type: ignore[return-value]


@dataclass
class ServiceStats:
    """Counters accumulated over a service's lifetime."""

    submitted: int = 0
    rejected: int = 0
    served: int = 0
    failed: int = 0
    flushes: int = 0
    batches: int = 0
    #: requests beyond each batch's first — the ones whose schedule search
    #: and plan compilation were amortized by batching.
    amortized: int = 0
    #: bytes of dense operand data placed in shared memory by batch dispatch.
    shared_bytes: int = 0
    #: requests resolved (or shed) as deadline expirations.
    expired: int = 0
    #: requests refused fast because their signature was quarantined.
    quarantined: int = 0
    #: signatures placed in quarantine over the service lifetime.
    quarantines: int = 0
    by_kind: Dict[str, int] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict view of the counters (stats replies, CLI printing)."""
        return {
            "submitted": self.submitted,
            "rejected": self.rejected,
            "served": self.served,
            "failed": self.failed,
            "flushes": self.flushes,
            "batches": self.batches,
            "amortized": self.amortized,
            "shared_bytes": self.shared_bytes,
            "expired": self.expired,
            "quarantined": self.quarantined,
            "quarantines": self.quarantines,
            "by_kind": dict(self.by_kind),
        }


class _Pending:
    """One admitted request waiting for the next flush."""

    __slots__ = (
        "request",
        "kernel",
        "mapping",
        "signature",
        "digest",
        "engine",
        "future",
        "submitted_at",
        "expires_at",
    )

    def __init__(
        self,
        request: ContractionRequest,
        kernel: SpTTNKernel,
        mapping: Dict[str, TensorLike],
        signature: Tuple,
        digest: str,
        engine: str,
        future: ServeFuture,
        expires_at: Optional[float],
    ) -> None:
        self.request = request
        self.kernel = kernel
        self.mapping = mapping
        self.signature = signature
        self.digest = digest
        self.engine = engine
        self.future = future
        self.submitted_at = time.perf_counter()
        self.expires_at = expires_at


@dataclass
class _GroupTiming:
    """Stage timings of one signature group, attached per request on resolve."""

    flush_start: float
    schedule_s: float
    build_s: float
    execute_s: List[float]


class _BatchTask:
    """Picklable per-request execution task for the worker pool.

    The task carries the batch's shared structure (kernel, loop nest,
    engine) once; each payload holds the request's private operands, a
    ``"__shared__"`` map of shm handles for broadcast dense operands
    (resolved with the worker-side attachment cache of
    :mod:`repro.runtime.shm`), and :class:`_SharedSparse` references for
    broadcast sparse operands (rebuilt once per worker per broadcast).
    The executor is resolved through the process-wide
    :func:`~repro.engine.plan_cache.cached_executor`, so each
    worker compiles the batch's plan once no matter how many requests it
    serves.
    """

    def __init__(
        self, kernel: SpTTNKernel, loop_nest: LoopNest, engine: str
    ) -> None:
        self.kernel = kernel
        self.loop_nest = loop_nest
        self.engine = engine

    def __call__(self, payload: Dict[str, object]) -> object:
        payload = dict(payload)
        shared = payload.pop("__shared__", {})
        tensors: Dict[str, TensorLike] = {
            name: attach(handle) for name, handle in shared.items()
        }
        for name, value in payload.items():
            tensors[name] = (
                _resolve_sparse(value) if isinstance(value, _SharedSparse) else value
            )
        try:
            fault_point("serve.execute")
            executor = cached_executor(
                self.kernel, self.loop_nest, engine=self.engine
            )
            return executor.execute(tensors)
        except Exception as exc:  # per-request isolation
            return _RequestError(f"{type(exc).__name__}: {exc}")


class ContractionService:
    """Batched serving of SpTTN contraction requests on the shared runtime.

    Parameters
    ----------
    workers:
        Worker processes per flush (``None`` = the ``REPRO_WORKERS``
        default, ``0`` = serial, ``-1`` = one per CPU).  Serial and
        parallel serving produce bit-identical results.
    engine:
        Default execution engine for requests that do not override it
        (``None`` = the ``REPRO_ENGINE`` process default, resolved once at
        construction so later environment changes cannot split a batch).
    max_pending:
        Queue bound; :meth:`submit` raises :class:`AdmissionError` when the
        queue is full.
    quarantine_ttl:
        Seconds a poison signature (one whose batches crashed workers
        :data:`QUARANTINE_STRIKES` times) stays quarantined; matching
        submissions fail fast with :class:`QuarantinedError` until the TTL
        expires.  ``None`` defers to ``REPRO_QUARANTINE_TTL`` (default 30);
        ``0`` disables quarantining.

    Examples
    --------
    >>> service = ContractionService(workers=2)
    >>> futures = [service.submit(mttkrp_request(T, [B, C], mode=0)),
    ...            service.submit(ContractionRequest("ijk,ir,js->rs", (T, U, V)))]
    >>> service.flush()                      # or futures[0].result()
    >>> outputs = [f.result() for f in futures]
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        engine: Optional[str] = None,
        max_pending: int = 4096,
        quarantine_ttl: Optional[float] = None,
    ) -> None:
        require(max_pending >= 1, "max_pending must be >= 1")
        self.workers = workers
        self.engine = default_engine() if engine is None else engine
        # the service-wide default reaches every request: fail at
        # construction, not per future at flush time (per-request engine
        # overrides stay late-failing, isolated to their own future)
        require(
            self.engine in ENGINES,
            f"engine must be one of {ENGINES}, got {self.engine!r}",
        )
        self.max_pending = max_pending
        self.quarantine_ttl = (
            default_quarantine_ttl() if quarantine_ttl is None
            else max(0.0, quarantine_ttl)
        )
        self.stats = ServiceStats()
        self._pending: List[_Pending] = []
        #: signature digest -> quarantine entry (monotonic expiry, strike
        #: count, a human-readable sample of the offending request).
        self._quarantine: Dict[str, Dict[str, object]] = {}
        #: signature digest -> worker-crash strikes accumulated so far.
        self._strikes: Dict[str, int] = {}

    # ------------------------------------------------------------------ #
    # Admission
    # ------------------------------------------------------------------ #
    @property
    def pending(self) -> int:
        """Number of admitted requests waiting for the next flush."""
        return len(self._pending)

    def _signature(
        self, kernel: SpTTNKernel, mapping: Mapping[str, TensorLike], engine: str
    ) -> Tuple:
        return (
            schedule_key(kernel, **_SCHEDULE_KNOBS),
            operand_signature(kernel, mapping),
            engine,
        )

    def submit(
        self,
        request: ContractionRequest,
        expires_at: Optional[float] = None,
    ) -> ServeFuture:
        """Admit one request; returns its future or raises on refusal.

        Refusals: :class:`AdmissionError` (full queue, invalid spec),
        :class:`QuarantinedError` (the request's plan signature is
        quarantined) and :class:`DeadlineError` (its deadline has already
        expired).  *expires_at* is an absolute ``time.monotonic()``
        deadline stamped by a caller that queued the request earlier (the
        daemon), so queue wait counts against the budget; without it, a
        ``request.deadline_ms`` starts its clock here.
        """
        if len(self._pending) >= self.max_pending:
            self.stats.rejected += 1
            inc_counter("serve.rejected")
            raise AdmissionError(
                f"queue full ({self.max_pending} pending); flush() or raise "
                f"max_pending"
            )
        try:
            kernel, mapping = request.build()
        except Exception as exc:
            self.stats.rejected += 1
            inc_counter("serve.rejected")
            raise AdmissionError(f"invalid request: {exc}") from exc
        engine = request.engine if request.engine is not None else self.engine
        signature = self._signature(kernel, mapping, engine)
        digest = self.signature_digest(signature)
        self._check_quarantine(digest)
        if expires_at is None and request.deadline_ms is not None:
            expires_at = time.monotonic() + request.deadline_ms / 1000.0
        if expires_at is not None and time.monotonic() >= expires_at:
            self.stats.expired += 1
            inc_counter("serve.expired")
            raise DeadlineError(
                f"deadline ({request.deadline_ms}ms) expired before admission"
            )
        future = ServeFuture(request, self)
        self._pending.append(
            _Pending(
                request,
                kernel,
                dict(mapping),
                signature,
                digest,
                engine,
                future,
                expires_at,
            )
        )
        self.stats.submitted += 1
        inc_counter("serve.submitted")
        self.stats.by_kind[request.kind] = (
            self.stats.by_kind.get(request.kind, 0) + 1
        )
        return future

    # ------------------------------------------------------------------ #
    # Quarantine
    # ------------------------------------------------------------------ #
    @staticmethod
    def signature_digest(signature: Tuple) -> str:
        """Short stable digest naming a plan signature in stats/errors."""
        return hashlib.sha1(repr(signature).encode("utf-8")).hexdigest()[:12]

    def _check_quarantine(self, digest: str) -> None:
        entry = self._quarantine.get(digest)
        if entry is None:
            return
        now = time.monotonic()
        if now >= entry["until"]:
            # TTL expiry: fresh slate — the next crash starts a new count
            del self._quarantine[digest]
            self._strikes.pop(digest, None)
            return
        entry["rejected"] = int(entry["rejected"]) + 1
        self.stats.quarantined += 1
        inc_counter("serve.quarantined")
        raise QuarantinedError(
            f"plan signature {digest} is quarantined for another "
            f"{float(entry['until']) - now:.1f}s after {entry['strikes']} "
            f"worker-crash strike(s)"
        )

    def _note_crash_strike(self, leader: _Pending) -> None:
        """Record that *leader*'s signature group crashed pool workers."""
        digest = leader.digest
        strikes = self._strikes.get(digest, 0) + 1
        self._strikes[digest] = strikes
        if strikes < QUARANTINE_STRIKES or self.quarantine_ttl <= 0:
            return
        self._quarantine[digest] = {
            "until": time.monotonic() + self.quarantine_ttl,
            "strikes": strikes,
            "kind": leader.request.kind,
            "spec": str(leader.request.spec),
            "rejected": 0,
        }
        self.stats.quarantines += 1
        inc_counter("serve.quarantines")

    def quarantine_snapshot(self) -> Dict[str, object]:
        """The live quarantine table (stats endpoints, health checks)."""
        now = time.monotonic()
        return {
            "ttl_s": self.quarantine_ttl,
            "strikes": dict(self._strikes),
            "entries": {
                digest: {
                    "kind": entry["kind"],
                    "spec": entry["spec"],
                    "strikes": entry["strikes"],
                    "rejected": entry["rejected"],
                    "expires_in_s": max(0.0, float(entry["until"]) - now),
                }
                for digest, entry in self._quarantine.items()
            },
        }

    def submit_many(
        self, requests: Sequence[ContractionRequest]
    ) -> List[ServeFuture]:
        """Admit several requests in order; returns one future each."""
        return [self.submit(r) for r in requests]

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def flush(self) -> None:
        """Execute every pending request and resolve its future.

        Requests are grouped by plan-cache signature; groups run in
        first-submission order, requests within a group in submission
        order, so the set of (request, result) pairs — and every future's
        value — is independent of grouping and worker count.
        """
        pending, self._pending = self._pending, []
        if not pending:
            return
        flush_start = time.perf_counter()
        self.stats.flushes += 1
        inc_counter("serve.flushes")
        groups: "OrderedDict[Tuple, List[_Pending]]" = OrderedDict()
        for p in pending:
            groups.setdefault(p.signature, []).append(p)
        workers = resolve_workers(self.workers)
        try:
            with _span(
                "flush", "serve", requests=len(pending), groups=len(groups)
            ):
                for group in groups.values():
                    self._run_group(group, workers, flush_start)
        except BaseException as exc:
            # _run_group isolates per-request and per-group failures; only
            # truly unexpected errors (MemoryError, KeyboardInterrupt, a
            # pool encoding failure) land here.  Every still-pending future
            # must resolve — with the abort recorded — or a later
            # ``result()`` would hang on a queue that no longer exists.
            error = _RequestError(f"flush aborted: {type(exc).__name__}: {exc}")
            for p in pending:
                if not p.future.done:
                    self.stats.failed += 1
                    p.future._resolve(error)
            raise
        self.stats.batches += len(groups)
        self.stats.amortized += len(pending) - len(groups)
        inc_counter("serve.batches", len(groups))
        inc_counter("serve.amortized", len(pending) - len(groups))
        observe("serve.flush", time.perf_counter() - flush_start)

    def run(self, requests: Sequence[ContractionRequest]) -> List[Output]:
        """Submit, flush and collect results in request order."""
        futures = self.submit_many(requests)
        self.flush()
        return [f.result() for f in futures]

    def _resolve(
        self,
        group: List[_Pending],
        results: Sequence[object],
        timing: Optional[_GroupTiming] = None,
    ) -> None:
        ready = time.perf_counter()
        for i, (p, value) in enumerate(zip(group, results)):
            if (
                not isinstance(value, _RequestError)
                and p.expires_at is not None
                and time.monotonic() >= p.expires_at
            ):
                # the result arrived, but after the caller stopped caring:
                # report the deadline, not a payload nobody will read
                value = _RequestError(
                    f"deadline ({p.request.deadline_ms}ms) expired during "
                    f"execution",
                    code="timeout",
                )
            if isinstance(value, _RequestError):
                if value.code == "timeout":
                    self.stats.expired += 1
                    inc_counter("serve.expired")
                else:
                    self.stats.failed += 1
                    inc_counter("serve.failed")
            else:
                self.stats.served += 1
                inc_counter("serve.served")
            if timing is not None:
                stages = {
                    "queue_wait": max(0.0, timing.flush_start - p.submitted_at),
                    "schedule": timing.schedule_s,
                    "build": timing.build_s,
                    "execute": timing.execute_s[i],
                    "reduce": max(0.0, time.perf_counter() - ready),
                }
                p.future.timings.update(stages)
                for stage, seconds in stages.items():
                    observe(f"serve.stage.{stage}", seconds)
            p.future._resolve(value)

    def _run_group(
        self, group: List[_Pending], workers: int, flush_start: float
    ) -> None:
        # shed requests whose deadline expired while they waited in the
        # queue — running them would spend worker time on dead replies
        now = time.monotonic()
        expired = [
            p for p in group if p.expires_at is not None and now >= p.expires_at
        ]
        if expired:
            self._resolve(
                expired,
                [
                    _RequestError(
                        f"deadline ({p.request.deadline_ms}ms) expired after "
                        f"queue wait",
                        code="timeout",
                    )
                    for p in expired
                ],
            )
            group = [p for p in group if not p.future.done]
            if not group:
                return
        leader = group[0]
        schedule_t0 = time.perf_counter()
        try:
            schedule = cached_schedule(leader.kernel, **_SCHEDULE_KNOBS)
        except Exception as exc:
            # scheduling failure is structural: it fails the whole group
            error = _RequestError(f"{type(exc).__name__}: {exc}")
            self._resolve(group, [error] * len(group))
            return
        schedule_s = time.perf_counter() - schedule_t0
        nest = schedule.loop_nest
        with _span(
            "group", "serve", requests=len(group), kind=leader.request.kind
        ):
            if workers > 1 and len(group) > 1:
                # sample the supervision totals around the parallel run:
                # any crash/timeout delta is a strike against this group's
                # signature (repeat offenders get quarantined)
                before = supervision_events()
                try:
                    results, build_s, execute_s = self._run_group_parallel(
                        group, nest, workers
                    )
                except Exception as exc:
                    # dispatch-path failure (e.g. an injected shm.publish
                    # fault): fail this group, not the whole flush
                    error = _RequestError(f"{type(exc).__name__}: {exc}")
                    results = [error] * len(group)
                    build_s, execute_s = 0.0, [0.0] * len(group)
                after = supervision_events()
                if (
                    after["crashes"] > before["crashes"]
                    or after["timeouts"] > before["timeouts"]
                ):
                    self._note_crash_strike(leader)
            else:
                results, build_s, execute_s = self._run_group_serial(group, nest)
        self._resolve(
            group,
            results,
            _GroupTiming(flush_start, schedule_s, build_s, execute_s),
        )

    def _run_group_serial(
        self, group: List[_Pending], nest: LoopNest
    ) -> Tuple[List[object], float, List[float]]:
        leader = group[0]
        build_t0 = time.perf_counter()
        try:
            executor = cached_executor(leader.kernel, nest, engine=leader.engine)
        except Exception as exc:
            # executor construction is structural (e.g. an unknown engine
            # name): it fails the whole signature group, nobody else
            error = _RequestError(f"{type(exc).__name__}: {exc}")
            return [error] * len(group), 0.0, [0.0] * len(group)
        build_s = time.perf_counter() - build_t0
        results: List[object] = []
        execute_s: List[float] = []
        for p in group:
            exec_t0 = time.perf_counter()
            try:
                fault_point("serve.execute")
                results.append(executor.execute(p.mapping))
            except Exception as exc:
                results.append(_RequestError(f"{type(exc).__name__}: {exc}"))
            execute_s.append(time.perf_counter() - exec_t0)
        return results, build_s, execute_s

    def _shared_dense(
        self, group: List[_Pending]
    ) -> Dict[int, Tuple[str, np.ndarray]]:
        """Dense operand arrays referenced by more than one request.

        Keyed by ``id()`` of the underlying array object: requests built
        from one factor set (an ALS sweep's workers, the scenario mixes)
        share array objects, and those are exactly the operands worth
        broadcasting once instead of pickling per task.
        """
        seen: Dict[int, Tuple[str, np.ndarray, int]] = {}
        for p in group:
            for op in p.kernel.dense_operands:
                value = p.mapping[op.name]
                arr = value.data if isinstance(value, DenseTensor) else value
                if not isinstance(arr, np.ndarray):
                    continue
                # a broadcast strips the DenseTensor wrapper, which is
                # safe: DenseTensor normalizes its data to float64 on
                # construction, so the executor binds the attached array
                # to the same bits either way
                key = id(arr)
                name, _, count = seen.get(key, (op.name, arr, 0))
                seen[key] = (name, arr, count + 1)
        return {
            key: (name, arr)
            for key, (name, arr, count) in seen.items()
            if count > 1
        }

    def _shared_sparse(self, group: List[_Pending]) -> Dict[int, COOTensor]:
        """COO sparse operands referenced by more than one request."""
        name = group[0].kernel.sparse_operand.name
        seen: Dict[int, Tuple[COOTensor, int]] = {}
        for p in group:
            value = p.mapping[name]
            if isinstance(value, COOTensor):
                tensor, count = seen.get(id(value), (value, 0))
                seen[id(value)] = (tensor, count + 1)
        return {key: t for key, (t, count) in seen.items() if count > 1}

    def _run_group_parallel(
        self, group: List[_Pending], nest: LoopNest, workers: int
    ) -> Tuple[List[object], float, List[float]]:
        leader = group[0]
        shared = self._shared_dense(group)
        sparse_shared = self._shared_sparse(group)
        # segment names must be unique per array object, not per operand
        # name (two requests may bind different arrays to one name)
        arrays = {f"a{i}": arr for i, (_, arr) in enumerate(shared.values())}
        for i, tensor in enumerate(sparse_shared.values()):
            arrays[f"si{i}"] = tensor.indices
            arrays[f"sv{i}"] = tensor.values
        published = publish(arrays)
        handle_of = {
            key: published.handles[f"a{i}"]
            for i, key in enumerate(shared.keys())
        }
        sparse_ref_of = {
            key: _SharedSparse(
                tuple(tensor.shape),
                published.handles[f"si{i}"],
                published.handles[f"sv{i}"],
            )
            for i, (key, tensor) in enumerate(sparse_shared.items())
        }
        try:
            self.stats.shared_bytes += published.shared_bytes
            payloads: List[Dict[str, object]] = []
            for p in group:
                payload: Dict[str, object] = {}
                task_shared: Dict[str, object] = {}
                for op in p.kernel.operands:
                    value = p.mapping[op.name]
                    arr = value.data if isinstance(value, DenseTensor) else value
                    if isinstance(arr, np.ndarray) and id(arr) in handle_of:
                        task_shared[op.name] = handle_of[id(arr)]
                    elif id(value) in sparse_ref_of:
                        payload[op.name] = sparse_ref_of[id(value)]
                    else:
                        payload[op.name] = value
                payload["__shared__"] = task_shared
                payloads.append(payload)
            task = _BatchTask(leader.kernel, nest, leader.engine)
            exec_t0 = time.perf_counter()
            results = parallel_map(
                task, payloads, workers=min(workers, len(group))
            )
            # plan build happens inside the workers; the batch wall time is
            # the best per-request attribution available for this path
            batch_wall = time.perf_counter() - exec_t0
            return results, 0.0, [batch_wall] * len(group)
        finally:
            published.close()

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @staticmethod
    def cache_stats() -> Dict[str, Dict[str, int]]:
        """Hit/miss/eviction/bytes stats of the process-wide caches."""
        return caches_snapshot()


# --------------------------------------------------------------------------- #
# Reference execution paths (oracle and baseline)
# --------------------------------------------------------------------------- #
def execute_sequential(
    requests: Sequence[ContractionRequest], engine: Optional[str] = None
) -> List[Output]:
    """One-at-a-time execution through the ordinary cached library path.

    This is the service's correctness oracle: batched serving (any worker
    count) must be bit-identical to this loop.
    """
    resolved = default_engine() if engine is None else engine
    results: List[Output] = []
    for request in requests:
        kernel, mapping = request.build()
        schedule = cached_schedule(kernel, **_SCHEDULE_KNOBS)
        executor = cached_executor(
            kernel,
            schedule.loop_nest,
            engine=request.engine if request.engine is not None else resolved,
        )
        results.append(executor.execute(mapping))
    return results


def execute_naive(
    requests: Sequence[ContractionRequest], engine: Optional[str] = None
) -> List[Output]:
    """Per-request re-planning: no schedule, plan or executor reuse.

    Every request pays the full pipeline — scheduler search, symbolic
    preprocessing, lowering — from scratch.  This is the baseline the serve
    benchmark compares batched cached serving against.
    """
    resolved = default_engine() if engine is None else engine
    results: List[Output] = []
    for request in requests:
        kernel, mapping = request.build()
        schedule = SpTTNScheduler(kernel, **_SCHEDULE_KNOBS).schedule()
        executor = LoopNestExecutor(
            kernel,
            schedule.loop_nest,
            plan_cache=None,
            engine=request.engine if request.engine is not None else resolved,
        )
        results.append(executor.execute(mapping))
    return results
