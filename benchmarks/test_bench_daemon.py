"""Daemon serving round trip vs in-process batched serving.

The network daemon wraps the same :class:`~repro.serve.ContractionService`
the in-process path uses, so the interesting quantity is the *cost of the
wire*: NDJSON framing, base64 tensor payloads, TCP round trips and the
event-loop dispatch, on top of identical batching and caching.  This
benchmark replays one seeded mixed workload through both paths on one
machine and records the round-trip overhead factor.

Only correctness is asserted (results bit-identical to sequential
execution through both paths); the overhead ratio is recorded, not gated —
loopback latency is too machine-dependent for a hard bar, and the wire
cost is dominated by payload size, not by anything this repo optimizes.
A measured snapshot lives in ``BENCH_serve.json`` (regenerate with
``python benchmarks/snapshot.py serve``).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.engine.plan_cache import clear_caches
from repro.serve import (
    ContractionService,
    ServeClient,
    execute_sequential,
    scenario_mix,
    start_daemon_thread,
)
from repro.sptensor import COOTensor

from _workloads import BENCH_SEED, format_table, record_rows

N_REQUESTS = 32
MIX = "mixed"
ENGINE = "lowered"


def _outputs_equal(a, b) -> None:
    if isinstance(b, COOTensor):
        assert isinstance(a, COOTensor)
        np.testing.assert_array_equal(a.indices, b.indices)
        np.testing.assert_array_equal(a.values, b.values)
    else:
        np.testing.assert_array_equal(np.asarray(a), np.asarray(b))


@pytest.mark.smoke
def test_daemon_round_trip_vs_in_process(benchmark):
    requests = scenario_mix(N_REQUESTS, mix=MIX, seed=BENCH_SEED, engine=ENGINE)
    clear_caches()
    expected = execute_sequential(requests, engine=ENGINE)

    # in-process batched serving, warm caches, timed
    service = ContractionService(workers=0, engine=ENGINE)
    in_process = service.run(requests)  # warm pass
    for got, want in zip(in_process, expected):
        _outputs_equal(got, want)
    start = time.perf_counter()
    service.run(requests)
    in_process_seconds = time.perf_counter() - start

    # daemon round trip over loopback TCP, same warm caches, timed
    with start_daemon_thread(workers=0, engine=ENGINE) as handle:
        with ServeClient(*handle.address) as client:
            daemon_outputs = client.run(requests)  # warm pass
            for got, want in zip(daemon_outputs, expected):
                _outputs_equal(got, want)
            start = time.perf_counter()
            client.run(requests)
            daemon_seconds = time.perf_counter() - start

            rows = [
                {
                    "requests": N_REQUESTS,
                    "mix": MIX,
                    "in_process_ms": in_process_seconds * 1e3,
                    "daemon_ms": daemon_seconds * 1e3,
                    "daemon_req_s": N_REQUESTS / daemon_seconds,
                    "wire_overhead_x": daemon_seconds / in_process_seconds,
                }
            ]
            record_rows(benchmark, rows)
            print("\n" + format_table(rows))

            benchmark.pedantic(
                lambda: client.run(requests), rounds=3, iterations=1, warmup_rounds=1
            )
