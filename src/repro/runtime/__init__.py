"""Shared parallel runtime: worker pool, operand broadcast, reductions.

One layer owns all intra-node parallelism so every consumer inherits the
same guarantees:

* :mod:`repro.runtime.pool` — a persistent, order-preserving
  ``multiprocessing`` pool with the deterministic semantics the loop-nest
  sweeps established (results identical to the serial map, ``REPRO_WORKERS``
  as the shared default, graceful serial fallback);
* :mod:`repro.runtime.shm` — zero-copy broadcast of dense operands through
  ``multiprocessing.shared_memory`` so per-task pickling only covers each
  rank's private data;
* :mod:`repro.runtime.reduce` — deterministic binary-tree combination of
  ordered per-rank partials.

Consumers: :mod:`repro.core.search` / :mod:`repro.core.autotune` (cost-model
and measured sweeps) and :mod:`repro.distributed.runtime` (rank-parallel
virtual-rank execution).
"""

from repro.runtime.pool import (
    TASK_RETRIES_ENV,
    TASK_TIMEOUT_ENV,
    WORKERS_ENV,
    WorkerPool,
    default_task_retries,
    default_task_timeout,
    default_workers,
    drain_pools,
    parallel_map,
    pool_stats,
    resolve_workers,
    shared_pool,
    shutdown_pool,
    supervision_events,
)
from repro.runtime.reduce import tree_reduce
from repro.runtime.shm import (
    DenseBroadcast,
    SharedArrayHandle,
    attach,
    detach_all,
    publish,
)

__all__ = [
    "TASK_RETRIES_ENV",
    "TASK_TIMEOUT_ENV",
    "WORKERS_ENV",
    "WorkerPool",
    "default_task_retries",
    "default_task_timeout",
    "default_workers",
    "drain_pools",
    "parallel_map",
    "pool_stats",
    "resolve_workers",
    "shared_pool",
    "shutdown_pool",
    "supervision_events",
    "tree_reduce",
    "DenseBroadcast",
    "SharedArrayHandle",
    "attach",
    "detach_all",
    "publish",
]
