"""Compressed Sparse Fiber (CSF) storage for sparse tensors.

CSF (Smith & Karypis, "Tensor-matrix products with a compressed sparse
tensor") stores an order-``d`` sparse tensor as a forest of depth ``d``:
level 0 holds the distinct indices of the first stored mode, the children of
a level-``k`` node are the distinct indices of mode ``k+1`` appearing under
that index prefix, and the values are attached to the leaves.

SpTTN loop nests iterate the sparse indices *in CSF storage order* (the
framework restricts loop orders to be consistent with this order, Section 5
of the paper), so the execution engine drives its sparse loops directly over
the level arrays stored here.

Representation
--------------
``fids[k]``
    1-D ``int64`` array of node index values at level ``k`` (length = number
    of distinct mode-prefixes of length ``k+1``, i.e. ``nnz_{I_1..I_{k+1}}``).
``fptr[k]``
    1-D ``int64`` array of length ``len(fids[k]) + 1``; the children of node
    ``p`` at level ``k`` occupy positions ``fptr[k][p]:fptr[k][p+1]`` of
    level ``k+1``.  There is no ``fptr`` for the last level.
``values``
    1-D ``float64`` array aligned with ``fids[order-1]``.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.sptensor.coo import COOTensor
from repro.util.validation import require


@dataclass(frozen=True)
class CSFNode:
    """A handle to one node of the CSF tree (level + position within level)."""

    level: int
    position: int


class CSFTensor:
    """A sparse tensor in compressed sparse fiber format.

    Construct via :meth:`from_coo`; direct construction from level arrays is
    supported for tests and for distributed-local subtensors.
    """

    __slots__ = ("shape", "mode_order", "fids", "fptr", "values", "__weakref__")

    def __init__(
        self,
        shape: Tuple[int, ...],
        mode_order: Tuple[int, ...],
        fids: List[np.ndarray],
        fptr: List[np.ndarray],
        values: np.ndarray,
    ) -> None:
        self.shape = tuple(int(s) for s in shape)
        self.mode_order = tuple(int(m) for m in mode_order)
        order = len(self.shape)
        require(
            sorted(self.mode_order) == list(range(order)),
            f"mode_order must be a permutation of 0..{order - 1}, got {mode_order}",
        )
        require(len(fids) == order, "fids must have one array per level")
        require(len(fptr) == order - 1, "fptr must have order-1 arrays")
        self.fids = [np.asarray(f, dtype=np.int64) for f in fids]
        self.fptr = [np.asarray(p, dtype=np.int64) for p in fptr]
        self.values = np.asarray(values, dtype=np.float64)
        require(
            self.values.shape[0] == self.fids[-1].shape[0],
            "values must align with the leaf level",
        )
        for k in range(order - 1):
            require(
                self.fptr[k].shape[0] == self.fids[k].shape[0] + 1,
                f"fptr[{k}] must have len(fids[{k}])+1 entries",
            )
            require(
                int(self.fptr[k][-1]) == self.fids[k + 1].shape[0],
                f"fptr[{k}] must cover all nodes of level {k + 1}",
            )

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_coo(
        cls, coo: COOTensor, mode_order: Optional[Sequence[int]] = None
    ) -> "CSFTensor":
        """Build a CSF tensor from a COO tensor.

        Parameters
        ----------
        coo:
            Source tensor.
        mode_order:
            Order in which modes become CSF levels; defaults to the natural
            order ``(0, 1, ..., d-1)``.  The paper stores the sparse tensor
            once with a fixed mode order and restricts loop orders to it.
        """
        order = coo.order
        if mode_order is None:
            mode_order = tuple(range(order))
        else:
            mode_order = tuple(int(m) for m in mode_order)
            require(
                sorted(mode_order) == list(range(order)),
                f"mode_order must be a permutation of 0..{order - 1}",
            )
        if coo.nnz == 0:
            fids = [np.zeros(0, dtype=np.int64) for _ in range(order)]
            fptr = [np.zeros(1, dtype=np.int64) for _ in range(order - 1)]
            return cls(coo.shape, mode_order, fids, fptr, np.zeros(0))

        idx = coo.indices[:, list(mode_order)]
        vals = coo.values
        # Sort lexicographically by the permuted index columns.
        perm = np.lexsort(idx.T[::-1])
        idx = idx[perm]
        vals = vals[perm]

        fids: List[np.ndarray] = []
        fptr: List[np.ndarray] = []
        # ``group_ids`` assigns each nonzero the id of its length-(k+1) prefix.
        prev_group = np.zeros(idx.shape[0], dtype=np.int64)
        for level in range(order):
            keys = np.stack([prev_group, idx[:, level]], axis=1)
            # new prefix starts wherever the (group, index) pair changes
            change = np.ones(idx.shape[0], dtype=bool)
            if idx.shape[0] > 1:
                change[1:] = np.any(keys[1:] != keys[:-1], axis=1)
            group = np.cumsum(change) - 1
            starts = np.flatnonzero(change)
            fids.append(idx[starts, level].copy())
            if level > 0:
                # fptr for the previous level: where does each parent's child
                # range begin among this level's nodes?
                parent_of_node = prev_group[starts]
                n_parents = fids[level - 1].shape[0]
                counts = np.zeros(n_parents, dtype=np.int64)
                np.add.at(counts, parent_of_node, 1)
                ptr = np.zeros(n_parents + 1, dtype=np.int64)
                np.cumsum(counts, out=ptr[1:])
                fptr.append(ptr)
            prev_group = group
        return cls(coo.shape, mode_order, fids, fptr, vals.copy())

    @classmethod
    def from_dense(
        cls, array: np.ndarray, mode_order: Optional[Sequence[int]] = None
    ) -> "CSFTensor":
        return cls.from_coo(COOTensor.from_dense(array), mode_order)

    # ------------------------------------------------------------------ #
    # Properties
    # ------------------------------------------------------------------ #
    @property
    def order(self) -> int:
        return len(self.shape)

    @property
    def nnz(self) -> int:
        return int(self.values.shape[0])

    @property
    def level_shape(self) -> Tuple[int, ...]:
        """Dimensions of the tensor permuted into CSF level order."""
        return tuple(self.shape[m] for m in self.mode_order)

    def nnz_at_level(self, level: int) -> int:
        """Number of CSF nodes at *level* (``nnz_{I_1...I_{level+1}}`` of the paper)."""
        if level < 0 or level >= self.order:
            raise ValueError(f"level {level} out of range for order {self.order}")
        return int(self.fids[level].shape[0])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        sizes = ", ".join(str(self.nnz_at_level(k)) for k in range(self.order))
        return (
            f"CSFTensor(shape={self.shape}, mode_order={self.mode_order}, "
            f"level_sizes=({sizes}))"
        )

    # ------------------------------------------------------------------ #
    # Navigation
    # ------------------------------------------------------------------ #
    def roots(self) -> np.ndarray:
        """Index values at level 0 (distinct first-mode indices)."""
        return self.fids[0]

    def children_range(self, level: int, position: int) -> Tuple[int, int]:
        """Half-open range of child positions at ``level + 1`` for a node."""
        if level < 0 or level >= self.order - 1:
            raise ValueError(
                f"level {level} has no children (order {self.order})"
            )
        ptr = self.fptr[level]
        if position < 0 or position >= ptr.shape[0] - 1:
            raise ValueError(f"position {position} out of range at level {level}")
        return int(ptr[position]), int(ptr[position + 1])

    def child_indices(self, level: int, position: int) -> np.ndarray:
        """Index values of the children of a node (view into ``fids[level+1]``)."""
        lo, hi = self.children_range(level, position)
        return self.fids[level + 1][lo:hi]

    def leaf_values(self, position_range: Tuple[int, int]) -> np.ndarray:
        """Values for a range of leaf positions (view)."""
        lo, hi = position_range
        return self.values[lo:hi]

    def iter_nodes(self, level: int) -> Iterator[CSFNode]:
        """Iterate handles over all nodes of *level*."""
        for pos in range(self.nnz_at_level(level)):
            yield CSFNode(level, pos)

    def subtree_leaf_range(self, level: int, position: int) -> Tuple[int, int]:
        """Range of leaf positions (nonzeros) below a node."""
        lo, hi = position, position + 1
        for lvl in range(level, self.order - 1):
            lo = int(self.fptr[lvl][lo])
            hi = int(self.fptr[lvl][hi])
        return lo, hi

    # ------------------------------------------------------------------ #
    # Conversions
    # ------------------------------------------------------------------ #
    def to_coo(self) -> COOTensor:
        """Expand back to COO (in the original mode order)."""
        if self.nnz == 0:
            return COOTensor.empty(self.shape)
        order = self.order
        # Expand per-level indices down to the leaves.
        expanded = np.empty((self.nnz, order), dtype=np.int64)
        # Start with the leaf level, then propagate ancestors upward by
        # repeating each level's index over its subtree leaf range.
        for level in range(order):
            ids = self.fids[level]
            if level == order - 1:
                expanded[:, level] = ids
                continue
            # repeat counts: number of leaves under each node of this level
            counts = np.ones(ids.shape[0], dtype=np.int64)
            lo = np.arange(ids.shape[0], dtype=np.int64)
            hi = lo + 1
            for lvl in range(level, order - 1):
                lo = self.fptr[lvl][lo]
                hi = self.fptr[lvl][hi]
            counts = hi - lo
            expanded[:, level] = np.repeat(ids, counts)
        # Undo the mode permutation.
        original = np.empty_like(expanded)
        for csf_pos, mode in enumerate(self.mode_order):
            original[:, mode] = expanded[:, csf_pos]
        return COOTensor(self.shape, original, self.values, sort=True)

    def to_dense(self) -> np.ndarray:
        return self.to_coo().to_dense()

    # ------------------------------------------------------------------ #
    # Vectorized views used by the execution engine
    # ------------------------------------------------------------------ #
    def expanded_level_indices(self, level: int) -> np.ndarray:
        """Index value of the level-*level* ancestor of every leaf (length nnz).

        Used by vectorized baseline executors that stream over all nonzeros
        at once rather than walking the tree.
        """
        if level < 0 or level >= self.order:
            raise ValueError(f"level {level} out of range")
        ids = self.fids[level]
        if level == self.order - 1:
            return ids
        lo = np.arange(ids.shape[0], dtype=np.int64)
        hi = lo + 1
        for lvl in range(level, self.order - 1):
            lo = self.fptr[lvl][lo]
            hi = self.fptr[lvl][hi]
        counts = hi - lo
        return np.repeat(ids, counts)

    def find_leaf(self, level_indices: Sequence[int]) -> Optional[int]:
        """Leaf position of the entry with the given per-level index values.

        *level_indices* is given in CSF level order (i.e. already permuted by
        ``mode_order``).  Returns ``None`` when the entry is not stored.
        Lookup is a binary search per level, ``O(order * log nnz)``.
        """
        if len(level_indices) != self.order:
            raise ValueError(
                f"expected {self.order} index values, got {len(level_indices)}"
            )
        lo, hi = 0, self.fids[0].shape[0]
        for level, want in enumerate(level_indices):
            ids = self.fids[level][lo:hi]
            pos = int(np.searchsorted(ids, int(want)))
            if pos >= ids.shape[0] or ids[pos] != int(want):
                return None
            node = lo + pos
            if level == self.order - 1:
                return node
            lo = int(self.fptr[level][node])
            hi = int(self.fptr[level][node + 1])
        return None  # pragma: no cover - unreachable

    def leaf_parent_positions(self) -> np.ndarray:
        """Position of each leaf's parent node (length nnz).

        Useful for segment-reduction based executors.
        """
        if self.order == 1:
            return np.zeros(self.nnz, dtype=np.int64)
        ptr = self.fptr[-1]
        counts = np.diff(ptr)
        return np.repeat(np.arange(counts.shape[0], dtype=np.int64), counts)


# --------------------------------------------------------------------------- #
# Memoized conversion
# --------------------------------------------------------------------------- #
#: Per-source-tensor memo of CSF conversions, keyed weakly by the source
#: object so entries disappear with their tensors.  Values map a CSF mode
#: order to the converted tensor.
_CONVERSION_MEMO: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def csf_for_mode_order(
    tensor: "COOTensor | CSFTensor", mode_order: Sequence[int]
) -> "CSFTensor":
    """CSF view of a sparse tensor for one mode order, memoized per source.

    Repeatedly executing a kernel on the same COO (or differently-ordered
    CSF) tensor pays the analysis/sort cost of :meth:`CSFTensor.from_coo`
    only once per (tensor object, mode order) — the SPLATT-style CSF
    amortization across ALS iterations.  The source tensor is treated as
    immutable: rebinding ``tensor.values`` to a new array invalidates the
    memo (detected by identity), but mutating the values array *in place*
    after a conversion leaves the memoized CSF stale — create a new tensor
    instead (e.g. :meth:`COOTensor.with_values`), as all library code does.
    """
    mode_order = tuple(int(m) for m in mode_order)
    if isinstance(tensor, CSFTensor) and tensor.mode_order == mode_order:
        return tensor
    per_source = _CONVERSION_MEMO.get(tensor)
    if per_source is not None:
        entry = per_source.get(mode_order)
        if entry is not None and entry[0] is tensor.values:
            return entry[1]
    coo = tensor.to_coo() if isinstance(tensor, CSFTensor) else tensor
    csf = CSFTensor.from_coo(coo, mode_order)
    if per_source is None:
        per_source = _CONVERSION_MEMO.setdefault(tensor, {})
    per_source[mode_order] = (tensor.values, csf)
    return csf
