"""Virtual-rank distributed execution of SpTTN kernels.

:class:`DistributedSpTTN` drives the Section 5.2 algorithm on virtual
processes:

1. partition the sparse tensor cyclically over a processor grid;
2. replicate/partition the dense operands (communication volume recorded);
3. run the *same* scheduled loop nest on every rank's local sparse tensor;
4. reduce the output (sum of the per-rank partial outputs for dense outputs,
   disjoint union for sparse-pattern outputs).

Two modes are provided:

* :meth:`execute` actually runs every virtual rank sequentially and reduces
  the results — this verifies that the distributed algorithm is exact
  (used by the tests and small examples);
* :meth:`simulate` estimates the parallel runtime for a process count from
  one measured single-rank execution, the per-rank nonzero counts (load
  imbalance is respected) and the alpha-beta communication model — this is
  what the Figure 8 strong-scaling benchmarks sweep.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Mapping, Optional, Sequence, Union

import numpy as np

from repro.core.expr import SpTTNKernel
from repro.core.scheduler import Schedule, SpTTNScheduler
from repro.distributed.comm_model import AlphaBetaModel
from repro.distributed.distribution import CyclicDistribution, partition_sparse_tensor
from repro.distributed.grid import ProcessorGrid
from repro.engine.executor import LoopNestExecutor, TensorLike
from repro.sptensor.coo import COOTensor
from repro.sptensor.csf import CSFTensor
from repro.util.validation import require

Output = Union[np.ndarray, COOTensor]


@dataclass
class SimulatedRun:
    """Breakdown of one simulated distributed execution."""

    processes: int
    grid_dims: Sequence[int]
    compute_seconds: float
    communication_seconds: float
    load_imbalance: float
    max_local_nnz: int
    broadcast_elements: int
    reduction_elements: int

    @property
    def total_seconds(self) -> float:
        return self.compute_seconds + self.communication_seconds

    def speedup_over(self, single: "SimulatedRun") -> float:
        if self.total_seconds <= 0:
            return float("inf")
        return single.total_seconds / self.total_seconds


@dataclass
class DistributedSpTTN:
    """Distributed execution / simulation of one SpTTN kernel."""

    kernel: SpTTNKernel
    tensors: Mapping[str, TensorLike]
    schedule: Optional[Schedule] = None
    comm_model: AlphaBetaModel = field(default_factory=AlphaBetaModel)
    #: effective scalar throughput (multiply-adds per second) assumed for a
    #: single process when converting operation counts to time in simulate();
    #: only the relative compute/communication balance matters for scaling.
    flop_rate: float = 2.0e9

    def __post_init__(self) -> None:
        if self.schedule is None:
            scheduler = SpTTNScheduler(self.kernel)
            self.schedule = scheduler.schedule()
        self._sparse = self._sparse_coo()
        self._single_rank_seconds: Optional[float] = None

    # ------------------------------------------------------------------ #
    def _sparse_coo(self) -> COOTensor:
        value = self.tensors[self.kernel.sparse_operand.name]
        if isinstance(value, CSFTensor):
            return value.to_coo()
        require(isinstance(value, COOTensor), "sparse operand must be COO or CSF")
        return value

    def grid_for(self, n_procs: int) -> ProcessorGrid:
        mode_sizes = [
            self.kernel.index_dims[i] for i in self.kernel.sparse_operand.indices
        ]
        return ProcessorGrid.for_tensor(n_procs, mode_sizes)

    # ------------------------------------------------------------------ #
    # Exact execution over virtual ranks
    # ------------------------------------------------------------------ #
    def execute(self, n_procs: int) -> Output:
        """Run every virtual rank's local kernel and reduce the results."""
        grid = self.grid_for(n_procs)
        locals_ = partition_sparse_tensor(self._sparse, grid)
        partials: List[Output] = []
        for local in locals_:
            if local.nnz == 0:
                continue
            executor = LoopNestExecutor(self.kernel, self.schedule.loop_nest)
            local_tensors = dict(self.tensors)
            local_tensors[self.kernel.sparse_operand.name] = local
            partials.append(executor.execute(local_tensors))
        return self._reduce(partials)

    def _reduce(self, partials: List[Output]) -> Output:
        if self.kernel.output.is_sparse:
            # Disjoint nonzero sets: concatenate coordinates and values.
            if not partials:
                return COOTensor.empty(self._sparse.shape)
            coords = np.vstack([p.indices for p in partials])  # type: ignore[union-attr]
            values = np.concatenate([p.values for p in partials])  # type: ignore[union-attr]
            return COOTensor(self._sparse.shape, coords, values, sort=True)
        shape = tuple(
            self.kernel.index_dims[i] for i in self.kernel.output.indices
        )
        total = np.zeros(shape if shape else (), dtype=np.float64)
        for p in partials:
            total += np.asarray(p)
        return total

    # ------------------------------------------------------------------ #
    # Runtime estimation (strong scaling)
    # ------------------------------------------------------------------ #
    def measure_single_rank(self, repeats: int = 1) -> float:
        """Measure (and cache) the single-process execution time."""
        if self._single_rank_seconds is None:
            best = float("inf")
            for _ in range(max(1, repeats)):
                executor = LoopNestExecutor(self.kernel, self.schedule.loop_nest)
                start = time.perf_counter()
                executor.execute(dict(self.tensors))
                best = min(best, time.perf_counter() - start)
            self._single_rank_seconds = best
        return self._single_rank_seconds

    def simulate(self, n_procs: int, measure: bool = True) -> SimulatedRun:
        """Estimate the parallel runtime on *n_procs* virtual processes.

        ``measure=True`` (default) anchors the compute term to one measured
        single-rank execution and scales it by the most-loaded rank's share
        of the nonzeros; ``measure=False`` instead derives the compute term
        from the schedule's estimated operation count and :attr:`flop_rate`
        (fully analytic, used when the tensor is too large to execute).
        """
        require(n_procs >= 1, "n_procs must be positive")
        grid = self.grid_for(n_procs)
        plan = CyclicDistribution.plan(self.kernel, grid)
        local_nnz = plan.local_nnz(self._sparse)
        total_nnz = max(1, self._sparse.nnz)
        max_local = int(local_nnz.max()) if local_nnz.size else 0

        if measure:
            single = self.measure_single_rank()
            compute = single * (max_local / total_nnz) if total_nnz else 0.0
        else:
            flops = self.schedule.flop_estimate
            compute = (flops / self.flop_rate) * (max_local / total_nnz)

        comm = 0.0
        if n_procs > 1:
            for placement in plan.dense_placements:
                comm += self.comm_model.broadcast(
                    placement.broadcast_elements, n_procs
                ).total
            comm += self.comm_model.reduce(
                plan.output_reduction_elements, n_procs
            ).total
            # per-iteration latency floor: every rank participates in the
            # setup and reduction collectives
            comm += self.comm_model.alpha * np.log2(max(2, n_procs))

        return SimulatedRun(
            processes=n_procs,
            grid_dims=grid.dims,
            compute_seconds=float(compute),
            communication_seconds=float(comm),
            load_imbalance=plan.load_imbalance(self._sparse),
            max_local_nnz=max_local,
            broadcast_elements=plan.total_broadcast_elements(),
            reduction_elements=plan.output_reduction_elements,
        )
