"""Shared utilities: validation, timers, operation counters, fault injection."""

from repro.util.validation import (
    check_axis,
    check_dtype_real,
    check_positive_int,
    check_shape,
    require,
)
from repro.util.timing import Timer, timed
from repro.util.counters import OpCounter
from repro.util.faults import (
    FAULTS_ENV,
    FaultInjected,
    configure_faults,
    fault_point,
    faults_active,
    faults_snapshot,
    reset_faults,
)

__all__ = [
    "check_axis",
    "check_dtype_real",
    "check_positive_int",
    "check_shape",
    "require",
    "Timer",
    "timed",
    "OpCounter",
    "FAULTS_ENV",
    "FaultInjected",
    "configure_faults",
    "fault_point",
    "faults_active",
    "faults_snapshot",
    "reset_faults",
]
