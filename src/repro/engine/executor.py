"""Loop-nest execution (Algorithm 2 of the paper).

:class:`LoopNestExecutor` runs a fully-fused loop nest — a contraction path
plus per-term loop orders — over a CSF sparse tensor and dense factor
operands.  Following Algorithm 2 it operates in two stages:

*Preprocessing* (once per loop-nest *structure*, process-wide): the fused
loop-nest structure is walked symbolically.  Consecutive terms sharing the
current loop index are grouped under one loop (fusion), buffer-reset points
are placed where a producer separates from its consumer (the ``X = 0`` lines
of Listings 3/4), and every maximal single-term region whose remaining
indices are dense — or are led by the final CSF level (a stored fiber) — is
bound to a specialized vectorized NumPy kernel (the reproduction's BLAS
offload, Figure 6).  The result is an array-independent
:class:`~repro.engine.plan_cache.CompiledPlan` of symbolic steps per
loop-nest site, cached in the process-wide
:class:`~repro.engine.plan_cache.PlanCache` keyed by the full structural
identity of the execution (kernel signature, contraction path, loop orders,
CSF mode order, operand shapes/dtypes).  Each ``execute()`` call only
*binds* the plan to its freshly allocated output/buffer arrays — a cheap
substitution pass — so repeated executions of the same structure (ALS/HOOI
sweeps, autotuning repeats) perform zero per-call symbolic analysis, and the
execution hot loop performs no per-iteration analysis.

*Execution* happens in one of three engines, selected by the ``engine``
parameter (default from the ``REPRO_ENGINE`` environment variable, falling
back to ``"lowered"``):

* ``"jit"`` — the lowered program is additionally compiled (once, cached
  on the plan) by :mod:`repro.engine.lowering.codegen` into a single fused
  NumPy callable with pooled intermediate buffers and bind-time prepared
  index maps; programs the generator declines run on the lowered VM
  (jit → lowered → interpret fallback chain).
* ``"lowered"`` — the plan is compiled once (cached on the plan) by
  :mod:`repro.engine.lowering` into a flat program of vectorized array ops
  (gathers into CSF lane layout, batched einsums, segment reductions along
  the level pointers) and executed with no per-fiber Python dispatch.
  Constructs without a vectorized lowering fall back to interpretation
  automatically, so the switch is always safe.
* ``"interpret"`` — the plan is interpreted; sparse loops walk the CSF tree
  level by level so only stored fibers are visited, dense loops iterate
  full index ranges, and offloaded regions execute one pre-specialized
  kernel call.

All engines report identical operation counts; results agree to the usual
floating-point reassociation of vectorized summation (last-ulp).  Dense
outputs and sparse-pattern outputs (TTTP/SDDMM-style) are both supported.
"""

from __future__ import annotations

import os
import time
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.contraction_path import ContractionPath
from repro.core.expr import SpTTNKernel, parse_kernel
from repro.core.loop_nest import LoopNest, validate_loop_order
from repro.core.scheduler import Schedule
from repro.engine.blas import specialize_contraction
from repro.engine.buffers import BufferSet
from repro.engine.lowering import compile_program, lower_plan, run_program
from repro.engine.plan_cache import (
    ARRAY as _ARRAY,
    SLOT_BUFFER as _SLOT_BUFFER,
    SLOT_DENSE as _SLOT_DENSE,
    SLOT_OUT as _SLOT_OUT,
    SPARSE_FIBER as _SPARSE_FIBER,
    SPARSE_LEAF as _SPARSE_LEAF,
    SPARSE_LOOKUP as _SPARSE_LOOKUP,
    SPARSE_OUT_FIBER as _SPARSE_OUT_FIBER,
    SPARSE_OUT_LEAF as _SPARSE_OUT_LEAF,
    SPARSE_OUT_LOOKUP as _SPARSE_OUT_LOOKUP,
    CompiledPlan,
    PlanCache,
    cached_schedule,
    default_plan_cache,
    operand_signature,
    plan_key,
    record_plan_features,
    record_plan_timing,
)
from repro.core.calibrate import cost_features, predict_seconds
from repro.obs.trace import span as _span
from repro.sptensor.coo import COOTensor
from repro.sptensor.csf import CSFTensor, csf_for_mode_order
from repro.sptensor.dense import DenseTensor
from repro.util.counters import OpCounter
from repro.util.validation import require

TensorLike = Union[COOTensor, CSFTensor, DenseTensor, np.ndarray]

#: Execution engines accepted by :class:`LoopNestExecutor`, fastest first;
#: each falls back transparently to the next when a plan does not support
#: it (jit → lowered → interpret).
ENGINES = ("jit", "lowered", "interpret")


def default_engine() -> str:
    """The process default engine: ``REPRO_ENGINE`` or ``"lowered"``."""
    return os.environ.get("REPRO_ENGINE", "lowered").strip().lower()


def _plan_state(plan: CompiledPlan) -> tuple:
    """Growth fingerprint of a plan: when it changes after an execution the
    cache entry is re-measured against its byte budget (sites discovered,
    lowering compiled, jit compiled, jit bound to a new tensor)."""
    return (
        plan.n_sites,
        plan.lowered is not None,
        plan.jit is not None,
        getattr(plan.jit, "version", 0),
    )


class LoopNestExecutor:
    """Executes one fully-fused loop nest for one SpTTN kernel.

    Parameters
    ----------
    kernel:
        The kernel description.
    loop_nest:
        The contraction path and loop order to execute.  The loop order must
        respect the CSF storage-order restriction (validated on
        construction).
    offload:
        When true (default), maximal dense/fiber-led single-term regions are
        executed with specialized vectorized NumPy kernels; when false every
        loop is interpreted and the innermost update is a scalar
        multiply-add (useful for testing and for modelling unvectorized
        baselines).
    counter:
        Optional :class:`~repro.util.counters.OpCounter` accumulating scalar
        operation counts, buffer resets and BLAS-call classifications.
    plan_cache:
        Where compiled plans live.  ``True`` (default) uses the process-wide
        cache from :func:`~repro.engine.plan_cache.default_plan_cache`; a
        :class:`~repro.engine.plan_cache.PlanCache` instance uses that cache
        (isolation for tests/benchmarks); ``None``/``False`` disables
        caching entirely, rebuilding the plan on every ``execute`` call (the
        pre-cache per-call-planning behaviour, kept for measurement).
    engine:
        ``"jit"`` executes the lowered program as one fused codegen
        callable when it compiles (falling back to the lowered VM, then
        interpretation); ``"lowered"`` executes via the vectorized
        lowering subsystem when the scheduled nest is lowerable (falling
        back to interpretation otherwise); ``"interpret"`` always
        interprets.  ``None`` (default)
        resolves through :func:`default_engine` (the ``REPRO_ENGINE``
        environment variable, else ``"lowered"``).  After each
        ``execute()`` call, :attr:`last_engine` records which engine
        actually ran.
    """

    def __init__(
        self,
        kernel: SpTTNKernel,
        loop_nest: LoopNest,
        offload: bool = True,
        counter: Optional[OpCounter] = None,
        plan_cache: Union[PlanCache, bool, None] = True,
        engine: Optional[str] = None,
    ) -> None:
        self.kernel = kernel
        self.loop_nest = loop_nest
        resolved = default_engine() if engine is None else engine
        require(
            resolved in ENGINES,
            f"engine must be one of {ENGINES}, got {resolved!r}",
        )
        self.engine = resolved
        self.last_engine: Optional[str] = None
        self.path: ContractionPath = loop_nest.path
        validate_loop_order(kernel, loop_nest.path, loop_nest.order)
        self.orders: Tuple[Tuple[str, ...], ...] = tuple(
            tuple(o) for o in loop_nest.order
        )
        self.offload = bool(offload)
        self.counter = counter if counter is not None else OpCounter()
        self.sparse_name = kernel.sparse_operand.name
        self.output_name = kernel.output.name
        self._consumers = self.path.consumers()
        self._buffer_specs = loop_nest.buffers()
        self._buffer_axes: Dict[str, Tuple[str, ...]] = {
            spec.name: spec.indices for spec in self._buffer_specs
        }
        self._dense_names = frozenset(op.name for op in kernel.dense_operands)
        if plan_cache is True:
            self._cache: Optional[PlanCache] = default_plan_cache()
        elif plan_cache in (False, None):
            self._cache = None
        else:
            self._cache = plan_cache

        # run-time state, populated by execute()
        self._csf: Optional[CSFTensor] = None
        self._dense: Dict[str, np.ndarray] = {}
        self._buffers: Optional[BufferSet] = None
        self._out_dense: Optional[np.ndarray] = None
        self._out_values: Optional[np.ndarray] = None
        self._plan: Optional[CompiledPlan] = None
        self._bound_sites: Dict[Tuple[Tuple[int, ...], int], list] = {}
        self._features_registered = False

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def execute(
        self, tensors: Mapping[str, TensorLike]
    ) -> Union[np.ndarray, COOTensor]:
        """Run the loop nest on concrete tensors keyed by operand name.

        Returns a dense ``numpy.ndarray`` (axes ordered as the kernel's
        output indices) or, for sparse-pattern outputs, a
        :class:`~repro.sptensor.coo.COOTensor` sharing the input pattern.

        Sparse operands are treated as immutable: their CSF conversion is
        memoized per tensor object, so mutating a tensor's ``values`` array
        in place between calls is not observed — build a new tensor with
        :meth:`~repro.sptensor.coo.COOTensor.with_values` instead.
        """
        start = time.perf_counter()
        # preparation (COO→CSF conversion, plan fetch/build, lowering and
        # jit compilation) is timed separately from steady-state execution:
        # both are recorded, but under distinct phases, so cold-call
        # compilation never poisons the per-plan calibration feed
        prepare_s = 0.0
        with _span("execute", "engine", engine=self.engine):
            mark = time.perf_counter()
            self._prepare(tensors)
            prepare_s += time.perf_counter() - mark
            plan = self._plan
            assert plan is not None and self._csf is not None
            plan_state = _plan_state(plan)
            self.last_engine = "interpret"
            if self.engine in ("jit", "lowered") and self._csf.nnz > 0:
                if plan.lowered is None:
                    mark = time.perf_counter()
                    program = lower_plan(self)
                    plan.lowered = program if program is not None else False
                    prepare_s += time.perf_counter() - mark
                if plan.lowered is not False:
                    if self.engine == "jit":
                        if plan.jit is None:
                            mark = time.perf_counter()
                            with _span("compile", "jit", ops=plan.lowered.n_ops):
                                compiled = compile_program(plan.lowered)
                            plan.jit = compiled if compiled is not None else False
                            prepare_s += time.perf_counter() - mark
                        if plan.jit is not False:
                            with _span("run", "jit", nnz=self._csf.nnz):
                                plan.jit.run(
                                    self._csf,
                                    self._dense,
                                    self._out_dense,
                                    self._out_values,
                                    self.counter,
                                )
                            self.last_engine = "jit"
                    if self.last_engine == "interpret":
                        if plan.vm_pool is None:
                            plan.vm_pool = {}
                        run_program(
                            plan.lowered,
                            self._csf,
                            self._dense,
                            self._out_dense,
                            self._out_values,
                            self.counter,
                            pool=plan.vm_pool,
                        )
                        self.last_engine = "lowered"
            if self.last_engine == "interpret":
                positions = tuple(range(len(self.path)))
                self._run(positions, 0, {}, -1, 0)
        total_s = time.perf_counter() - start
        self._record_timings(plan.key, prepare_s, max(0.0, total_s - prepare_s))
        if self.kernel.output.is_sparse:
            result: Union[np.ndarray, COOTensor] = self._sparse_output()
        else:
            assert self._out_dense is not None
            result = self._out_dense
        if self._cache is not None and plan_state != _plan_state(plan):
            # the plan grew (sites discovered / lowering compiled): let the
            # cache's memory budget see the real size
            self._cache.reaccount(plan.key)
        self._release_bindings()
        return result

    # ------------------------------------------------------------------ #
    # Timing feed
    # ------------------------------------------------------------------ #
    def _record_timings(
        self, key, prepare_s: float, execute_s: float
    ) -> None:
        """Feed the per-plan timing registry (the calibration input).

        Preparation and steady-state execution go in under separate
        phases; on the first execution the plan's cost-model feature
        vector (:func:`repro.core.calibrate.cost_features`) is registered
        alongside, together with the active calibration's predicted
        seconds (when one is installed) for online drift detection.
        Feature extraction mirrors :class:`ExecutionCost`'s offload
        model, so it is skipped for ``offload=False`` executors.
        """
        engine = self.last_engine or self.engine
        record_plan_timing(key, engine, prepare_s, phase="prepare")
        record_plan_timing(key, engine, execute_s, phase="execute")
        if self._features_registered or not self.offload:
            return
        self._features_registered = True
        try:
            features = cost_features(self.kernel, self.loop_nest)
        except Exception:  # a foreign cost shape must never fail execution
            return
        record_plan_features(key, features, predict_seconds(features))

    # ------------------------------------------------------------------ #
    # Preparation
    # ------------------------------------------------------------------ #
    def _prepare(self, tensors: Mapping[str, TensorLike]) -> None:
        kernel = self.kernel
        for op in kernel.operands:
            require(op.name in tensors, f"missing tensor for operand {op.name!r}")

        sparse_in = tensors[self.sparse_name]
        spec_indices = kernel.sparse_operand.indices
        mode_order = tuple(
            spec_indices.index(name) for name in kernel.csf_mode_order
        )
        if isinstance(sparse_in, (CSFTensor, COOTensor)):
            csf = csf_for_mode_order(sparse_in, mode_order)
        else:
            raise TypeError(
                f"sparse operand {self.sparse_name!r} must be COOTensor or CSFTensor"
            )
        for pos, name in enumerate(spec_indices):
            require(
                csf.shape[pos] == kernel.index_dims[name],
                f"sparse operand dimension mismatch on index {name!r}",
            )
        self._csf = csf

        self._dense = {}
        for op in kernel.dense_operands:
            value = tensors[op.name]
            arr = value.data if isinstance(value, DenseTensor) else np.asarray(
                value, dtype=np.float64
            )
            expected = tuple(kernel.index_dims[i] for i in op.indices)
            require(
                tuple(arr.shape) == expected,
                f"dense operand {op.name!r} has shape {arr.shape}, expected {expected}",
            )
            self._dense[op.name] = arr

        self._buffers = BufferSet(self._buffer_specs, kernel.index_dims, self.counter)
        if kernel.output.is_sparse:
            self._out_values = np.zeros(csf.nnz, dtype=np.float64)
            self._out_dense = None
        else:
            shape = tuple(kernel.index_dims[i] for i in kernel.output.indices)
            self._out_dense = np.zeros(shape if shape else (), dtype=np.float64)
            self._out_values = None

        # Fetch (or create) the compiled plan for this structure.  Plans are
        # array-independent; only the per-execution bindings are reset here.
        key = plan_key(
            kernel,
            self.loop_nest,
            offload=self.offload,
            operands=operand_signature(kernel, tensors),
        )
        if self._cache is not None:
            plan = self._cache.get_or_create(key, lambda: CompiledPlan(key))
            assert isinstance(plan, CompiledPlan)
            self._plan = plan
        else:
            self._plan = CompiledPlan(key)
        self._bound_sites = {}

    def _release_bindings(self) -> None:
        """Drop the per-execution array bindings after ``execute()``.

        Everything here is rebuilt (cheaply — the CSF conversion is
        memoized per tensor object, plan binding is a substitution pass) by
        the next ``_prepare``; releasing it matters for executors that
        outlive their operands, notably the process-wide instances of
        :func:`~repro.engine.plan_cache.cached_executor`, which would
        otherwise pin their last operands and output for the life of the
        cache entry.
        """
        self._csf = None
        self._dense = {}
        self._buffers = None
        self._out_dense = None
        self._out_values = None
        self._bound_sites = {}

    def _sparse_output(self) -> COOTensor:
        csf = self._csf
        assert csf is not None and self._out_values is not None
        coords = np.empty((csf.nnz, csf.order), dtype=np.int64)
        for level in range(csf.order):
            coords[:, csf.mode_order[level]] = csf.expanded_level_indices(level)
        return COOTensor(csf.shape, coords, self._out_values, sort=True)

    # ------------------------------------------------------------------ #
    # Plan construction (Algorithm 2, preprocessing stage)
    # ------------------------------------------------------------------ #
    def _term_uses_sparse(self, pos: int) -> bool:
        term = self.path[pos]
        return term.lhs == self.sparse_name or term.rhs == self.sparse_name

    def _bound_names(self, positions: Sequence[int], depth: int) -> Tuple[str, ...]:
        """Loop indices already iterated at a recursion site (static)."""
        return self.orders[positions[0]][:depth]

    def _reset_list(
        self,
        group: Sequence[int],
        after_positions: Sequence[int],
        bound_names: Sequence[str],
    ) -> List[Tuple[Tuple[str, Optional[str]], tuple]]:
        """Buffers to zero before entering *group* (producer/consumer split).

        Returns symbolic ``(slot, template)`` pairs; the slot is bound to
        the per-execution buffer array by :meth:`_bind_steps`.
        """
        after = set(after_positions)
        resets: List[Tuple[Tuple[str, Optional[str]], tuple]] = []
        bound_set = set(bound_names)
        for pos in group:
            term = self.path[pos]
            if term.out == self.output_name:
                continue
            consumer = self._consumers.get(pos)
            if consumer is not None and consumer in after:
                axes = self._buffer_axes[term.out]
                template = tuple(i if i in bound_set else None for i in axes)
                resets.append(((_SLOT_BUFFER, term.out), template))
        return resets

    def _offload_mode(
        self, group: Sequence[int], depth: int, csf_level: int
    ) -> Optional[str]:
        """Decide whether this site is offloadable ('dense'/'fiber') or not."""
        if len(group) != 1:
            return None
        kernel = self.kernel
        pos = group[0]
        term = self.path[pos]
        remaining = self.orders[pos][depth:]
        if not remaining:
            return "scalar"
        if not self.offload:
            return None
        sparse_remaining = [i for i in remaining if i in kernel.sparse_indices]
        uses_sparse = self._term_uses_sparse(pos)
        writes_sparse_output = (
            term.out == self.output_name and kernel.output.is_sparse
        )
        if not sparse_remaining or not uses_sparse:
            if writes_sparse_output and sparse_remaining:
                return None  # would need scattered writes into the pattern
            return "dense"
        if len(sparse_remaining) != 1 or remaining[0] != sparse_remaining[0]:
            return None
        k = remaining[0]
        if k != kernel.csf_mode_order[-1]:
            return None
        if csf_level != len(kernel.csf_mode_order) - 2:
            return None
        if k in term.out_indices and not writes_sparse_output:
            return None
        return "fiber"

    def _operand_recipe(
        self,
        name: str,
        indices: Tuple[str, ...],
        bound_set: set,
        fiber_index: Optional[str],
        at_leaf: bool,
    ):
        """Static (array-independent) access recipe for one input of a term."""
        kernel = self.kernel
        if name == self.sparse_name:
            unbound = [i for i in indices if i not in bound_set]
            if fiber_index is not None and unbound == [fiber_index]:
                return (_SPARSE_FIBER,), (fiber_index,)
            require(
                not unbound,
                "internal error: sparse operand offloaded with unbound indices",
            )
            mode = _SPARSE_LEAF if at_leaf else _SPARSE_LOOKUP
            return (mode,), ()
        if name in self._dense_names:
            slot = (_SLOT_DENSE, name)
            axes = indices
        elif name == self.output_name and not kernel.output.is_sparse:
            slot = (_SLOT_OUT, None)
            axes = indices
        else:
            require(
                name in self._buffer_axes,
                f"internal error: unknown operand slot {name!r}",
            )
            slot = (_SLOT_BUFFER, name)
            axes = self._buffer_axes[name]
        template = tuple(i if i in bound_set else None for i in axes)
        free = tuple(i for i in axes if i not in bound_set)
        gather_axis = None
        if fiber_index is not None and fiber_index in free:
            gather_axis = free.index(fiber_index)
        return (_ARRAY, slot, template, gather_axis), free

    def _output_recipe(
        self,
        name: str,
        indices: Tuple[str, ...],
        bound_set: set,
        fiber_index: Optional[str],
        at_leaf: bool,
    ):
        """Static (array-independent) write recipe for a term's output."""
        kernel = self.kernel
        if name == self.output_name and kernel.output.is_sparse:
            if fiber_index is not None:
                return (_SPARSE_OUT_FIBER,), (fiber_index,)
            mode = _SPARSE_OUT_LEAF if at_leaf else _SPARSE_OUT_LOOKUP
            return (mode,), ()
        if name == self.output_name:
            slot = (_SLOT_OUT, None)
            axes = indices
        else:
            slot = (_SLOT_BUFFER, name)
            axes = self._buffer_axes[name]
        template = tuple(i if i in bound_set else None for i in axes)
        free = tuple(i for i in axes if i not in bound_set)
        return (_ARRAY, slot, template, None), free

    def _build_offload_step(
        self,
        pos: int,
        depth: int,
        csf_level: int,
        resets: list,
        mode: str,
    ) -> tuple:
        """Bind one offload site to its recipes and specialized kernel."""
        kernel = self.kernel
        term = self.path[pos]
        bound_set = set(self._bound_names((pos,), depth))
        at_leaf = csf_level == len(kernel.csf_mode_order) - 1
        fiber_index = self.orders[pos][depth] if mode == "fiber" else None

        lhs_recipe, lhs_free = self._operand_recipe(
            term.lhs, term.lhs_indices, bound_set, fiber_index, at_leaf
        )
        rhs_recipe, rhs_free = self._operand_recipe(
            term.rhs, term.rhs_indices, bound_set, fiber_index, at_leaf
        )
        out_recipe, out_free = self._output_recipe(
            term.out, term.out_indices, bound_set, fiber_index, at_leaf
        )
        fn, blas_name = specialize_contraction(lhs_free, rhs_free, out_free)
        return (
            "offload",
            resets,
            lhs_recipe,
            rhs_recipe,
            out_recipe,
            fn,
            blas_name,
            mode == "fiber",
        )

    def _build_plan(
        self, positions: Tuple[int, ...], depth: int, csf_level: int
    ) -> list:
        """Segment a recursion site into executable steps (cached)."""
        kernel = self.kernel
        steps: list = []
        bound_names = self._bound_names(positions, depth)
        i = 0
        n = len(positions)
        while i < n:
            pos = positions[i]
            order = self.orders[pos]
            if len(order) == depth:
                resets = self._reset_list((pos,), positions[i + 1 :], bound_names)
                steps.append(
                    self._build_offload_step(pos, depth, csf_level, resets, "scalar")
                )
                i += 1
                continue
            idx = order[depth]
            group: List[int] = []
            j = i
            while j < n:
                p = positions[j]
                o = self.orders[p]
                if len(o) > depth and o[depth] == idx:
                    group.append(p)
                    j += 1
                else:
                    break
            resets = self._reset_list(group, positions[j:], bound_names)
            mode = self._offload_mode(group, depth, csf_level)
            if mode in ("dense", "fiber"):
                steps.append(
                    self._build_offload_step(group[0], depth, csf_level, resets, mode)
                )
            else:
                use_csf = (
                    idx in kernel.sparse_indices
                    and csf_level + 1 < len(kernel.csf_mode_order)
                    and kernel.csf_mode_order[csf_level + 1] == idx
                    and any(self._term_uses_sparse(p) for p in group)
                )
                steps.append(
                    (
                        "loop",
                        resets,
                        idx,
                        tuple(group),
                        use_csf,
                        kernel.index_dims[idx],
                    )
                )
            i = j
        return steps

    # ------------------------------------------------------------------ #
    # Symbolic site lookup (shared by the interpreter and the lowering pass)
    # ------------------------------------------------------------------ #
    def _site_steps(self, positions: Tuple[int, ...], depth: int, csf_level: int):
        """Symbolic steps of one site, building (and caching) on first use."""
        assert self._plan is not None
        key = (positions, depth)
        steps = self._plan.site(key)
        if steps is None:
            steps = self._plan.add_site(
                key, self._build_plan(positions, depth, csf_level)
            )
        return steps

    # ------------------------------------------------------------------ #
    # Plan binding (per execution: substitute concrete arrays for slots)
    # ------------------------------------------------------------------ #
    def _slot_array(self, slot: Tuple[str, Optional[str]]) -> np.ndarray:
        kind, name = slot
        if kind == _SLOT_DENSE:
            return self._dense[name]
        if kind == _SLOT_BUFFER:
            assert self._buffers is not None
            return self._buffers.array(name)
        assert self._out_dense is not None
        return self._out_dense

    def _bind_recipe(self, recipe: tuple) -> tuple:
        if recipe[0] != _ARRAY:
            return recipe
        _, slot, template, gather_axis = recipe
        return (_ARRAY, self._slot_array(slot), template, gather_axis)

    def _bind_steps(self, steps: list) -> list:
        """Bind one site's symbolic steps to this execution's arrays."""
        bound_steps: list = []
        for step in steps:
            resets = [
                (self._slot_array(slot), template) for slot, template in step[1]
            ]
            if step[0] == "offload":
                (_, _, lhs, rhs, out, fn, blas_name, is_fiber) = step
                bound_steps.append(
                    (
                        "offload",
                        resets,
                        self._bind_recipe(lhs),
                        self._bind_recipe(rhs),
                        self._bind_recipe(out),
                        fn,
                        blas_name,
                        is_fiber,
                    )
                )
            else:
                bound_steps.append(("loop", resets) + step[2:])
        return bound_steps

    # ------------------------------------------------------------------ #
    # Plan execution
    # ------------------------------------------------------------------ #
    def _run(
        self,
        positions: Tuple[int, ...],
        depth: int,
        bound: Dict[str, int],
        csf_level: int,
        csf_pos: int,
    ) -> None:
        key = (positions, depth)
        plan = self._bound_sites.get(key)
        if plan is None:
            assert self._plan is not None
            symbolic = self._plan.site(key)
            if symbolic is None:
                symbolic = self._plan.add_site(
                    key, self._build_plan(positions, depth, csf_level)
                )
            plan = self._bind_steps(symbolic)
            self._bound_sites[key] = plan

        counter = self.counter
        csf = self._csf
        for step in plan:
            kind = step[0]
            resets = step[1]
            for arr, template in resets:
                arr[
                    tuple(
                        bound[name] if name is not None else slice(None)
                        for name in template
                    )
                ] = 0.0
                counter.buffer_resets += 1
            if kind == "offload":
                (_, _, lhs_recipe, rhs_recipe, out_recipe, fn, blas_name, is_fiber) = step
                if is_fiber:
                    lo, hi = csf.children_range(csf_level, csf_pos)
                    ids = csf.fids[csf.order - 1][lo:hi]
                else:
                    lo = hi = 0
                    ids = None
                lhs = self._resolve_operand(lhs_recipe, bound, csf_pos, lo, hi, ids)
                rhs = self._resolve_operand(rhs_recipe, bound, csf_pos, lo, hi, ids)
                out_arr, out_key = self._resolve_output(
                    out_recipe, bound, csf_pos, lo, hi
                )
                if out_arr is None:
                    continue  # entry outside the sparse pattern
                flops = fn(lhs, rhs, out_arr, out_key)
                counter.flops += flops
                calls = counter.kernel_calls
                calls[blas_name] = calls.get(blas_name, 0) + 1
            else:  # "loop"
                (_, _, idx, group, use_csf, dim) = step
                if use_csf:
                    level = csf_level + 1
                    if level == 0:
                        lo, hi = 0, csf.fids[0].shape[0]
                    else:
                        lo, hi = csf.children_range(csf_level, csf_pos)
                    ids = csf.fids[level]
                    for child in range(lo, hi):
                        bound[idx] = int(ids[child])
                        self._run(group, depth + 1, bound, level, child)
                    bound.pop(idx, None)
                else:
                    for value in range(dim):
                        bound[idx] = value
                        self._run(group, depth + 1, bound, csf_level, csf_pos)
                    bound.pop(idx, None)

    # ------------------------------------------------------------------ #
    # Recipe resolution (runtime)
    # ------------------------------------------------------------------ #
    def _resolve_operand(self, recipe, bound, csf_pos, lo, hi, ids):
        mode = recipe[0]
        if mode == _ARRAY:
            _, arr, template, gather_axis = recipe
            view = arr[
                tuple(
                    bound[name] if name is not None else slice(None)
                    for name in template
                )
            ]
            if gather_axis is not None:
                view = np.take(view, ids, axis=gather_axis)
            return view
        csf = self._csf
        if mode == _SPARSE_FIBER:
            return csf.values[lo:hi]
        if mode == _SPARSE_LEAF:
            return csf.values[csf_pos]
        # _SPARSE_LOOKUP: the sparse tensor is fully bound via dense loops
        leaf = csf.find_leaf(
            [bound[name] for name in self.kernel.csf_mode_order]
        )
        return csf.values[leaf] if leaf is not None else 0.0

    def _resolve_output(self, recipe, bound, csf_pos, lo, hi):
        mode = recipe[0]
        if mode == _ARRAY:
            _, arr, template, _ = recipe
            key = tuple(
                bound[name] if name is not None else slice(None) for name in template
            )
            return arr, key
        if mode == _SPARSE_OUT_FIBER:
            return self._out_values, slice(lo, hi)
        if mode == _SPARSE_OUT_LEAF:
            return self._out_values, csf_pos
        # _SPARSE_OUT_LOOKUP
        leaf = self._csf.find_leaf(
            [bound[name] for name in self.kernel.csf_mode_order]
        )
        if leaf is None:
            return None, None
        return self._out_values, leaf


# --------------------------------------------------------------------------- #
# One-call convenience API
# --------------------------------------------------------------------------- #
def execute_kernel(
    spec: str,
    tensors: Sequence[TensorLike],
    names: Optional[Sequence[str]] = None,
    buffer_dim_bound: Optional[int] = 2,
    offload: bool = True,
    counter: Optional[OpCounter] = None,
    engine: Optional[str] = None,
) -> Tuple[Union[np.ndarray, COOTensor], Schedule]:
    """Parse, schedule and execute an SpTTN kernel in one call.

    Example
    -------
    >>> out, schedule = execute_kernel("ijk,ja,ka->ia", [T, B, C])  # MTTKRP

    Returns the output tensor and the :class:`~repro.core.scheduler.Schedule`
    that was selected (so callers can inspect the chosen loop nest).
    """
    kernel = parse_kernel(spec, tensors, names=names)
    schedule = cached_schedule(kernel, buffer_dim_bound=buffer_dim_bound)
    executor = LoopNestExecutor(
        kernel, schedule.loop_nest, offload=offload, counter=counter, engine=engine
    )
    operand_tensors = {
        op.name: tensor for op, tensor in zip(kernel.operands, tensors)
    }
    output = executor.execute(operand_tensors)
    return output, schedule
