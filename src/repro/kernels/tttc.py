"""Tensor-Times-Tensor chain (TTTc), the tensor-train contraction kernel.

TTTc (Equation 4 of the paper) contracts a higher-order sparse tensor with a
chain of tensor-train cores, leaving one core's slot open.  For an
order-``d`` sparse tensor ``T`` and TT cores

* ``G_0`` of shape ``(I_0, R_0)``,
* ``G_n`` of shape ``(R_{n-1}, I_n, R_n)`` for ``0 < n < d-1``,
* ``G_{d-1}`` of shape ``(R_{d-2}, I_{d-1})``,

the TTTc with the *last* core removed is::

    Z(r_{d-2}, i_{d-1}) = sum_{i_0..i_{d-2}, r_0..r_{d-3}}
        T(i_0..i_{d-1}) * G_0(i_0, r_0) * G_1(r_0, i_1, r_1) * ...

(the gradient of the TT model with respect to the removed core).  The
helpers build this kernel for any order and any removed-core position.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.expr import SpTTNKernel
from repro.core.scheduler import Schedule
from repro.engine.executor import TensorLike
from repro.kernels.spttn import KernelBuilder, build_kernel, run_kernel, sparse_order_of
from repro.sptensor.dense import DenseTensor
from repro.util.counters import OpCounter
from repro.util.validation import require


def tttc_spec(order: int, removed_core: Optional[int] = None) -> str:
    """Einsum specification of the TTTc kernel.

    Parameters
    ----------
    order:
        Order of the sparse tensor.
    removed_core:
        The TT core omitted from the chain (its slot forms the output).
        Defaults to the last core.
    """
    require(order >= 2, "TTTc needs a sparse tensor of order >= 2")
    if removed_core is None:
        removed_core = order - 1
    require(
        0 <= removed_core < order,
        f"removed_core {removed_core} out of range for order {order}",
    )
    kb = KernelBuilder(order)
    # bond index between core n and core n+1
    bonds = [kb.dense_index(n) for n in range(order - 1)]
    inputs = [kb.sparse_subscripts]
    for n in range(order):
        if n == removed_core:
            continue
        subs = ""
        if n > 0:
            subs += bonds[n - 1]
        subs += kb.sparse_index(n)
        if n < order - 1:
            subs += bonds[n]
        inputs.append(subs)
    # output: the open slot of the removed core
    out = ""
    if removed_core > 0:
        out += bonds[removed_core - 1]
    out += kb.sparse_index(removed_core)
    if removed_core < order - 1:
        out += bonds[removed_core]
    return ",".join(inputs) + "->" + out


def tt_core_shapes(
    dims: Sequence[int], rank: int
) -> List[Tuple[int, ...]]:
    """Shapes of the TT cores for the given mode dimensions and uniform rank."""
    order = len(dims)
    require(order >= 2, "a tensor train needs at least two cores")
    shapes: List[Tuple[int, ...]] = []
    for n, dim in enumerate(dims):
        if n == 0:
            shapes.append((dim, rank))
        elif n == order - 1:
            shapes.append((rank, dim))
        else:
            shapes.append((rank, dim, rank))
    return shapes


def _core_list(
    order: int,
    removed_core: int,
    cores: Sequence[Union[DenseTensor, np.ndarray]],
) -> List[Union[DenseTensor, np.ndarray]]:
    if len(cores) == order:
        return [c for n, c in enumerate(cores) if n != removed_core]
    require(
        len(cores) == order - 1,
        f"expected {order} cores (one per mode) or {order - 1} "
        f"(excluding the removed core), got {len(cores)}",
    )
    return list(cores)


def tttc_kernel(
    tensor: TensorLike,
    cores: Sequence[Union[DenseTensor, np.ndarray]],
    removed_core: Optional[int] = None,
) -> Tuple[SpTTNKernel, dict]:
    """Build (without executing) the TTTc kernel and its operand mapping."""
    order = sparse_order_of(tensor)
    if removed_core is None:
        removed_core = order - 1
    spec = tttc_spec(order, removed_core)
    operands = [tensor] + _core_list(order, removed_core, cores)
    return build_kernel(spec, operands)


def tttc(
    tensor: TensorLike,
    cores: Sequence[Union[DenseTensor, np.ndarray]],
    removed_core: Optional[int] = None,
    schedule: Optional[Schedule] = None,
    counter: Optional[OpCounter] = None,
    buffer_dim_bound: Optional[int] = 2,
    max_paths: Optional[int] = 2000,
) -> np.ndarray:
    """Contract the sparse tensor with all TT cores except *removed_core*."""
    order = sparse_order_of(tensor)
    if removed_core is None:
        removed_core = order - 1
    spec = tttc_spec(order, removed_core)
    operands = [tensor] + _core_list(order, removed_core, cores)
    if schedule is None:
        from repro.core.scheduler import SpTTNScheduler

        kernel, mapping = build_kernel(spec, operands)
        scheduler = SpTTNScheduler(
            kernel, buffer_dim_bound=buffer_dim_bound, max_paths=max_paths
        )
        schedule = scheduler.schedule()
        from repro.engine.executor import LoopNestExecutor

        executor = LoopNestExecutor(
            kernel, schedule.loop_nest, counter=counter
        )
        output = executor.execute(mapping)
        assert isinstance(output, np.ndarray)
        return output
    output, _ = run_kernel(
        spec,
        operands,
        schedule=schedule,
        counter=counter,
        buffer_dim_bound=buffer_dim_bound,
    )
    assert isinstance(output, np.ndarray)
    return output
