"""Fault-tolerance overhead: the supervised pool vs the raw pool.

Supervision (liveness polling around ``map_async``, crash/timeout
detection, respawn-and-retry bookkeeping) guards every parallel map the
serving stack issues, so it must be close to free on the no-fault hot
path.  This benchmark runs the same compute-bound workload through a
supervised and an unsupervised :class:`~repro.runtime.WorkerPool` in
interleaved rounds and gates the supervised minimum at **< 5%** (plus a
10 ms absolute allowance for scheduler noise) over the unsupervised one.

A second, informational benchmark measures the cost of the recovery path
itself: with every worker task SIGKILLed (``pool.task:kill``), a map
still returns bit-identical results via respawn + serial fallback; the
recorded row shows what a full crash-and-recover round trip costs
relative to the clean run.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.runtime import WorkerPool
from repro.util.faults import configure_faults, reset_faults

from _workloads import format_table, record_rows

#: Tasks per map and rounds per variant; interleaved min-of-rounds keeps
#: the comparison robust against one-off scheduler hiccups.
N_TASKS = 16
ROUNDS = 7
WORKERS = 2


class MatmulTask:
    """Picklable compute-bound task (seeded, deterministic per input)."""

    def __init__(self, size: int) -> None:
        self.size = size

    def __call__(self, seed: int) -> float:
        rng = np.random.default_rng(seed)
        a = rng.standard_normal((self.size, self.size))
        return float(np.linalg.norm(a @ a))


def _timed_map(pool: WorkerPool, task, items) -> float:
    start = time.perf_counter()
    pool.map(task, items)
    return time.perf_counter() - start


@pytest.mark.smoke
def test_supervision_overhead_under_five_percent(benchmark):
    task = MatmulTask(128)
    items = list(range(N_TASKS))
    with WorkerPool(WORKERS, supervise=True) as supervised, WorkerPool(
        WORKERS, supervise=False
    ) as unsupervised:
        # warm both pools (fork + import cost) outside the timed rounds
        expected = unsupervised.map(task, items)
        assert supervised.map(task, items) == expected

        sup_times, unsup_times = [], []
        for _ in range(ROUNDS):  # interleaved: drift hits both variants
            unsup_times.append(_timed_map(unsupervised, task, items))
            sup_times.append(_timed_map(supervised, task, items))
        sup, unsup = min(sup_times), min(unsup_times)

        rows = [
            {
                "tasks": N_TASKS,
                "workers": WORKERS,
                "rounds": ROUNDS,
                "supervised_ms": sup * 1e3,
                "unsupervised_ms": unsup * 1e3,
                "overhead_pct": (sup / unsup - 1.0) * 100.0,
            }
        ]
        record_rows(benchmark, rows)
        print("\n" + format_table(rows))

        # the acceptance bar: supervision costs < 5% on the no-fault hot
        # path (10 ms absolute slack absorbs scheduler noise at this scale)
        assert sup <= unsup * 1.05 + 0.010

        benchmark.pedantic(
            lambda: supervised.map(task, items), rounds=3, iterations=1
        )


@pytest.mark.smoke
def test_crash_recovery_round_trip(benchmark):
    """Crash-and-recover cost, recorded (no gate: the point is the row).

    Every worker task dies, so the map pays crash detection + respawn +
    retry + the serial fallback — and must still return the same answers.
    """
    task = MatmulTask(128)
    items = list(range(N_TASKS))
    try:
        configure_faults(None)
        with WorkerPool(WORKERS, task_retries=1) as pool:
            expected = pool.map(task, items)
            clean = _timed_map(pool, task, items)
        configure_faults("pool.task:kill")
        with WorkerPool(WORKERS, task_retries=1) as pool:
            start = time.perf_counter()
            with pytest.warns(RuntimeWarning, match="worker died mid-map"):
                crashed = pool.map(task, items)
            recovery = time.perf_counter() - start
            assert pool.stats()["serial_maps"] == 1
        assert crashed == expected  # recovery never changes the answer
    finally:
        reset_faults()

    rows = [
        {
            "tasks": N_TASKS,
            "workers": WORKERS,
            "clean_ms": clean * 1e3,
            "recovery_ms": recovery * 1e3,
            "slowdown": recovery / clean,
        }
    ]
    record_rows(benchmark, rows)
    print("\n" + format_table(rows))

    # keep a pytest-benchmark record of the clean supervised map
    with WorkerPool(WORKERS) as pool:
        benchmark.pedantic(lambda: pool.map(task, items), rounds=2, iterations=1)
