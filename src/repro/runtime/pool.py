"""Persistent deterministic worker pool shared by every parallel consumer.

PR 1 gave the loop-nest sweeps their own ``multiprocessing`` fan-out in
:mod:`repro.core.search`; the distributed runtime needed the same machinery
to run virtual ranks in parallel.  This module is that machinery, extracted
into a layer both consumers share:

* **order preservation** — :meth:`WorkerPool.map` returns exactly
  ``[fn(x) for x in items]`` regardless of worker count or scheduling, so
  deterministic callers (the sweeps' ``(value, index)`` argmin, the
  distributed rank reduction) see identical results serial or parallel;
* **persistence** — the process-wide pool from :func:`shared_pool` outlives
  individual ``map`` calls, so repeated sweeps and repeated distributed
  executions reuse warm worker processes (and their plan caches) instead of
  paying a fork per call;
* **graceful degradation** — unpicklable callables, single-item maps,
  daemonic callers (a task running *inside* a pool worker) and pool
  failures all fall back to the identical serial path: parallelism is an
  optimization, never a behaviour change.

The default worker count is taken from the ``REPRO_WORKERS`` environment
variable (``0``/unset → serial, ``-1`` → one per CPU), shared by the
sweeps, the autotuner, the distributed runtime and the CLI.
"""

from __future__ import annotations

import atexit
import multiprocessing
import multiprocessing.pool as mp_pool
import os
import pickle
import signal
import sys
import threading
import time
import warnings
from collections import OrderedDict
from typing import Callable, Iterable, List, Optional, TypeVar

from repro.obs.metrics import register_source
from repro.obs.trace import add_spans, capture_spans, span, tracing_enabled
from repro.util.faults import fault_active, fault_point, faults_snapshot

T = TypeVar("T")
R = TypeVar("R")


class _TracedTask:
    """Picklable wrapper shipping worker-side spans back with each result.

    When tracing is enabled, :meth:`WorkerPool.map` wraps the task callable
    with this: the worker records the task under a ``pool.task`` span,
    captures every span finished during the call (``force=True`` keeps the
    capture working even in workers forked before tracing was enabled in
    the parent) and returns ``(result, spans)``; the parent unwraps the
    results and merges the spans — with their worker pid/tid identity —
    into its own buffer.  The serial fallback paths take the identical
    shape, so tracing never changes map semantics.
    """

    __slots__ = ("fn",)

    def __init__(self, fn: Callable) -> None:
        self.fn = fn

    def __call__(self, item):
        with capture_spans(force=True) as spans:
            with span("task", "pool"):
                result = self.fn(item)
        return result, spans


class _FaultTask:
    """Picklable wrapper firing the ``pool.task`` fault point around a task.

    Wrapped around the mapped callable only when a fault plan targets
    ``pool.task``, so the hot path never pays the indirection.  The fault
    fires *inside the worker process* (kill mode SIGKILLs the worker, the
    exact failure the supervised map exists to survive); on the serial
    fallback path the same wrapper runs in the parent, where kill mode is
    a no-op by design.
    """

    __slots__ = ("fn",)

    def __init__(self, fn: Callable) -> None:
        self.fn = fn

    def __call__(self, item):
        fault_point("pool.task")
        return self.fn(item)


#: Environment variable providing the process-wide default worker count.
WORKERS_ENV = "REPRO_WORKERS"
#: Per-map task timeout in seconds (unset/empty → no timeout).
TASK_TIMEOUT_ENV = "REPRO_TASK_TIMEOUT"
#: How many times a failed parallel map is retried on a respawned pool
#: before falling back serial (default 1).
TASK_RETRIES_ENV = "REPRO_TASK_RETRIES"
#: Set to ``0`` to disable map supervision (plain blocking ``Pool.map``);
#: exists so the supervision-overhead benchmark has an A/B switch.
SUPERVISE_ENV = "REPRO_POOL_SUPERVISE"

#: How often the supervised map wakes to check worker liveness.  The wait
#: is event-based (returns the instant results land), so this only bounds
#: crash/timeout detection latency, not per-map overhead.
_POLL_INTERVAL_S = 0.05


def default_workers() -> Optional[int]:
    """Worker count requested via ``REPRO_WORKERS`` (``None`` if unset/invalid).

    An unparseable value warns — silently running serial because of a typo
    in a deployment manifest is the kind of misconfiguration that only
    shows up as a latency mystery weeks later.
    """
    raw = os.environ.get(WORKERS_ENV)
    if raw is None or not raw.strip():
        return None
    try:
        return int(raw)
    except ValueError:
        warnings.warn(
            f"ignoring invalid {WORKERS_ENV}={raw!r} (not an integer); "
            "running serial as if it were unset",
            RuntimeWarning,
            stacklevel=2,
        )
        return None


def default_task_timeout() -> Optional[float]:
    """Task timeout (seconds) from ``REPRO_TASK_TIMEOUT`` (``None`` = none)."""
    raw = os.environ.get(TASK_TIMEOUT_ENV)
    if raw is None or not raw.strip():
        return None
    try:
        value = float(raw)
    except ValueError:
        warnings.warn(
            f"ignoring invalid {TASK_TIMEOUT_ENV}={raw!r} (not a number)",
            RuntimeWarning,
            stacklevel=2,
        )
        return None
    return value if value > 0 else None


def default_task_retries() -> int:
    """Retry budget for failed parallel maps from ``REPRO_TASK_RETRIES``."""
    raw = os.environ.get(TASK_RETRIES_ENV)
    if raw is None or not raw.strip():
        return 1
    try:
        return max(0, int(raw))
    except ValueError:
        warnings.warn(
            f"ignoring invalid {TASK_RETRIES_ENV}={raw!r} (not an integer); "
            "using the default of 1",
            RuntimeWarning,
            stacklevel=2,
        )
        return 1


def default_supervise() -> bool:
    """Whether supervised maps are enabled (``REPRO_POOL_SUPERVISE``)."""
    raw = os.environ.get(SUPERVISE_ENV)
    if raw is None or not raw.strip():
        return True
    return raw.strip().lower() not in ("0", "false", "no", "off")


# Process-wide supervision event totals (in addition to the per-pool
# counters): the serving layer samples deltas around a batch execution to
# attribute worker crashes to the plan signature that caused them, and the
# daemon's health endpoint reports the last-crash timestamp.
_EVENTS = {
    "crashes": 0,
    "timeouts": 0,
    "respawns": 0,
    "retries": 0,
    "last_crash_unix": None,
}


def supervision_events() -> dict:
    """Process-wide supervision totals (crashes/timeouts/respawns/retries)."""
    return dict(_EVENTS)


def _record_event(kind: str) -> None:
    _EVENTS[kind] += 1
    if kind in ("crashes", "timeouts"):
        _EVENTS["last_crash_unix"] = time.time()


def resolve_workers(workers: Optional[int] = None) -> int:
    """Normalize a worker-count request.

    ``None`` defers to the ``REPRO_WORKERS`` environment variable (itself
    defaulting to serial), ``0`` forces serial regardless of the
    environment, ``-1`` means one worker per CPU, and any positive count is
    taken as-is.
    """
    if workers is None:
        workers = default_workers()
    if workers is None or workers == 0:
        return 1
    if workers < 0:
        return max(1, os.cpu_count() or 1)
    return int(workers)


def _worker_init() -> None:
    """Reset signal plumbing inherited from the forking parent.

    A worker forked from a process running an asyncio event loop (the
    serving daemon) inherits the loop's no-op SIGTERM/SIGINT handlers
    *and* its signal wakeup pipe.  Left in place, ``Pool.terminate()``'s
    SIGTERM would (a) never kill the worker — the no-op handler swallows
    it, hanging the subsequent ``join()`` — and (b) write the signal
    number into the wakeup pipe *shared with the parent*, which the
    parent's event loop then reads as its own SIGTERM and begins a
    spurious daemon shutdown.  Detaching the wakeup fd and restoring the
    default SIGTERM disposition severs both paths; SIGINT is ignored so
    a terminal Ctrl+C is handled once, by the parent's drain.
    """
    try:
        signal.set_wakeup_fd(-1)
    except (ValueError, OSError):  # pragma: no cover - non-main thread
        pass
    try:
        signal.signal(signal.SIGTERM, signal.SIG_DFL)
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # pragma: no cover - exotic platforms
        pass


def _pool_context():
    # On Linux, prefer fork: workers share the parent's shared-memory
    # resource tracker (single-homed bookkeeping for the operand broadcasts
    # of repro.runtime.shm), inherit warm module state, and start fast.
    # Everywhere else the platform default stands — macOS deliberately
    # defaults to spawn because forking after Accelerate/Objective-C
    # threads have started is unsafe.
    if sys.platform.startswith("linux"):
        try:
            return multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - fork unavailable
            pass
    return multiprocessing.get_context()


class WorkerPool:
    """A persistent, order-preserving pool of worker processes.

    The underlying ``multiprocessing.Pool`` is created lazily on the first
    parallel :meth:`map` and reused until :meth:`close`, so consumers that
    map repeatedly (autotune sweeps, distributed executions, benchmarks)
    pay the process-start cost once.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        task_timeout: Optional[float] = None,
        task_retries: Optional[int] = None,
        supervise: Optional[bool] = None,
    ) -> None:
        self.workers = resolve_workers(workers)
        self._pool = None
        #: Supervision knobs (``None`` defers to the REPRO_* environment):
        #: per-map task timeout in seconds, how many times a crashed or
        #: timed-out map is retried on a respawned pool before the serial
        #: fallback, and whether supervision runs at all.
        self.task_timeout = (
            default_task_timeout() if task_timeout is None else task_timeout
        )
        self.task_retries = (
            default_task_retries() if task_retries is None else max(0, task_retries)
        )
        self.supervise = default_supervise() if supervise is None else supervise
        #: Lifetime counters: total map() calls, tasks mapped, and how many
        #: of those calls ran (or re-ran) on the serial fallback path.
        self.maps = 0
        self.tasks = 0
        self.serial_maps = 0
        #: Supervision counters: worker deaths observed mid-map, maps that
        #: hit the task timeout, pool respawns, and map retries.
        self.crashes = 0
        self.timeouts = 0
        self.respawns = 0
        self.retries = 0

    @property
    def is_running(self) -> bool:
        """Whether worker processes are currently alive."""
        return self._pool is not None

    def _ensure_pool(self):
        if self._pool is None:
            self._pool = _pool_context().Pool(
                processes=self.workers, initializer=_worker_init
            )
        return self._pool

    def map(
        self,
        fn: Callable[[T], R],
        items: Iterable[T],
        chunksize: Optional[int] = None,
    ) -> List[R]:
        """Order-preserving map over *items*, identical to the serial map.

        The serial path is taken when the pool is sized for one worker,
        there are fewer than two items, *fn* cannot be pickled, or the
        caller is itself a daemonic pool worker (nested pools are not
        allowed by ``multiprocessing``); a pool failure mid-map also falls
        back to serial re-evaluation, so the call never returns partial
        results.
        """
        items = list(items)
        self.maps += 1
        self.tasks += len(items)
        if tracing_enabled():
            with span("map", "pool", tasks=len(items), workers=self.workers):
                pairs = self._map(_TracedTask(fn), items, chunksize)
            for _, worker_spans in pairs:
                add_spans(worker_spans)
            return [result for result, _ in pairs]
        return self._map(fn, items, chunksize)

    def _map(
        self,
        fn: Callable[[T], R],
        items: List[T],
        chunksize: Optional[int] = None,
    ) -> List[R]:
        if (
            self.workers <= 1
            or len(items) < 2
            or multiprocessing.current_process().daemon
        ):
            self.serial_maps += 1
            return [fn(x) for x in items]
        try:
            pickle.dumps(fn)
        except Exception:
            self.serial_maps += 1
            return [fn(x) for x in items]
        if chunksize is None:
            chunksize = max(
                1, (len(items) + 4 * self.workers - 1) // (4 * self.workers)
            )
        if fault_active("pool.task"):
            fn = _FaultTask(fn)
        if not self.supervise:
            try:
                return self._ensure_pool().map(fn, items, chunksize=chunksize)
            except (OSError, pickle.PicklingError, EOFError) as exc:
                return self._serial_fallback(fn, items, repr(exc))
        return self._map_supervised(fn, items, chunksize)

    def _map_supervised(
        self,
        fn: Callable[[T], R],
        items: List[T],
        chunksize: int,
    ) -> List[R]:
        """Parallel map that survives worker death and stuck tasks.

        A plain ``Pool.map`` hangs forever when a worker is SIGKILLed
        mid-task: the pool's maintenance thread respawns the worker, but
        the chunk the dead worker held never produces a result.  This
        path dispatches with ``map_async`` and polls: the instant a
        worker pid disappears (or exits) or the task timeout elapses, the
        wreckage is terminated, the pool respawned, and the whole map
        retried — at most :attr:`task_retries` times, then the serial
        fallback guarantees an answer.  Retries re-run *every* item, so
        order-preserving determinism is unaffected by partial progress.
        """
        failure = "unknown"
        for attempt in range(self.task_retries + 1):
            if attempt:
                self.retries += 1
                _record_event("retries")
                self.respawns += 1
                _record_event("respawns")
            try:
                pool = self._ensure_pool()
                procs = getattr(pool, "_pool", None) or []
                pids = {proc.pid for proc in procs}
                result = pool.map_async(fn, items, chunksize=chunksize)
                failure = self._await_supervised(result, pool, pids)
                if failure is None:
                    return result.get(0)
            except (OSError, pickle.PicklingError, EOFError) as exc:
                failure = f"pool failure: {exc!r}"
            # Crash, timeout or transport failure: kill the wreckage so a
            # later attempt (or the next map) starts from a clean fork.
            self.close()
        return self._serial_fallback(fn, items, failure)

    def _await_supervised(self, result, pool, pids) -> Optional[str]:
        """Wait on an async map; ``None`` on success, else a failure reason."""
        deadline = (
            time.monotonic() + self.task_timeout
            if self.task_timeout is not None
            else None
        )
        while True:
            result.wait(_POLL_INTERVAL_S)
            if result.ready():
                return None
            procs = getattr(pool, "_pool", None) or []
            if any(proc.exitcode is not None for proc in procs) or {
                proc.pid for proc in procs
            } != pids:
                self.crashes += 1
                _record_event("crashes")
                return "worker died mid-map"
            if deadline is not None and time.monotonic() >= deadline:
                self.timeouts += 1
                _record_event("timeouts")
                return f"task timeout after {self.task_timeout:g}s"

    def _serial_fallback(self, fn, items, reason: str) -> List[R]:
        # Results stay correct, but timing-sensitive callers
        # (measured_scaling, benchmarks) must not mistake this serial
        # re-run for a parallel measurement — warn loudly.
        warnings.warn(
            f"worker pool failed mid-map ({reason}); re-ran "
            f"{len(items)} task(s) serially",
            RuntimeWarning,
            stacklevel=3,
        )
        self.close()
        self.serial_maps += 1
        return [fn(x) for x in items]

    def _reap_for_teardown(self) -> None:
        """Kill and reap every worker, then free any lock one died holding.

        A worker that dies to an outside signal (a process-group SIGTERM
        aimed at the daemon, the OOM killer) while idle-blocked in the
        task queue's ``get()`` takes the queue's reader lock to its grave;
        ``Pool._terminate_pool`` — run by ``terminate()`` and again by the
        pool's GC finalizer — then deadlocks acquiring that lock in
        ``_help_stuff_finish`` (CPython bpo-22393: a POSIX semaphore is
        never released when its holder dies).  The only race-free recipe
        is to make every worker *certainly* dead first — an exitcode
        snapshot can miss workers whose fatal signal is delivered a
        millisecond later — and only then post back whatever they
        orphaned.  Live workers release the locks themselves via the task
        handler's sentinels, so after this runs the stdlib teardown cannot
        block.

        The worker-maintenance thread is stopped *first*: it respawns dead
        workers behind our back, and a worker forked an instant ago can
        still carry the forking parent's signal state (the pool
        initializer has not run yet), so it must be ended with the
        uncatchable SIGKILL below rather than the single SIGTERM the
        stdlib sweep would send it.
        """
        handler = getattr(self._pool, "_worker_handler", None)
        if handler is not None:
            handler._state = mp_pool.TERMINATE
            notifier = getattr(self._pool, "_change_notifier", None)
            if notifier is not None:
                try:
                    notifier.put(None)
                except Exception:  # pragma: no cover - closed queue
                    pass
            handler.join(5.0)
        procs = list(getattr(self._pool, "_pool", None) or [])
        for p in procs:
            try:
                p.kill()
            except (OSError, ValueError):  # pragma: no cover - racing exit
                pass
        for p in procs:
            try:
                p.join(5.0)
            except (OSError, ValueError):  # pragma: no cover - racing exit
                pass
        for lock in (
            getattr(getattr(self._pool, "_inqueue", None), "_rlock", None),
            getattr(getattr(self._pool, "_outqueue", None), "_wlock", None),
        ):
            if lock is None:  # pragma: no cover - exotic queue shapes
                continue
            if lock.acquire(block=False):
                lock.release()  # was free: leave it free
            else:
                try:
                    lock.release()  # orphaned by a dead holder: post it back
                except ValueError:  # pragma: no cover - raced to free
                    pass

    def close(self) -> None:
        """Terminate the worker processes (a later map restarts them).

        The workers are killed and reaped up front: ``terminate()`` ends
        them mid-task anyway, and starting from certainly-dead workers is
        what makes the stdlib teardown deadlock-proof when an external
        signal already felled some of them (see :meth:`_reap_for_teardown`).
        """
        if self._pool is not None:
            self._reap_for_teardown()
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def drain(self) -> None:
        """Wait for outstanding tasks, then stop the workers.

        The graceful sibling of :meth:`close`: the underlying pool is
        closed (no new tasks) and *joined*, so tasks already dispatched run
        to completion instead of being killed mid-map.  Used by the serving
        daemon's shutdown path; a later :meth:`map` restarts the workers.

        Workers may be dying to the very signal that triggered the drain
        (a process-group SIGTERM hits the daemon and its workers at once),
        so the graceful join runs under a watchdog: if it wedges on a lock
        a dead worker orphaned, the remaining workers are forcibly reaped
        and the join retried.  After a successful join every worker has
        exited, so the pool's GC finalizer — which could otherwise hang on
        the same orphaned lock (CPython bpo-22393) — is cancelled; it has
        nothing left to do.
        """
        if self._pool is None:
            return
        pool = self._pool
        pool.close()
        joiner = threading.Thread(target=pool.join, daemon=True)
        joiner.start()
        joiner.join(10.0)
        if joiner.is_alive():  # pragma: no cover - timing-dependent rescue
            self._reap_for_teardown()
            joiner.join(5.0)
        finalizer = getattr(pool, "_terminate", None)
        if not joiner.is_alive() and finalizer is not None:
            finalizer.cancel()
        self._pool = None

    def stats(self) -> dict:
        """Lifetime counters plus current worker state (stats endpoints)."""
        return {
            "workers": self.workers,
            "running": self.is_running,
            "maps": self.maps,
            "tasks": self.tasks,
            "serial_maps": self.serial_maps,
            "crashes": self.crashes,
            "timeouts": self.timeouts,
            "respawns": self.respawns,
            "retries": self.retries,
            "supervised": self.supervise,
            "task_timeout": self.task_timeout,
            "task_retries": self.task_retries,
        }

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "running" if self.is_running else "idle"
        return f"WorkerPool(workers={self.workers}, {state})"


# --------------------------------------------------------------------------- #
# Process-wide shared pools
# --------------------------------------------------------------------------- #
#: Persistent pools keyed by worker count.  Consumers that alternate sizes
#: (a sweep at ``--workers 2`` interleaved with a distributed execute at
#: ``--workers 4``) each keep their warm pool instead of thrashing one pool
#: through terminate/refork cycles; rarely-used sizes are evicted LRU.
_SHARED_POOLS: "OrderedDict[int, WorkerPool]" = OrderedDict()
_MAX_SHARED_POOLS = 4


def shared_pool(workers: Optional[int] = None) -> WorkerPool:
    """The process-wide persistent pool for the resolved worker count.

    All library consumers (:func:`parallel_map`, the distributed runtime)
    funnel through these pools so worker processes — and the plan and
    schedule caches they accumulate — are shared across subsystems.

    Examples
    --------
    >>> pool = shared_pool(4)                       # forked once
    >>> pool.map(str, range(8)) == [str(x) for x in range(8)]
    True
    >>> shared_pool(4) is pool                      # warm reuse
    True
    """
    n = resolve_workers(workers)
    pool = _SHARED_POOLS.get(n)
    if pool is None:
        pool = WorkerPool(n)
        _SHARED_POOLS[n] = pool
        if len(_SHARED_POOLS) > _MAX_SHARED_POOLS:
            _, evicted = _SHARED_POOLS.popitem(last=False)
            # drain, not close: another thread may be mid-map on the
            # evicted pool, and terminate would kill its tasks under it.
            evicted.drain()
    _SHARED_POOLS.move_to_end(n)
    return pool


def shutdown_pool() -> None:
    """Terminate every process-wide pool (a later use recreates them)."""
    while _SHARED_POOLS:
        _, pool = _SHARED_POOLS.popitem()
        pool.close()


def drain_pools() -> None:
    """Gracefully drain every process-wide pool (wait, then stop).

    The serving daemon's shutdown hook: outstanding pool tasks finish,
    worker processes exit cleanly, and — unlike :func:`shutdown_pool` —
    nothing is killed mid-task.  Later consumers transparently refork.
    """
    while _SHARED_POOLS:
        _, pool = _SHARED_POOLS.popitem()
        pool.drain()


def pool_stats() -> dict:
    """Counters of every live shared pool, keyed by worker count.

    The pool slice of the daemon's ``stats`` endpoint; serial consumers
    (``REPRO_WORKERS`` unset) simply report no pools.
    """
    return {
        "pools": {n: pool.stats() for n, pool in _SHARED_POOLS.items()},
        "default_workers": resolve_workers(None),
        "supervision": supervision_events(),
    }


atexit.register(shutdown_pool)

# The metrics registry embeds the pool counters in its snapshots;
# registering here (the producer) keeps repro.obs runtime-import free.
# The fault-injection plan rides along for the same reason: registering
# it from repro.util.faults would cycle util <-> obs imports.
register_source("pool", pool_stats)
register_source("faults", faults_snapshot)


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    workers: Optional[int] = None,
    chunksize: Optional[int] = None,
) -> List[R]:
    """Order-preserving map over *items*, optionally across processes.

    Results are identical to ``[fn(x) for x in items]`` regardless of the
    worker count.  Parallel maps run on the persistent :func:`shared_pool`
    sized at most to the item count (so a ``-1``/one-per-CPU request over a
    handful of tasks never forks idle workers); every serial/fallback
    condition of :meth:`WorkerPool.map` applies.
    """
    items = list(items)
    n_workers = min(resolve_workers(workers), len(items))
    if n_workers <= 1:
        return [fn(x) for x in items]
    return shared_pool(n_workers).map(fn, items, chunksize=chunksize)

