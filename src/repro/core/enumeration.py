"""Exhaustive enumeration of loop orders and loop nests (Section 4.1).

Enumeration spans the full search space the paper analyses: every valid
contraction path times every combination of per-term loop orders.  It is
used for

* autotuning (measure every candidate and keep the fastest, Figure 10);
* verifying that Algorithm 1 returns the same optimum as brute force
  (the property tests in ``tests/test_optimizer.py``).

The per-term loop orders are restricted, exactly as in the runtime, to
permutations in which the sparse tensor's indices appear in CSF storage
order, reducing the per-term count from ``|I_i|!`` to ``|I_i|!/k!`` for a
term with ``k`` sparse indices (Section 4.1.2).
"""

from __future__ import annotations

import itertools
import math
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.core.contraction_path import (
    ContractionPath,
    ContractionTerm,
    enumerate_contraction_paths,
)
from repro.core.expr import SpTTNKernel
from repro.core.loop_nest import LoopNest, LoopOrder


def enumerate_loop_orders_for_term(
    kernel: SpTTNKernel,
    term: ContractionTerm,
    enforce_csf_order: bool = True,
) -> List[Tuple[str, ...]]:
    """All loop orders of one contraction term.

    With ``enforce_csf_order`` (the default), the sparse indices of the term
    keep their relative CSF storage order; dense indices may be interleaved
    anywhere.
    """
    indices = term.all_indices
    if not enforce_csf_order:
        return [tuple(p) for p in itertools.permutations(indices)]
    sparse_seq = [i for i in kernel.csf_mode_order if i in set(indices)]
    dense = [i for i in indices if i not in kernel.sparse_indices]
    n = len(indices)
    orders: List[Tuple[str, ...]] = []
    # Choose the positions occupied by the sparse subsequence; fill the rest
    # with every permutation of the dense indices.
    for sparse_positions in itertools.combinations(range(n), len(sparse_seq)):
        sparse_pos_set = set(sparse_positions)
        dense_positions = [p for p in range(n) if p not in sparse_pos_set]
        for dense_perm in itertools.permutations(dense):
            slots: List[Optional[str]] = [None] * n
            for pos, idx in zip(sparse_positions, sparse_seq):
                slots[pos] = idx
            for pos, idx in zip(dense_positions, dense_perm):
                slots[pos] = idx
            orders.append(tuple(slots))  # type: ignore[arg-type]
    return orders


def count_loop_orders(
    kernel: SpTTNKernel,
    path: ContractionPath,
    enforce_csf_order: bool = True,
) -> int:
    """Size of the loop-order space for one contraction path.

    Equals ``prod_i |I_i|!`` without the CSF restriction, and
    ``prod_i |I_i|!/k_i!`` with it (Section 4.1.2/4.1.3).
    """
    total = 1
    for term in path:
        n = len(term.all_indices)
        k = sum(1 for i in term.all_indices if i in kernel.sparse_indices)
        if enforce_csf_order:
            total *= math.factorial(n) // math.factorial(k)
        else:
            total *= math.factorial(n)
    return total


def enumerate_loop_orders(
    kernel: SpTTNKernel,
    path: ContractionPath,
    enforce_csf_order: bool = True,
    limit: Optional[int] = None,
) -> Iterator[LoopOrder]:
    """Iterate loop orders for a contraction path (cartesian product of terms)."""
    per_term = [
        enumerate_loop_orders_for_term(kernel, term, enforce_csf_order)
        for term in path
    ]
    count = 0
    for combo in itertools.product(*per_term):
        yield LoopOrder(tuple(combo))
        count += 1
        if limit is not None and count >= limit:
            return


def enumerate_loop_nests(
    kernel: SpTTNKernel,
    paths: Optional[Sequence[ContractionPath]] = None,
    enforce_csf_order: bool = True,
    limit_per_path: Optional[int] = None,
    limit_total: Optional[int] = None,
) -> Iterator[LoopNest]:
    """Iterate fully-fused loop nests over contraction paths and loop orders.

    This is the autotuning search space of Section 4.1.3; its size is the
    product of the number of contraction paths and the number of loop orders
    per path, so callers typically pass limits or sample from it.
    """
    if paths is None:
        paths = enumerate_contraction_paths(kernel)
    total = 0
    for path in paths:
        for order in enumerate_loop_orders(
            kernel, path, enforce_csf_order, limit=limit_per_path
        ):
            yield LoopNest(path, order)
            total += 1
            if limit_total is not None and total >= limit_total:
                return


def sample_loop_orders(
    kernel: SpTTNKernel,
    path: ContractionPath,
    fraction: float = 0.25,
    seed: Optional[int] = None,
    enforce_csf_order: bool = True,
    max_samples: Optional[int] = None,
) -> List[LoopOrder]:
    """Randomly sample a fraction of the loop orders of one contraction path.

    Mirrors the Figure 10 experiment, which randomly selects 25% of the
    CSF-consistent loop orders of the chosen contraction path.
    """
    import numpy as np

    if not 0.0 < fraction <= 1.0:
        raise ValueError(f"fraction must be in (0, 1], got {fraction}")
    all_orders = list(enumerate_loop_orders(kernel, path, enforce_csf_order))
    rng = np.random.default_rng(seed)
    n = max(1, int(round(len(all_orders) * fraction)))
    if max_samples is not None:
        n = min(n, max_samples)
    n = min(n, len(all_orders))
    chosen = rng.choice(len(all_orders), size=n, replace=False)
    return [all_orders[int(i)] for i in sorted(chosen)]
