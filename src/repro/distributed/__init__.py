"""Simulated distributed-memory runtime (Section 5.2 of the paper).

The paper's distributed execution keeps the sparse tensor in place in a
cyclic layout over a multidimensional processor grid, replicates the (small)
dense operands along the grid dimensions they do not share with the sparse
tensor, runs the same fused loop nest locally on every process, and finally
reduces the output.

No MPI implementation is available in this environment, so this subpackage
*simulates* that runtime (see the substitution table in DESIGN.md):

* :mod:`repro.distributed.grid` — multidimensional processor grids;
* :mod:`repro.distributed.distribution` — cyclic partitioning of the sparse
  tensor and replicated placement of dense operands, with exact per-rank
  nonzero counts and communication volumes;
* :mod:`repro.distributed.comm_model` — an alpha-beta (latency/bandwidth)
  model of the collectives (broadcast, reduce, all-reduce);
* :mod:`repro.distributed.runtime` — a virtual-rank runtime that *executes*
  every rank's local kernel — serially or rank-parallel on the shared
  worker pool of :mod:`repro.runtime`, with dense operands broadcast
  through shared memory and partials combined by a deterministic reduction
  tree (bit-identical across tiers) — or *estimates* the parallel runtime
  from the measured single-rank time, the load balance and the
  communication model (used by the strong-scaling benchmarks);
* :mod:`repro.distributed.scaling` — strong-scaling sweeps (Figure 8),
  simulated and measured.
"""

from repro.distributed.grid import ProcessorGrid, factor_processors
from repro.distributed.distribution import (
    CyclicDistribution,
    DenseReplication,
    partition_sparse_tensor,
)
from repro.distributed.comm_model import AlphaBetaModel, CommunicationEstimate
from repro.distributed.runtime import DistributedSpTTN, SimulatedRun
from repro.distributed.scaling import (
    StrongScalingResult,
    measured_scaling,
    strong_scaling,
)

__all__ = [
    "ProcessorGrid",
    "factor_processors",
    "CyclicDistribution",
    "DenseReplication",
    "partition_sparse_tensor",
    "AlphaBetaModel",
    "CommunicationEstimate",
    "DistributedSpTTN",
    "SimulatedRun",
    "StrongScalingResult",
    "measured_scaling",
    "strong_scaling",
]
