"""Lowering pass: compile a plan's site steps into a flat vectorized program.

The interpreter (:mod:`repro.engine.executor`) walks the fused loop nest
fiber by fiber, executing one specialized kernel call per offload site
visit.  This pass compiles the *same* symbolic site steps into the IR of
:mod:`repro.engine.lowering.ir`, replacing the per-node Python recursion
with whole-level array operations:

* a CSF loop descends one level — the vectorized execution widens its lane
  axis from the nodes of one level to the nodes of the next, and results
  produced under the loop are folded back with a segment reduction along
  the level pointers (in child order, matching the interpreted accumulation
  order);
* a dense loop becomes a *batch axis* threaded through the offload
  contractions (one einsum letter shared by every operand bound to it);
* an offload site becomes a gather of each operand into lane layout plus a
  single ``einsum`` whose contracted letters are exactly the free indices
  the interpreted kernel call would contract;
* intermediate buffers never materialize as mutable arrays: each buffer is
  the register holding its producer's per-lane contributions, reconciled to
  the consumer's loop context by segment-reduce / lane-expand.

The pass is *structural*: it needs the executor only for its kernel, loop
orders and symbolic site steps, never for concrete arrays, so one lowered
program is cached per :class:`~repro.engine.plan_cache.CompiledPlan` and
reused by every execution of that structure.

Constructs with no vectorized equivalent yet (sparse lookups outside CSF
order, dense iteration over a sparse index, buffers scattered along bound
sparse axes, reading the kernel output as an operand) raise
:class:`NotLowerable`; the executor then falls back to interpretation —
lowering is an optimization, never a semantics change.
"""

from __future__ import annotations

import string
from typing import Dict, List, Optional, Sequence, Tuple

from repro.engine.lowering import ir
from repro.engine.plan_cache import (
    ARRAY,
    SLOT_BUFFER,
    SLOT_DENSE,
    SLOT_OUT,
    SPARSE_FIBER,
    SPARSE_LEAF,
    SPARSE_OUT_FIBER,
    SPARSE_OUT_LEAF,
)


class NotLowerable(Exception):
    """A plan construct has no vectorized lowering (yet); interpret instead."""


#: Internal name reserved for the lane axis in the einsum letter table (a
#: NUL prefix keeps it from colliding with any kernel index name).
_LANE_NAME = "\0lane"

_LETTER_POOL = string.ascii_lowercase + string.ascii_uppercase


class _Value:
    """Lowering-time handle to a register: named dense axes + lane level.

    ``level`` is the CSF level of the lane axis, or ``None`` when the value
    carries no lane axis (it is constant across sparse iterations).
    """

    __slots__ = ("reg", "axes", "level")

    def __init__(self, reg: int, axes: Tuple[str, ...], level: Optional[int]):
        self.reg = reg
        self.axes = axes
        self.level = level

    @property
    def has_lane(self) -> bool:
        return self.level is not None


class _Lowerer:
    """One lowering run over an executor's (plan, kernel) structure."""

    def __init__(self, executor) -> None:
        self.ex = executor
        kernel = executor.kernel
        self.kernel = kernel
        self.dims = kernel.index_dims
        self.leaf = len(kernel.csf_mode_order) - 1
        self.dense_axes: Dict[str, Tuple[str, ...]] = {
            op.name: op.indices for op in kernel.dense_operands
        }
        self.ops: List[ir.Op] = []
        self.n_regs = 0
        self.bound: Dict[str, int] = {}  # sparse index -> binding CSF level
        self.batch: List[str] = []       # dense loop indices, outer -> inner
        self.buffers: Dict[str, _Value] = {}
        self.letters: Dict[str, str] = {}
        self.lane = self._letter(_LANE_NAME)
        self._values_reg: Optional[int] = None

    # ------------------------------------------------------------------ #
    # Small helpers
    # ------------------------------------------------------------------ #
    def _letter(self, name: str) -> str:
        letter = self.letters.get(name)
        if letter is None:
            if len(self.letters) >= len(_LETTER_POOL):
                raise NotLowerable("too many distinct indices for einsum lowering")
            letter = _LETTER_POOL[len(self.letters)]
            self.letters[name] = letter
        return letter

    def _reg(self) -> int:
        reg = self.n_regs
        self.n_regs += 1
        return reg

    def _batch_factor(self) -> int:
        factor = 1
        for name in self.batch:
            factor *= int(self.dims[name])
        return factor

    def _values(self) -> _Value:
        if self._values_reg is None:
            self._values_reg = self._reg()
            self.ops.append(ir.LoadValues(self._values_reg))
        return _Value(self._values_reg, (), self.leaf)

    # ------------------------------------------------------------------ #
    # Entry point
    # ------------------------------------------------------------------ #
    def lower(self) -> ir.Program:
        positions = tuple(range(len(self.ex.path)))
        self._site(positions, 0, -1)
        return ir.Program(tuple(self.ops), self.n_regs)

    # ------------------------------------------------------------------ #
    # Site / step walk (mirrors LoopNestExecutor._run, but symbolic)
    # ------------------------------------------------------------------ #
    def _site(self, positions: Tuple[int, ...], depth: int, level: int) -> None:
        steps = self.ex._site_steps(positions, depth, level)
        for step in steps:
            self._resets(step[1], level)
            if step[0] == "loop":
                (_, _, idx, group, use_csf, _dim) = step
                if use_csf:
                    self.bound[idx] = level + 1
                    self._site(group, depth + 1, level + 1)
                    del self.bound[idx]
                else:
                    if idx in self.kernel.sparse_indices:
                        raise NotLowerable("dense iteration over a sparse index")
                    self.batch.append(idx)
                    self._site(group, depth + 1, level)
                    self.batch.pop()
            else:
                self._offload(step, level)

    def _resets(self, resets: Sequence, level: int) -> None:
        """Charge the interpreted buffer zero-fills; the vectorized execution
        starts each reset region from fresh per-lane contributions instead."""
        if not resets:
            return
        factor = self._batch_factor()
        for slot, _template in resets:
            self.buffers.pop(slot[1], None)
        self.ops.append(
            ir.Note(ir.Charge(resets=tuple((factor, level) for _ in resets)))
        )

    # ------------------------------------------------------------------ #
    # Offload sites
    # ------------------------------------------------------------------ #
    def _offload(self, step: tuple, level: int) -> None:
        (_, _resets, lhs_recipe, rhs_recipe, out_recipe, _fn, blas_name, is_fiber) = step
        fiber_index = self.kernel.csf_mode_order[-1] if is_fiber else None
        eval_level = self.leaf if is_fiber else level
        if is_fiber:
            self.bound[fiber_index] = self.leaf
        try:
            lhs, lhs_free = self._operand(lhs_recipe, eval_level)
            rhs, rhs_free = self._operand(rhs_recipe, eval_level)
            self._store(
                lhs, lhs_free, rhs, rhs_free, out_recipe,
                level, eval_level, blas_name, fiber_index,
            )
        finally:
            if is_fiber:
                del self.bound[fiber_index]

    def _operand(self, recipe: tuple, eval_level: int):
        """Evaluate one operand recipe to a (_Value, free-index-names) pair.

        The free names are the recipe's not-yet-bound indices — the axes the
        interpreted kernel call iterates — used for exact flop accounting.
        The fiber index is excluded: it is the lane axis at the leaf level.
        """
        mode = recipe[0]
        if mode in (SPARSE_FIBER, SPARSE_LEAF):
            if eval_level != self.leaf:
                raise NotLowerable("sparse value read away from the leaf level")
            return self._values(), ()
        if mode != ARRAY:
            raise NotLowerable("sparse lookup outside CSF storage order")
        _, slot, template, _gather_axis = recipe
        kind, name = slot
        if kind == SLOT_OUT:
            raise NotLowerable("kernel output read back as an operand")
        if kind == SLOT_BUFFER:
            return self._read_buffer(name, template, eval_level)
        axes_names = self.dense_axes[name]
        specs: List[ir.AxisSpec] = []
        result_axes: List[str] = []
        free_names: List[str] = []
        any_gather = False
        for axis_name, bound_name in zip(axes_names, template):
            if bound_name is None:
                if axis_name in self.bound:  # the fiber index, gathered per leaf
                    specs.append((ir.GATHER, self.bound[axis_name]))
                    any_gather = True
                else:
                    specs.append((ir.KEEP, -1))
                    result_axes.append(axis_name)
                    free_names.append(axis_name)
            elif bound_name in self.bound:
                specs.append((ir.GATHER, self.bound[bound_name]))
                any_gather = True
            elif bound_name in self.batch:
                specs.append((ir.KEEP, -1))
                result_axes.append(bound_name)
            else:
                raise NotLowerable(
                    f"operand axis {bound_name!r} bound outside the lowered context"
                )
        reg = self._reg()
        self.ops.append(
            ir.ReadArray(reg, (SLOT_DENSE, name), eval_level, tuple(specs))
        )
        value = _Value(
            reg, tuple(result_axes), eval_level if any_gather else None
        )
        return value, tuple(free_names)

    def _read_buffer(self, name: str, template: tuple, eval_level: int):
        """Reconcile a buffer's recorded contributions to the consumer site.

        Contributions recorded under deeper sparse loops are segment-reduced
        (the interpreted accumulation over those loops); a shallower producer
        is replicated to the consumer's lanes.  Producer-only dense loop axes
        stay as named axes and are contracted away by the consumer's einsum —
        the accumulation the interpreter performs across those iterations.
        Buffer axes the consumer binds to a sparse loop are gathered per
        lane (:class:`~repro.engine.lowering.ir.GatherAxis`).
        """
        rec = self.buffers.get(name)
        if rec is None:
            raise NotLowerable(f"buffer {name!r} consumed before a lowered producer")
        axes_names = self.ex._buffer_axes[name]
        free_names = []
        gathers: List[Tuple[str, int]] = []
        for axis_name, bound_name in zip(axes_names, template):
            if bound_name is None:
                if axis_name in self.bound:  # the fiber index: gather per leaf
                    gathers.append((axis_name, self.bound[axis_name]))
                else:
                    free_names.append(axis_name)
            elif bound_name in self.batch:
                pass  # aligned by shared einsum letter
            elif bound_name in self.bound:
                gathers.append((axis_name, self.bound[bound_name]))
            else:
                raise NotLowerable(
                    f"buffer axis {bound_name!r} bound outside the lowered context"
                )
        value = rec
        if rec.level is not None and rec.level != eval_level:
            if eval_level < 0:
                src = rec.reg
                if rec.level > 0:
                    mid = self._reg()
                    self.ops.append(ir.SegmentReduce(mid, src, rec.level, 0))
                    src = mid
                reg = self._reg()
                self.ops.append(ir.LaneSum(reg, src))
                value = _Value(reg, rec.axes, None)
            elif rec.level > eval_level:
                reg = self._reg()
                self.ops.append(ir.SegmentReduce(reg, rec.reg, rec.level, eval_level))
                value = _Value(reg, rec.axes, eval_level)
            else:
                reg = self._reg()
                self.ops.append(ir.LaneExpand(reg, rec.reg, rec.level, eval_level))
                value = _Value(reg, rec.axes, eval_level)
        for axis_name, bind_level in gathers:
            if eval_level < 0:  # pragma: no cover - bound implies an open loop
                raise NotLowerable("sparse binding outside all sparse loops")
            offset = 1 if value.has_lane else 0
            position = offset + value.axes.index(axis_name)
            reg = self._reg()
            self.ops.append(
                ir.GatherAxis(
                    reg, value.reg, position, bind_level, eval_level, value.has_lane
                )
            )
            remaining = tuple(a for a in value.axes if a != axis_name)
            value = _Value(reg, remaining, eval_level)
        return value, tuple(free_names)

    # ------------------------------------------------------------------ #
    # Contraction + target
    # ------------------------------------------------------------------ #
    def _subscript(self, value: _Value) -> str:
        return (self.lane if value.has_lane else "") + "".join(
            self._letter(a) for a in value.axes
        )

    def _charge(
        self,
        lhs_free: Tuple[str, ...],
        rhs_free: Tuple[str, ...],
        blas_name: str,
        site_level: int,
        eval_level: int,
        has_lane: bool,
    ) -> ir.Charge:
        """Interpreter-equivalent accounting for one vectorized offload.

        The interpreted site performs one kernel call per (lane x dense
        batch) iteration; each call spans ``2 * |union of free dims|``
        scalar operations — the same space the specialized kernels report.
        """
        space = 1
        seen = set()
        for names in (lhs_free, rhs_free):
            for nm in names:
                if nm not in seen:
                    seen.add(nm)
                    space *= int(self.dims[nm])
        factor = self._batch_factor()
        flop_level = eval_level if has_lane else -1
        return ir.Charge(
            flops=((2 * factor * space, flop_level),),
            calls=((blas_name, (factor, site_level)),),
        )

    def _contract(
        self, lhs: _Value, rhs: _Value, out_sub: str, charge: ir.Charge
    ) -> int:
        sub_l = self._subscript(lhs)
        sub_r = self._subscript(rhs)
        inputs = set(sub_l) | set(sub_r)
        for ch in out_sub:
            if ch not in inputs:
                raise NotLowerable("output axis missing from both inputs")
        reg = self._reg()
        self.ops.append(
            ir.Contract(reg, f"{sub_l},{sub_r}->{out_sub}", (lhs.reg, rhs.reg), charge)
        )
        return reg

    def _store(
        self,
        lhs: _Value,
        lhs_free: Tuple[str, ...],
        rhs: _Value,
        rhs_free: Tuple[str, ...],
        out_recipe: tuple,
        site_level: int,
        eval_level: int,
        blas_name: str,
        fiber_index: Optional[str],
    ) -> None:
        has_lane = lhs.has_lane or rhs.has_lane
        if not has_lane and eval_level >= 0:
            raise NotLowerable("lane-independent update under sparse loops")
        charge = self._charge(
            lhs_free, rhs_free, blas_name, site_level, eval_level, has_lane
        )
        kind = out_recipe[0]

        if kind in (SPARSE_OUT_LEAF, SPARSE_OUT_FIBER):
            # Accumulate into the sparse-pattern output, aligned with the
            # leaves; dense batch axes are summed (the interpreted loop
            # accumulates one term per iteration).
            if eval_level != self.leaf or not has_lane:
                raise NotLowerable("sparse-pattern write away from the leaf level")
            reg = self._contract(lhs, rhs, self.lane, charge)
            self.ops.append(ir.AccumulateLeaf(reg))
            return

        if kind != ARRAY:
            raise NotLowerable("sparse output written outside CSF storage order")
        _, slot, template, _g = out_recipe

        if slot[0] == SLOT_BUFFER:
            # Buffer axes bound to sparse loops at the producer (including a
            # fiber offload's leaf index, whose "axis" is the lane itself)
            # are materialized by scattering lane contributions into a dense
            # axis at the binding level's parent, innermost first.
            name = slot[1]
            axes_names = self.ex._buffer_axes[name]
            record_axes = list(self.batch)
            scattered: List[Tuple[str, int]] = []
            for axis_name, bound_name in zip(axes_names, template):
                if bound_name is None:
                    if axis_name in self.bound:  # the fiber index: the lane axis
                        scattered.append((axis_name, self.bound[axis_name]))
                    else:
                        record_axes.append(axis_name)
                elif bound_name in self.batch:
                    pass  # already a batch axis of the record
                elif bound_name in self.bound:
                    scattered.append((bound_name, self.bound[bound_name]))
                else:
                    raise NotLowerable(
                        f"buffer axis {bound_name!r} bound outside the lowered context"
                    )
            out_sub = (self.lane if has_lane else "") + "".join(
                self._letter(a) for a in record_axes
            )
            reg = self._contract(lhs, rhs, out_sub, charge)
            level: Optional[int] = eval_level if has_lane else None
            for axis_name, bind_level in sorted(scattered, key=lambda t: -t[1]):
                assert level is not None and bind_level <= level
                if bind_level < level:
                    mid = self._reg()
                    self.ops.append(ir.SegmentReduce(mid, reg, level, bind_level))
                    reg = mid
                dst = self._reg()
                self.ops.append(
                    ir.ScatterLanes(dst, reg, bind_level, int(self.dims[axis_name]))
                )
                reg = dst
                level = bind_level - 1 if bind_level > 0 else None
            record_axes = [
                n for n, _ in sorted(scattered, key=lambda t: t[1])
            ] + record_axes
            self.buffers[name] = _Value(reg, tuple(record_axes), level)
            return

        # Dense kernel output: contract, fold lanes down to the scatter
        # level, then accumulate.
        assert slot[0] == SLOT_OUT
        out_axes_names = self.kernel.output.indices
        specs: List[ir.AxisSpec] = []
        kept: List[str] = []
        gather_levels: List[int] = []
        for axis_name, bound_name in zip(out_axes_names, template):
            if bound_name is None:
                if axis_name in self.bound:  # the fiber index: scatter per leaf
                    lvl = self.bound[axis_name]
                    specs.append((ir.GATHER, lvl))
                    gather_levels.append(lvl)
                else:
                    specs.append((ir.KEEP, -1))
                    kept.append(axis_name)
            elif bound_name in self.bound:
                lvl = self.bound[bound_name]
                specs.append((ir.GATHER, lvl))
                gather_levels.append(lvl)
            elif bound_name in self.batch:
                specs.append((ir.KEEP, -1))
                kept.append(bound_name)
            else:
                raise NotLowerable(
                    f"output axis {bound_name!r} bound outside the lowered context"
                )
        out_sub = (self.lane if has_lane else "") + "".join(
            self._letter(a) for a in kept
        )
        reg = self._contract(lhs, rhs, out_sub, charge)

        lmax = max(gather_levels, default=-1)
        src_level: Optional[int] = eval_level if has_lane else None
        if src_level is not None:
            if lmax < 0:
                src = reg
                if src_level > 0:
                    mid = self._reg()
                    self.ops.append(ir.SegmentReduce(mid, src, src_level, 0))
                    src = mid
                reg = self._reg()
                self.ops.append(ir.LaneSum(reg, src))
                src_level = None
            elif lmax < src_level:
                tmp = self._reg()
                self.ops.append(ir.SegmentReduce(tmp, reg, src_level, lmax))
                reg = tmp
                src_level = lmax
        elif gather_levels:
            raise NotLowerable("lane-independent value scattered by sparse indices")

        direct = True
        if gather_levels:
            n_gather = len(gather_levels)
            prefix = all(spec[0] == ir.GATHER for spec in specs[:n_gather])
            full = sorted(set(gather_levels)) == list(range(lmax + 1))
            direct = prefix and full
        self.ops.append(
            ir.ScatterAdd(
                reg,
                src_level if src_level is not None else -1,
                tuple(specs),
                direct,
            )
        )


def lower_plan(executor) -> Optional[ir.Program]:
    """Compile *executor*'s plan into a lowered :class:`~repro.engine.lowering.ir.Program`.

    Returns ``None`` when some construct of the scheduled loop nest is not
    lowerable; the caller then interprets the plan as before.  The pass
    reads only structural state (kernel, loop orders, symbolic site steps)
    and builds any missing plan sites as a side effect, exactly as the
    interpreter's lazy site discovery would.
    """
    try:
        return _Lowerer(executor).lower()
    except NotLowerable:
        return None
