"""Alpha-beta communication model for the simulated distributed runtime.

Collective costs follow the standard latency/bandwidth (alpha-beta) model
used throughout the communication-avoiding linear algebra literature:

* broadcast / reduce of ``n`` words over ``p`` ranks:
  ``ceil(log2 p) * alpha + n * beta`` (tree algorithms, large-message term
  simplified to a single pass over the data);
* all-reduce: ``2 ceil(log2 p) * alpha + 2 n beta (p-1)/p``
  (reduce-scatter + all-gather);
* point-to-point: ``alpha + n * beta``.

The default constants approximate a commodity cluster interconnect
(1 microsecond latency, 10 GB/s per-link bandwidth); they only set the
absolute scale of the simulated times — the strong-scaling *shape* of
Figure 8 comes from the ratio between compute and communication terms.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class CommunicationEstimate:
    """A decomposed communication-time estimate (seconds)."""

    latency_seconds: float
    bandwidth_seconds: float

    @property
    def total(self) -> float:
        return self.latency_seconds + self.bandwidth_seconds


@dataclass(frozen=True)
class AlphaBetaModel:
    """Latency/bandwidth machine model.

    Parameters
    ----------
    alpha:
        Per-message latency in seconds.
    beta:
        Per-byte transfer time in seconds (inverse bandwidth).
    word_bytes:
        Size of one tensor element in bytes.
    """

    alpha: float = 1.0e-6
    beta: float = 1.0e-10
    word_bytes: int = 8

    # ------------------------------------------------------------------ #
    def _log2p(self, procs: int) -> int:
        return max(1, int(math.ceil(math.log2(max(2, procs)))))

    def point_to_point(self, elements: float) -> CommunicationEstimate:
        return CommunicationEstimate(
            self.alpha, float(elements) * self.word_bytes * self.beta
        )

    def broadcast(self, elements: float, procs: int) -> CommunicationEstimate:
        if procs <= 1 or elements <= 0:
            return CommunicationEstimate(0.0, 0.0)
        return CommunicationEstimate(
            self._log2p(procs) * self.alpha,
            float(elements) * self.word_bytes * self.beta,
        )

    def reduce(self, elements: float, procs: int) -> CommunicationEstimate:
        if procs <= 1 or elements <= 0:
            return CommunicationEstimate(0.0, 0.0)
        return CommunicationEstimate(
            self._log2p(procs) * self.alpha,
            float(elements) * self.word_bytes * self.beta,
        )

    def allreduce(self, elements: float, procs: int) -> CommunicationEstimate:
        if procs <= 1 or elements <= 0:
            return CommunicationEstimate(0.0, 0.0)
        factor = 2.0 * (procs - 1) / procs
        return CommunicationEstimate(
            2 * self._log2p(procs) * self.alpha,
            float(elements) * self.word_bytes * self.beta * factor,
        )

    def allgather(self, elements_per_rank: float, procs: int) -> CommunicationEstimate:
        if procs <= 1 or elements_per_rank <= 0:
            return CommunicationEstimate(0.0, 0.0)
        total = elements_per_rank * (procs - 1)
        return CommunicationEstimate(
            self._log2p(procs) * self.alpha,
            float(total) * self.word_bytes * self.beta,
        )
