"""SpTTN kernel intermediate representation.

An SpTTN kernel (Section 3 of the paper) contracts one sparse tensor with a
network of dense tensors, producing either a dense output or a sparse output
with exactly the sparsity pattern of the input sparse tensor.  This module
parses einsum-style expressions such as ``"ijk,ja,ka->ia"`` into a validated
:class:`SpTTNKernel` object carrying:

* one :class:`KernelOperand` per input tensor (sparse tensor first by
  convention, but any position is accepted);
* the output operand;
* per-index dimension information and sparsity classification
  (:class:`IndexInfo`);
* the CSF storage order of the sparse indices, which constrains loop orders
  (Section 5).

The IR is deliberately independent of the concrete tensor data: the
scheduler and cost models only need index dimensions, sparsity flags and
(optionally) nonzero-count statistics, mirroring the data-independent nature
of SpTTN kernels the paper exploits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.sptensor.coo import COOTensor
from repro.sptensor.csf import CSFTensor
from repro.sptensor.dense import DenseTensor
from repro.util.validation import require

SparseInput = Union[COOTensor, CSFTensor]


@dataclass(frozen=True)
class IndexInfo:
    """Static information about one index variable of a kernel."""

    name: str
    dimension: int
    is_sparse: bool
    #: position of this index among the sparse tensor's CSF levels
    #: (``None`` for dense-only indices).
    csf_level: Optional[int] = None


@dataclass(frozen=True)
class KernelOperand:
    """One tensor operand of an SpTTN kernel."""

    name: str
    indices: Tuple[str, ...]
    is_sparse: bool

    @property
    def order(self) -> int:
        return len(self.indices)


class SpTTNKernel:
    """A validated SpTTN kernel.

    Parameters
    ----------
    operands:
        Input operands; exactly one must be sparse.
    output:
        Output operand.  Its ``is_sparse`` flag must be consistent with the
        SpTTN restriction: a sparse output must have exactly the index set of
        the sparse input (same pattern, e.g. TTTP), otherwise the output is
        dense.
    index_dims:
        Mapping from index name to dimension.
    csf_mode_order:
        The order in which the sparse tensor's modes are stored in CSF; loop
        orders are restricted to be consistent with it.
    sparse_stats:
        Optional nonzero-count statistics of the concrete sparse tensor
        (``{"prefix_nnz": {depth: count}, "nnz": total}``) used by flop and
        cache cost models.  When absent, the models fall back to a uniform
        density assumption.
    """

    def __init__(
        self,
        operands: Sequence[KernelOperand],
        output: KernelOperand,
        index_dims: Mapping[str, int],
        csf_mode_order: Optional[Sequence[str]] = None,
        sparse_stats: Optional[Mapping[str, object]] = None,
    ) -> None:
        operands = tuple(operands)
        require(len(operands) >= 2, "an SpTTN kernel needs at least two operands")
        names = [op.name for op in operands] + [output.name]
        require(
            len(set(names)) == len(names),
            f"operand names must be unique, got {names}",
        )
        sparse_ops = [op for op in operands if op.is_sparse]
        require(
            len(sparse_ops) == 1,
            f"an SpTTN kernel must have exactly one sparse operand, "
            f"found {len(sparse_ops)}",
        )
        self.operands: Tuple[KernelOperand, ...] = operands
        self.output: KernelOperand = output
        self.sparse_operand: KernelOperand = sparse_ops[0]
        self.dense_operands: Tuple[KernelOperand, ...] = tuple(
            op for op in operands if not op.is_sparse
        )

        # --- index bookkeeping -------------------------------------------
        all_indices: List[str] = []
        for op in operands:
            for idx in op.indices:
                if idx not in all_indices:
                    all_indices.append(idx)
        for idx in output.indices:
            require(
                idx in all_indices,
                f"output index {idx!r} does not appear in any input operand",
            )
        self.index_names: Tuple[str, ...] = tuple(all_indices)
        dims: Dict[str, int] = {}
        for idx in all_indices:
            require(idx in index_dims, f"missing dimension for index {idx!r}")
            dim = int(index_dims[idx])
            require(dim > 0, f"dimension of index {idx!r} must be positive")
            dims[idx] = dim
        self.index_dims: Dict[str, int] = dims

        # indices repeated within a single operand are not supported (no
        # diagonal extraction in SpTTN kernels)
        for op in tuple(operands) + (output,):
            require(
                len(set(op.indices)) == len(op.indices),
                f"operand {op.name!r} repeats an index: {op.indices}",
            )

        # --- sparsity classification --------------------------------------
        sparse_idx = set(self.sparse_operand.indices)
        if csf_mode_order is None:
            csf_mode_order = tuple(self.sparse_operand.indices)
        else:
            csf_mode_order = tuple(csf_mode_order)
            require(
                set(csf_mode_order) == sparse_idx
                and len(csf_mode_order) == len(sparse_idx),
                "csf_mode_order must be a permutation of the sparse operand's indices",
            )
        self.csf_mode_order: Tuple[str, ...] = csf_mode_order
        self.sparse_indices: frozenset = frozenset(sparse_idx)
        self.dense_indices: frozenset = frozenset(
            idx for idx in all_indices if idx not in sparse_idx
        )

        # --- SpTTN output restriction --------------------------------------
        if output.is_sparse:
            require(
                set(output.indices) == sparse_idx,
                "a sparse output must have exactly the sparse operand's indices "
                "(same sparsity pattern), e.g. TTTP/SDDMM",
            )
        self.contracted_indices: frozenset = frozenset(
            idx for idx in all_indices if idx not in set(output.indices)
        )

        self.sparse_stats: Dict[str, object] = dict(sparse_stats or {})

    # ------------------------------------------------------------------ #
    @property
    def n_inputs(self) -> int:
        return len(self.operands)

    @property
    def n_dense(self) -> int:
        return len(self.dense_operands)

    def operand(self, name: str) -> KernelOperand:
        for op in self.operands:
            if op.name == name:
                return op
        if name == self.output.name:
            return self.output
        raise KeyError(f"no operand named {name!r}")

    def operand_indices(self, name: str) -> Tuple[str, ...]:
        return self.operand(name).indices

    def dim(self, index: str) -> int:
        return self.index_dims[index]

    def index_info(self, index: str) -> IndexInfo:
        is_sparse = index in self.sparse_indices
        level = self.csf_mode_order.index(index) if is_sparse else None
        return IndexInfo(index, self.index_dims[index], is_sparse, level)

    def csf_level(self, index: str) -> Optional[int]:
        if index in self.sparse_indices:
            return self.csf_mode_order.index(index)
        return None

    def sparse_order_key(self, index: str) -> int:
        """Sort key placing sparse indices in CSF order before dense indices."""
        lvl = self.csf_level(index)
        return lvl if lvl is not None else len(self.csf_mode_order)

    # ------------------------------------------------------------------ #
    # nnz statistics
    # ------------------------------------------------------------------ #
    def prefix_nnz(self, depth: int) -> float:
        """Estimated number of CSF nodes at level ``depth-1`` (prefix length *depth*).

        Uses recorded statistics when available, otherwise assumes the
        nonzeros are spread uniformly (``min(nnz, prod(prefix dims))``).
        """
        if depth <= 0:
            return 1.0
        order = len(self.csf_mode_order)
        depth = min(depth, order)
        stats = self.sparse_stats.get("prefix_nnz")
        if isinstance(stats, Mapping) and depth in stats:
            return float(stats[depth])
        nnz = float(self.sparse_stats.get("nnz", 0.0))
        prefix_size = 1.0
        for idx in self.csf_mode_order[:depth]:
            prefix_size *= float(self.index_dims[idx])
        if nnz <= 0.0:
            return prefix_size
        return min(nnz, prefix_size)

    def nnz(self) -> float:
        return self.prefix_nnz(len(self.csf_mode_order))

    def sparse_subset_nnz(self, indices: Sequence[str]) -> float:
        """Estimated distinct index tuples of *indices* among the nonzeros.

        For prefixes of the CSF order this is exact when statistics are
        recorded; otherwise a uniform-spread estimate is used.
        """
        subset = [i for i in indices if i in self.sparse_indices]
        if not subset:
            return 1.0
        levels = sorted(self.csf_mode_order.index(i) for i in subset)
        if levels == list(range(len(levels))):
            return self.prefix_nnz(len(levels))
        nnz = self.nnz()
        size = 1.0
        for i in subset:
            size *= float(self.index_dims[i])
        return min(nnz, size) if nnz > 0 else size

    # ------------------------------------------------------------------ #
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        ins = ", ".join(
            f"{op.name}({','.join(op.indices)}){'*' if op.is_sparse else ''}"
            for op in self.operands
        )
        out = f"{self.output.name}({','.join(self.output.indices)})"
        return f"SpTTNKernel({ins} -> {out})"

    def einsum_spec(self) -> str:
        """The kernel as an einsum subscripts string (single-letter indices only)."""
        for idx in self.index_names:
            if len(idx) != 1:
                raise ValueError(
                    "einsum_spec requires single-character index names"
                )
        ins = ",".join("".join(op.indices) for op in self.operands)
        return f"{ins}->{''.join(self.output.indices)}"


def _operand_from_tensor(
    name: str,
    indices: Tuple[str, ...],
    tensor: Union[SparseInput, DenseTensor, np.ndarray],
) -> Tuple[KernelOperand, Tuple[int, ...]]:
    """Classify a concrete tensor object and return (operand, shape)."""
    if isinstance(tensor, (COOTensor, CSFTensor)):
        return KernelOperand(name, indices, True), tensor.shape
    if isinstance(tensor, DenseTensor):
        return KernelOperand(name, indices, False), tensor.shape
    arr = np.asarray(tensor)
    return KernelOperand(name, indices, False), tuple(arr.shape)


def parse_kernel(
    spec: str,
    tensors: Sequence[Union[SparseInput, DenseTensor, np.ndarray]],
    names: Optional[Sequence[str]] = None,
    output_name: str = "OUT",
    output_sparse: Optional[bool] = None,
) -> SpTTNKernel:
    """Parse an einsum-style kernel specification against concrete tensors.

    Parameters
    ----------
    spec:
        Subscripts string, e.g. ``"ijk,ja,ka->ia"``.  Exactly one input must
        be a sparse tensor object.
    tensors:
        The concrete operands, in the order they appear in *spec*.
    names:
        Optional operand names; defaults to the sparse tensor being ``"T"``
        and dense operands ``"A0", "A1", ...``.
    output_name:
        Name of the output operand.
    output_sparse:
        Force the output to be sparse (same pattern as the input).  By
        default the output is sparse exactly when its index set equals the
        sparse operand's index set.

    Returns
    -------
    SpTTNKernel
        The validated kernel, with index dimensions taken from the tensors
        and sparse statistics recorded when the sparse operand is COO/CSF.
    """
    require("->" in spec, f"kernel spec must contain '->': {spec!r}")
    lhs, rhs = spec.split("->")
    input_specs = [s.strip() for s in lhs.split(",")]
    output_spec = rhs.strip()
    require(
        len(input_specs) == len(tensors),
        f"spec has {len(input_specs)} inputs but {len(tensors)} tensors given",
    )
    for s in input_specs + [output_spec]:
        require(s.isalpha() or s == "", f"invalid subscripts {s!r}")

    operands: List[KernelOperand] = []
    index_dims: Dict[str, int] = {}
    sparse_tensor: Optional[SparseInput] = None
    sparse_count = 0
    dense_counter = 0
    for pos, (sub, tensor) in enumerate(zip(input_specs, tensors)):
        indices = tuple(sub)
        if names is not None:
            name = names[pos]
        else:
            if isinstance(tensor, (COOTensor, CSFTensor)):
                name = "T"
            else:
                name = f"A{dense_counter}"
                dense_counter += 1
        operand, shape = _operand_from_tensor(name, indices, tensor)
        require(
            len(shape) == len(indices),
            f"operand {name!r}: spec has {len(indices)} indices but tensor has "
            f"order {len(shape)}",
        )
        if operand.is_sparse:
            sparse_count += 1
            sparse_tensor = tensor  # type: ignore[assignment]
        for idx, dim in zip(indices, shape):
            if idx in index_dims:
                require(
                    index_dims[idx] == dim,
                    f"index {idx!r} has inconsistent dimensions "
                    f"{index_dims[idx]} vs {dim}",
                )
            else:
                index_dims[idx] = int(dim)
        operands.append(operand)
    require(sparse_count == 1, f"expected exactly one sparse operand, got {sparse_count}")

    output_indices = tuple(output_spec)
    sparse_op = next(op for op in operands if op.is_sparse)
    if output_sparse is None:
        output_sparse = set(output_indices) == set(sparse_op.indices) and len(
            output_indices
        ) == len(sparse_op.indices)
    output = KernelOperand(output_name, output_indices, bool(output_sparse))

    # CSF order: the order in which the sparse operand's indices appear in
    # the spec matches the storage order of the tensor passed in (for a CSF
    # tensor, its mode_order has already been applied to its levels).
    csf_order = sparse_op.indices
    if isinstance(sparse_tensor, CSFTensor):
        csf_order = tuple(sparse_op.indices[m] for m in sparse_tensor.mode_order)

    stats = _collect_sparse_stats(sparse_tensor, csf_order, sparse_op.indices)
    return SpTTNKernel(
        operands,
        output,
        index_dims,
        csf_mode_order=csf_order,
        sparse_stats=stats,
    )


def _collect_sparse_stats(
    tensor: Optional[SparseInput],
    csf_order: Tuple[str, ...],
    spec_indices: Tuple[str, ...],
) -> Dict[str, object]:
    """Record nnz statistics (per CSF-prefix) from the concrete sparse tensor."""
    if tensor is None:
        return {}
    stats: Dict[str, object] = {}
    if isinstance(tensor, CSFTensor):
        stats["nnz"] = tensor.nnz
        stats["prefix_nnz"] = {
            depth: tensor.nnz_at_level(depth - 1) for depth in range(1, tensor.order + 1)
        }
        return stats
    if isinstance(tensor, COOTensor):
        stats["nnz"] = tensor.nnz
        # prefix counts follow the CSF order, which here is a permutation of
        # the spec order; map index names back to tensor modes.
        mode_of = {idx: pos for pos, idx in enumerate(spec_indices)}
        prefix = {}
        for depth in range(1, tensor.order + 1):
            modes = [mode_of[idx] for idx in csf_order[:depth]]
            prefix[depth] = tensor.nnz_modes(modes)
        stats["prefix_nnz"] = prefix
        return stats
    return stats
