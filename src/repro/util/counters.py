"""Operation counters used to verify the paper's analytic cost claims.

The evaluation in Section 2.4 of the paper reasons about leading-order scalar
operation counts (e.g. unfactorized MTTKRP performs ``3 nnz(T) * R``
multiply-add operations while the factorize-and-fuse variant performs
``2 nnz_{IJK}(T) * R + 2 nnz_{IJ}(T) * R``).  The execution engine threads an
:class:`OpCounter` through every contraction so tests and the E10 benchmark
can compare measured counts against these formulas.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class OpCounter:
    """Counts scalar multiply/add operations and memory traffic.

    Attributes
    ----------
    flops:
        Scalar fused multiply-add operations (a multiply and the accumulate
        that follows are counted as 2 operations, matching the paper).
    bytes_moved:
        Bytes read from or written to tensor operands and buffers by the
        execution engine (approximate; counts NumPy-level slice traffic).
    buffer_resets:
        Number of intermediate-buffer zero-fills performed, a proxy for the
        overhead of the factorize-and-fuse approach.
    kernel_calls:
        Per-BLAS-level call counts (``{"axpy": n, "ger": m, ...}``).
    """

    flops: int = 0
    bytes_moved: int = 0
    buffer_resets: int = 0
    kernel_calls: Dict[str, int] = field(default_factory=dict)

    def add_flops(self, n: int) -> None:
        self.flops += int(n)

    def add_bytes(self, n: int) -> None:
        self.bytes_moved += int(n)

    def add_reset(self, n: int = 1) -> None:
        self.buffer_resets += int(n)

    def add_call(self, kernel: str, n: int = 1) -> None:
        self.kernel_calls[kernel] = self.kernel_calls.get(kernel, 0) + int(n)

    def merge(self, other: "OpCounter") -> "OpCounter":
        """Accumulate *other* into this counter and return ``self``."""
        self.flops += other.flops
        self.bytes_moved += other.bytes_moved
        self.buffer_resets += other.buffer_resets
        for k, v in other.kernel_calls.items():
            self.kernel_calls[k] = self.kernel_calls.get(k, 0) + v
        return self

    def reset(self) -> None:
        self.flops = 0
        self.bytes_moved = 0
        self.buffer_resets = 0
        self.kernel_calls.clear()

    def as_dict(self) -> Dict[str, object]:
        return {
            "flops": self.flops,
            "bytes_moved": self.bytes_moved,
            "buffer_resets": self.buffer_resets,
            "kernel_calls": dict(self.kernel_calls),
        }
