"""Multidimensional processor grids.

CTF maps tensors onto processor grids whose order matches the tensor order;
each tensor mode is distributed cyclically over one grid dimension.  The
:class:`ProcessorGrid` here provides the rank <-> coordinate arithmetic and
:func:`factor_processors` produces a balanced grid shape for a given process
count and tensor order (largest prime factors assigned to the largest
modes).
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.util.validation import check_positive_int, require


def _prime_factors(n: int) -> List[int]:
    factors: List[int] = []
    d = 2
    while d * d <= n:
        while n % d == 0:
            factors.append(d)
            n //= d
        d += 1
    if n > 1:
        factors.append(n)
    return sorted(factors, reverse=True)


def factor_processors(
    n_procs: int,
    order: int,
    mode_sizes: Optional[Sequence[int]] = None,
) -> Tuple[int, ...]:
    """Factor *n_procs* into an order-*order* grid.

    Prime factors are assigned greedily to the grid dimension with the
    largest remaining ``mode_size / grid_size`` ratio, so large tensor modes
    receive more processes (the heuristic CTF uses for load balance).
    """
    n_procs = check_positive_int(n_procs, "n_procs")
    order = check_positive_int(order, "order")
    if mode_sizes is None:
        mode_sizes = [1] * order
    else:
        require(len(mode_sizes) == order, "mode_sizes must have one entry per mode")
    grid = [1] * order
    for factor in _prime_factors(n_procs):
        ratios = [mode_sizes[d] / grid[d] for d in range(order)]
        target = int(np.argmax(ratios))
        grid[target] *= factor
    return tuple(grid)


class ProcessorGrid:
    """An order-``d`` grid of ``prod(dims)`` virtual processes."""

    def __init__(self, dims: Sequence[int]) -> None:
        self.dims: Tuple[int, ...] = tuple(int(d) for d in dims)
        for d in self.dims:
            require(d >= 1, "grid dimensions must be positive")
        self.size = int(np.prod(self.dims))

    @classmethod
    def for_tensor(
        cls, n_procs: int, mode_sizes: Sequence[int]
    ) -> "ProcessorGrid":
        """A grid matched to a tensor's mode sizes."""
        return cls(factor_processors(n_procs, len(mode_sizes), mode_sizes))

    @property
    def order(self) -> int:
        return len(self.dims)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ProcessorGrid({'x'.join(str(d) for d in self.dims)})"

    # ------------------------------------------------------------------ #
    def rank_of(self, coords: Sequence[int]) -> int:
        """Linear rank of grid coordinates (row-major)."""
        require(len(coords) == self.order, "coordinate arity mismatch")
        rank = 0
        for c, d in zip(coords, self.dims):
            require(0 <= c < d, f"coordinate {c} out of range for dimension {d}")
            rank = rank * d + int(c)
        return rank

    def coords_of(self, rank: int) -> Tuple[int, ...]:
        """Grid coordinates of a linear rank."""
        require(0 <= rank < self.size, f"rank {rank} out of range")
        coords = []
        for d in reversed(self.dims):
            coords.append(rank % d)
            rank //= d
        return tuple(reversed(coords))

    def iter_ranks(self) -> Iterator[int]:
        return iter(range(self.size))

    def owner_of(self, index_tuple: Sequence[int]) -> int:
        """Rank owning a tensor entry under the cyclic distribution."""
        require(len(index_tuple) == self.order, "index arity mismatch")
        coords = tuple(int(i) % d for i, d in zip(index_tuple, self.dims))
        return self.rank_of(coords)

    def fiber_group_size(self, mode: int) -> int:
        """Number of ranks sharing a fixed coordinate on *mode* (replication group)."""
        require(0 <= mode < self.order, "mode out of range")
        return self.size // self.dims[mode]
