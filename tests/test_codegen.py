"""Tests for the jit/codegen execution tier (repro.engine.lowering.codegen).

The contract under test: ``compile_program`` turns a lowered
:class:`~repro.engine.lowering.ir.Program` into one fused callable that

* is cached on the plan (tri-state ``plan.jit``) and shared by every
  executor resolving the same plan, like ``plan.lowered``;
* re-binds per concrete CSF tensor through a bounded MRU prep cache
  (``CompiledJit.MAX_BINDS``) whose hits/misses/evictions surface in
  :func:`~repro.engine.lowering.codegen.jit_stats`;
* reuses its pooled intermediate buffers across runs (warm executions
  allocate nothing) while staying bit-identical when the bound tensor's
  shapes change;
* falls back to the lowered VM transparently when compilation declines or
  fails, and to the interpreter on empty tensors — without changing
  results or counters.
"""

import numpy as np
import pytest

from repro.core.scheduler import SpTTNScheduler
from repro.engine.executor import LoopNestExecutor
from repro.engine.lowering import CompiledJit, compile_program, lower_plan
from repro.engine.lowering import codegen as codegen_mod
from repro.engine.lowering.codegen import jit_stats, reset_jit_stats
from repro.engine.plan_cache import caches_snapshot
from repro.sptensor import random_sparse_tensor
from repro.util.counters import OpCounter


def _run(kernel, tensors, nest, engine="jit", **kwargs):
    counter = OpCounter()
    executor = LoopNestExecutor(kernel, nest, counter=counter, engine=engine, **kwargs)
    output = executor.execute(tensors)
    return executor, np.asarray(output), counter


class TestPlanCaching:
    def test_compiled_callable_cached_on_plan(self, mttkrp_setup):
        kernel, tensors = mttkrp_setup
        nest = SpTTNScheduler(kernel).schedule().loop_nest
        executor, _, _ = _run(kernel, tensors, nest)
        assert executor.last_engine == "jit"
        plan = executor._plan
        assert isinstance(plan.jit, CompiledJit)
        compiled = plan.jit
        # a second executor sharing the process-wide plan cache reuses the
        # compiled callable — no recompilation
        before = jit_stats()["compiles"]
        other, _, _ = _run(kernel, tensors, nest)
        assert other._plan is plan
        assert other._plan.jit is compiled
        assert jit_stats()["compiles"] == before

    def test_codegen_cache_key_is_the_plan(self, mttkrp_setup, ttmc_setup):
        """Structurally different kernels get distinct compiled callables."""
        k1, t1 = mttkrp_setup
        k2, t2 = ttmc_setup
        e1, _, _ = _run(k1, t1, SpTTNScheduler(k1).schedule().loop_nest)
        e2, _, _ = _run(k2, t2, SpTTNScheduler(k2).schedule().loop_nest)
        assert e1._plan is not e2._plan
        assert e1._plan.jit is not e2._plan.jit

    def test_generated_source_is_inspectable(self, mttkrp_setup):
        kernel, tensors = mttkrp_setup
        nest = SpTTNScheduler(kernel).schedule().loop_nest
        executor, _, _ = _run(kernel, tensors, nest)
        source = executor._plan.jit.source
        assert "def _fused(V, D, O, OV, P, B, C):" in source


class TestPrepBinding:
    def test_rebind_on_new_tensor(self, mttkrp_setup):
        kernel, tensors = mttkrp_setup
        nest = SpTTNScheduler(kernel).schedule().loop_nest
        executor, out1, _ = _run(kernel, tensors, nest)
        compiled = executor._plan.jit
        misses0 = jit_stats()["misses"]
        # same tensors again: the prep cache hits, no new bind
        _, out2, _ = _run(kernel, tensors, nest)
        assert jit_stats()["misses"] == misses0
        np.testing.assert_array_equal(out1, out2)
        # a different sparse tensor (new shapes/nnz) forces a fresh bind
        other = dict(tensors)
        other["T"] = random_sparse_tensor((18, 15, 12), density=0.05, seed=21)
        version = compiled.version
        _, out3, ctr3 = _run(kernel, other, nest)
        assert jit_stats()["misses"] == misses0 + 1
        assert compiled.version > version
        # and agrees with the interpreter on the new tensor
        _, ref, ctr_ref = _run(kernel, other, nest, engine="interpret")
        np.testing.assert_allclose(out3, ref, rtol=1e-12, atol=1e-14)
        assert ctr3.as_dict() == ctr_ref.as_dict()

    def test_bind_cache_eviction(self, mttkrp_setup):
        kernel, tensors = mttkrp_setup
        nest = SpTTNScheduler(kernel).schedule().loop_nest
        executor, _, _ = _run(kernel, tensors, nest)
        compiled = executor._plan.jit
        evictions0 = jit_stats()["evictions"]
        # bind MAX_BINDS + 2 distinct tensors: the MRU prep cache stays
        # bounded and the overflow is counted as evictions
        variants = []
        for seed in range(CompiledJit.MAX_BINDS + 2):
            case = dict(tensors)
            case["T"] = random_sparse_tensor((18, 15, 12), density=0.04, seed=seed)
            variants.append(case)
            _run(kernel, case, nest)
        assert len(compiled._binds) <= CompiledJit.MAX_BINDS
        assert jit_stats()["evictions"] > evictions0

    def test_buffer_pool_reused_across_runs(self, mttkrp_setup):
        kernel, tensors = mttkrp_setup
        nest = SpTTNScheduler(kernel).schedule().loop_nest
        executor, _, _ = _run(kernel, tensors, nest)
        compiled = executor._plan.jit
        warm = {key: buf for key, buf in compiled.pool.items()}
        assert warm, "the fused callable should pool intermediate buffers"
        _run(kernel, tensors, nest)
        for key, buf in warm.items():
            assert compiled.pool[key] is buf


class TestFallback:
    def test_compile_failure_falls_back_to_lowered(self, mttkrp_setup, monkeypatch):
        kernel, tensors = mttkrp_setup
        nest = SpTTNScheduler(kernel).schedule().loop_nest
        monkeypatch.setattr(
            "repro.engine.executor.compile_program", lambda program: None
        )
        executor, out, ctr = _run(kernel, tensors, nest)
        assert executor.last_engine == "lowered"
        assert executor._plan.jit is False  # the decline is cached
        ref_exec, ref, ref_ctr = _run(kernel, tensors, nest, engine="interpret")
        np.testing.assert_allclose(out, ref, rtol=1e-12, atol=1e-14)
        assert ctr.as_dict() == ref_ctr.as_dict()

    def test_internal_errors_count_as_rejections(self, mttkrp_setup, monkeypatch):
        kernel, tensors = mttkrp_setup
        nest = SpTTNScheduler(kernel).schedule().loop_nest
        executor = LoopNestExecutor(kernel, nest, engine="interpret")
        executor._prepare(tensors)
        program = lower_plan(executor)
        monkeypatch.setattr(
            codegen_mod, "_compile", lambda program: (_ for _ in ()).throw(RuntimeError)
        )
        rejections0 = jit_stats()["rejections"]
        assert compile_program(program) is None
        assert jit_stats()["rejections"] == rejections0 + 1

    def test_empty_tensor_interprets(self, mttkrp_setup):
        from repro.sptensor import COOTensor

        kernel, tensors = mttkrp_setup
        nest = SpTTNScheduler(kernel).schedule().loop_nest
        empty = dict(tensors)
        empty["T"] = COOTensor.empty(tensors["T"].shape)
        executor, out, _ = _run(kernel, empty, nest)
        assert executor.last_engine == "interpret"
        assert np.all(out == 0.0)

    def test_env_variable_selects_jit(self, mttkrp_setup, monkeypatch):
        kernel, tensors = mttkrp_setup
        nest = SpTTNScheduler(kernel).schedule().loop_nest
        monkeypatch.setenv("REPRO_ENGINE", "jit")
        executor = LoopNestExecutor(kernel, nest)
        assert executor.engine == "jit"
        executor.execute(tensors)
        assert executor.last_engine == "jit"


class TestStats:
    def test_jit_stats_in_caches_snapshot(self, mttkrp_setup):
        kernel, tensors = mttkrp_setup
        nest = SpTTNScheduler(kernel).schedule().loop_nest
        _run(kernel, tensors, nest)
        snapshot = caches_snapshot()
        assert "jit" in snapshot
        stats = snapshot["jit"]
        # the shared six-column cache-stat shape plus codegen extras
        for key in ("entries", "hits", "misses", "evictions", "rejections", "bytes"):
            assert key in stats
        assert stats["entries"] >= 1
        assert stats["compiles"] >= 1
        assert stats["runs"] >= 1
        assert stats["bytes"] > 0  # pooled buffers are byte-accounted

    def test_reset_jit_stats(self, mttkrp_setup):
        kernel, tensors = mttkrp_setup
        nest = SpTTNScheduler(kernel).schedule().loop_nest
        _run(kernel, tensors, nest)
        assert jit_stats()["compiles"] >= 1
        reset_jit_stats()
        stats = jit_stats()
        assert stats["compiles"] == 0 and stats["runs"] == 0
        assert stats["misses"] == 0 and stats["evictions"] == 0


class TestNumbaGating:
    def test_numba_env_zero_disables(self, monkeypatch):
        from repro.engine.lowering import numba_kernels

        monkeypatch.setenv(numba_kernels.NUMBA_ENV, "0")
        monkeypatch.setitem(numba_kernels._STATE, "resolved", False)
        monkeypatch.setitem(numba_kernels._STATE, "ok", False)
        assert not numba_kernels.available()
        assert numba_kernels.segment_reduce(np.ones((4, 2)), np.array([0, 2, 4])) is None

    def test_segment_reduce_matches_reduceat_when_available(self):
        from repro.engine.lowering import numba_kernels

        value = np.arange(12.0).reshape(6, 2)
        bounds = np.array([0, 1, 4, 6])
        result = numba_kernels.segment_reduce(value, bounds)
        if result is None:
            pytest.skip("numba not installed")
        expected = np.add.reduceat(value, bounds[:-1], axis=0)
        np.testing.assert_array_equal(result, expected)
