"""Lightweight wall-clock timing helpers for benchmarks and the autotuner."""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional


@dataclass
class Timer:
    """Accumulating named timer, safe for concurrent use from threads.

    Section accounting (``totals``/``counts`` updates) happens under a
    lock, so one :class:`Timer` can accumulate from several threads at
    once — the span tracer of :mod:`repro.obs.trace` uses a shared
    instance as its per-category accumulation primitive, and benchmark
    code keeps using private instances exactly as before.

    Example
    -------
    >>> t = Timer()
    >>> with t.section("search"):
    ...     pass
    >>> "search" in t.totals
    True
    """

    totals: Dict[str, float] = field(default_factory=dict)
    counts: Dict[str, int] = field(default_factory=dict)
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def add(self, name: str, elapsed: float) -> None:
        """Account *elapsed* seconds to section *name* (thread-safe)."""
        with self._lock:
            self.totals[name] = self.totals.get(name, 0.0) + elapsed
            self.counts[name] = self.counts.get(name, 0) + 1

    @contextmanager
    def section(self, name: str) -> Iterator[None]:
        """Time one ``with`` block and account it to section *name*."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add(name, time.perf_counter() - start)

    def mean(self, name: str) -> float:
        """Mean elapsed time of a section; 0.0 if the section never ran."""
        if self.counts.get(name, 0) == 0:
            return 0.0
        return self.totals[name] / self.counts[name]

    def reset(self) -> None:
        """Drop every accumulated section (thread-safe)."""
        with self._lock:
            self.totals.clear()
            self.counts.clear()

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """Coherent per-section view: total seconds, calls and mean each."""
        with self._lock:
            return {
                name: {
                    "total_s": self.totals[name],
                    "calls": self.counts.get(name, 0),
                    "mean_s": (
                        self.totals[name] / self.counts[name]
                        if self.counts.get(name, 0)
                        else 0.0
                    ),
                }
                for name in self.totals
            }

    def summary(self) -> str:
        """Human-readable table of every section's total/calls/mean."""
        lines: List[str] = []
        for name, row in sorted(self.snapshot().items()):
            lines.append(
                f"{name:30s} total={row['total_s']:10.6f}s "
                f"calls={int(row['calls']):6d} mean={row['mean_s']:10.6f}s"
            )
        return "\n".join(lines)


def timed(func: Callable, *args, repeat: int = 1, **kwargs):
    """Run ``func(*args, **kwargs)`` *repeat* times, return (best_time, result).

    The result of the final invocation is returned alongside the minimum
    wall-clock time over the repeats (the standard timeit-style estimator).
    """
    if repeat < 1:
        raise ValueError("repeat must be >= 1")
    best: Optional[float] = None
    result = None
    for _ in range(repeat):
        start = time.perf_counter()
        result = func(*args, **kwargs)
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return best, result
