"""Tests for the distributed runtime (virtual ranks, rank-parallel tier)."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.distributed import (
    AlphaBetaModel,
    CyclicDistribution,
    DistributedSpTTN,
    ProcessorGrid,
    factor_processors,
    measured_scaling,
    partition_sparse_tensor,
    strong_scaling,
)
from repro.engine.plan_cache import (
    default_executor_cache,
    default_plan_cache,
)
from repro.engine.reference import assert_same_result, reference_output
from repro.kernels.mttkrp import mttkrp_kernel
from repro.kernels.ttmc import ttmc_kernel
from repro.kernels.tttc import tttc_kernel
from repro.kernels.tttp import tttp_kernel
from repro.sptensor import COOTensor, random_dense_matrix, random_sparse_tensor


def _assert_bit_identical(a, b):
    """Outputs must be equal to the last bit (sparse: coords and values)."""
    if isinstance(a, COOTensor):
        assert isinstance(b, COOTensor)
        np.testing.assert_array_equal(a.indices, b.indices)
        np.testing.assert_array_equal(a.values, b.values)
    else:
        np.testing.assert_array_equal(np.asarray(a), np.asarray(b))


class TestProcessorGrid:
    def test_factorization_product(self):
        for p in (1, 2, 6, 8, 12, 64):
            dims = factor_processors(p, 3)
            assert int(np.prod(dims)) == p

    def test_factorization_favours_large_modes(self):
        dims = factor_processors(8, 3, mode_sizes=[1000, 10, 10])
        assert dims[0] >= max(dims[1], dims[2])

    def test_rank_coords_roundtrip(self):
        grid = ProcessorGrid((2, 3, 2))
        for rank in grid.iter_ranks():
            assert grid.rank_of(grid.coords_of(rank)) == rank

    def test_owner_is_cyclic(self):
        grid = ProcessorGrid((2, 2))
        assert grid.owner_of((0, 0)) == grid.owner_of((2, 4))
        assert grid.owner_of((1, 0)) != grid.owner_of((0, 0))

    def test_fiber_group_size(self):
        grid = ProcessorGrid((2, 3, 2))
        assert grid.fiber_group_size(1) == 4

    def test_invalid_inputs(self):
        grid = ProcessorGrid((2, 2))
        with pytest.raises(ValueError):
            grid.rank_of((2, 0))
        with pytest.raises(ValueError):
            grid.coords_of(5)
        with pytest.raises(ValueError):
            ProcessorGrid((0, 2))

    def test_for_tensor(self):
        grid = ProcessorGrid.for_tensor(12, (100, 50, 2))
        assert grid.size == 12
        assert grid.order == 3


class TestPartitioning:
    def test_partition_preserves_all_nonzeros(self, random_coo3):
        grid = ProcessorGrid.for_tensor(6, random_coo3.shape)
        locals_ = partition_sparse_tensor(random_coo3, grid)
        assert sum(t.nnz for t in locals_) == random_coo3.nnz
        total = np.zeros(random_coo3.shape)
        for t in locals_:
            total += t.to_dense()
        np.testing.assert_allclose(total, random_coo3.to_dense())

    def test_partition_ownership_is_cyclic(self, random_coo3):
        grid = ProcessorGrid.for_tensor(4, random_coo3.shape)
        locals_ = partition_sparse_tensor(random_coo3, grid)
        for rank, local in enumerate(locals_):
            for coords, _ in local:
                assert grid.owner_of(coords) == rank

    def test_partition_grid_mismatch(self, random_coo3):
        with pytest.raises(ValueError):
            partition_sparse_tensor(random_coo3, ProcessorGrid((2, 2)))

    def test_local_nnz_matches_partition(self, random_coo3):
        grid = ProcessorGrid.for_tensor(8, random_coo3.shape)
        from repro.kernels.mttkrp import mttkrp_kernel

        kernel, _ = mttkrp_kernel(
            random_coo3, [np.ones((d, 3)) for d in random_coo3.shape], 0
        )
        plan = CyclicDistribution.plan(kernel, grid)
        counts = plan.local_nnz(random_coo3)
        locals_ = partition_sparse_tensor(random_coo3, grid)
        np.testing.assert_array_equal(counts, [t.nnz for t in locals_])

    def test_load_imbalance_at_least_one(self, random_coo3):
        grid = ProcessorGrid.for_tensor(8, random_coo3.shape)
        kernel, _ = mttkrp_kernel(
            random_coo3, [np.ones((d, 3)) for d in random_coo3.shape], 0
        )
        plan = CyclicDistribution.plan(kernel, grid)
        assert plan.load_imbalance(random_coo3) >= 1.0


class TestDistributionPlan:
    def test_dense_replication_volumes(self, mttkrp_setup):
        kernel, tensors = mttkrp_setup
        grid = ProcessorGrid.for_tensor(8, tensors["T"].shape)
        plan = CyclicDistribution.plan(kernel, grid)
        assert len(plan.dense_placements) == len(kernel.dense_operands)
        for placement in plan.dense_placements:
            assert placement.local_elements > 0
            assert placement.broadcast_elements >= 0

    def test_output_reduction_dense_vs_sparse(self, mttkrp_setup, tttp_setup):
        dense_kernel, dense_tensors = mttkrp_setup
        sparse_kernel, sparse_tensors = tttp_setup
        grid = ProcessorGrid.for_tensor(4, dense_tensors["T"].shape)
        dense_plan = CyclicDistribution.plan(dense_kernel, grid)
        sparse_plan = CyclicDistribution.plan(sparse_kernel, grid)
        assert dense_plan.output_reduction_elements > 0
        assert sparse_plan.output_reduction_elements == 0

    def test_grid_order_mismatch_rejected(self, mttkrp_setup):
        kernel, _ = mttkrp_setup
        with pytest.raises(ValueError):
            CyclicDistribution.plan(kernel, ProcessorGrid((2, 2)))


class TestAlphaBetaModel:
    def test_single_process_is_free(self):
        model = AlphaBetaModel()
        assert model.broadcast(1000, 1).total == 0.0
        assert model.allreduce(1000, 1).total == 0.0

    def test_costs_scale_with_volume(self):
        model = AlphaBetaModel()
        small = model.broadcast(1000, 8).total
        large = model.broadcast(1000000, 8).total
        assert large > small

    def test_latency_grows_with_processes(self):
        model = AlphaBetaModel(alpha=1e-5, beta=0.0)
        assert model.reduce(10, 64).total > model.reduce(10, 2).total

    def test_allreduce_more_expensive_than_reduce(self):
        model = AlphaBetaModel()
        assert model.allreduce(1 << 20, 16).total >= model.reduce(1 << 20, 16).total

    def test_point_to_point(self):
        model = AlphaBetaModel(alpha=1e-6, beta=1e-9)
        est = model.point_to_point(1000)
        assert est.latency_seconds == pytest.approx(1e-6)
        assert est.bandwidth_seconds == pytest.approx(8000 * 1e-9)


class TestDistributedExecution:
    @pytest.mark.parametrize("n_procs", [1, 3, 8])
    def test_mttkrp_exact(self, mttkrp_setup, n_procs):
        kernel, tensors = mttkrp_setup
        expected = reference_output(kernel, tensors)
        dist = DistributedSpTTN(kernel, tensors)
        assert_same_result(dist.execute(n_procs), expected)

    def test_ttmc_exact(self, ttmc_setup):
        kernel, tensors = ttmc_setup
        expected = reference_output(kernel, tensors)
        dist = DistributedSpTTN(kernel, tensors)
        assert_same_result(dist.execute(6), expected)

    def test_tttp_exact_sparse_output(self, tttp_setup):
        kernel, tensors = tttp_setup
        expected = reference_output(kernel, tensors)
        dist = DistributedSpTTN(kernel, tensors)
        assert_same_result(dist.execute(4), expected)

    def test_simulation_fields(self, mttkrp_setup):
        kernel, tensors = mttkrp_setup
        dist = DistributedSpTTN(kernel, tensors)
        run = dist.simulate(8)
        assert run.processes == 8
        assert run.compute_seconds > 0
        assert run.communication_seconds > 0
        assert run.max_local_nnz <= tensors["T"].nnz
        assert run.load_imbalance >= 1.0

    def test_single_process_has_no_communication(self, mttkrp_setup):
        kernel, tensors = mttkrp_setup
        dist = DistributedSpTTN(kernel, tensors)
        run = dist.simulate(1)
        assert run.communication_seconds == 0.0

    def test_analytic_mode(self, mttkrp_setup):
        kernel, tensors = mttkrp_setup
        dist = DistributedSpTTN(kernel, tensors)
        run = dist.simulate(16, measure=False)
        assert run.compute_seconds > 0

    def test_compute_time_decreases_with_processes(self, mttkrp_setup):
        kernel, tensors = mttkrp_setup
        dist = DistributedSpTTN(kernel, tensors)
        t1 = dist.simulate(1).compute_seconds
        t16 = dist.simulate(16).compute_seconds
        assert t16 < t1


class TestRankParallelExecution:
    """The shared-memory parallel tier must be bit-identical to serial."""

    @pytest.mark.parametrize(
        "fixture", ["mttkrp_setup", "ttmc_setup", "tttp_setup", "allmode_setup"]
    )
    @pytest.mark.parametrize("n_procs", [3, 6])
    def test_parallel_matches_serial_bit_exactly(self, request, fixture, n_procs):
        kernel, tensors = request.getfixturevalue(fixture)
        dist = DistributedSpTTN(kernel, tensors)
        serial = dist.execute(n_procs, workers=0)
        parallel = dist.execute(n_procs, workers=2)
        _assert_bit_identical(serial, parallel)
        assert_same_result(parallel, reference_output(kernel, tensors))

    def test_tttc_parallel_matches_serial(self, random_coo3):
        rng = np.random.default_rng(21)
        cores = [
            rng.random((random_coo3.shape[0], 3)),
            rng.random((3, random_coo3.shape[1], 2)),
            rng.random((2, random_coo3.shape[2])),
        ]
        kernel, tensors = tttc_kernel(random_coo3, cores)
        dist = DistributedSpTTN(kernel, tensors)
        serial = dist.execute(5, workers=0)
        parallel = dist.execute(5, workers=2)
        _assert_bit_identical(serial, parallel)
        assert_same_result(parallel, reference_output(kernel, tensors))

    @pytest.mark.parametrize("n_procs", [4, 8])
    def test_dense_reduction_matches_pre_refactor_fold(
        self, mttkrp_setup, n_procs
    ):
        """Parallel execute must equal the original sequential rank loop
        (fresh executor per rank, partial sums folded in rank order) to the
        last bit."""
        from repro.engine.executor import LoopNestExecutor

        kernel, tensors = mttkrp_setup
        dist = DistributedSpTTN(kernel, tensors)
        grid = dist.grid_for(n_procs)
        locals_ = partition_sparse_tensor(tensors["T"], grid)
        shape = tuple(kernel.index_dims[i] for i in kernel.output.indices)
        expected = np.zeros(shape, dtype=np.float64)
        for local in locals_:
            if local.nnz == 0:
                continue
            executor = LoopNestExecutor(kernel, dist.schedule.loop_nest)
            local_tensors = dict(tensors)
            local_tensors["T"] = local
            expected += np.asarray(executor.execute(local_tensors))
        np.testing.assert_array_equal(
            np.asarray(dist.execute(n_procs, workers=2)), expected
        )
        np.testing.assert_array_equal(
            np.asarray(dist.execute(n_procs, workers=0)), expected
        )

    def test_workers_field_sets_the_default_tier(self, mttkrp_setup):
        kernel, tensors = mttkrp_setup
        dist = DistributedSpTTN(kernel, tensors, workers=2)
        _assert_bit_identical(
            dist.execute(4), dist.execute(4, workers=0)
        )

    def test_engine_override_is_honoured(self, mttkrp_setup):
        kernel, tensors = mttkrp_setup
        lowered = DistributedSpTTN(kernel, tensors, engine="lowered")
        interp = DistributedSpTTN(kernel, tensors, engine="interpret")
        assert_same_result(
            lowered.execute(4, workers=2), reference_output(kernel, tensors)
        )
        assert_same_result(
            interp.execute(4, workers=2), reference_output(kernel, tensors)
        )

    def test_engine_is_resolved_in_the_parent(self, mttkrp_setup, monkeypatch):
        """A REPRO_ENGINE change after the pool is warm must reach both
        tiers identically (workers snapshot the environment at fork)."""
        kernel, tensors = mttkrp_setup
        dist = DistributedSpTTN(kernel, tensors)
        dist.execute(4, workers=2)  # warm the pool under the default engine
        monkeypatch.setenv("REPRO_ENGINE", "interpret")
        assert dist._resolved_engine() == "interpret"
        _assert_bit_identical(
            dist.execute(4, workers=0), dist.execute(4, workers=2)
        )

    def test_more_workers_than_ranks(self, mttkrp_setup):
        kernel, tensors = mttkrp_setup
        dist = DistributedSpTTN(kernel, tensors)
        _assert_bit_identical(
            dist.execute(2, workers=0), dist.execute(2, workers=4)
        )

    def test_measure_execute_returns_positive_seconds(self, mttkrp_setup):
        kernel, tensors = mttkrp_setup
        dist = DistributedSpTTN(kernel, tensors)
        assert dist.measure_execute(2, workers=2, repeats=1) > 0.0

    def test_measured_scaling_rows(self, mttkrp_setup):
        kernel, tensors = mttkrp_setup
        rows = measured_scaling(
            kernel, tensors, [1, 2], kernel_name="mttkrp", workers=2
        )
        assert [row["processes"] for row in rows] == [1, 2]
        assert all(row["measured_s"] > 0 for row in rows)
        assert all(row["predicted_s"] > 0 for row in rows)
        assert rows[0]["speedup"] == 1.0


class TestPlanReuse:
    """Distributed execution compiles one plan per kernel structure."""

    def test_execute_plans_once_across_ranks(self, mttkrp_setup):
        kernel, tensors = mttkrp_setup
        dist = DistributedSpTTN(kernel, tensors)
        plan_cache = default_plan_cache()
        plan_cache.reset_stats()
        dist.execute(8, workers=0)
        assert plan_cache.misses == 1  # one CompiledPlan for all ranks
        assert plan_cache.hits >= 1
        assert len(default_executor_cache()) == 1
        dist.execute(8, workers=0)
        assert plan_cache.misses == 1  # later sweeps reuse it too

    def test_measure_single_rank_plans_once_per_repeat_set(self, mttkrp_setup):
        kernel, tensors = mttkrp_setup
        dist = DistributedSpTTN(kernel, tensors)
        plan_cache = default_plan_cache()
        plan_cache.reset_stats()
        dist.measure_single_rank(repeats=3)
        assert plan_cache.misses == 1
        assert len(default_executor_cache()) == 1

    def test_schedule_comes_from_the_schedule_cache(self, mttkrp_setup):
        kernel, tensors = mttkrp_setup
        first = DistributedSpTTN(kernel, tensors)
        second = DistributedSpTTN(kernel, tensors)
        assert first.schedule is second.schedule


class TestPartitionProperties:
    """Hypothesis: cyclic partitioning is an exact, owner-correct partition."""

    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(data=st.data())
    def test_partition_is_exact(self, data):
        order = data.draw(st.integers(2, 4), label="order")
        shape = tuple(
            data.draw(st.integers(2, 9), label=f"dim{m}") for m in range(order)
        )
        total = int(np.prod(shape))
        nnz = data.draw(st.integers(0, min(60, total)), label="nnz")
        seed = data.draw(st.integers(0, 2**16), label="seed")
        n_procs = data.draw(st.integers(1, 12), label="n_procs")
        tensor = random_sparse_tensor(shape, nnz=nnz, seed=seed)
        grid = ProcessorGrid.for_tensor(n_procs, shape)
        locals_ = partition_sparse_tensor(tensor, grid)

        # every nonzero is owned exactly once...
        assert len(locals_) == grid.size
        assert sum(t.nnz for t in locals_) == tensor.nnz
        gathered = sorted(
            (tuple(int(c) for c in coords), float(v))
            for t in locals_
            for coords, v in t
        )
        expected = sorted(
            (tuple(int(c) for c in coords), float(v)) for coords, v in tensor
        )
        assert gathered == expected
        # ...by the rank the cyclic formula names
        for rank, local in enumerate(locals_):
            for coords, _ in local:
                cyclic = tuple(
                    int(c) % d for c, d in zip(coords, grid.dims)
                )
                assert grid.rank_of(cyclic) == rank
                assert grid.owner_of(coords) == rank


class TestParallelExecutionProperties:
    """Hypothesis: parallel == serial bit-exactly across kernels/grids/workers."""

    @settings(
        max_examples=6,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(data=st.data())
    def test_parallel_equals_serial(self, data):
        builder = data.draw(
            st.sampled_from(["mttkrp", "ttmc", "tttp"]), label="kernel"
        )
        dims = tuple(
            data.draw(st.integers(4, 10), label=f"dim{m}") for m in range(3)
        )
        nnz = data.draw(st.integers(1, 120), label="nnz")
        seed = data.draw(st.integers(0, 2**16), label="seed")
        n_procs = data.draw(st.integers(2, 8), label="n_procs")
        workers = data.draw(st.sampled_from([2, 4]), label="workers")
        tensor = random_sparse_tensor(
            dims, nnz=min(nnz, int(np.prod(dims))), seed=seed
        )
        rank = data.draw(st.integers(2, 3), label="rank")
        factors = [
            random_dense_matrix(d, rank, seed=seed + i)
            for i, d in enumerate(dims)
        ]
        if builder == "mttkrp":
            kernel, tensors = mttkrp_kernel(tensor, factors, mode=0)
        elif builder == "ttmc":
            kernel, tensors = ttmc_kernel(tensor, factors, mode=0)
        else:
            kernel, tensors = tttp_kernel(tensor, factors)
        dist = DistributedSpTTN(kernel, tensors)
        serial = dist.execute(n_procs, workers=0)
        parallel = dist.execute(n_procs, workers=workers)
        _assert_bit_identical(serial, parallel)


class TestDistCLI:
    def test_execute_mode_runs(self, capsys):
        from repro.__main__ import main

        rc = main(
            [
                "dist",
                "--spec", "ijk,ja,ka->ia",
                "--shape", "14,12,10",
                "--nnz", "120",
                "--rank", "3",
                "--procs", "1,2,4",
                "--workers", "2",
                "--mode", "both",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "rank-parallel execution: 2 worker(s)" in out
        assert "predicted [ms]" in out
        assert "max |Δ|" in out

    def test_simulate_mode_runs(self, capsys):
        from repro.__main__ import main

        rc = main(
            [
                "dist",
                "--spec", "ijk,jr,ks->irs",
                "--shape", "12,10,8",
                "--nnz", "80",
                "--rank", "3",
                "--procs", "1,4,16",
                "--mode", "simulate",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "simulated strong scaling" in out
        assert "imbalance" in out


class TestStrongScaling:
    def test_scaling_result_structure(self, ttmc_setup):
        kernel, tensors = ttmc_setup
        result = strong_scaling(kernel, tensors, [1, 2, 4, 8], kernel_name="ttmc")
        assert result.processes() == [1, 2, 4, 8]
        assert len(result.times()) == 4
        rows = result.as_rows()
        assert rows[0]["kernel"] == "ttmc"
        assert all(0 < row["efficiency"] <= 1.5 for row in rows)

    def test_speedup_generally_increases(self, ttmc_setup):
        kernel, tensors = ttmc_setup
        result = strong_scaling(kernel, tensors, [1, 4, 16], kernel_name="ttmc")
        times = result.times()
        assert times[1] < times[0]
        assert times[2] < times[0]

    def test_empty_process_list_rejected(self, ttmc_setup):
        kernel, tensors = ttmc_setup
        with pytest.raises(ValueError):
            strong_scaling(kernel, tensors, [], kernel_name="ttmc")
