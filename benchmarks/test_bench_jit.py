"""JIT/codegen tier vs the lowered VM: fused kernels with buffer pooling.

The jit tier (:mod:`repro.engine.lowering.codegen`) compiles a lowered
program into one fused callable: straight-line NumPy specialized per
program, pooled buffers reused across runs, bind-time index preparation,
and SpMM / per-segment-GEMM peephole fusions.  This module measures that
tier against the lowered VM on the paper's fig7 MTTKRP datasets and the
TTMc workload — the same workloads the lowered tier is benchmarked on.

Expected shape: the jit tier removes the VM's per-op dispatch, per-call
index re-derivation and intermediate allocations, and collapses the
dominant gather/scale/reduce chains into single CSR SpMMs — >= 2x over
the lowered VM on every fig7 MTTKRP dataset and on TTMc (measured 2.7-19x
at the smoke scales).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core.expr import parse_kernel
from repro.core.scheduler import SpTTNScheduler
from repro.engine.executor import LoopNestExecutor
from repro.kernels.mttkrp import mttkrp_kernel
from repro.sptensor import random_dense_matrix, random_sparse_tensor

from _workloads import (
    FIG7_DATASETS,
    FIG7_RANK,
    TTMC_RANK,
    factor_matrices,
    preset_tensor,
    record_rows,
)

REPEATS = 15
TRIALS = 3


def _mttkrp_case(dataset):
    tensor = preset_tensor(dataset)
    factors = factor_matrices(tensor, FIG7_RANK, seed=1)
    return mttkrp_kernel(tensor, factors, mode=0)


def _ttmc_case(shape=(300, 250, 200), nnz=20000, rank=TTMC_RANK, seed=1):
    tensor = random_sparse_tensor(shape, nnz=nnz, seed=seed)
    u = random_dense_matrix(shape[1], rank, seed=seed + 1, name="U")
    v = random_dense_matrix(shape[2], rank, seed=seed + 2, name="V")
    kernel = parse_kernel("ijk,jr,ks->irs", [tensor, u, v], names=["T", "U", "V"])
    return kernel, {"T": tensor, "U": u, "V": v}


def _best_time(executor, tensors, repeats=REPEATS):
    executor.execute(tensors)  # warm plan, compiled callable and pools
    best = np.inf
    for _ in range(repeats):
        start = time.perf_counter()
        executor.execute(tensors)
        best = min(best, time.perf_counter() - start)
    return best


def _engine_times(kernel, tensors, engines=("jit", "lowered")):
    """Min-of-interleaved-trials per engine (robust to scheduler noise)."""
    executors = {}
    for engine in engines:
        executors[engine] = LoopNestExecutor(
            kernel, SpTTNScheduler(kernel).schedule().loop_nest, engine=engine
        )
    times = {engine: np.inf for engine in engines}
    for _ in range(TRIALS):
        for engine, executor in executors.items():
            times[engine] = min(times[engine], _best_time(executor, tensors))
            assert executor.last_engine == engine
    return times


@pytest.mark.parametrize("dataset", FIG7_DATASETS)
@pytest.mark.parametrize("engine", ["jit", "lowered"])
def test_fig7_mttkrp_jit(benchmark, dataset, engine):
    kernel, tensors = _mttkrp_case(dataset)
    executor = LoopNestExecutor(
        kernel, SpTTNScheduler(kernel).schedule().loop_nest, engine=engine
    )
    executor.execute(tensors)  # warm plan
    benchmark.extra_info.update(
        engine=engine, kernel="mttkrp", dataset=dataset, rank=FIG7_RANK
    )
    benchmark.pedantic(lambda: executor.execute(tensors), rounds=3, iterations=1)
    assert executor.last_engine == engine


@pytest.mark.parametrize("engine", ["jit", "lowered"])
def test_ttmc_jit(benchmark, engine):
    kernel, tensors = _ttmc_case()
    executor = LoopNestExecutor(
        kernel, SpTTNScheduler(kernel).schedule().loop_nest, engine=engine
    )
    executor.execute(tensors)  # warm plan
    benchmark.extra_info.update(engine=engine, kernel="ttmc", rank=TTMC_RANK)
    benchmark.pedantic(lambda: executor.execute(tensors), rounds=3, iterations=1)
    assert executor.last_engine == engine


@pytest.mark.smoke
def test_jit_speedup_smoke(benchmark):
    """JIT vs lowered on every fig7 MTTKRP dataset and on TTMc.

    The tentpole acceptance bar: >= 2x over the lowered tier on each
    workload (measured 2.7-19x; the CSR SpMM fusions carry the MTTKRP
    datasets, the per-segment GEMM loop carries TTMc)."""
    cases = {f"mttkrp/{ds}": _mttkrp_case(ds) for ds in FIG7_DATASETS}
    cases["ttmc"] = _ttmc_case()

    def measure():
        return {
            name: _engine_times(kernel, tensors)
            for name, (kernel, tensors) in cases.items()
        }

    times = benchmark.pedantic(measure, rounds=1, iterations=1)
    rows = [
        {
            "kernel": name,
            "jit_ms": engine_times["jit"] * 1e3,
            "lowered_ms": engine_times["lowered"] * 1e3,
            "speedup": engine_times["lowered"] / engine_times["jit"],
        }
        for name, engine_times in times.items()
    ]
    record_rows(benchmark, rows)
    speedups = {row["kernel"]: row["speedup"] for row in rows}
    benchmark.extra_info["speedups"] = speedups
    for name, speedup in speedups.items():
        assert speedup >= 2.0, f"{name}: jit only {speedup:.2f}x over lowered"
