"""Loop orders, peeling and fully-fused loop nest forests.

A *loop order* (Definition 3.2) assigns to every contraction term of a
contraction path a permutation of that term's indices.  The *fully-fused
loop nest forest* (Definitions 4.1–4.3) is obtained by iteratively peeling
the common first index of maximal runs of consecutive terms; each peel adds
one loop vertex whose children are the peeled sub-orders.

This module provides:

* :class:`LoopOrder` — the per-term orders plus validation against the CSF
  storage-order restriction of Section 5;
* :func:`build_fused_forest` — the peeling construction, producing
  :class:`LoopVertex`/:class:`TermLeaf` trees;
* :func:`common_ancestor_loops` and :func:`intermediate_buffers` — buffer
  index inference per Equation 5 (buffer indices are the producer's output
  indices minus the loops shared by producer and consumer);
* :class:`LoopNest` — a contraction path plus a loop order, the unit the
  cost models score and the execution engine runs;
* pretty-printing of loop nests as pseudo-code, mirroring the listings in
  the paper (Listings 2–4, Figure 6).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.core.contraction_path import ContractionPath
from repro.core.expr import SpTTNKernel
from repro.util.validation import require


# --------------------------------------------------------------------------- #
# Loop orders
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class LoopOrder:
    """Per-term loop orders ``A = (A_1, ..., A_N)`` for a contraction path."""

    orders: Tuple[Tuple[str, ...], ...]

    def __len__(self) -> int:
        return len(self.orders)

    def __getitem__(self, item: int) -> Tuple[str, ...]:
        return self.orders[item]

    def __iter__(self) -> Iterator[Tuple[str, ...]]:
        return iter(self.orders)

    def max_depth(self) -> int:
        return max((len(o) for o in self.orders), default=0)

    def all_indices(self) -> Tuple[str, ...]:
        seen: List[str] = []
        for order in self.orders:
            for idx in order:
                if idx not in seen:
                    seen.append(idx)
        return tuple(seen)


def validate_loop_order(
    kernel: SpTTNKernel,
    path: ContractionPath,
    order: LoopOrder,
    enforce_csf_order: bool = True,
) -> None:
    """Raise ``ValueError`` if *order* is not a valid loop order for *path*.

    Checks:
    * one order per term, each a permutation of the term's index union;
    * (optionally) sparse indices appear in CSF storage order within each
      term, the restriction the runtime imposes (Section 5).
    """
    require(
        len(order) == len(path),
        f"loop order has {len(order)} terms but path has {len(path)}",
    )
    for pos, (term, term_order) in enumerate(zip(path, order)):
        expected = set(term.all_indices)
        got = set(term_order)
        require(
            expected == got and len(term_order) == len(term.all_indices),
            f"term {pos}: loop order {term_order} is not a permutation of "
            f"{term.all_indices}",
        )
        if enforce_csf_order:
            sparse_seq = [i for i in term_order if i in kernel.sparse_indices]
            expected_seq = [
                i for i in kernel.csf_mode_order if i in set(sparse_seq)
            ]
            require(
                sparse_seq == expected_seq,
                f"term {pos}: sparse indices {sparse_seq} are not in CSF "
                f"storage order {expected_seq}",
            )


def default_loop_order(kernel: SpTTNKernel, path: ContractionPath) -> LoopOrder:
    """A simple valid loop order: sparse indices in CSF order, then dense.

    Used as a starting point and by baselines; not cost-optimized.
    """
    orders = []
    for term in path:
        idxs = sorted(
            term.all_indices,
            key=lambda i: (kernel.sparse_order_key(i), term.all_indices.index(i)),
        )
        orders.append(tuple(idxs))
    return LoopOrder(tuple(orders))


# --------------------------------------------------------------------------- #
# Fully-fused forest (peeling construction)
# --------------------------------------------------------------------------- #
@dataclass
class TermLeaf:
    """A leaf of the fused forest: the position of a contraction term."""

    term_position: int


@dataclass
class LoopVertex:
    """A loop in the fused forest, labelled with its index name."""

    index: str
    children: List[Union["LoopVertex", TermLeaf]] = field(default_factory=list)

    def term_positions(self) -> List[int]:
        """All contraction-term positions contained in this loop's subtree."""
        out: List[int] = []
        for child in self.children:
            if isinstance(child, TermLeaf):
                out.append(child.term_position)
            else:
                out.extend(child.term_positions())
        return out

    def depth(self) -> int:
        child_depths = [
            c.depth() if isinstance(c, LoopVertex) else 0 for c in self.children
        ]
        return 1 + (max(child_depths) if child_depths else 0)


@dataclass
class FusedForest:
    """A fully-fused loop nest forest (ordered list of root loop vertices)."""

    roots: List[Union[LoopVertex, TermLeaf]]

    def max_depth(self) -> int:
        return max(
            (r.depth() if isinstance(r, LoopVertex) else 0 for r in self.roots),
            default=0,
        )

    def loop_count(self) -> int:
        def count(node: Union[LoopVertex, TermLeaf]) -> int:
            if isinstance(node, TermLeaf):
                return 0
            return 1 + sum(count(c) for c in node.children)

        return sum(count(r) for r in self.roots)

    def iter_vertices(self) -> Iterator[LoopVertex]:
        def walk(node: Union[LoopVertex, TermLeaf]) -> Iterator[LoopVertex]:
            if isinstance(node, LoopVertex):
                yield node
                for c in node.children:
                    yield from walk(c)

        for r in self.roots:
            yield from walk(r)

    def is_fully_fused(self) -> bool:
        """No vertex (or the virtual forest root) has two consecutive children
        that are loops over the same index."""

        def check(children: Sequence[Union[LoopVertex, TermLeaf]]) -> bool:
            prev: Optional[str] = None
            for child in children:
                label = child.index if isinstance(child, LoopVertex) else None
                if label is not None and label == prev:
                    return False
                prev = label
                if isinstance(child, LoopVertex) and not check(child.children):
                    return False
            return True

        return check(self.roots)


def build_fused_forest(path: ContractionPath, order: LoopOrder) -> FusedForest:
    """Construct the fully-fused loop nest forest for (path, order).

    The construction is Definition 4.2: repeatedly peel the first index of
    the maximal run of consecutive terms sharing it, creating a loop vertex
    whose children are built recursively from the peeled orders.
    """
    require(len(order) == len(path), "order and path must have matching length")
    positions = list(range(len(path)))
    remaining = [list(o) for o in order]

    def build(pos: List[int], rem: List[List[str]]) -> List[Union[LoopVertex, TermLeaf]]:
        roots: List[Union[LoopVertex, TermLeaf]] = []
        i = 0
        while i < len(pos):
            if not rem[i]:
                roots.append(TermLeaf(pos[i]))
                i += 1
                continue
            root_index = rem[i][0]
            j = i
            while j < len(pos) and rem[j] and rem[j][0] == root_index:
                j += 1
            children = build(pos[i:j], [r[1:] for r in rem[i:j]])
            roots.append(LoopVertex(root_index, children))
            i = j
        return roots

    return FusedForest(build(positions, remaining))


# --------------------------------------------------------------------------- #
# Intermediate buffers (Equation 5)
# --------------------------------------------------------------------------- #
def common_ancestor_loops(
    order: LoopOrder, producer: int, consumer: int
) -> Tuple[str, ...]:
    """Loop indices shared as ancestors by two terms in the fused forest.

    In the peeling construction, terms *producer* and *consumer* (producer
    first) share a loop at depth ``d`` exactly when every term between them
    (inclusive) has the same index at position ``d`` of its remaining order;
    the shared prefix of such depths is the common-ancestor set ``S`` of
    Equation 5.
    """
    require(
        0 <= producer <= consumer < len(order),
        f"invalid term positions {producer}, {consumer}",
    )
    ancestors: List[str] = []
    depth = 0
    while True:
        if depth >= len(order[producer]):
            break
        candidate = order[producer][depth]
        ok = True
        for t in range(producer, consumer + 1):
            if depth >= len(order[t]) or order[t][depth] != candidate:
                ok = False
                break
        if not ok:
            break
        ancestors.append(candidate)
        depth += 1
    return tuple(ancestors)


@dataclass(frozen=True)
class BufferSpec:
    """The dense buffer holding one intermediate tensor during execution."""

    name: str
    producer: int
    consumer: int
    indices: Tuple[str, ...]

    @property
    def dimension(self) -> int:
        return len(self.indices)

    def size(self, index_dims: Dict[str, int]) -> int:
        total = 1
        for idx in self.indices:
            total *= int(index_dims[idx])
        return total


def intermediate_buffers(
    path: ContractionPath, order: LoopOrder
) -> List[BufferSpec]:
    """Buffer index sets for every intermediate of (path, order), per Eq. 5.

    The buffer for the intermediate produced by term ``x`` and consumed by
    term ``y`` keeps exactly the producer-output indices that are *not*
    common-ancestor loops of ``x`` and ``y``.
    """
    consumers = path.consumers()
    buffers: List[BufferSpec] = []
    for producer, consumer in consumers.items():
        shared = set(common_ancestor_loops(order, producer, consumer))
        out_idx = path[producer].out_indices
        kept = tuple(i for i in out_idx if i not in shared)
        buffers.append(
            BufferSpec(
                name=path[producer].out,
                producer=producer,
                consumer=consumer,
                indices=kept,
            )
        )
    return buffers


def max_buffer_dimension(path: ContractionPath, order: LoopOrder) -> int:
    """Ground-truth maximum buffer dimension of a loop nest (0 if no buffers)."""
    return max((b.dimension for b in intermediate_buffers(path, order)), default=0)


def max_buffer_size(
    path: ContractionPath, order: LoopOrder, index_dims: Dict[str, int]
) -> int:
    """Ground-truth maximum buffer size (number of elements) of a loop nest."""
    return max(
        (b.size(index_dims) for b in intermediate_buffers(path, order)), default=0
    )


def total_buffer_size(
    path: ContractionPath, order: LoopOrder, index_dims: Dict[str, int]
) -> int:
    """Sum of all intermediate buffer sizes of a loop nest."""
    return sum(b.size(index_dims) for b in intermediate_buffers(path, order))


# --------------------------------------------------------------------------- #
# LoopNest: the schedulable / executable unit
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class LoopNest:
    """A contraction path together with a loop order for each of its terms."""

    path: ContractionPath
    order: LoopOrder

    def __post_init__(self) -> None:
        require(
            len(self.order) == len(self.path),
            "loop order and contraction path must have the same number of terms",
        )

    def forest(self) -> FusedForest:
        return build_fused_forest(self.path, self.order)

    def buffers(self) -> List[BufferSpec]:
        return intermediate_buffers(self.path, self.order)

    def max_buffer_dimension(self) -> int:
        return max_buffer_dimension(self.path, self.order)

    def max_loop_depth(self) -> int:
        return self.order.max_depth()

    def describe(self, kernel: Optional[SpTTNKernel] = None) -> str:
        """Render the loop nest as indented pseudo-code (like the paper's listings)."""
        lines: List[str] = []
        sparse = kernel.sparse_indices if kernel is not None else frozenset()
        sparse_name = (
            kernel.sparse_operand.name if kernel is not None else None
        )

        def emit(node: Union[LoopVertex, TermLeaf], depth: int) -> None:
            pad = "  " * depth
            if isinstance(node, TermLeaf):
                term = self.path[node.term_position]
                lines.append(f"{pad}{term}")
                return
            kind = "sparse" if node.index in sparse else "dense"
            lines.append(f"{pad}for {node.index} ({kind}):")
            for child in node.children:
                emit(child, depth + 1)

        header = "loop nest"
        if sparse_name is not None:
            header += f" (sparse tensor {sparse_name} in CSF)"
        lines.insert(0, header)
        for root in self.forest().roots:
            emit(root, 1)
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        parts = []
        for term, term_order in zip(self.path, self.order):
            parts.append(f"({','.join(term_order)})")
        return "LoopNest[" + " ".join(parts) + "]"
