"""Tensor-Times-Tensor Product (TTTP) and SDDMM.

TTTP (Equation 3 of the paper) is the generic multi-tensor kernel of tensor
completion: the sparse tensor is multiplied elementwise by the low-rank
model evaluated at its stored entries::

    S(i_0, ..., i_{d-1}) = sum_r T(i_0, ..., i_{d-1}) * prod_n F_n(i_n, r)

The output has exactly the sparsity pattern of ``T``.  SDDMM (sampled
dense-dense matrix multiplication) is the order-2 special case.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.expr import SpTTNKernel
from repro.core.scheduler import Schedule
from repro.engine.executor import TensorLike
from repro.kernels.spttn import KernelBuilder, build_kernel, run_kernel, sparse_order_of
from repro.sptensor.coo import COOTensor
from repro.sptensor.dense import DenseTensor
from repro.util.counters import OpCounter
from repro.util.validation import require


def tttp_spec(order: int) -> str:
    """Einsum specification of the TTTP kernel for an order-*order* tensor."""
    kb = KernelBuilder(order)
    rank = kb.dense_index(0)
    inputs = [kb.sparse_subscripts]
    for n in range(order):
        inputs.append(kb.sparse_index(n) + rank)
    return ",".join(inputs) + "->" + kb.sparse_subscripts


def tttp_kernel(
    tensor: TensorLike,
    factors: Sequence[Union[DenseTensor, np.ndarray]],
) -> Tuple[SpTTNKernel, dict]:
    """Build (without executing) the TTTP kernel and its operand mapping."""
    order = sparse_order_of(tensor)
    require(
        len(factors) == order,
        f"TTTP needs one factor per mode ({order}), got {len(factors)}",
    )
    spec = tttp_spec(order)
    return build_kernel(spec, [tensor] + list(factors))


def tttp(
    tensor: TensorLike,
    factors: Sequence[Union[DenseTensor, np.ndarray]],
    schedule: Optional[Schedule] = None,
    counter: Optional[OpCounter] = None,
    buffer_dim_bound: Optional[int] = 2,
) -> COOTensor:
    """Compute the TTTP of a sparse tensor with one factor matrix per mode.

    Returns a sparse tensor with the same pattern as the input whose stored
    values are ``T(i...) * sum_r prod_n F_n(i_n, r)``.
    """
    order = sparse_order_of(tensor)
    require(
        len(factors) == order,
        f"TTTP needs one factor per mode ({order}), got {len(factors)}",
    )
    spec = tttp_spec(order)
    output, _ = run_kernel(
        spec,
        [tensor] + list(factors),
        schedule=schedule,
        counter=counter,
        buffer_dim_bound=buffer_dim_bound,
    )
    assert isinstance(output, COOTensor)
    return output


def sddmm_spec() -> str:
    """Einsum specification of SDDMM (the order-2 TTTP)."""
    return tttp_spec(2)


def sddmm_kernel(
    matrix: TensorLike,
    left: Union[DenseTensor, np.ndarray],
    right: Union[DenseTensor, np.ndarray],
) -> Tuple[SpTTNKernel, dict]:
    """Build (without executing) the SDDMM kernel ``S_ij = M_ij * (L R^T)_ij``."""
    require(sparse_order_of(matrix) == 2, "SDDMM requires an order-2 sparse matrix")
    return build_kernel(sddmm_spec(), [matrix, left, right])


def sddmm(
    matrix: TensorLike,
    left: Union[DenseTensor, np.ndarray],
    right: Union[DenseTensor, np.ndarray],
    schedule: Optional[Schedule] = None,
    counter: Optional[OpCounter] = None,
) -> COOTensor:
    """Sampled dense-dense matrix multiplication over the pattern of *matrix*.

    ``S(i, j) = M(i, j) * sum_r L(i, r) * R(j, r)`` for every stored (i, j).
    """
    require(sparse_order_of(matrix) == 2, "SDDMM requires an order-2 sparse matrix")
    output, _ = run_kernel(
        sddmm_spec(), [matrix, left, right], schedule=schedule, counter=counter
    )
    assert isinstance(output, COOTensor)
    return output
