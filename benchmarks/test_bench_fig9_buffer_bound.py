"""E7 — Figure 9: impact of the intermediate-buffer dimension bound.

For the order-3 all-mode TTMc (``S(r,s,t) = sum_{ijk} T(i,j,k) U(i,r) V(j,s)
W(k,t)``) with R = 64, the paper compares the loop nest selected under a
buffer-dimension bound of 1 (intermediates of size 1 and S; innermost sparse
loop; fewer BLAS offloads) against the bound-2 loop nest (intermediates of
size T and S x T; all three contractions offloaded to BLAS-1/BLAS-2) and
finds the bound-2 nest faster despite its larger footprint.

Expected shape: ``bound-2`` is at least as fast as ``bound-1`` on every
dataset, and its selected loop nest has strictly larger maximum buffer size.
"""

from __future__ import annotations

import pytest

from repro.core.scheduler import SpTTNScheduler
from repro.engine.executor import LoopNestExecutor
from repro.kernels.ttmc import all_mode_ttmc_kernel

from _workloads import factor_matrices, preset_tensor

DATASETS = ("nell-2", "random-3d")
RANK = 64


def _setup(dataset: str, bound: int):
    tensor = preset_tensor(dataset)
    factors = factor_matrices(tensor, RANK, seed=3)
    kernel, tensors = all_mode_ttmc_kernel(tensor, factors)
    schedule = SpTTNScheduler(kernel, buffer_dim_bound=bound).schedule()
    return kernel, tensors, schedule


@pytest.mark.parametrize("dataset", DATASETS)
@pytest.mark.parametrize("bound", [1, 2])
def test_fig9_allmode_ttmc_buffer_bound(benchmark, dataset, bound):
    kernel, tensors, schedule = _setup(dataset, bound)
    executor = LoopNestExecutor(kernel, schedule.loop_nest)
    benchmark.extra_info.update(
        dataset=dataset,
        bound=bound,
        rank=RANK,
        max_buffer_dimension=schedule.max_buffer_dimension(),
        loop_nest=str(schedule.loop_nest),
    )
    benchmark.pedantic(
        lambda: executor.execute(tensors), rounds=2, iterations=1, warmup_rounds=1
    )
    assert schedule.max_buffer_dimension() <= bound


@pytest.mark.smoke
def test_fig9_smoke(benchmark):
    """Tiny CI case: one bound-2 all-mode TTMc execution."""
    kernel, tensors, schedule = _setup("nell-2", bound=2)
    executor = LoopNestExecutor(kernel, schedule.loop_nest)
    out = benchmark.pedantic(
        lambda: executor.execute(tensors), rounds=1, iterations=1
    )
    assert schedule.max_buffer_dimension() <= 2
    assert out.shape == (RANK, RANK, RANK)
